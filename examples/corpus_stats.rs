//! Corpus statistics: regenerate the paper's Figure 6(a)/(b) corpus
//! characterization for both synthetic profiles, plus word-frequency
//! and proper-analysis demonstrations.
//!
//! ```sh
//! cargo run --release --example corpus_stats
//! ```

use lpath::core::naive::proper_analyses;
use lpath::prelude::*;

fn main() {
    for (profile, sentences) in [(Profile::Wsj, 2_450), (Profile::Swb, 5_500)] {
        let corpus = generate(&GenConfig::new(profile, sentences));
        let stats = corpus.stats();
        println!("== {} profile ({} sentences) ==", profile.name(), sentences);
        println!("  file size     {:>10} kB", stats.ascii_bytes / 1024);
        println!("  tree nodes    {:>10}", stats.total_nodes);
        println!("  tokens        {:>10}", stats.total_tokens);
        println!("  unique tags   {:>10}", stats.unique_tags);
        println!("  maximum depth {:>10}", stats.max_depth);
        println!("  top tags:");
        for (tag, freq) in corpus.top_tags(10) {
            println!("    {tag:<12}{freq:>9}");
        }
        let words = corpus.word_histogram();
        println!("  distinct words: {}", words.len());
        let head: Vec<String> = words
            .iter()
            .take(5)
            .map(|&(w, c)| format!("{}×{c}", corpus.resolve(w)))
            .collect();
        println!("  most frequent:  {}\n", head.join("  "));
    }

    // Proper analyses (paper Figure 3): the semantics behind
    // immediate-following, enumerated for a small sentence.
    let tiny = parse_str("( (S (NP (Det the) (N cat)) (VP (V sat))) )").unwrap();
    let tree = &tiny.trees()[0];
    let analyses = proper_analyses(tree);
    println!(
        "== proper analyses of \"the cat sat\" ({} total) ==",
        analyses.len()
    );
    for a in &analyses {
        let row: Vec<&str> = a.iter().map(|&n| tiny.resolve(tree.node(n).name)).collect();
        println!("  {}", row.join(" "));
    }
}
