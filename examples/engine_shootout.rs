//! Engine shootout: the same 23 evaluation queries (Figure 6(c)) run
//! on all four engines — LPath/SQL, TGrep2-style, CorpusSearch-style
//! and (where expressible) the XPath baseline — with wall-clock times
//! and agreement checking. A miniature of the paper's Figures 7 and 10.
//!
//! ```sh
//! cargo run --release --example engine_shootout
//! ```

use std::time::Instant;

use lpath::prelude::*;
use lpath::xpath::XPATH_QUERIES;

fn main() {
    let corpus = generate(&GenConfig::wsj(1_000));
    println!(
        "corpus: {} trees, {} nodes\n",
        corpus.trees().len(),
        corpus.stats().total_nodes
    );

    let t = Instant::now();
    let lpath = Engine::build(&corpus);
    println!("build lpath engine  {:>9.1?}", t.elapsed());
    let t = Instant::now();
    let tgrep = TgrepEngine::build(&corpus);
    println!(
        "build tgrep image   {:>9.1?} ({} kB)",
        t.elapsed(),
        tgrep.image_bytes() / 1024
    );
    let t = Instant::now();
    let xpath = XPathEngine::build(&corpus);
    println!("build xpath engine  {:>9.1?}", t.elapsed());
    let cs = CsEngine::new(&corpus); // CorpusSearch has no build step
    println!();

    println!(
        "{:<4}{:>8}  {:>10}{:>10}{:>10}{:>10}",
        "Q", "results", "lpath", "tgrep", "cs", "xpath"
    );
    for q in QUERIES {
        let i = q.id - 1;
        let t = Instant::now();
        let n = lpath.count(q.lpath).expect("lpath");
        let t_lpath = t.elapsed();

        let t = Instant::now();
        let n_tgrep = tgrep.count(TGREP_QUERIES[i]).expect("tgrep");
        let t_tgrep = t.elapsed();
        assert_eq!(n, n_tgrep, "Q{} tgrep disagrees", q.id);

        let t = Instant::now();
        let n_cs = cs.count(CS_QUERIES[i]).expect("cs");
        let t_cs = t.elapsed();
        assert_eq!(n, n_cs, "Q{} corpussearch disagrees", q.id);

        let xp = XPATH_QUERIES.iter().find(|(id, _)| *id == q.id);
        let t_xp = match xp {
            Some(&(_, xq)) => {
                let t = Instant::now();
                let n_xp = xpath.count(xq).expect("xpath");
                let d = t.elapsed();
                assert_eq!(n, n_xp, "Q{} xpath disagrees", q.id);
                format!("{d:.1?}")
            }
            None => "—".to_string(),
        };
        println!(
            "{:<4}{:>8}  {:>10}{:>10}{:>10}{:>10}",
            format!("Q{}", q.id),
            n,
            format!("{t_lpath:.1?}"),
            format!("{t_tgrep:.1?}"),
            format!("{t_cs:.1?}"),
            t_xp
        );
    }
    println!("\nall engines agreed on every query.");
}
