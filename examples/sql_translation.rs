//! SQL translation: show, for a selection of LPath queries, the SQL
//! statement the paper's engine sends to its relational database
//! (paper §4) and the physical plan this reproduction executes.
//!
//! ```sh
//! cargo run --example sql_translation
//! ```

use lpath::prelude::*;

fn main() {
    let corpus = generate(&GenConfig::wsj(200));
    let engine = Engine::build(&corpus);

    let queries = [
        "//VB->NP",
        "//VP{/NP$}",
        "//S[//_[@lex=saw]]",
        "//NP[not(//JJ)]",
        "//VP[{//^VB->NP->PP$}]",
        "//NP[->PP[//IN[@lex=of]]=>VP]",
    ];

    for q in queries {
        println!("LPath   {q}");
        println!("SQL     {}", engine.sql(q).expect("translatable"));
        println!("plan    |");
        for line in engine.explain(q).expect("plannable").lines() {
            println!("        | {line}");
        }
        println!();
    }

    // Features only the tree walker evaluates.
    for q in ["//VP/_[last()]", "//NP[//JJ or //DT]", "//VB->*_"] {
        match engine.sql(q) {
            Err(e) => println!("not translatable: {q}\n  → {e}"),
            Ok(_) => unreachable!("{q} should be rejected"),
        }
        let walker = Walker::new(&corpus);
        let n = walker.count(&parse(q).unwrap());
        println!("  …but the walker answers it: {n} matches\n");
    }
}
