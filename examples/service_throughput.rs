//! The query service end to end: shard a synthetic WSJ corpus, fan a
//! query batch out, watch the caches work, append fresh trees without
//! a full rebuild, and read the stats.
//!
//! ```text
//! cargo run --release --example service_throughput [sentences]
//! ```

use std::time::Instant;

use lpath::prelude::*;

fn main() {
    let sentences: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000);
    let corpus = generate(&GenConfig::wsj(sentences));
    let texts: Vec<&str> = QUERIES.iter().map(|q| q.lpath).collect();

    println!("corpus: {sentences} synthetic WSJ sentences");
    for shards in [1usize, 2, 4, 8] {
        let t = Instant::now();
        let service = Service::with_config(
            &corpus,
            ServiceConfig {
                shards,
                ..ServiceConfig::default()
            },
        );
        let build = t.elapsed();

        // Cold batch: every query compiles and evaluates.
        let t = Instant::now();
        let cold: usize = service
            .eval_batch(&texts)
            .into_iter()
            .map(|r| r.expect("query").len())
            .sum();
        let cold_time = t.elapsed();

        // Warm batch: all result-cache hits.
        let t = Instant::now();
        let warm: usize = service
            .eval_batch(&texts)
            .into_iter()
            .map(|r| r.expect("query").len())
            .sum();
        let warm_time = t.elapsed();
        assert_eq!(cold, warm);

        let stats = service.stats();
        println!(
            "{shards} shard(s): build {:.3}s, cold batch {:.1} q/s, \
             warm batch {:.1} q/s, hit rate {:.2}, pruned {} shard evals",
            build.as_secs_f64(),
            texts.len() as f64 / cold_time.as_secs_f64(),
            texts.len() as f64 / warm_time.as_secs_f64(),
            stats.result_hit_rate(),
            stats.shards_pruned,
        );
    }

    // Live ingest: append without rebuilding the world.
    let service = Service::with_config(
        &corpus,
        ServiceConfig {
            shards: 4,
            ..ServiceConfig::default()
        },
    );
    let matches_before = service.count("//_[@lex=rapprochement]").unwrap();
    let t = Instant::now();
    service
        .append_ptb("( (S (NP-SBJ (DT the) (NN rapprochement)) (VP (VBD endured))) )")
        .unwrap();
    let append_time = t.elapsed();
    let matches_after = service.count("//_[@lex=rapprochement]").unwrap();
    println!(
        "append: one tree in {:.4}s (tail shard only), \
         '//_[@lex=rapprochement]' matches {matches_before} -> {matches_after}",
        append_time.as_secs_f64(),
    );
    assert_eq!(matches_after, matches_before + 1);

    let stats = service.stats();
    println!(
        "final stats: gen {}, {} trees, {} rows, plan hits/misses {}/{}, \
         result hits/misses {}/{}",
        stats.generation,
        stats.trees,
        stats.relation_rows,
        stats.plan_hits,
        stats.plan_misses,
        stats.result_hits,
        stats.result_misses,
    );
}
