//! Lemma 3.1, live: why LPath's immediate axes are beyond Core XPath —
//! and how Conditional XPath (Marx, PODS 2004) recovers them.
//!
//! ```sh
//! cargo run --example lemma31
//! ```

use lpath::condxpath::{core_xpath_queries_up_to, immediate_following};
use lpath::prelude::*;
use lpath_syntax::Axis;

fn main() {
    let corpus = parse_str(
        "( (S (V a) (NP b) (NP c)) )\n\
         ( (S (NP I) (VP (V saw) (NP (NP (Det the) (Adj old) (N man)) \
         (PP (Prep with) (NP (Det a) (N dog))))) (N today)) )",
    )
    .unwrap();
    let walker = Walker::new(&corpus);

    // The target relation: NPs immediately following a verb.
    let target = walker.eval(&parse("//V->NP").unwrap());
    println!(
        "//V->NP matches {} node(s) on the witness trees\n",
        target.len()
    );

    // 1. Core XPath cannot keep up: every predicate-free chain of up to
    //    three Core XPath steps disagrees somewhere.
    let mut tried = 0usize;
    let mut best: Option<(String, usize)> = None;
    for len in 1..=3 {
        for chain in core_xpath_queries_up_to(len, &["V", "NP", "S"]) {
            if chain.steps[0].0 != Axis::Descendant {
                continue;
            }
            let q = chain.to_query();
            let got = walker.eval(&parse(&q).unwrap());
            tried += 1;
            assert!(got != target, "a Core XPath chain matched: {q}");
            // Track the nearest miss for the printout.
            let overlap = got.iter().filter(|m| target.contains(m)).count();
            let miss = target.len() + got.len() - 2 * overlap;
            if best.as_ref().is_none_or(|(_, b)| miss < *b) {
                best = Some((q, miss));
            }
        }
    }
    let (nearest, miss) = best.expect("chains were enumerated");
    println!("tried {tried} Core XPath chains — none agree with //V->NP");
    println!("nearest miss: {nearest} (symmetric difference {miss})\n");

    // 2. Conditional XPath expresses it exactly:
    //    (up[last-child])* / right / (down[first-child])*.
    let expr = immediate_following();
    let mut got: Vec<(u32, NodeId)> = Vec::new();
    for (tid, tree) in corpus.trees().iter().enumerate() {
        let v = corpus.interner().get("V").unwrap();
        let np = corpus.interner().get("NP").unwrap();
        for c in tree.preorder().filter(|&n| tree.node(n).name == v) {
            got.extend(
                expr.eval(tree, c)
                    .into_iter()
                    .filter(|&x| tree.node(x).name == np)
                    .map(|x| (tid as u32, x)),
            );
        }
    }
    got.sort_unstable();
    got.dedup();
    assert_eq!(got, target);
    println!("Conditional XPath (up[last])*/right/(down[first])* matches exactly.");
    println!("LPath gives the same relation as one primitive: ->");
}
