//! Quickstart: load a small treebank, build the engine, run the
//! paper's Figure 2 queries and print their results.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use lpath::prelude::*;

fn main() {
    // The paper's Figure 1 sentence, in Penn Treebank bracketed form.
    let corpus = parse_str(
        "( (S (NP I) (VP (V saw) (NP (NP (Det the) (Adj old) (N man)) \
         (PP (Prep with) (NP (Det a) (N dog))))) (N today)) )",
    )
    .expect("well-formed treebank");

    // Label the trees (Definition 4.1), load the node relation,
    // cluster and index it (paper §5).
    let engine = Engine::build(&corpus);

    // The example queries of Figure 2, with the paper's descriptions.
    let queries = [
        ("//S[//_[@lex=saw]]", "sentences containing the word 'saw'"),
        (
            "//V=>NP",
            "NPs that are the immediate following sibling of a V",
        ),
        ("//V->NP", "NPs immediately following a V"),
        ("//VP/V-->N", "Ns following a V that is a child of a VP"),
        ("//VP{/V-->N}", "…same, but confined to the VP's subtree"),
        ("//VP{/NP$}", "NPs that are the rightmost child of a VP"),
        (
            "//VP{//NP$}",
            "NPs that are the rightmost descendant of a VP",
        ),
    ];

    println!("Figure 2 — example linguistic queries\n");
    for (query, description) in queries {
        let matches = engine.query(query).expect("valid LPath");
        let rendered: Vec<String> = matches
            .iter()
            .map(|&(tid, node)| {
                let tree = &corpus.trees()[tid as usize];
                format!("{}#{}", corpus.resolve(tree.node(node).name), node.0)
            })
            .collect();
        println!("{query:<18} {description}");
        println!(
            "{:<18} → {} match(es): {}\n",
            "",
            matches.len(),
            rendered.join(", ")
        );
    }

    // The walker answers the same queries without the relational store.
    let walker = Walker::new(&corpus);
    let q = parse("//V->NP").unwrap();
    assert_eq!(walker.count(&q), 2);
    println!("walker agrees: //V->NP has {} matches", walker.count(&q));
}
