//! Annotation repair: query-driven treebank curation.
//!
//! The paper's closing discussion points at *updating* treebanks as the
//! companion problem to querying them. This example plays a curation
//! session: LPath queries locate annotation defects, [`TreeEditor`]
//! repairs them, and the engine re-checks the invariant after each fix.
//!
//! ```sh
//! cargo run --example annotation_repair
//! ```

use lpath::model::TreeEditor;
use lpath::prelude::*;

fn main() {
    // A small treebank with two classic annotation defects:
    //  * sentence 1: flat NP — "the old man" was never bracketed, so
    //    Det/Adj/N hang directly off the VP-object NP's parent;
    //  * sentence 2: a spurious unary X bracket around the verb.
    let mut corpus = parse_str(
        "( (S (NP I) (VP (V saw) (Det the) (Adj old) (N man))) )\n\
         ( (S (NP you) (VP (X (V ran)))) )",
    )
    .expect("well-formed treebank");

    let engine = Engine::build(&corpus);
    // Defect 1: a Det directly under a VP (should live inside an NP).
    let flat = engine.count("//VP/Det").unwrap();
    // Defect 2: an X bracket.
    let spurious = engine.count("//X").unwrap();
    println!("defects found: {flat} flat NP span(s), {spurious} spurious bracket(s)\n");
    assert_eq!((flat, spurious), (1, 1));

    // --- Repair 1: wrap Det..N of sentence 1's VP in an NP. ---
    let np = corpus.intern("NP");
    let mut ed = TreeEditor::new(&corpus.trees()[0]);
    // The VP is preorder node 2; children are [V, Det, Adj, N].
    let vp = ed.node_ref(NodeId(2));
    let new_np = ed.wrap(vp, 1, 4, np).expect("valid child range");
    println!(
        "wrapped children 1..4 of VP under a fresh NP (span {:?})",
        ed.labels()
            .iter()
            .find(|(r, _)| *r == new_np)
            .map(|(_, l)| (l.left, l.right))
            .expect("fresh node is labeled"),
    );
    let repaired_1 = ed.finish().expect("normalized tree");

    // --- Repair 2: splice out the unary X in sentence 2. ---
    let mut ed = TreeEditor::new(&corpus.trees()[1]);
    let x = ed.node_ref(NodeId(3)); // S NP VP X …
    ed.splice_out(x).expect("X has children");
    let repaired_2 = ed.finish().expect("normalized tree");

    // Rebuild the corpus and verify both defects are gone — and the
    // repair introduced the structure the queries expect.
    let mut fixed = Corpus::new();
    *fixed.interner_mut() = corpus.interner().clone();
    fixed.add_tree(repaired_1);
    fixed.add_tree(repaired_2);
    let engine = Engine::build(&fixed);
    assert_eq!(engine.count("//VP/Det").unwrap(), 0);
    assert_eq!(engine.count("//X").unwrap(), 0);
    // The new NP immediately follows the verb…
    assert_eq!(engine.count("//V->NP").unwrap(), 1);
    // …and is the rightmost child of its VP.
    assert_eq!(engine.count("//VP{/NP$}").unwrap(), 1);
    println!("\nafter repair:");
    println!("  //VP/Det      → 0   (flat span bracketed)");
    println!("  //X           → 0   (spurious bracket dissolved)");
    println!("  //V->NP       → 1   (object NP adjacent to the verb)");
    println!("  //VP{{/NP$}}    → 1   (NP right-aligned in its VP)");
}
