//! Treebank search: generate a synthetic WSJ-profile corpus and
//! interrogate it the way a corpus linguist would, mixing vertical
//! navigation, LPath's horizontal axes, scoping and alignment.
//!
//! ```sh
//! cargo run --release --example treebank_search
//! ```

use lpath::prelude::*;

fn main() {
    // A deterministic synthetic stand-in for the (license-restricted)
    // Penn Treebank WSJ corpus — see DESIGN.md §3 for the substitution
    // argument.
    let corpus = generate(&GenConfig::wsj(2_000));
    let stats = corpus.stats();
    println!(
        "corpus: {} trees, {} nodes, {} tokens, {} tags, depth ≤ {}\n",
        stats.trees, stats.total_nodes, stats.total_tokens, stats.unique_tags, stats.max_depth
    );

    let engine = Engine::build(&corpus);

    let investigations = [
        // Verb-phrase internal structure.
        ("//VP{/VB-->NN}", "nouns after the verb, inside the same VP"),
        ("//VP[{//^VB->NP->PP$}]", "VPs spanned exactly by V-NP-PP"),
        // Extraposition-ish: rightmost NPs.
        ("//VP{//NP$}", "NPs ending exactly where their VP ends"),
        // Lexical probes.
        ("//_[@lex=saw]", "occurrences of the word 'saw'"),
        (
            "//S[{//_[@lex=what]->_[@lex=building]}]",
            "'what building' sentences",
        ),
        // Negation.
        ("//NP[not(//JJ)]", "NPs with no adjective anywhere inside"),
        // Sibling adjacency.
        ("//PP=>SBAR", "SBARs right after a sibling PP"),
        // Deep recursion.
        ("//NP/NP/NP/NP/NP", "five-deep NP chains"),
    ];

    for (query, what) in investigations {
        let n = engine.count(query).expect("valid query");
        println!("{n:>7}  {what}\n         {query}\n");
    }

    // Show a concrete hit: print the first sentence containing "saw".
    let hits = engine.query("//S[//_[@lex=saw]]").unwrap();
    if let Some(&(tid, _)) = hits.first() {
        let tree = &corpus.trees()[tid as usize];
        let mut line = String::new();
        lpath::model::ptb::write_tree(tree, corpus.interner(), &mut line, false);
        let shown: String = line.chars().take(160).collect();
        println!("first 'saw' sentence (truncated): {shown}…");
    }
}
