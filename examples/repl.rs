//! An interactive LPath shell: the linguist's corpus session.
//!
//! Reads LPath queries from stdin, one per line, and prints the match
//! count, the translated SQL, and the first few matches rendered in
//! their tree context. Dot-commands:
//!
//! * `.sql QUERY`      — show the SQL only;
//! * `.plan QUERY`     — show the physical plan (EXPLAIN);
//! * `:analyze QUERY`  — run the query and show the plan annotated
//!   with actual rows, probes and per-step time (EXPLAIN ANALYZE);
//! * `:check QUERY`    — static analysis only: spanned lints plus the
//!   vocabulary-aware emptiness verdict, without executing anything;
//! * `:count QUERY`    — count matches without materializing them
//!   (O(index) when the query hits the aggregate tables — check
//!   `count_fast` under `:metrics`);
//! * `:hist QUERY`     — match histogram: total, matches per tree,
//!   matches per label;
//! * `:metrics`        — the service's latency/slow-query snapshot
//!   (plain queries are served through an instrumented service);
//! * `.tree N`         — render tree N;
//! * `.stats`          — corpus statistics (Figure 6(a) shape);
//! * `.help`, `.quit`
//!
//! ```sh
//! cargo run --release --example repl                 # synthetic WSJ sample
//! cargo run --release --example repl -- corpus.mrg   # your own treebank
//! cargo run --release --example repl -- corpus.xml   # …or its XML form
//! echo '//VB->NP' | cargo run --release --example repl
//! ```

use std::io::{self, BufRead, Write};

use lpath::model::render::render_tree;
use lpath::model::xml;
use lpath::prelude::*;

fn main() {
    // Load the treebank named on the command line (bracketed PTB, or
    // XML when the extension says so), or fall back to a seeded
    // WSJ-profile sample: small enough to start instantly, large
    // enough for queries to have interesting answers.
    let (corpus, origin) = match std::env::args().nth(1) {
        Some(path) => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            let corpus = if path.ends_with(".xml") {
                xml::parse_str(&text).unwrap_or_else(|e| panic!("{path}: {e}"))
            } else {
                parse_str(&text).unwrap_or_else(|e| panic!("{path}: {e}"))
            };
            (corpus, path)
        }
        None => (
            generate(&GenConfig {
                profile: Profile::Wsj,
                sentences: 500,
                seed: 42,
            }),
            "synthetic WSJ sample".to_string(),
        ),
    };
    let engine = Engine::build(&corpus);
    // Plain queries go through an instrumented service, so `:metrics`
    // reflects the session's actual traffic.
    let service = Service::build(&corpus);
    let stats = corpus.stats();
    println!(
        "loaded {origin}: {} trees, {} nodes, {} unique tags",
        stats.trees, stats.total_nodes, stats.unique_tags
    );
    println!("type an LPath query (`.help` for commands)\n");

    let stdin = io::stdin();
    let mut out = io::stdout();
    loop {
        print!("lpath> ");
        let _ = out.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break, // EOF
            Ok(_) => {}
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line.split_once(' ').map_or((line, ""), |(a, b)| (a, b)) {
            (".quit" | ".exit", _) => break,
            (".help", _) => {
                println!(
                    ".sql QUERY      show translated SQL\n\
                     .plan QUERY     show the physical plan\n\
                     :analyze QUERY  execute and show the annotated plan\n\
                     :check QUERY    static lints + emptiness verdict (no execution)\n\
                     :count QUERY    count matches without materializing rows\n\
                     :hist QUERY     match histogram (per tree, per label)\n\
                     :metrics        service latency/slow-query snapshot\n\
                     .tree N         render tree N\n\
                     .stats          corpus statistics\n\
                     .quit           leave"
                );
            }
            (".stats", _) => {
                let s = corpus.stats();
                println!(
                    "trees {}  nodes {}  tokens {}  unique tags {}  max depth {}",
                    s.trees, s.total_nodes, s.total_tokens, s.unique_tags, s.max_depth
                );
            }
            (".sql", q) => match engine.sql(q) {
                Ok(sql) => println!("{sql}"),
                Err(e) => println!("error: {e}"),
            },
            (".plan", q) => match engine.explain(q) {
                Ok(plan) => print!("{plan}"),
                Err(e) => println!("error: {e}"),
            },
            (":analyze" | ".analyze", q) => match engine.explain_analyze(q) {
                Ok(report) => print!("{report}"),
                Err(e) => println!("error: {e}"),
            },
            (":check" | ".check", q) => match service.check(q) {
                Ok(report) => {
                    if report.is_clean() {
                        println!("clean: no lints, not statically empty");
                    } else {
                        print!("{}", report.render(q));
                        if report.statically_empty {
                            println!(
                                "verdict: statically empty (would run the constant-empty plan)"
                            );
                        }
                    }
                }
                Err(e) => println!("error: {e}"),
            },
            (":count" | ".count", q) => match service.count(q) {
                Ok(n) => println!("{n} match(es)"),
                Err(e) => println!("error: {e}"),
            },
            (":hist" | ".hist", q) => match service.hist(q) {
                Ok(h) => {
                    println!("{} match(es) total", h.total);
                    for (tid, n) in &h.per_tree {
                        println!("  tree {tid:>6}  {n}");
                    }
                    for (label, n) in &h.per_label {
                        println!("  {label:<10} {n}");
                    }
                }
                Err(e) => println!("error: {e}"),
            },
            (":metrics" | ".metrics", _) => {
                print!("{}", service.metrics().to_json());
            }
            (".tree", n) => match n.trim().parse::<usize>() {
                Ok(i) if i < corpus.trees().len() => {
                    print!(
                        "{}",
                        render_tree(&corpus.trees()[i], corpus.interner(), &[])
                    );
                }
                _ => println!("error: tree index 0..{}", corpus.trees().len()),
            },
            _ => run_query(&corpus, &service, line),
        }
    }
    println!();
}

fn run_query(corpus: &Corpus, service: &Service, query: &str) {
    let matches = match service.eval(query) {
        Ok(m) => m,
        Err(e) => {
            println!("error: {e}");
            return;
        }
    };
    println!("{} match(es)", matches.len());
    // Show up to two matched trees with their matches highlighted.
    let mut shown = 0;
    let mut i = 0;
    while i < matches.len() && shown < 2 {
        let tid = matches[i].0;
        let nodes: Vec<NodeId> = matches
            .iter()
            .filter(|(t, _)| *t == tid)
            .map(|&(_, n)| n)
            .collect();
        println!("— tree {tid} ({} match(es) marked *) —", nodes.len());
        print!(
            "{}",
            render_tree(&corpus.trees()[tid as usize], corpus.interner(), &nodes)
        );
        while i < matches.len() && matches[i].0 == tid {
            i += 1;
        }
        shown += 1;
    }
    if shown > 0 {
        println!();
    }
}
