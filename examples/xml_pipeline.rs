//! XML pipeline: the paper's data-interchange story end to end.
//!
//! The paper motivates LPath by the premise that XML is the natural
//! interchange format for linguistic trees (§1). This example walks
//! that pipeline: parse a Penn Treebank file, export it as the XML of
//! Figure 1 (words as `@lex` attributes), reload the XML, and verify
//! that every Figure 2 query answers identically on both sides.
//!
//! ```sh
//! cargo run --example xml_pipeline
//! ```

use lpath::model::xml;
use lpath::prelude::*;

fn main() {
    // A tiny treebank in the Penn bracketed format, including tags
    // that are not legal XML names (`.`, `PRP$`).
    let bracketed = "\
( (S (NP I) (VP (V saw) (NP (NP (Det the) (Adj old) (N man)) \
(PP (Prep with) (NP (Det a) (N dog))))) (N today)) )
( (S (NP-SBJ (PRP I)) (VP (VBD saw) (NP (PRP$ it))) (. .)) )";
    let corpus = parse_str(bracketed).expect("well-formed treebank");

    // Export: one XML document, one element per tree under <treebank>.
    let document = xml::to_string(&corpus);
    println!("— exported XML —\n{document}");

    // Reload from XML. Tags like `.` and `PRP$` come back through the
    // <n tag="…"> escape convention.
    let reloaded = xml::parse_str(&document).expect("emitted XML parses");
    assert_eq!(corpus.trees().len(), reloaded.trees().len());

    // Both corpora answer every Figure 2 query identically.
    let original = Engine::build(&corpus);
    let roundtrip = Engine::build(&reloaded);
    println!("— query agreement —");
    for query in [
        "//S[//_[@lex=saw]]",
        "//V=>NP",
        "//V->NP",
        "//VP/V-->N",
        "//VP{/V-->N}",
        "//VP{/NP$}",
        "//VP{//NP$}",
        "//'PRP$'",
        "//'.'",
        "//_[contains(@lex,'og')]",
    ] {
        let a = original.count(query).expect("valid LPath");
        let b = roundtrip.count(query).expect("valid LPath");
        assert_eq!(a, b, "disagreement on {query}");
        println!("{query:<28} {a} match(es) on both sides");
    }
    println!("\nround trip preserved all query answers");
}
