//! Cross-engine agreement on the paper's 23 evaluation queries.
//!
//! Four (and for eleven queries, five) independently implemented
//! engines must report the same result sizes on the same synthetic
//! corpora:
//!
//! * the LPath relational engine (labels → SQL → indexed joins),
//! * the tree walker (labels, no storage),
//! * the tgrep engine (binary image + backtracking matcher),
//! * the CorpusSearch engine (full-scan interpreter),
//! * the XPath engine (start/end labels) on the XPath-expressible 11.
//!
//! Their query texts live in different dialects, so agreement here
//! validates both the engines and the dialect translations used by the
//! benchmark harness.

use lpath::prelude::*;

mod fixtures;

fn check_corpus(corpus: &Corpus, label: &str) {
    let engine = Engine::build(corpus);
    let walker = Walker::new(corpus);
    let tgrep = TgrepEngine::build(corpus);
    let cs = CsEngine::new(corpus);
    let xp = XPathEngine::build(corpus);

    for case in fixtures::eval_cases() {
        let lpath_count = engine
            .count(case.lpath)
            .unwrap_or_else(|e| panic!("{label} Q{}: {e}", case.id));
        let walker_count = walker.count(&parse(case.lpath).unwrap());
        assert_eq!(
            lpath_count, walker_count,
            "{label} Q{}: engine {lpath_count} vs walker {walker_count} ({})",
            case.id, case.lpath
        );
        let tgrep_count = tgrep
            .count(case.tgrep)
            .unwrap_or_else(|e| panic!("{label} Q{} tgrep: {e}", case.id));
        assert_eq!(
            lpath_count, tgrep_count,
            "{label} Q{}: lpath {lpath_count} vs tgrep {tgrep_count} ({} / {})",
            case.id, case.lpath, case.tgrep
        );
        let cs_count = cs
            .count(case.cs)
            .unwrap_or_else(|e| panic!("{label} Q{} cs: {e}", case.id));
        assert_eq!(
            lpath_count, cs_count,
            "{label} Q{}: lpath {lpath_count} vs corpussearch {cs_count} ({} / {})",
            case.id, case.lpath, case.cs
        );
        if let Some(xq) = case.xpath {
            let x = xp
                .count(xq)
                .unwrap_or_else(|e| panic!("{label} Q{} xpath: {e}", case.id));
            assert_eq!(
                lpath_count, x,
                "{label} Q{}: lpath {lpath_count} vs xpath {x} ({xq})",
                case.id
            );
        }
    }
}

#[test]
fn all_engines_agree_on_wsj_profile() {
    let corpus = generate(&GenConfig::wsj(250));
    check_corpus(&corpus, "wsj");
}

#[test]
fn all_engines_agree_on_swb_profile() {
    let corpus = generate(&GenConfig::swb(250));
    check_corpus(&corpus, "swb");
}

#[test]
fn all_engines_agree_on_a_second_seed() {
    let corpus = generate(&GenConfig::wsj(150).with_seed(99));
    check_corpus(&corpus, "wsj-seed99");
}

#[test]
fn naive_oracle_agrees_on_a_small_corpus() {
    // The quadratic oracle is only run on a small corpus.
    let corpus = generate(&GenConfig::wsj(40));
    let engine = Engine::build(&corpus);
    let naive = NaiveEvaluator::new(&corpus);
    for q in QUERIES {
        let ast = parse(q.lpath).unwrap();
        assert_eq!(
            engine.count(q.lpath).unwrap(),
            naive.count(&ast),
            "Q{}: {}",
            q.id,
            q.lpath
        );
    }
}

#[test]
fn function_library_agrees_across_dialects_and_labelings() {
    // The same function-library query written in LPath syntax (run on
    // the interval labeling) and in XPath 1.0 syntax (run on the
    // start/end labeling) must agree — Figure 10's "other components
    // the same" discipline extended to the paper's footnote-1 library.
    let corpus = generate(&GenConfig::wsj(250));
    let engine = Engine::build(&corpus);
    let walker = Walker::new(&corpus);
    let xp = XPathEngine::build(&corpus);
    for (lpath_q, xpath_q) in [
        ("//_[contains(@lex,'ing')]", "//*[contains(@lex,'ing')]"),
        ("//_[starts-with(@lex,c)]", "//*[starts-with(@lex,'c')]"),
        ("//_[string-length(@lex)>8]", "//*[string-length(@lex)>8]"),
        ("//NP[count(//JJ)=0]", "//NP[count(.//JJ)=0]"),
        ("//S[count(//VP)>0]", "//S[count(.//VP)>0]"),
        (
            "//_[not(contains(@lex,e))][@lex]",
            "//*[not(contains(@lex,'e'))][@lex]",
        ),
    ] {
        let via_lpath = engine.count(lpath_q).unwrap();
        let via_walker = walker.count(&parse(lpath_q).unwrap());
        let via_xpath = xp.count(xpath_q).unwrap();
        assert_eq!(via_lpath, via_walker, "{lpath_q}");
        assert_eq!(via_lpath, via_xpath, "{lpath_q} vs {xpath_q}");
    }
}

#[test]
fn early_termination_matches_full_enumeration_on_all_23_queries() {
    // Acceptance: exists / limit / paged results must be byte-identical
    // to prefixes of the full enumeration, on every evaluation query,
    // for walker, engine and service alike.
    let corpus = generate(&GenConfig::wsj(120));
    let engine = Engine::build(&corpus);
    let walker = Walker::new(&corpus);
    let service = Service::with_config(
        &corpus,
        ServiceConfig {
            shards: 4,
            ..ServiceConfig::default()
        },
    );
    for q in QUERIES {
        let ast = parse(q.lpath).unwrap();
        let full = engine.query(q.lpath).unwrap();
        assert_eq!(
            engine.exists(q.lpath).unwrap(),
            !full.is_empty(),
            "Q{}",
            q.id
        );
        assert_eq!(walker.exists(&ast), !full.is_empty(), "Q{}", q.id);
        assert_eq!(
            service.exists(q.lpath).unwrap(),
            !full.is_empty(),
            "Q{}",
            q.id
        );
        assert_eq!(engine.count(q.lpath).unwrap(), full.len(), "Q{}", q.id);
        assert_eq!(service.count(q.lpath).unwrap(), full.len(), "Q{}", q.id);
        let mut streamed: Vec<(u32, NodeId)> = engine.matches(q.lpath).unwrap().collect();
        streamed.sort_unstable();
        assert_eq!(streamed, full, "Q{} streamed", q.id);
        for (offset, limit) in [(0, 1), (0, 10), (5, 5), (full.len(), 4), (0, usize::MAX)] {
            let want: Vec<(u32, NodeId)> = full.iter().skip(offset).take(limit).copied().collect();
            assert_eq!(
                engine.query_limit(q.lpath, offset, limit).unwrap(),
                want,
                "Q{} engine page {offset}/{limit}",
                q.id
            );
            assert_eq!(
                walker.eval_limit(&ast, offset, limit),
                want,
                "Q{} walker page {offset}/{limit}",
                q.id
            );
            assert_eq!(
                service.eval_page(q.lpath, offset, limit).unwrap(),
                want,
                "Q{} service page {offset}/{limit}",
                q.id
            );
        }
    }
}

#[test]
fn degenerate_inputs_agree_across_early_exit_paths() {
    // Empty corpus: every layer must answer "nothing", not panic.
    let empty = parse_str("").unwrap();
    let engine = Engine::build(&empty);
    let walker = Walker::new(&empty);
    let service = Service::with_config(
        &empty,
        ServiceConfig {
            shards: 3,
            ..ServiceConfig::default()
        },
    );
    let nothing: Vec<(u32, NodeId)> = Vec::new();
    for q in ["//NP", "//_", "//NP[not(//JJ)]"] {
        let ast = parse(q).unwrap();
        assert!(!engine.exists(q).unwrap(), "{q}");
        assert!(!walker.exists(&ast), "{q}");
        assert!(!service.exists(q).unwrap(), "{q}");
        assert_eq!(engine.query(q).unwrap(), nothing, "{q}");
        assert_eq!(engine.query_limit(q, 0, 10).unwrap(), nothing, "{q}");
        assert_eq!(walker.eval_limit(&ast, 0, 10), nothing, "{q}");
        assert_eq!(service.eval_page(q, 0, 10).unwrap(), nothing, "{q}");
        assert_eq!(engine.count(q).unwrap(), 0, "{q}");
        assert_eq!(service.count(q).unwrap(), 0, "{q}");
        // More worker threads than trees (zero trees!) must clamp.
        assert_eq!(walker.eval_parallel(&ast, 64), nothing, "{q}");
    }

    // A tiny corpus: threads far beyond the tree count, limit 0, and
    // offsets past the end, asserted equal across all three layers.
    let tiny = generate(&GenConfig::wsj(3));
    let engine = Engine::build(&tiny);
    let walker = Walker::new(&tiny);
    let service = Service::with_config(
        &tiny,
        ServiceConfig {
            shards: 8, // more shards than trees
            ..ServiceConfig::default()
        },
    );
    for q in ["//NP", "//DT", "//ZZZ-UNSEEN"] {
        let ast = parse(q).unwrap();
        let full = engine.query(q).unwrap();
        assert_eq!(walker.eval_parallel(&ast, 1024), full, "{q} threads>trees");
        assert_eq!(walker.count_parallel(&ast, 1024), full.len(), "{q}");
        // limit = 0 is the empty page everywhere.
        assert_eq!(engine.query_limit(q, 0, 0).unwrap(), nothing, "{q}");
        assert_eq!(walker.eval_limit(&ast, 0, 0), nothing, "{q}");
        assert_eq!(service.eval_page(q, 0, 0).unwrap(), nothing, "{q}");
        // Offset past the end is the empty page everywhere.
        let past = full.len() + 100;
        assert_eq!(engine.query_limit(q, past, 5).unwrap(), nothing, "{q}");
        assert_eq!(walker.eval_limit(&ast, past, 5), nothing, "{q}");
        assert_eq!(service.eval_page(q, past, 5).unwrap(), nothing, "{q}");
    }
}

#[test]
fn counts_scale_linearly_under_replication() {
    // The paper's §5.3 replication methodology: per-tree queries scale
    // exactly linearly because every copy contributes the same matches.
    let corpus = generate(&GenConfig::wsj(120));
    let doubled = corpus.replicate(2.0);
    let e1 = Engine::build(&corpus);
    let e2 = Engine::build(&doubled);
    for q in QUERIES {
        let c1 = e1.count(q.lpath).unwrap();
        let c2 = e2.count(q.lpath).unwrap();
        assert_eq!(c2, 2 * c1, "Q{}: {}", q.id, q.lpath);
    }
}
