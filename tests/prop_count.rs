//! Counting invariants, property-tested across every layer.
//!
//! A count is a promise about an enumeration nobody ran, so one
//! invariant anchors everything: **`count == eval().len()`** for any
//! corpus, query, sharding, and budget schedule — whether the count
//! came from the walker, the engine's streaming cursor, the service's
//! fan-out, the O(index) aggregate tables, a budgeted checkpointed
//! sweep, or a stateless count-token sweep. On top of that: chunk
//! counts of a suspended sweep must sum to the one-shot count at
//! *every* budget, the aggregate fast path must answer without running
//! any per-shard evaluation, and the tables must stay consistent
//! across `append_ptb`.
//!
//! `PROPTEST_CASES` scales the case count (CI's nightly sweep raises
//! it); the default here is the acceptance floor of 256.

use proptest::prelude::*;

use lpath::prelude::*;

/// A random subtree of bounded depth/width in bracketed form.
fn arb_subtree(depth: u32) -> BoxedStrategy<String> {
    let tag = prop_oneof![
        Just("A".to_string()),
        Just("B".to_string()),
        Just("C".to_string()),
    ];
    let word = prop_oneof![
        Just("u".to_string()),
        Just("v".to_string()),
        Just("w".to_string()),
    ];
    if depth == 0 {
        (tag, word).prop_map(|(t, w)| format!("({t} {w})")).boxed()
    } else {
        let leaf = (
            prop_oneof![
                Just("A".to_string()),
                Just("B".to_string()),
                Just("C".to_string()),
            ],
            word,
        )
            .prop_map(|(t, w)| format!("({t} {w})"));
        let inner = (tag, prop::collection::vec(arb_subtree(depth - 1), 1..3))
            .prop_map(|(t, kids)| format!("({t} {})", kids.join(" ")));
        prop_oneof![2 => leaf, 2 => inner].boxed()
    }
}

/// Bracketed text for one to five random trees.
fn arb_treebank() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(arb_subtree(2), 1..6)
        .prop_map(|trees| trees.iter().map(|t| format!("( (S {t}) )")).collect())
}

/// The first [`FAST`] queries land in the aggregate tables (every
/// tabulated shape: all nodes, tag, roots, attribute filters, child
/// pairs, both adjacent-sibling spellings, span adjacency in both
/// directions, descendant presence and absence); the rest exercise
/// the cursor and walker counting paths, including an untranslatable
/// query and a constant-empty one.
const POOL: [&str; 18] = [
    "//A",
    "//_",
    "/S",
    "/_",
    "//_[@lex=u]",
    "//B[@lex=w]",
    "//A/B",
    "//A=>B",
    "//B<=A",
    "//A->B",
    "//B<-A",
    "//A[//B]",
    "//A[not(//B)]",
    "//_[not(//C)]",
    "//S//B",
    "//A[not(//B/C)]", // inner path too deep for the tables
    "//S/_[last()]",   // no SQL translation: walker-strategy counting
    "//ZZZ",           // matches nothing anywhere
];

/// How many [`POOL`] entries classify into the aggregate fast path.
const FAST: usize = 14;

fn service_over(corpus: &Corpus, shards: usize) -> Service {
    Service::with_config(
        corpus,
        ServiceConfig {
            shards,
            threads: 1,
            ..ServiceConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: ProptestConfig::cases_or_env(256),
        ..ProptestConfig::default()
    })]

    /// `count == eval().len()` at every layer that can count, and
    /// every budgeted sweep's chunks sum to the same number.
    #[test]
    fn count_equals_enumeration_length_at_every_layer(
        trees in arb_treebank(),
        qi in 0usize..POOL.len(),
        shards in 1usize..4,
        budget in 1usize..8,
    ) {
        let corpus = parse_str(&trees.join("\n")).expect("generated treebank parses");
        let q = POOL[qi];
        let ast = parse(q).unwrap();

        // Ground truth: the naive tree walker's enumeration.
        let walker = Walker::new(&corpus);
        let reference = walker.count(&ast) as u64;

        // Engine: streaming-cursor count, one-shot and budgeted.
        let engine = Engine::build(&corpus);
        if let Ok(n) = engine.count_ast(&ast) {
            prop_assert_eq!(n as u64, reference, "engine one-shot on {}", q);
            let mut total = 0u64;
            let mut ckpt = None;
            for _ in 0..10_000 {
                let (chunk, next) = engine.count_resume(&ast, ckpt, budget).unwrap();
                total += chunk;
                match next {
                    Some(c) => ckpt = Some(c),
                    None => break,
                }
            }
            prop_assert_eq!(total, reference, "engine budgeted sweep on {}", q);
        }

        // Service: enumeration, one-shot count, checkpointed sweep,
        // and the stateless token sweep all agree.
        let svc = service_over(&corpus, shards);
        prop_assert_eq!(svc.eval(q).unwrap().len() as u64, reference, "eval on {}", q);
        prop_assert_eq!(svc.count(q).unwrap() as u64, reference, "service count on {}", q);

        let mut total = 0u64;
        let mut ckpt = None;
        for _ in 0..10_000 {
            let (chunk, next) = svc.count_resume(q, ckpt, budget).unwrap();
            total += chunk;
            match next {
                Some(c) => ckpt = Some(c),
                None => break,
            }
        }
        prop_assert_eq!(total, reference, "service checkpointed sweep on {}", q);

        let mut token: Option<String> = None;
        let mut last = 0u64;
        for _ in 0..10_000 {
            let page = svc.count_token(q, token.as_deref(), budget).unwrap();
            prop_assert!(page.so_far >= last, "so_far is monotone on {}", q);
            last = page.so_far;
            match page.total {
                Some(t) => {
                    prop_assert_eq!(t, page.so_far, "final page reports the total on {}", q);
                    prop_assert!(page.token.is_none(), "no token after the total on {}", q);
                    break;
                }
                None => token = Some(page.token.expect("unfinished sweep mints a token")),
            }
        }
        prop_assert_eq!(last, reference, "token sweep on {}", q);
    }

    /// Queries that classify into the aggregate tables are answered
    /// correctly with **zero** per-shard evaluations and zero count-
    /// cache traffic: the tables alone carry the answer.
    #[test]
    fn fast_path_counts_without_any_evaluation(
        trees in arb_treebank(),
        qi in 0usize..FAST,
        shards in 1usize..4,
    ) {
        let corpus = parse_str(&trees.join("\n")).expect("generated treebank parses");
        let q = POOL[qi];
        let ast = parse(q).unwrap();
        let reference = Walker::new(&corpus).count(&ast) as u64;

        let svc = service_over(&corpus, shards);
        let compiled = svc.compile(q).unwrap();
        prop_assert!(
            compiled.fast.is_some() || compiled.statically_empty,
            "{} should classify into the aggregate tables", q
        );
        prop_assert_eq!(svc.count(q).unwrap() as u64, reference, "fast count on {}", q);
        let stats = svc.stats();
        prop_assert_eq!(stats.shard_evals, 0, "no evaluation ran on {}", q);
        prop_assert_eq!(stats.shard_count_misses, 0, "no counting cursor ran on {}", q);
        // Every shard was answered from the tables or pruned outright
        // (a shard missing a required symbol is skipped before the
        // tables are consulted); statically-empty queries skip both.
        if !compiled.statically_empty {
            prop_assert_eq!(
                stats.count_fast + stats.shards_pruned,
                stats.shards as u64,
                "every shard answered O(1) on {}", q
            );
        }
    }

    /// The aggregate tables stay consistent across `append_ptb`: after
    /// appending, every count (one-shot, fast, sweep) equals the count
    /// over a corpus parsed whole from the concatenated text.
    #[test]
    fn counts_stay_consistent_across_append(
        trees in arb_treebank(),
        extra in arb_treebank(),
        qi in 0usize..POOL.len(),
        shards in 1usize..4,
    ) {
        let corpus = parse_str(&trees.join("\n")).expect("generated treebank parses");
        let q = POOL[qi];
        let ast = parse(q).unwrap();

        let svc = service_over(&corpus, shards);
        svc.append_ptb(&extra.join("\n")).unwrap();

        let combined = parse_str(&format!("{}\n{}", trees.join("\n"), extra.join("\n")))
            .expect("combined treebank parses");
        let reference = Walker::new(&combined).count(&ast) as u64;
        prop_assert_eq!(svc.count(q).unwrap() as u64, reference, "post-append count on {}", q);
        prop_assert_eq!(svc.eval(q).unwrap().len() as u64, reference, "post-append eval on {}", q);
        prop_assert_eq!(svc.hist(q).unwrap().total, reference, "post-append hist on {}", q);
    }
}
