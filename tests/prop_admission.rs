//! The result caches' size/heat-aware admission policy, tested from
//! the outside through [`Service`]: a sweep of one-shot queries must
//! never evict the pinned-hot working set (it pays its own misses and
//! bumps `admission_rejects` instead), the service's counters are
//! monotone under any operation sequence, and the whole policy is
//! deterministic — the same operation sequence on a fresh service
//! reproduces the same cache behavior, counter for counter.
//!
//! `PROPTEST_CASES` scales the case count (CI's nightly sweep raises
//! it); the default here is the acceptance floor of 256.

use proptest::prelude::*;

use lpath::prelude::*;

/// A treebank whose vocabulary covers the hot pair (`A`, `B`) and
/// enough sweep tags that one-shot queries are *not* statically empty
/// (statically-empty queries never reach the caches at all).
fn corpus() -> Corpus {
    let mut text = String::from("( (S (A u) (B v) (A (B w))) )\n");
    for i in 0..16 {
        text.push_str(&format!("( (S (T{i} u) (A v)) )\n"));
    }
    parse_str(&text).unwrap()
}

fn service_with_capacity(corpus: &Corpus, capacity: usize) -> Service {
    Service::with_config(
        corpus,
        ServiceConfig {
            shards: 2,
            threads: 1,
            result_cache_capacity: capacity,
            ..ServiceConfig::default()
        },
    )
}

/// The admission policy's contract, deterministically: a hot working
/// set (re-read twice, the scan-resistance bar) survives a sweep of
/// 16 distinct one-shot queries through a capacity-2 cache; every
/// sweep insert is rejected and counted.
#[test]
fn sweep_never_evicts_the_pinned_hot_working_set() {
    let corpus = corpus();
    let svc = service_with_capacity(&corpus, 2);
    let hot = ["//A", "//B"];
    for q in hot {
        svc.eval(q).unwrap(); // miss: insert
    }
    for _ in 0..2 {
        for q in hot {
            svc.eval(q).unwrap(); // two re-reads: pinned hot
        }
    }

    let before = svc.stats();
    let sweeps: Vec<String> = (0..16).map(|i| format!("//T{i}")).collect();
    for q in &sweeps {
        svc.eval(q).unwrap();
    }
    let after_sweep = svc.stats();
    assert!(
        after_sweep.admission_rejects >= before.admission_rejects + sweeps.len() as u64,
        "every sweep insert against a fully-pinned cache is a rejection: {} -> {}",
        before.admission_rejects,
        after_sweep.admission_rejects
    );

    // The hot pair is still resident: re-reading it evaluates nothing.
    for q in hot {
        svc.eval(q).unwrap();
    }
    let after = svc.stats();
    assert_eq!(
        after.shard_evals, after_sweep.shard_evals,
        "hot entries must still answer from cache after the sweep"
    );
    assert_eq!(
        after.result_hits,
        after_sweep.result_hits + hot.len() as u64
    );
}

/// With room to spare (or no pinned residents), sweeps are admitted
/// normally — rejection is a *full-of-hot* verdict, not a default.
#[test]
fn cold_caches_admit_newcomers() {
    let corpus = corpus();
    let svc = service_with_capacity(&corpus, 8);
    let before = svc.stats();
    for i in 0..4 {
        svc.eval(&format!("//T{i}")).unwrap();
    }
    let after = svc.stats();
    assert_eq!(after.admission_rejects, before.admission_rejects);
    assert!(after.result_cache_entries >= 4);
}

/// The counters the admission policy feeds are observable through the
/// pool below; ops index into it.
const POOL: [&str; 8] = [
    "//A",
    "//B",
    "//A/B",
    "//A[not(//B)]",
    "//T0",
    "//T1",
    "//T2",
    "//S{//A$}",
];

fn stats_fingerprint(svc: &Service) -> Vec<u64> {
    let s = svc.stats();
    vec![
        s.queries,
        s.plan_hits,
        s.plan_misses,
        s.result_hits,
        s.result_misses,
        s.admission_rejects,
        s.shard_evals,
        s.shards_pruned,
        s.result_cache_entries as u64,
        s.shard_result_cache_entries as u64,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: ProptestConfig::cases_or_env(256),
        ..ProptestConfig::default()
    })]

    /// Same sequence, fresh service: identical behavior, counter for
    /// counter — admission decisions included. And on the way, every
    /// counter is monotone non-decreasing at every step.
    #[test]
    fn admission_is_deterministic_and_counters_monotone(
        ops in prop::collection::vec(0usize..POOL.len(), 1..24),
        capacity in 1usize..4,
    ) {
        let corpus = corpus();
        let a = service_with_capacity(&corpus, capacity);
        let b = service_with_capacity(&corpus, capacity);

        let mut last = stats_fingerprint(&a);
        for &op in &ops {
            a.eval(POOL[op]).unwrap();
            let now = stats_fingerprint(&a);
            // Counters (everything but the two trailing cache sizes)
            // never decrease.
            for (i, (prev, cur)) in last.iter().zip(&now).enumerate().take(8) {
                prop_assert!(
                    cur >= prev,
                    "counter {} decreased: {} -> {} after {}",
                    i, prev, cur, POOL[op]
                );
            }
            // Cache occupancy never exceeds the configured capacity.
            prop_assert!(now[8] <= capacity as u64);
            last = now;
        }
        for &op in &ops {
            b.eval(POOL[op]).unwrap();
        }
        prop_assert_eq!(
            stats_fingerprint(&a),
            stats_fingerprint(&b),
            "same op sequence must reproduce the same admission behavior"
        );
    }
}
