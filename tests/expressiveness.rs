//! Expressiveness tests — the empirical side of the paper's Lemma 3.1
//! and its related-work claims (Lai [16], Marx [21]).
//!
//! Two directions:
//!
//! 1. **Conditional XPath ⊇ LPath immediates** (positive): the
//!    conditional-axis constructions of `lpath-condxpath` coincide with
//!    the LPath axes `->`, `<-`, `=>`, `<=` on random trees.
//! 2. **Core XPath ⊉ LPath immediates** (negative): inexpressibility
//!    cannot be *proven* by testing, but it can be finitely refuted for
//!    bounded query sizes — every predicate-free Core XPath chain of up
//!    to three steps disagrees with `//V->NP` on a small witness
//!    family. (Predicates only filter a chain's result set; they cannot
//!    manufacture the adjacency relation that distinguishes the witness
//!    answers here, since each witness answer is tag-homogeneous.)

use lpath::prelude::*;
use lpath_condxpath::{
    core_xpath_queries_up_to, immediate_following, immediate_following_sibling,
    immediate_preceding, immediate_preceding_sibling, PathExpr,
};
use lpath_model::{label_tree, AxisRel, Tree};
use proptest::prelude::*;

// ---------------------------------------------------------------
// Random trees (same generator as prop_differential)
// ---------------------------------------------------------------

fn arb_subtree(depth: u32) -> BoxedStrategy<String> {
    let tag = prop_oneof![
        Just("A".to_string()),
        Just("B".to_string()),
        Just("C".to_string()),
    ];
    let word = prop_oneof![Just("u".to_string()), Just("v".to_string())];
    if depth == 0 {
        (tag, word).prop_map(|(t, w)| format!("({t} {w})")).boxed()
    } else {
        let leaf = (
            prop_oneof![
                Just("A".to_string()),
                Just("B".to_string()),
                Just("C".to_string()),
            ],
            word,
        )
            .prop_map(|(t, w)| format!("({t} {w})"));
        let inner = (tag, prop::collection::vec(arb_subtree(depth - 1), 1..4))
            .prop_map(|(t, kids)| format!("({t} {})", kids.join(" ")));
        prop_oneof![3 => leaf, 2 => inner].boxed()
    }
}

fn arb_corpus() -> impl Strategy<Value = Corpus> {
    prop::collection::vec(arb_subtree(3), 1..3).prop_map(|trees| {
        let text: String = trees.iter().map(|t| format!("( (S {t} {t}) )\n")).collect();
        parse_str(&text).expect("generated treebank parses")
    })
}

/// All `(context, target)` pairs of an axis relation over one tree,
/// via the interval labels (the walker's machinery).
fn axis_pairs(tree: &Tree, rel: AxisRel) -> Vec<(u32, u32)> {
    let labels = label_tree(tree);
    let mut out = Vec::new();
    for c in tree.preorder() {
        for x in tree.preorder() {
            if rel.holds(&labels[x.index()], &labels[c.index()]) {
                out.push((c.0, x.0));
            }
        }
    }
    out
}

/// All `(context, target)` pairs of a Conditional XPath expression.
fn expr_pairs(tree: &Tree, expr: &PathExpr) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for c in tree.preorder() {
        for x in expr.eval(tree, c) {
            out.push((c.0, x.0));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn conditional_xpath_equals_lpath_immediates(corpus in arb_corpus()) {
        let cases: [(PathExpr, AxisRel); 4] = [
            (immediate_following(), AxisRel::ImmediateFollowing),
            (immediate_preceding(), AxisRel::ImmediatePreceding),
            (immediate_following_sibling(), AxisRel::ImmediateFollowingSibling),
            (immediate_preceding_sibling(), AxisRel::ImmediatePrecedingSibling),
        ];
        for tree in corpus.trees() {
            for (expr, rel) in &cases {
                let mut want = axis_pairs(tree, *rel);
                let mut got = expr_pairs(tree, expr);
                want.sort_unstable();
                got.sort_unstable();
                prop_assert_eq!(got, want, "{:?}", rel);
            }
        }
    }

    #[test]
    fn closure_of_immediate_is_the_long_axis(corpus in arb_corpus()) {
        // Table 1: `-->` is the transitive closure of `->`, `==>` of
        // `=>` — verified through the conditional-axis closures.
        use lpath_condxpath::{following_sibling_via_closure, following_via_closure};
        for tree in corpus.trees() {
            let mut got = expr_pairs(tree, &following_via_closure());
            let mut want = axis_pairs(tree, AxisRel::Following);
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(got, want, "-> closure vs -->");
            let mut got = expr_pairs(tree, &following_sibling_via_closure());
            let mut want = axis_pairs(tree, AxisRel::FollowingSibling);
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(got, want, "=> closure vs ==>");
        }
    }
}

// ---------------------------------------------------------------
// The finite Lemma 3.1 refutation
// ---------------------------------------------------------------

/// Witness treebank: small trees whose `//V->NP` answers separate
/// adjacency from every bounded Core XPath chain.
const WITNESSES: &str = "\
( (S (V a) (NP b) (NP c)) )
( (S (A (V a)) (NP b) (NP c)) )
( (S (V a) (B (NP b) (NP c))) )
( (S (NP a) (V b) (NP c) (NP d)) )
( (S (NP I) (VP (V saw) (NP (NP (Det the) (Adj old) (N man)) \
(PP (Prep with) (NP (Det a) (N dog))))) (N today)) )";

#[test]
fn no_small_core_xpath_chain_expresses_immediate_following() {
    let corpus = parse_str(WITNESSES).unwrap();
    let walker = Walker::new(&corpus);
    let target = walker.eval(&parse("//V->NP").unwrap());
    assert!(!target.is_empty(), "witnesses must exercise the axis");

    let mut agreeing: Vec<String> = Vec::new();
    let mut tried = 0usize;
    for len in 1..=3 {
        for chain in core_xpath_queries_up_to(len, &["V", "NP", "S"]) {
            // The first step always renders as `//test`; skip chains
            // whose nominal first axis differs to avoid re-testing the
            // same rendered query.
            if chain.steps[0].0 != lpath_syntax::Axis::Descendant {
                continue;
            }
            let q = chain.to_query();
            let ast = parse(&q).unwrap_or_else(|e| panic!("{q}: {e}"));
            tried += 1;
            if walker.eval(&ast) == target {
                agreeing.push(q);
            }
        }
    }
    // 4 first-step tests × 44 axis-test pairs per later step, lengths
    // 1–3: 4 + 176 + 7,744 = 7,924 distinct rendered chains.
    assert_eq!(tried, 7_924, "enumeration size changed unexpectedly");
    assert!(
        agreeing.is_empty(),
        "Core XPath chains unexpectedly matched //V->NP: {agreeing:?}"
    );
}

#[test]
fn conditional_xpath_does_express_it_on_the_witnesses() {
    // The positive counterpart on the same witnesses: compose the
    // conditional-axis expression with an NP filter and compare.
    let corpus = parse_str(WITNESSES).unwrap();
    let walker = Walker::new(&corpus);
    let target = walker.eval(&parse("//V->NP").unwrap());

    let mut got: Vec<(u32, NodeId)> = Vec::new();
    for (tid, tree) in corpus.trees().iter().enumerate() {
        let v = corpus.interner().get("V").unwrap();
        let np = corpus.interner().get("NP").unwrap();
        for c in tree.preorder() {
            if tree.node(c).name != v {
                continue;
            }
            for x in immediate_following().eval(tree, c) {
                if tree.node(x).name == np {
                    got.push((tid as u32, x));
                }
            }
        }
    }
    got.sort_unstable();
    got.dedup();
    assert_eq!(got, target);
}

#[test]
fn paper_2_2_3_edge_alignment_demonstration() {
    // §2.2.3: the putative XPath //VP//_[last()][self::NP] returns ∅
    // on Figure 1 while //VP{//NP$} returns two nodes — position()
    // refers to intermediate-result order, not tree order.
    let corpus = parse_str(
        "( (S (NP I) (VP (V saw) (NP (NP (Det the) (Adj old) (N man)) \
         (PP (Prep with) (NP (Det a) (N dog))))) (N today)) )",
    )
    .unwrap();
    let walker = Walker::new(&corpus);
    assert_eq!(
        walker.count(&parse("//VP//_[last()][self::NP]").unwrap()),
        0
    );
    assert_eq!(walker.count(&parse("//VP{//NP$}").unwrap()), 2);
}
