//! Pagination invariants, property-tested across every query layer.
//!
//! The limit-aware pipeline (first-rows planning, adaptive tree-id
//! chunking, shard-level page pushdown) must never change *what* a
//! query answers — only how much work a page costs. The invariant that
//! pins this down: for any corpus, query, page size and offset,
//! concatenating pages is **byte-identical** to the full sorted result,
//! on the walker, the engine (both optimization goals) and the sharded
//! service alike.
//!
//! `PROPTEST_CASES` scales the case count (CI's nightly sweep raises
//! it); the default here is the acceptance floor of 256.

use proptest::prelude::*;

use lpath::prelude::*;
use lpath_relstore::{OptGoal, PlannerConfig};
use lpath_service::ResultSet;

mod fixtures;

// ---------------------------------------------------------------
// Random corpora (bracketed text through the real parser)
// ---------------------------------------------------------------

/// A random subtree of bounded depth/width in bracketed form.
fn arb_subtree(depth: u32) -> BoxedStrategy<String> {
    let tag = prop_oneof![
        Just("A".to_string()),
        Just("B".to_string()),
        Just("C".to_string()),
    ];
    let word = prop_oneof![
        Just("u".to_string()),
        Just("v".to_string()),
        Just("w".to_string()),
    ];
    if depth == 0 {
        (tag, word).prop_map(|(t, w)| format!("({t} {w})")).boxed()
    } else {
        let leaf = (
            prop_oneof![
                Just("A".to_string()),
                Just("B".to_string()),
                Just("C".to_string()),
            ],
            word,
        )
            .prop_map(|(t, w)| format!("({t} {w})"));
        let inner = (tag, prop::collection::vec(arb_subtree(depth - 1), 1..3))
            .prop_map(|(t, kids)| format!("({t} {})", kids.join(" ")));
        prop_oneof![2 => leaf, 2 => inner].boxed()
    }
}

/// A corpus of one to five random trees.
fn arb_corpus() -> impl Strategy<Value = Corpus> {
    prop::collection::vec(arb_subtree(2), 1..6).prop_map(|trees| {
        let text: String = trees.iter().map(|t| format!("( (S {t}) )\n")).collect();
        parse_str(&text).expect("generated treebank parses")
    })
}

/// Queries spanning the paths that matter for pagination: dense and
/// sparse anchors, joins, scopes, negation, attribute filters, the
/// walker fallback (`last()`), and queries matching nothing.
const POOL: [&str; 10] = [
    "//A",
    "//_",
    "//S//B",
    "//A->B",
    "//A[not(//B)]",
    "//S{//A$}",
    "//_[@lex=u]",
    "//B[//_[@lex=v]]",
    "//S/_[last()]", // no SQL translation: exercises the walker fallback
    "//ZZZ",         // matches nothing anywhere
];

/// Concatenate pages of size `page` until a short page proves
/// exhaustion, through `fetch(offset, limit)`.
fn paginate(page: usize, mut fetch: impl FnMut(usize, usize) -> Vec<(u32, NodeId)>) -> ResultSet {
    let mut out = Vec::new();
    loop {
        let chunk = fetch(out.len(), page);
        let short = chunk.len() < page;
        out.extend(chunk);
        if short {
            return out;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: ProptestConfig::cases_or_env(256),
        ..ProptestConfig::default()
    })]

    #[test]
    fn page_concatenation_is_byte_identical_to_the_full_result(
        corpus in arb_corpus(),
        qi in 0usize..POOL.len(),
        page in 1usize..6,
        offset in 0usize..8,
        limit in 0usize..8,
        shards in 1usize..5,
    ) {
        let q = POOL[qi];
        let ast = parse(q).unwrap();
        let engine = Engine::build(&corpus);
        let walker = Walker::new(&corpus);
        let service = Service::with_config(
            &corpus,
            ServiceConfig { shards, threads: 1, ..ServiceConfig::default() },
        );

        // The reference: the engine's full document-ordered result
        // (itself pinned to the walker by the differential suite); for
        // walker-only queries the walker is the reference.
        let full = match engine.query_ast(&ast) {
            Ok(rows) => rows,
            Err(_) => walker.eval(&ast),
        };

        // Concatenated pages reproduce the full result exactly.
        let via_walker = paginate(page, |o, l| walker.eval_limit(&ast, o, l));
        prop_assert_eq!(&via_walker, &full, "walker pages on {}", q);
        if engine.query_ast(&ast).is_ok() {
            let via_engine = paginate(page, |o, l| engine.query_limit_ast(&ast, o, l).unwrap());
            prop_assert_eq!(&via_engine, &full, "engine pages on {}", q);
        }
        let via_service = paginate(page, |o, l| service.eval_page(q, o, l).unwrap());
        prop_assert_eq!(&via_service, &full, "service pages at {} shards on {}", shards, q);

        // Any single (offset, limit) window equals the full-result
        // slice, on every layer — including offsets past the end.
        let want: ResultSet = full.iter().skip(offset).take(limit).copied().collect();
        prop_assert_eq!(&walker.eval_limit(&ast, offset, limit), &want, "walker {}", q);
        if engine.query_ast(&ast).is_ok() {
            prop_assert_eq!(
                &engine.query_limit_ast(&ast, offset, limit).unwrap(),
                &want,
                "engine {}/{} on {}", offset, limit, q
            );
        }
        prop_assert_eq!(
            &service.eval_page(q, offset, limit).unwrap(),
            &want,
            "service {}/{} on {}", offset, limit, q
        );
    }

    #[test]
    fn first_rows_and_all_rows_plans_answer_identically(
        corpus in arb_corpus(),
        qi in 0usize..POOL.len(),
        k in 1usize..12,
    ) {
        // The optimization goal may pick a different join order; it
        // must never change the result set — full or paged.
        let q = POOL[qi];
        let ast = parse(q).unwrap();
        let all_rows = Engine::build(&corpus);
        let first_rows = Engine::with_config(
            &corpus,
            PlannerConfig { goal: OptGoal::FirstRows(k), ..Default::default() },
        );
        let (a, b) = (all_rows.query_ast(&ast), first_rows.query_ast(&ast));
        match (a, b) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(&a, &b, "goals disagree on {}", q);
                for goal in [OptGoal::AllRows, OptGoal::FirstRows(k)] {
                    let page = all_rows.query_limit_with(&ast, 0, k, goal).unwrap();
                    prop_assert_eq!(
                        &page[..],
                        &a[..k.min(a.len())],
                        "page under {:?} on {}", goal, q
                    );
                }
            }
            (Err(_), Err(_)) => {} // walker-only query: no plans to compare
            (a, b) => prop_assert!(false, "{}: one goal errored: {:?} vs {:?}", q, a.is_ok(), b.is_ok()),
        }
    }
}

// ---------------------------------------------------------------
// The 23 evaluation queries, deterministically
// ---------------------------------------------------------------

#[test]
fn evaluation_queries_paginate_identically_across_goals_and_layers() {
    let corpus = generate(&GenConfig::wsj(60).with_seed(11));
    let engine = Engine::build(&corpus);
    let service = Service::with_config(
        &corpus,
        ServiceConfig {
            shards: 4,
            ..ServiceConfig::default()
        },
    );
    for case in fixtures::eval_cases() {
        let ast = parse(case.lpath).unwrap();
        let full = engine.query(case.lpath).unwrap();
        for (offset, limit) in [(0, 1), (0, 10), (7, 10), (full.len(), 5)] {
            let want: ResultSet = full.iter().skip(offset).take(limit).copied().collect();
            for goal in [
                OptGoal::AllRows,
                OptGoal::FirstRows(offset.saturating_add(limit)),
            ] {
                assert_eq!(
                    engine.query_limit_with(&ast, offset, limit, goal).unwrap(),
                    want,
                    "Q{} {offset}/{limit} under {goal:?}",
                    case.id
                );
            }
            assert_eq!(
                service.eval_page(case.lpath, offset, limit).unwrap(),
                want,
                "Q{} {offset}/{limit} service",
                case.id
            );
        }
    }
}
