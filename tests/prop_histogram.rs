//! Histogram invariants, property-tested against the enumeration.
//!
//! A [`lpath_service::QueryHistogram`] is three views of one match
//! set, so they must reconcile exactly for any corpus, query, and
//! sharding: (1) the per-tree and per-label breakdowns each sum to
//! `total`, which equals `eval().len()`; (2) the per-tree vector *is*
//! the run-length encoding of the enumeration's tree column — right
//! trees, right counts, ascending, no zero entries — and per-label
//! entries match a recount of the enumerated nodes' labels; (3) the
//! histogram is a pure function of corpus content: one shard vs many
//! shards agree entry-for-entry, and appending trees produces exactly
//! the histogram of the concatenated corpus (the aggregate tables of
//! untouched shards compose with the rebuilt tail's).
//!
//! `PROPTEST_CASES` scales the case count (CI's nightly sweep raises
//! it); the default here is the acceptance floor of 256.

use std::collections::HashMap;

use proptest::prelude::*;

use lpath::prelude::*;
use lpath_service::QueryHistogram;

/// A random subtree of bounded depth/width in bracketed form.
fn arb_subtree(depth: u32) -> BoxedStrategy<String> {
    let tag = prop_oneof![
        Just("A".to_string()),
        Just("B".to_string()),
        Just("C".to_string()),
    ];
    let word = prop_oneof![
        Just("u".to_string()),
        Just("v".to_string()),
        Just("w".to_string()),
    ];
    if depth == 0 {
        (tag, word).prop_map(|(t, w)| format!("({t} {w})")).boxed()
    } else {
        let leaf = (
            prop_oneof![
                Just("A".to_string()),
                Just("B".to_string()),
                Just("C".to_string()),
            ],
            word,
        )
            .prop_map(|(t, w)| format!("({t} {w})"));
        let inner = (tag, prop::collection::vec(arb_subtree(depth - 1), 1..3))
            .prop_map(|(t, kids)| format!("({t} {})", kids.join(" ")));
        prop_oneof![2 => leaf, 2 => inner].boxed()
    }
}

/// Bracketed text for one to five random trees.
fn arb_treebank() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(arb_subtree(2), 1..6)
        .prop_map(|trees| trees.iter().map(|t| format!("( (S {t}) )")).collect())
}

/// Both histogram paths: the first four take the per-tree aggregate
/// fast path, the rest fall back to enumeration (including a fast-
/// classified shape whose histogram still needs rows, a walker-only
/// query, and an empty one).
const POOL: [&str; 10] = [
    "//A",
    "//_",
    "/S",
    "/_",
    "//_[@lex=u]",
    "//A/B",
    "//S//B",
    "//A[not(//B)]",
    "//S/_[last()]",
    "//ZZZ",
];

fn service_over(corpus: &Corpus, shards: usize) -> Service {
    Service::with_config(
        corpus,
        ServiceConfig {
            shards,
            threads: 1,
            ..ServiceConfig::default()
        },
    )
}

/// The histogram recomputed naively from an enumeration.
fn reference_hist(corpus: &Corpus, rows: &[(u32, NodeId)]) -> QueryHistogram {
    let mut h = QueryHistogram {
        total: rows.len() as u64,
        per_tree: Vec::new(),
        per_label: Vec::new(),
    };
    let mut labels: HashMap<String, u64> = HashMap::new();
    for &(tid, node) in rows {
        match h.per_tree.last_mut() {
            Some(e) if e.0 == tid => e.1 += 1,
            _ => h.per_tree.push((tid, 1)),
        }
        let tree = &corpus.trees()[tid as usize];
        *labels
            .entry(corpus.resolve(tree.node(node).name).to_string())
            .or_default() += 1;
    }
    h.per_label = labels.into_iter().collect();
    h.per_label.sort();
    h
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: ProptestConfig::cases_or_env(256),
        ..ProptestConfig::default()
    })]

    /// The histogram is exactly the run-length view of the
    /// enumeration: per-tree and per-label sums hit `total`, entries
    /// match a naive recount, tree ids ascend with no zero runs.
    #[test]
    fn histogram_is_the_run_length_view_of_the_enumeration(
        trees in arb_treebank(),
        qi in 0usize..POOL.len(),
        shards in 1usize..4,
    ) {
        let corpus = parse_str(&trees.join("\n")).expect("generated treebank parses");
        let q = POOL[qi];
        let svc = service_over(&corpus, shards);
        let rows = svc.eval(q).unwrap();
        let h = svc.hist(q).unwrap();
        let want = reference_hist(&corpus, &rows);

        prop_assert_eq!(h.total, want.total, "total on {}", q);
        let tree_sum: u64 = h.per_tree.iter().map(|&(_, n)| n).sum();
        let label_sum: u64 = h.per_label.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(tree_sum, h.total, "per-tree sum on {}", q);
        prop_assert_eq!(label_sum, h.total, "per-label sum on {}", q);
        prop_assert!(
            h.per_tree.windows(2).all(|w| w[0].0 < w[1].0),
            "tree ids ascend on {}", q
        );
        prop_assert!(
            h.per_tree.iter().all(|&(_, n)| n > 0),
            "no zero runs on {}", q
        );
        prop_assert_eq!(&h.per_tree, &want.per_tree, "per-tree entries on {}", q);
        prop_assert_eq!(&h.per_label, &want.per_label, "per-label entries on {}", q);
    }

    /// One shard vs N shards: the same corpus produces the identical
    /// histogram — the per-shard tables concatenate seamlessly.
    #[test]
    fn histograms_are_invariant_under_sharding(
        trees in arb_treebank(),
        qi in 0usize..POOL.len(),
        shards in 2usize..5,
    ) {
        let corpus = parse_str(&trees.join("\n")).expect("generated treebank parses");
        let q = POOL[qi];
        let one = service_over(&corpus, 1).hist(q).unwrap();
        let many = service_over(&corpus, shards).hist(q).unwrap();
        prop_assert_eq!(one, many, "1 vs {} shards on {}", shards, q);
    }

    /// Appending trees yields exactly the histogram of the
    /// concatenated corpus: untouched shards' tables compose with the
    /// rebuilt tail's, with no double counting and no gaps.
    #[test]
    fn histograms_stay_consistent_across_append(
        trees in arb_treebank(),
        extra in arb_treebank(),
        qi in 0usize..POOL.len(),
        shards in 1usize..4,
    ) {
        let corpus = parse_str(&trees.join("\n")).expect("generated treebank parses");
        let q = POOL[qi];
        let svc = service_over(&corpus, shards);
        svc.append_ptb(&extra.join("\n")).unwrap();

        let combined = parse_str(&format!("{}\n{}", trees.join("\n"), extra.join("\n")))
            .expect("combined treebank parses");
        let want = service_over(&combined, 1).hist(q).unwrap();
        prop_assert_eq!(svc.hist(q).unwrap(), want, "post-append histogram on {}", q);
    }
}
