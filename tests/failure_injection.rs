//! Failure injection: every parser and decoder in the workspace must
//! reject malformed input with an error — never a panic — and the
//! engines must behave sanely on degenerate corpora.

use lpath::prelude::*;
use proptest::prelude::*;

// ---------------------------------------------------------------
// Parser fuzzing: arbitrary input never panics
// ---------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn ptb_parser_never_panics(input in "\\PC{0,80}") {
        let _ = parse_str(&input);
    }

    #[test]
    fn ptb_parser_never_panics_on_paren_soup(
        input in prop::collection::vec(
            prop_oneof![Just('('), Just(')'), Just('A'), Just(' '), Just('\n')],
            0..120,
        )
    ) {
        let s: String = input.into_iter().collect();
        let _ = parse_str(&s);
    }

    #[test]
    fn xml_parser_never_panics(input in "\\PC{0,80}") {
        let _ = lpath::model::xml::parse_str(&input);
    }

    #[test]
    fn xml_parser_never_panics_on_markup_soup(
        input in prop::collection::vec(
            prop_oneof![
                Just("<"), Just(">"), Just("</"), Just("/>"), Just("S"),
                Just("\""), Just("="), Just("&"), Just(";"), Just(" "),
                Just("<!--"), Just("-->"), Just("<?"), Just("?>"),
            ],
            0..60,
        )
    ) {
        let s: String = input.concat();
        let _ = lpath::model::xml::parse_str(&s);
    }

    #[test]
    fn lpath_parser_never_panics(input in "\\PC{0,60}") {
        let _ = parse(&input);
    }

    #[test]
    fn lpath_parser_never_panics_on_operator_soup(
        input in prop::collection::vec(
            prop_oneof![
                Just("//"), Just("/"), Just("\\"), Just("->"), Just("-->"),
                Just("=>"), Just("<="), Just("<-"), Just("{"), Just("}"),
                Just("["), Just("]"), Just("("), Just(")"), Just("^"),
                Just("$"), Just("*"), Just("+"), Just("@"), Just("NP"),
                Just("_"), Just("'"), Just("not"), Just("count"),
                Just("contains"), Just(","), Just("="),
            ],
            0..40,
        )
    ) {
        let s: String = input.concat();
        let _ = parse(&s);
    }

    #[test]
    fn xpath_parser_never_panics(input in "\\PC{0,60}") {
        let _ = lpath::xpath::parse_xpath(&input);
    }

    // -----------------------------------------------------------
    // Binary image corruption
    // -----------------------------------------------------------

    #[test]
    fn truncated_tgrep_images_error_not_panic(cut in 0usize..2000) {
        use lpath_tgrep::binfmt::{build_image, decode, encode};
        let corpus = parse_str(
            "( (S (NP I) (VP (V saw) (NP it))) )\n( (S (A a) (B b)) )",
        ).unwrap();
        let bytes = encode(&build_image(&corpus));
        let cut = cut.min(bytes.len());
        if cut < bytes.len() {
            // Any strict prefix must be rejected.
            prop_assert!(decode(&bytes[..cut]).is_err(), "prefix {cut} accepted");
        }
    }

    #[test]
    fn bitflipped_tgrep_images_never_panic(
        pos in 0usize..2000,
        mask in 1u8..=255,
    ) {
        use lpath_tgrep::binfmt::{build_image, decode, encode};
        let corpus = parse_str(
            "( (S (NP I) (VP (V saw) (NP it))) )\n( (S (A a) (B b)) )",
        ).unwrap();
        let mut bytes = encode(&build_image(&corpus));
        let pos = pos % bytes.len();
        bytes[pos] ^= mask;
        // Decode may succeed (the flip can hit don't-care bits) or
        // error — but must not panic or hang.
        let _ = decode(&bytes);
    }
}

// ---------------------------------------------------------------
// Degenerate corpora
// ---------------------------------------------------------------

#[test]
fn empty_corpus_answers_every_query_with_zero() {
    let corpus = Corpus::new();
    let engine = Engine::build(&corpus);
    let walker = Walker::new(&corpus);
    for q in QUERIES {
        assert_eq!(engine.count(q.lpath).unwrap(), 0, "Q{}", q.id);
        assert_eq!(walker.count(&parse(q.lpath).unwrap()), 0, "Q{}", q.id);
    }
    // The baselines too.
    let tgrep = TgrepEngine::build(&corpus);
    assert_eq!(tgrep.count(TGREP_QUERIES[0]).unwrap(), 0);
    let cs = CsEngine::new(&corpus);
    assert_eq!(cs.count(CS_QUERIES[0]).unwrap(), 0);
}

#[test]
fn single_token_trees_work_everywhere() {
    // The smallest legal tree: a root with one terminal child... and
    // the even smaller root-only tree via direct construction.
    let corpus = parse_str("( (S (X w)) )\n( (S (Y y)) )").unwrap();
    let engine = Engine::build(&corpus);
    let walker = Walker::new(&corpus);
    for (q, want) in [
        ("//X", 1),
        ("//_", 4),
        ("//X->Y", 0), // different trees: nothing follows across trees
        ("//S{/X$}", 1),
        ("//^X", 1),
        ("//_[@lex=w]", 1),
    ] {
        assert_eq!(engine.count(q).unwrap(), want, "{q}");
        assert_eq!(walker.count(&parse(q).unwrap()), want, "{q}");
    }
}

#[test]
fn deep_unary_chains_label_and_query_correctly() {
    // Unary chains are the labeling scheme's hard case (identical
    // intervals, disambiguated by depth alone).
    let mut src = String::from("( (A0 ");
    for i in 1..40 {
        src.push_str(&format!("(A{i} "));
    }
    src.push_str("leaf");
    src.push_str(&")".repeat(40));
    src.push_str(" )");
    let corpus = parse_str(&src).unwrap();
    let engine = Engine::build(&corpus);
    let walker = Walker::new(&corpus);
    for (q, want) in [
        ("//A39", 1usize),
        ("//A0//A39", 1),
        ("//A39\\\\A0", 1), // ancestor
        ("//A5/A6", 1),
        ("//A6\\A5", 1),
        ("//A5->_", 0), // nothing follows in a one-leaf tree
        ("//^A17$", 1), // every chain node spans the whole tree
    ] {
        assert_eq!(engine.count(q).unwrap(), want, "{q}");
        assert_eq!(walker.count(&parse(q).unwrap()), want, "{q}");
    }
}

#[test]
fn wide_flat_trees_stress_sibling_axes() {
    let kids: String = (0..200).map(|i| format!("(T{} w{i}) ", i % 7)).collect();
    let corpus = parse_str(&format!("( (S {kids}) )")).unwrap();
    let engine = Engine::build(&corpus);
    let walker = Walker::new(&corpus);
    for q in ["//T0=>T1", "//T0==>T5", "//T3<=T2", "//T6<==_", "//T0->T1"] {
        assert_eq!(
            engine.count(q).unwrap(),
            walker.count(&parse(q).unwrap()),
            "{q}"
        );
    }
    // 200 children: sibling adjacency count is known — pairs (i, i+1)
    // with i % 7 == 0 and i + 1 < 200, i.e. i ∈ {0, 7, …, 196}: 29.
    assert_eq!(engine.count("//T0=>T1").unwrap(), 29);
}

#[test]
fn xml_error_offsets_are_within_input() {
    use lpath::model::xml;
    for bad in ["<S>text</S>", "<S", "<S></T>", "<S x='1' x='2'/>"] {
        match xml::parse_str(bad) {
            Err(lpath::model::ModelError::Xml { offset, .. }) => {
                assert!(offset <= bad.len(), "{bad}: offset {offset}");
            }
            other => panic!("{bad}: expected Xml error, got {other:?}"),
        }
    }
}

#[test]
fn append_recounts_only_the_tail_shard_and_invalidates_stale_counts() {
    // Three shards over six trees, every shard containing an NP so no
    // count is pruned away. `//S//NP` is deliberately *not* aggregate-
    // tabulated (grandparent axis), so counting goes through the
    // per-shard counting cursor and its generation-scoped cache —
    // the paths this test is about.
    let src: String = (0..6)
        .map(|i| format!("( (S (NP (NN w{i})) (VP (VBD ran))) )\n"))
        .collect();
    let corpus = parse_str(&src).unwrap();
    let svc = Service::with_config(
        &corpus,
        ServiceConfig {
            shards: 3,
            threads: 1,
            ..ServiceConfig::default()
        },
    );
    assert_eq!(svc.count("//S//NP").unwrap(), 6);
    let s = svc.stats();
    assert_eq!((s.shard_count_misses, s.shard_count_hits), (3, 0));

    // Append one tree: the corpus-level count entry is generation-
    // invalidated, but of the per-shard counts only the rebuilt tail's
    // is stale — exactly one shard is recounted.
    svc.append_ptb("( (S (NP (NN extra)) (VP (VBD sat))) )")
        .unwrap();
    assert_eq!(svc.count("//S//NP").unwrap(), 7);
    let s = svc.stats();
    assert_eq!(
        (s.shard_count_misses, s.shard_count_hits),
        (4, 2),
        "only the tail may recount: {s:?}"
    );

    // A failed append must not disturb the cached counts either.
    assert!(svc.append_ptb("( (S (NP broken").is_err());
    assert_eq!(svc.count("//S//NP").unwrap(), 7);
    let s = svc.stats();
    assert_eq!(s.shard_count_misses, 4, "failed append recounted: {s:?}");

    // A swap rebuilds every shard: every per-shard count is stale.
    svc.swap_corpus(&corpus);
    assert_eq!(svc.count("//S//NP").unwrap(), 6);
    let s = svc.stats();
    assert_eq!((s.shard_count_misses, s.shard_count_hits), (7, 2));
}

#[test]
fn editor_handles_stay_invalid_after_delete() {
    use lpath::model::TreeEditor;
    let corpus = parse_str("( (S (A (B x) (C y)) (D z)) )").unwrap();
    let mut ed = TreeEditor::new(&corpus.trees()[0]);
    let a = ed.node_ref(NodeId(1));
    let b = ed.node_ref(NodeId(2));
    ed.delete(a).unwrap();
    // Both the deleted node and its descendants reject every operation.
    assert!(ed.children(a).is_err());
    assert!(ed.children(b).is_err());
    assert!(ed.splice_out(b).is_err());
    assert!(ed.delete(b).is_err());
    // The tree still finishes and queries.
    let tree = ed.finish().unwrap();
    assert_eq!(tree.len(), 2); // S, D
}

#[test]
fn batch_abort_fault_point_fails_cleanly_and_retries() {
    // The batch-abort fault point: an armed abort fails every
    // unresolved member of the next executing batch with a typed
    // error — no partial results, no cache writes — and the very next
    // batch (nothing re-armed) succeeds in full, proving the abort
    // left no residue behind.
    let src: String = (0..6)
        .map(|i| format!("( (S (NP (NN w{i})) (VP (VBD ran))) )\n"))
        .collect();
    let corpus = parse_str(&src).unwrap();
    let svc = Service::with_config(
        &corpus,
        ServiceConfig {
            shards: 2,
            threads: 1,
            ..ServiceConfig::default()
        },
    );
    // Pre-cache one member: already-answered members survive an abort.
    let cached = svc.eval("//NP").unwrap();
    let entries_before = svc.stats().result_cache_entries;

    svc.inject_multi_abort();
    let texts = ["//NP", "//VP", "//VBD->NP"];
    let results = svc.eval_multi(&texts);
    assert_eq!(
        *results[0].as_ref().unwrap().clone(),
        *cached,
        "cached member answered despite the abort"
    );
    for (q, r) in texts.iter().zip(&results).skip(1) {
        let err = r.as_ref().unwrap_err();
        assert!(
            matches!(err, lpath::service::ServiceError::Aborted),
            "{q}: expected the abort error, got {err}"
        );
    }
    assert_eq!(
        svc.stats().result_cache_entries,
        entries_before,
        "an aborted batch must not write caches"
    );

    // One-shot: the retry executes normally and matches fresh solo
    // evals.
    let retry = svc.eval_multi(&texts);
    let oracle = Service::with_config(
        &corpus,
        ServiceConfig {
            shards: 2,
            threads: 1,
            ..ServiceConfig::default()
        },
    );
    for (q, r) in texts.iter().zip(&retry) {
        assert_eq!(
            *r.as_ref().unwrap().clone(),
            *oracle.eval(q).unwrap(),
            "{q}: retry after abort"
        );
    }
}
