//! Resumable-execution invariants, property-tested across every layer.
//!
//! Suspending an enumeration and resuming it later must be
//! *unobservable* in the output: for any corpus, query and split
//! schedule, the concatenation of resumed chunks is byte-identical to
//! the uninterrupted enumeration — on the relstore cursor (pipeline
//! order), the walker, the engine (document order) and the sharded
//! service's checkpointed page path alike. On top of that, cached
//! prefixes extended *across* `append_ptb` must agree with a fresh
//! evaluation of the grown corpus.
//!
//! `PROPTEST_CASES` scales the case count (CI's nightly sweep raises
//! it); the default here is the acceptance floor of 256.

use proptest::prelude::*;

use lpath::prelude::*;
use lpath_service::ResultSet;

mod fixtures;

/// A random subtree of bounded depth/width in bracketed form.
fn arb_subtree(depth: u32) -> BoxedStrategy<String> {
    let tag = prop_oneof![
        Just("A".to_string()),
        Just("B".to_string()),
        Just("C".to_string()),
    ];
    let word = prop_oneof![
        Just("u".to_string()),
        Just("v".to_string()),
        Just("w".to_string()),
    ];
    if depth == 0 {
        (tag, word).prop_map(|(t, w)| format!("({t} {w})")).boxed()
    } else {
        let leaf = (
            prop_oneof![
                Just("A".to_string()),
                Just("B".to_string()),
                Just("C".to_string()),
            ],
            word,
        )
            .prop_map(|(t, w)| format!("({t} {w})"));
        let inner = (tag, prop::collection::vec(arb_subtree(depth - 1), 1..3))
            .prop_map(|(t, kids)| format!("({t} {})", kids.join(" ")));
        prop_oneof![2 => leaf, 2 => inner].boxed()
    }
}

/// Bracketed text for one to five random trees (kept as text so the
/// append tests can split it into an initial corpus and a tail batch).
fn arb_treebank() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(arb_subtree(2), 1..6)
        .prop_map(|trees| trees.iter().map(|t| format!("( (S {t}) )")).collect())
}

/// Queries spanning the resumable paths: streamable name anchors,
/// chunked fallbacks (joins, negation), attribute filters, the walker
/// fallback, and queries matching nothing.
const POOL: [&str; 9] = [
    "//A",
    "//_",
    "//S//B",
    "//A->B",
    "//A[not(//B)]",
    "//_[@lex=u]",
    "//B[//_[@lex=v]]",
    "//S/_[last()]", // no SQL translation: exercises the walker fallback
    "//ZZZ",         // matches nothing anywhere
];

proptest! {
    #![proptest_config(ProptestConfig {
        cases: ProptestConfig::cases_or_env(256),
        ..ProptestConfig::default()
    })]

    #[test]
    fn engine_and_walker_resume_is_unobservable(
        trees in arb_treebank(),
        qi in 0usize..POOL.len(),
        chunk in 1usize..5,
        split in 0usize..12,
    ) {
        let corpus = parse_str(&trees.join("\n")).expect("generated treebank parses");
        let q = POOL[qi];
        let ast = parse(q).unwrap();
        let engine = Engine::build(&corpus);
        let walker = Walker::new(&corpus);
        let full = match engine.query_ast(&ast) {
            Ok(rows) => rows,
            Err(_) => walker.eval(&ast),
        };

        // Walker: split at an arbitrary boundary, then drain.
        let (head, ckpt) = walker.eval_resume(&ast, None, split.max(1));
        let cut = split.max(1).min(full.len());
        prop_assert_eq!(&head[..], &full[..cut], "walker head on {}", q);
        if let Some(ckpt) = ckpt {
            let (tail, end) = walker.eval_resume(&ast, Some(ckpt), usize::MAX);
            prop_assert_eq!(&tail[..], &full[cut..], "walker tail on {}", q);
            prop_assert!(end.is_none());
        } else {
            prop_assert_eq!(cut, full.len(), "walker early None on {}", q);
        }

        // Walker: fixed-size chunks to exhaustion.
        let mut got: ResultSet = Vec::new();
        let mut ckpt = None;
        loop {
            let (rows, next) = walker.eval_resume(&ast, ckpt, chunk);
            got.extend(rows);
            match next {
                Some(c) => ckpt = Some(c),
                None => break,
            }
        }
        prop_assert_eq!(&got, &full, "walker chunked sweep on {}", q);

        // Engine (translatable queries): same two schedules.
        if engine.query_ast(&ast).is_ok() {
            let (head, ckpt) = engine.query_resume(&ast, None, split.max(1)).unwrap();
            prop_assert_eq!(&head[..], &full[..cut], "engine head on {}", q);
            if let Some(ckpt) = ckpt {
                let (tail, end) = engine.query_resume(&ast, Some(ckpt), usize::MAX).unwrap();
                prop_assert_eq!(&tail[..], &full[cut..], "engine tail on {}", q);
                prop_assert!(end.is_none());
            } else {
                prop_assert_eq!(cut, full.len(), "engine early None on {}", q);
            }
            let mut got: ResultSet = Vec::new();
            let mut ckpt = None;
            loop {
                let (rows, next) = engine.query_resume(&ast, ckpt, chunk).unwrap();
                got.extend(rows);
                match next {
                    Some(c) => ckpt = Some(c),
                    None => break,
                }
            }
            prop_assert_eq!(&got, &full, "engine chunked sweep on {}", q);
        }
    }

    #[test]
    fn service_page_sweep_rides_checkpoints_exactly(
        trees in arb_treebank(),
        qi in 0usize..POOL.len(),
        page in 1usize..5,
        shards in 1usize..5,
    ) {
        let corpus = parse_str(&trees.join("\n")).expect("generated treebank parses");
        let q = POOL[qi];
        let ast = parse(q).unwrap();
        let engine = Engine::build(&corpus);
        let full = match engine.query_ast(&ast) {
            Ok(rows) => rows,
            Err(_) => Walker::new(&corpus).eval(&ast),
        };
        let service = Service::with_config(
            &corpus,
            ServiceConfig { shards, threads: 1, ..ServiceConfig::default() },
        );
        // Sweep pages 1..K on one service so every deeper page
        // extends the cached, checkpointed prefixes of the earlier
        // ones.
        let mut got: ResultSet = Vec::new();
        loop {
            let chunk = service.eval_page(q, got.len(), page).unwrap();
            let short = chunk.len() < page;
            got.extend(chunk);
            if short {
                break;
            }
        }
        prop_assert_eq!(&got, &full, "service sweep at {} shards on {}", shards, q);
        // The sweep never fell back to full shard evaluations.
        prop_assert_eq!(service.stats().shard_evals, 0, "sweep fully page-bounded on {}", q);
    }

    #[test]
    fn prefixes_extended_across_append_match_fresh_evaluation(
        trees in arb_treebank(),
        tail in arb_treebank(),
        qi in 0usize..POOL.len(),
        page in 1usize..4,
        shards in 1usize..4,
        warm in 0usize..6,
    ) {
        let q = POOL[qi];
        let service = Service::with_config(
            &parse_str(&trees.join("\n")).expect("parses"),
            ServiceConfig { shards, threads: 1, ..ServiceConfig::default() },
        );
        // Warm the prefix cache with a few pages…
        service.eval_page(q, 0, warm.max(1)).unwrap();
        // …grow the corpus…
        service.append_ptb(&tail.join("\n")).unwrap();
        // …and sweep pages over the grown corpus: head-shard prefixes
        // survive the append (build-id scoping) and must agree with a
        // from-scratch evaluation of the whole grown corpus.
        let grown = parse_str(&[trees, tail].concat().join("\n")).expect("parses");
        let engine = Engine::build(&grown);
        let ast = parse(q).unwrap();
        let full = match engine.query_ast(&ast) {
            Ok(rows) => rows,
            Err(_) => Walker::new(&grown).eval(&ast),
        };
        let mut got: ResultSet = Vec::new();
        loop {
            let chunk = service.eval_page(q, got.len(), page).unwrap();
            let short = chunk.len() < page;
            got.extend(chunk);
            if short {
                break;
            }
        }
        prop_assert_eq!(&got, &full, "post-append sweep at {} shards on {}", shards, q);
    }
}

// ---------------------------------------------------------------
// The 23 evaluation queries, deterministically
// ---------------------------------------------------------------

#[test]
fn evaluation_queries_resume_identically_at_every_layer() {
    let corpus = generate(&GenConfig::wsj(40).with_seed(7));
    let engine = Engine::build(&corpus);
    let service = Service::with_config(
        &corpus,
        ServiceConfig {
            shards: 3,
            ..ServiceConfig::default()
        },
    );
    for case in fixtures::eval_cases() {
        let ast = parse(case.lpath).unwrap();
        let full = engine.query(case.lpath).unwrap();
        // Engine: resume after 1, then 7, then the rest.
        let mut got = Vec::new();
        let mut ckpt = None;
        for limit in [1usize, 7, usize::MAX] {
            let (rows, next) = engine.query_resume(&ast, ckpt.take(), limit).unwrap();
            got.extend(rows);
            match next {
                Some(c) => ckpt = Some(c),
                None => break,
            }
        }
        if ckpt.is_some() {
            let (rows, _) = engine.query_resume(&ast, ckpt, usize::MAX).unwrap();
            got.extend(rows);
        }
        assert_eq!(got, full, "Q{} engine resume", case.id);
        // Service: page sweep with growing offsets.
        let mut got: ResultSet = Vec::new();
        loop {
            let chunk = service.eval_page(case.lpath, got.len(), 5).unwrap();
            let short = chunk.len() < 5;
            got.extend(chunk);
            if short {
                break;
            }
        }
        assert_eq!(got, full, "Q{} service sweep", case.id);
    }
    // The whole sweep stayed on the resumable page path.
    assert_eq!(service.stats().shard_evals, 0);
}
