//! Batched multi-query execution, property-tested differentially.
//!
//! [`Service::eval_multi`] is an execution strategy, never a different
//! answer: for any corpus, any batch composition (duplicates, syntax
//! errors, walker-fallback members, statically-empty members) and any
//! shard count, every member's rows must be byte-identical to a solo
//! [`Service::eval`] of the same query on a *fresh* service — an
//! independent execution, so the check can never compare a cache entry
//! against itself. Alongside the differential core: a batch of one
//! degrades to exactly the solo path, in-batch duplicates collapse to
//! one shared execution, and the sharing counters prove work was
//! actually shared when plans allow it.
//!
//! `PROPTEST_CASES` scales the case count (CI's nightly sweep raises
//! it); the default here is the acceptance floor of 256.

use std::sync::Arc;

use proptest::prelude::*;

use lpath::prelude::*;

/// A random subtree of bounded depth/width in bracketed form.
fn arb_subtree(depth: u32) -> BoxedStrategy<String> {
    let tag = prop_oneof![
        Just("A".to_string()),
        Just("B".to_string()),
        Just("C".to_string()),
    ];
    let word = prop_oneof![
        Just("u".to_string()),
        Just("v".to_string()),
        Just("w".to_string()),
    ];
    if depth == 0 {
        (tag, word).prop_map(|(t, w)| format!("({t} {w})")).boxed()
    } else {
        let leaf = (
            prop_oneof![
                Just("A".to_string()),
                Just("B".to_string()),
                Just("C".to_string()),
            ],
            word,
        )
            .prop_map(|(t, w)| format!("({t} {w})"));
        let inner = (tag, prop::collection::vec(arb_subtree(depth - 1), 1..3))
            .prop_map(|(t, kids)| format!("({t} {})", kids.join(" ")));
        prop_oneof![2 => leaf, 2 => inner].boxed()
    }
}

/// Bracketed text for one to five random trees.
fn arb_treebank() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(arb_subtree(2), 1..6)
        .prop_map(|trees| trees.iter().map(|t| format!("( (S {t}) )")).collect())
}

/// Batch member pool: shareable anchors (several `//A[...]` variants
/// keep the same outer anchor), a walker-strategy member, attribute
/// and alignment filters, a statically-empty member (`//ZZZ` is not in
/// any generated vocabulary), an alternate spelling that normalizes to
/// a pool sibling, and one syntax error.
const POOL: [&str; 12] = [
    "//A",
    "//A[not(//B)]",
    "//A[not(//C)]",
    "//A/B",
    "//B->C",
    "//S{//A$}",
    "//_[@lex=u]",
    "//S/_[last()]", // no SQL translation: walker strategy
    "//ZZZ",         // statically empty against any generated corpus
    "// A ",         // normalizes to "//A"
    "//B[",          // syntax error: stays per-member
    "//C=>C",
];

/// A batch is a sequence of pool indices (duplicates welcome).
fn arb_batch() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0usize..POOL.len(), 1..8)
}

fn service_over(corpus: &Corpus, shards: usize) -> Service {
    Service::with_config(
        corpus,
        ServiceConfig {
            shards,
            threads: 1,
            ..ServiceConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: ProptestConfig::cases_or_env(256),
        ..ProptestConfig::default()
    })]

    /// The differential core: every batch member's result equals a
    /// solo eval of the same query on a fresh service.
    #[test]
    fn eval_multi_matches_fresh_solo_evals(
        trees in arb_treebank(),
        batch in arb_batch(),
        shards in 1usize..4,
    ) {
        let corpus = parse_str(&trees.join("\n")).expect("generated treebank parses");
        let texts: Vec<&str> = batch.iter().map(|&i| POOL[i]).collect();

        let multi = service_over(&corpus, shards).eval_multi(&texts);
        let oracle = service_over(&corpus, shards);
        prop_assert_eq!(multi.len(), texts.len());
        for (q, got) in texts.iter().zip(&multi) {
            match (got, oracle.eval(q)) {
                (Ok(rows), Ok(solo)) => prop_assert_eq!(
                    &**rows, &*solo, "batched vs solo rows on {}", q
                ),
                (Err(a), Err(b)) => prop_assert_eq!(
                    a.to_string(), b.to_string(), "batched vs solo error on {}", q
                ),
                (a, b) => prop_assert!(
                    false,
                    "divergent outcome on {}: batched {:?} vs solo {:?}",
                    q, a.is_ok(), b.is_ok()
                ),
            }
        }
    }

    /// A batch of one is *exactly* the solo path: same rows, and none
    /// of the batch machinery (no batch counted, no sharing counters).
    #[test]
    fn batch_of_one_degrades_to_solo(
        trees in arb_treebank(),
        qi in 0usize..POOL.len(),
    ) {
        let corpus = parse_str(&trees.join("\n")).expect("generated treebank parses");
        let svc = service_over(&corpus, 2);
        let q = POOL[qi];
        let solo = svc.eval(q);
        let multi = svc.eval_multi(&[q]);
        prop_assert_eq!(multi.len(), 1);
        match (&multi[0], &solo) {
            (Ok(a), Ok(b)) => prop_assert_eq!(&**a, &**b, "rows on {}", q),
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            _ => prop_assert!(false, "divergent outcome on {}", q),
        }
        let stats = svc.stats();
        prop_assert_eq!(stats.batches, 0, "batch of one must not count as a batch");
        prop_assert_eq!(stats.multi_shared_scans, 0);
    }

    /// In-batch duplicates (including alternate spellings of one
    /// query) collapse to a single execution: every occurrence gets
    /// the *same* result allocation.
    #[test]
    fn duplicates_share_one_execution(
        trees in arb_treebank(),
        qi in 0usize..POOL.len(),
        copies in 2usize..5,
    ) {
        let corpus = parse_str(&trees.join("\n")).expect("generated treebank parses");
        let svc = service_over(&corpus, 2);
        let q = POOL[qi];
        let texts: Vec<&str> = (0..copies).map(|_| q).collect();
        let results = svc.eval_multi(&texts);
        let Ok(first) = &results[0] else { return Ok(()); };
        // Statically-empty members short-circuit before dedup (each
        // occurrence answers with its own empty set); every other
        // duplicate is batch-deduplicated onto one shared allocation.
        let deduped = svc.stats().statically_empty == 0;
        for r in &results[1..] {
            let rows = r.as_ref().expect("same query, same outcome");
            prop_assert_eq!(&**first, &**rows, "duplicate members must agree on {}", q);
            if deduped {
                prop_assert!(
                    Arc::ptr_eq(first, rows),
                    "duplicate members must share one allocation on {}", q
                );
            }
        }
        if deduped {
            prop_assert_eq!(svc.stats().batch_dedup, (copies - 1) as u64);
        }
    }
}

/// Deterministic companion: on a corpus where two members' plans keep
/// the same anchor (negated subquery checks never re-anchor), the
/// sharing counters must prove one shared enumeration fed both.
#[test]
fn sharing_counters_prove_shared_work() {
    let corpus =
        parse_str("( (S (A (B u) (A (C v))) (A (C w)) ) )\n( (S (A (B u)) (B (A (B v)))) )\n")
            .unwrap();
    let svc = service_over(&corpus, 1);
    let texts = ["//A[not(//B)]", "//A[not(//C)]", "//A"];
    let results = svc.eval_multi(&texts);
    for (q, r) in texts.iter().zip(&results) {
        let fresh = service_over(&corpus, 1);
        assert_eq!(**r.as_ref().unwrap(), *fresh.eval(q).unwrap(), "{q}");
    }
    let stats = svc.stats();
    assert!(
        stats.multi_shared_scans >= 2,
        "three same-anchor members, at least two must share: {}",
        stats.multi_shared_scans
    );
    assert!(
        stats.multi_residual_evals > 0,
        "shared candidates must have been filtered per member"
    );
}
