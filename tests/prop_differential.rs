//! Property-based differential testing.
//!
//! Random trees × random queries, three independent evaluators:
//! the relational engine (labels → SQL → joins), the tree walker
//! (labels, in memory) and the naive oracle (structural relations, no
//! labels). Any divergence is a bug in one of them; agreement across
//! machinery this different is the system's correctness argument.

use proptest::prelude::*;

use lpath::prelude::*;
use lpath_syntax::{Axis, NodeTest, Path, Pred, Step};

// ---------------------------------------------------------------
// Random trees (as bracketed text, through the real parser)
// ---------------------------------------------------------------

/// A random subtree of bounded depth/width in bracketed form.
fn arb_subtree(depth: u32) -> BoxedStrategy<String> {
    let tag = prop_oneof![
        Just("A".to_string()),
        Just("B".to_string()),
        Just("C".to_string()),
        Just("D".to_string()),
    ];
    let word = prop_oneof![
        Just("u".to_string()),
        Just("v".to_string()),
        Just("w".to_string()),
    ];
    if depth == 0 {
        (tag, word).prop_map(|(t, w)| format!("({t} {w})")).boxed()
    } else {
        let leaf = (
            prop_oneof![
                Just("A".to_string()),
                Just("B".to_string()),
                Just("C".to_string()),
                Just("D".to_string()),
            ],
            word,
        )
            .prop_map(|(t, w)| format!("({t} {w})"));
        let inner = (tag, prop::collection::vec(arb_subtree(depth - 1), 1..4))
            .prop_map(|(t, kids)| format!("({t} {})", kids.join(" ")));
        prop_oneof![3 => leaf, 2 => inner].boxed()
    }
}

/// A corpus of one to three random trees.
fn arb_corpus() -> impl Strategy<Value = Corpus> {
    prop::collection::vec(arb_subtree(3), 1..4).prop_map(|trees| {
        let text: String = trees.iter().map(|t| format!("( (S {t} {t}) )\n")).collect();
        parse_str(&text).expect("generated treebank parses")
    })
}

// ---------------------------------------------------------------
// Random queries (restricted to the SQL-translatable fragment)
// ---------------------------------------------------------------

fn arb_axis() -> impl Strategy<Value = Axis> {
    prop_oneof![
        Just(Axis::Child),
        Just(Axis::Descendant),
        Just(Axis::Parent),
        Just(Axis::Ancestor),
        Just(Axis::SelfAxis),
        Just(Axis::ImmediateFollowing),
        Just(Axis::Following),
        Just(Axis::ImmediatePreceding),
        Just(Axis::Preceding),
        Just(Axis::ImmediateFollowingSibling),
        Just(Axis::FollowingSibling),
        Just(Axis::ImmediatePrecedingSibling),
        Just(Axis::PrecedingSibling),
    ]
}

fn arb_test() -> impl Strategy<Value = NodeTest> {
    prop_oneof![
        Just(NodeTest::Any),
        Just(NodeTest::tag("A")),
        Just(NodeTest::tag("B")),
        Just(NodeTest::tag("C")),
        Just(NodeTest::tag("S")),
        Just(NodeTest::tag("Z")), // never present
    ]
}

fn arb_pred() -> impl Strategy<Value = Pred> {
    use lpath_syntax::{CmpOp, StrFunc};
    fn exists() -> impl Strategy<Value = Pred> {
        (arb_axis(), arb_test())
            .prop_map(|(axis, test)| Pred::Exists(Path::relative(vec![Step::new(axis, test)])))
    }
    fn attr_path() -> Path {
        Path::relative(vec![Step::new(Axis::Attribute, NodeTest::tag("lex"))])
    }
    let cmp = prop_oneof![Just("u"), Just("v"), Just("zz")].prop_map(|w| Pred::Cmp {
        path: attr_path(),
        op: CmpOp::Eq,
        value: w.to_string(),
    });
    // count() restricted to the existence thresholds the SQL
    // translation accepts.
    let count = (
        arb_axis(),
        arb_test(),
        prop_oneof![
            Just((CmpOp::Gt, 0u32)),
            Just((CmpOp::Ne, 0)),
            Just((CmpOp::Eq, 0)),
            Just((CmpOp::Lt, 1)),
        ],
    )
        .prop_map(|(axis, test, (op, value))| Pred::Count {
            path: Path::relative(vec![Step::new(axis, test)]),
            op,
            value,
        });
    let strfn = (
        prop_oneof![
            Just(StrFunc::Contains),
            Just(StrFunc::StartsWith),
            Just(StrFunc::EndsWith),
        ],
        prop_oneof![Just("u"), Just("v"), Just("w"), Just("z"), Just("")],
    )
        .prop_map(|(func, arg)| Pred::StrCmp {
            func,
            path: attr_path(),
            arg: arg.to_string(),
        });
    let strlen = (
        prop_oneof![
            Just(CmpOp::Eq),
            Just(CmpOp::Ne),
            Just(CmpOp::Lt),
            Just(CmpOp::Gt),
        ],
        0u32..3,
    )
        .prop_map(|(op, value)| Pred::StrLen {
            path: attr_path(),
            op,
            value,
        });
    prop_oneof![
        3 => exists(),
        1 => exists().prop_map(Pred::not),
        2 => cmp,
        1 => count,
        1 => strfn.clone(),
        1 => strfn.prop_map(Pred::not),
        1 => strlen,
    ]
}

fn arb_step(first: bool) -> impl Strategy<Value = Step> {
    let axis = if first {
        Just(Axis::Descendant).boxed()
    } else {
        arb_axis().boxed()
    };
    (
        axis,
        arb_test(),
        prop::collection::vec(arb_pred(), 0..2),
        prop::bool::weighted(0.12),
        prop::bool::weighted(0.12),
    )
        .prop_map(|(axis, test, predicates, la, ra)| {
            let mut step = Step::new(axis, test).aligned(la, ra);
            step.predicates = predicates;
            step
        })
}

fn arb_query() -> impl Strategy<Value = Path> {
    (
        arb_step(true),
        prop::collection::vec(arb_step(false), 0..3),
        prop::option::weighted(0.3, prop::collection::vec(arb_step(false), 1..3)),
    )
        .prop_map(|(head, rest, scope)| {
            let mut steps = vec![head];
            steps.extend(rest);
            let mut p = Path::absolute(steps);
            if let Some(inner) = scope {
                p = p.scoped(Path::relative(inner));
            }
            p
        })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: ProptestConfig::cases_or_env(64),
        ..ProptestConfig::default()
    })]

    #[test]
    fn engine_walker_naive_agree(corpus in arb_corpus(), query in arb_query()) {
        let engine = Engine::build(&corpus);
        let walker = Walker::new(&corpus);
        let naive = NaiveEvaluator::new(&corpus);
        let via_engine = engine
            .query_ast(&query)
            .unwrap_or_else(|e| panic!("{query}: {e}"));
        let via_walker = walker.eval(&query);
        let mut via_naive = naive.eval(&query);
        via_naive.sort_unstable();
        prop_assert_eq!(
            &via_engine, &via_walker,
            "engine vs walker on {}", query
        );
        prop_assert_eq!(
            &via_walker, &via_naive,
            "walker vs naive on {}", query
        );
    }

    #[test]
    fn printed_query_is_equivalent(corpus in arb_corpus(), query in arb_query()) {
        // parse(display(q)) must not change a query's meaning.
        let engine = Engine::build(&corpus);
        let printed = query.to_string();
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("{printed}: {e}"));
        let a = engine.query_ast(&query).unwrap();
        let b = engine.query_ast(&reparsed).unwrap();
        prop_assert_eq!(a, b, "display round-trip changed semantics: {}", printed);
    }

    #[test]
    fn labeling_matches_structure(corpus in arb_corpus()) {
        // Labels reproduce structural axis relations on random trees
        // (the generalization of the paper's Table 2 example checks).
        use lpath_model::{label_tree, AxisRel};
        for tree in corpus.trees() {
            let labels = label_tree(tree);
            let leaf_pos: std::collections::HashMap<_, u32> = tree
                .leaves()
                .enumerate()
                .map(|(k, id)| (id, k as u32 + 1))
                .collect();
            let first_leaf = |mut x: NodeId| {
                while !tree.node(x).is_leaf() {
                    x = tree.node(x).children[0];
                }
                x
            };
            let last_leaf = |mut x: NodeId| {
                while !tree.node(x).is_leaf() {
                    x = *tree.node(x).children.last().unwrap();
                }
                x
            };
            for x in tree.preorder() {
                for c in tree.preorder() {
                    let (lx, lc) = (&labels[x.index()], &labels[c.index()]);
                    prop_assert_eq!(
                        AxisRel::Child.holds(lx, lc),
                        tree.node(x).parent == Some(c)
                    );
                    prop_assert_eq!(
                        AxisRel::Descendant.holds(lx, lc),
                        tree.ancestors(x).any(|a| a == c)
                    );
                    prop_assert_eq!(
                        AxisRel::ImmediateFollowing.holds(lx, lc),
                        leaf_pos[&first_leaf(x)] == leaf_pos[&last_leaf(c)] + 1
                    );
                    prop_assert_eq!(
                        AxisRel::Following.holds(lx, lc),
                        leaf_pos[&first_leaf(x)] > leaf_pos[&last_leaf(c)]
                    );
                }
            }
        }
    }

    #[test]
    fn tgrep_image_round_trips(corpus in arb_corpus()) {
        use lpath_tgrep::binfmt::{build_image, decode, encode};
        let img = build_image(&corpus);
        let back = decode(&encode(&img)).unwrap();
        prop_assert_eq!(img.trees.len(), back.trees.len());
        for (a, b) in img.trees.iter().zip(&back.trees) {
            prop_assert_eq!(&a.label, &b.label);
            prop_assert_eq!(&a.parent, &b.parent);
            prop_assert_eq!(&a.fl, &b.fl);
            prop_assert_eq!(&a.ll, &b.ll);
            prop_assert_eq!(&a.subtree_end, &b.subtree_end);
        }
        prop_assert_eq!(&img.postings, &back.postings);
    }

    #[test]
    fn random_edit_sequences_keep_labels_consistent(
        corpus in arb_corpus(),
        ops in prop::collection::vec((0u8..5, any::<u32>(), any::<u32>(), any::<u32>()), 1..12),
    ) {
        // Apply a random edit script with TreeEditor; maintained labels
        // must match a fresh relabeling of the rebuilt tree
        // (left/right/depth exactly; id/pid up to one bijection), and
        // the rebuilt tree must still answer queries identically across
        // the engine and the walker.
        use lpath_model::{label_tree, TreeEditor};
        let tree = &corpus.trees()[0];
        let mut ed = TreeEditor::new(tree);
        let mut sym_corpus = corpus.clone();
        let x_tag = sym_corpus.intern("X");
        for (kind, a, b, c) in ops {
            // Pick a live node by probing handles (indices are dense).
            let probe = (a as usize) % (tree.len() + 4);
            let handle = lpath_model::NodeId(probe.min(tree.len() - 1) as u32);
            let r = ed.node_ref(handle);
            match kind {
                0 => {
                    let _ = ed.relabel(r, x_tag);
                }
                1 => {
                    if let Ok(kids) = ed.children(r) {
                        if !kids.is_empty() {
                            let lo = (b as usize) % kids.len();
                            let hi = lo + 1 + (c as usize) % (kids.len() - lo);
                            let _ = ed.wrap(r, lo, hi, x_tag);
                        }
                    }
                }
                2 => {
                    let _ = ed.splice_out(r);
                }
                3 => {
                    if let Ok(kids) = ed.children(r) {
                        let pos = (b as usize) % (kids.len() + 1);
                        let _ = ed.insert_terminal(r, pos, x_tag);
                    }
                }
                _ => {
                    let _ = ed.delete(r);
                }
            }
        }
        // Maintained labels agree with recomputation (positional parts).
        let maintained = ed.labels();
        let rebuilt = ed.finish().unwrap();
        let fresh = label_tree(&rebuilt);
        prop_assert_eq!(maintained.len(), rebuilt.len());
        let mut fresh_sorted: Vec<(u32, u32, u32)> =
            fresh.iter().map(|l| (l.left, l.right, l.depth)).collect();
        let mut maint_sorted: Vec<(u32, u32, u32)> = maintained
            .iter()
            .map(|(_, l)| (l.left, l.right, l.depth))
            .collect();
        fresh_sorted.sort_unstable();
        maint_sorted.sort_unstable();
        prop_assert_eq!(fresh_sorted, maint_sorted);
        // The edited tree still queries consistently.
        let mut edited = Corpus::new();
        *edited.interner_mut() = sym_corpus.interner().clone();
        edited.add_tree(rebuilt);
        let engine = Engine::build(&edited);
        let walker = Walker::new(&edited);
        for q in ["//X", "//A->_", "//S{//_$}", "//_[@lex=u]"] {
            let ast = parse(q).unwrap();
            prop_assert_eq!(
                engine.query_ast(&ast).unwrap(),
                walker.eval(&ast),
                "post-edit disagreement on {}",
                q
            );
        }
    }

    #[test]
    fn xml_round_trip_preserves_structure_and_queries(
        corpus in arb_corpus(),
        query in arb_query(),
    ) {
        // corpus → XML → corpus must preserve tree structure, tags and
        // attributes — and therefore every query answer.
        use lpath_model::xml;
        let doc = xml::to_string(&corpus);
        let back = xml::parse_str(&doc)
            .unwrap_or_else(|e| panic!("emitted XML must parse: {e}\n{doc}"));
        prop_assert_eq!(corpus.trees().len(), back.trees().len());
        for (a, b) in corpus.trees().iter().zip(back.trees()) {
            prop_assert_eq!(a.len(), b.len());
            for id in a.preorder() {
                let (na, nb) = (a.node(id), b.node(id));
                prop_assert_eq!(
                    corpus.resolve(na.name), back.resolve(nb.name)
                );
                prop_assert_eq!(na.children.len(), nb.children.len());
                prop_assert_eq!(na.attrs.len(), nb.attrs.len());
            }
        }
        let before = Walker::new(&corpus).eval(&query);
        let after = Walker::new(&back).eval(&query);
        prop_assert_eq!(before, after, "XML round trip changed query answers");
    }

    #[test]
    fn syntactic_and_greedy_plans_agree(corpus in arb_corpus(), query in arb_query()) {
        use lpath_relstore::{JoinOrder, PlannerConfig};
        let greedy = Engine::build(&corpus);
        let syntactic = Engine::with_config(
            &corpus,
            PlannerConfig { order: JoinOrder::Syntactic, ..Default::default() },
        );
        let a = greedy.query_ast(&query).unwrap();
        let b = syntactic.query_ast(&query).unwrap();
        prop_assert_eq!(a, b, "join order changed results on {}", query);
    }

    #[test]
    fn first_rows_and_all_rows_goals_agree(
        corpus in arb_corpus(),
        query in arb_query(),
        k in 1usize..10,
    ) {
        // The optimization goal reorders joins for startup cost; the
        // result set — full or any prefix — must be unchanged.
        use lpath_relstore::{OptGoal, PlannerConfig};
        let all_rows = Engine::build(&corpus);
        let first_rows = Engine::with_config(
            &corpus,
            PlannerConfig { goal: OptGoal::FirstRows(k), ..Default::default() },
        );
        let a = all_rows.query_ast(&query).unwrap();
        let b = first_rows.query_ast(&query).unwrap();
        prop_assert_eq!(&a, &b, "goal changed results on {}", query);
        let page = first_rows.query_limit_ast(&query, 0, k).unwrap();
        prop_assert_eq!(&page[..], &a[..k.min(a.len())], "goal changed page on {}", query);
    }
}

#[test]
fn first_rows_flips_the_join_order_on_a_skewed_corpus() {
    use lpath_relstore::{OptGoal, PlannerConfig};
    // Skew the tag frequencies: A occurs 100 times, its B children 150
    // times. AllRows anchors the smaller input (A); FirstRows pays the
    // 1.5× input premium to anchor the *output* alias (B) and emit in
    // scan order.
    let src: String = (0..100)
        .map(|i| {
            if i % 2 == 0 {
                "( (S (A (B u) (B v))) )\n"
            } else {
                "( (S (A (B u))) )\n"
            }
        })
        .collect();
    let corpus = parse_str(&src).unwrap();
    let engine = Engine::build(&corpus);
    let query = parse("//A/B").unwrap();
    let cq = engine.translate(&query).unwrap();
    let out = cq.projection[0].alias;
    let all = lpath_relstore::plan(engine.database(), &cq, &PlannerConfig::default());
    let first = lpath_relstore::plan(
        engine.database(),
        &cq,
        &PlannerConfig {
            goal: OptGoal::FirstRows(10),
            ..Default::default()
        },
    );
    assert_ne!(
        all.steps[0].alias, first.steps[0].alias,
        "goal did not flip the anchor:\n{all}\n{first}"
    );
    assert_eq!(
        first.steps[0].alias, out,
        "FirstRows must anchor the output alias:\n{first}"
    );
    assert!(first.estimated_startup <= all.estimated_startup);
    // Different orders, identical answers.
    let first_engine = Engine::with_config(
        &corpus,
        PlannerConfig {
            goal: OptGoal::FirstRows(10),
            ..Default::default()
        },
    );
    assert_eq!(
        engine.query_ast(&query).unwrap(),
        first_engine.query_ast(&query).unwrap()
    );
}
