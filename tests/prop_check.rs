//! Property-based soundness of the static analyzer (`lpath-check`).
//!
//! Random trees × random queries — deliberately including vocabulary
//! that never occurs (`Z`, `zz`), position and disjunction predicates,
//! and contradictions the analyzer hunts for. Two properties, per the
//! analyzer's contract:
//!
//! * **no false positives** — a query with any witness in the corpus
//!   is never reported statically empty;
//! * **diagnostics are inert** — the check pass (and the constant-empty
//!   fast path it feeds, in both the engine planner hook and the
//!   service) never changes what evaluation returns.
//!
//! Swept nightly at higher case counts via `PROPTEST_CASES`.

use proptest::prelude::*;

use lpath::prelude::*;
use lpath_syntax::{Axis, CmpOp, NodeTest, Path, PosRhs, Pred, Step};

// ---------------------------------------------------------------
// Random trees (bracketed text through the real parser), same shape
// as the differential suite: tags A–D under an S spine, words u/v/w.
// ---------------------------------------------------------------

fn arb_subtree(depth: u32) -> BoxedStrategy<String> {
    let tag = prop_oneof![
        Just("A".to_string()),
        Just("B".to_string()),
        Just("C".to_string()),
        Just("D".to_string()),
    ];
    let word = prop_oneof![
        Just("u".to_string()),
        Just("v".to_string()),
        Just("w".to_string()),
    ];
    if depth == 0 {
        (tag, word).prop_map(|(t, w)| format!("({t} {w})")).boxed()
    } else {
        let leaf = (
            prop_oneof![
                Just("A".to_string()),
                Just("B".to_string()),
                Just("C".to_string()),
                Just("D".to_string()),
            ],
            word,
        )
            .prop_map(|(t, w)| format!("({t} {w})"));
        let inner = (tag, prop::collection::vec(arb_subtree(depth - 1), 1..4))
            .prop_map(|(t, kids)| format!("({t} {})", kids.join(" ")));
        prop_oneof![3 => leaf, 2 => inner].boxed()
    }
}

fn arb_corpus() -> impl Strategy<Value = Corpus> {
    prop::collection::vec(arb_subtree(3), 1..4).prop_map(|trees| {
        let text: String = trees.iter().map(|t| format!("( (S {t} {t}) )\n")).collect();
        parse_str(&text).expect("generated treebank parses")
    })
}

// ---------------------------------------------------------------
// Random queries. Unlike the differential suite this is NOT limited
// to the SQL-translatable fragment: position() and `or` exercise the
// analyzer's tautology/contradiction logic and the service's walker
// fallback at once.
// ---------------------------------------------------------------

fn arb_axis() -> impl Strategy<Value = Axis> {
    prop_oneof![
        Just(Axis::Child),
        Just(Axis::Descendant),
        Just(Axis::Parent),
        Just(Axis::Ancestor),
        Just(Axis::SelfAxis),
        Just(Axis::ImmediateFollowing),
        Just(Axis::Following),
        Just(Axis::ImmediatePreceding),
        Just(Axis::Preceding),
        Just(Axis::ImmediateFollowingSibling),
        Just(Axis::FollowingSibling),
        Just(Axis::ImmediatePrecedingSibling),
        Just(Axis::PrecedingSibling),
    ]
}

fn arb_test() -> impl Strategy<Value = NodeTest> {
    prop_oneof![
        Just(NodeTest::Any),
        Just(NodeTest::tag("A")),
        Just(NodeTest::tag("B")),
        Just(NodeTest::tag("C")),
        Just(NodeTest::tag("S")),
        Just(NodeTest::tag("Z")), // never present: statically empty bait
    ]
}

fn arb_pred() -> impl Strategy<Value = Pred> {
    fn exists() -> impl Strategy<Value = Pred> {
        (arb_axis(), arb_test())
            .prop_map(|(axis, test)| Pred::Exists(Path::relative(vec![Step::new(axis, test)])))
    }
    fn attr_path() -> Path {
        Path::relative(vec![Step::new(Axis::Attribute, NodeTest::tag("lex"))])
    }
    let cmp = prop_oneof![Just("u"), Just("v"), Just("zz")].prop_map(|w| Pred::Cmp {
        path: attr_path(),
        op: CmpOp::Eq,
        value: w.to_string(),
    });
    // Positions around the interesting boundaries: 0 (impossible),
    // 1 (pinning), and last().
    let pos = (
        prop_oneof![
            Just(CmpOp::Eq),
            Just(CmpOp::Ne),
            Just(CmpOp::Lt),
            Just(CmpOp::Gt),
        ],
        prop_oneof![
            4 => (0u32..4).prop_map(PosRhs::Const),
            1 => Just(PosRhs::Last),
        ],
    )
        .prop_map(|(op, rhs)| Pred::Position(op, rhs));
    let or = (exists(), exists()).prop_map(|(a, b)| Pred::or(a, b));
    // count() thresholds including the always-false `< 0`.
    let count = (
        arb_axis(),
        arb_test(),
        prop_oneof![
            Just((CmpOp::Gt, 0u32)),
            Just((CmpOp::Eq, 0)),
            Just((CmpOp::Lt, 0)),
            Just((CmpOp::Lt, 2)),
        ],
    )
        .prop_map(|(axis, test, (op, value))| Pred::Count {
            path: Path::relative(vec![Step::new(axis, test)]),
            op,
            value,
        });
    prop_oneof![
        3 => exists(),
        1 => exists().prop_map(Pred::not),
        2 => cmp,
        2 => pos,
        1 => or,
        1 => count,
    ]
}

fn arb_step(first: bool) -> impl Strategy<Value = Step> {
    let axis = if first {
        Just(Axis::Descendant).boxed()
    } else {
        arb_axis().boxed()
    };
    (axis, arb_test(), prop::collection::vec(arb_pred(), 0..3)).prop_map(
        |(axis, test, predicates)| {
            let mut step = Step::new(axis, test);
            step.predicates = predicates;
            step
        },
    )
}

fn arb_query() -> impl Strategy<Value = Path> {
    (
        arb_step(true),
        prop::collection::vec(arb_step(false), 0..3),
        prop::option::weighted(0.3, prop::collection::vec(arb_step(false), 1..3)),
    )
        .prop_map(|(head, rest, scope)| {
            let mut steps = vec![head];
            steps.extend(rest);
            let mut p = Path::absolute(steps);
            if let Some(inner) = scope {
                p = p.scoped(Path::relative(inner));
            }
            p
        })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: ProptestConfig::cases_or_env(256),
        ..ProptestConfig::default()
    })]

    #[test]
    fn analyzer_never_reports_a_matching_query_empty(
        corpus in arb_corpus(),
        query in arb_query(),
    ) {
        let engine = Engine::build(&corpus);
        let rows = Walker::new(&corpus).eval(&query);
        let report = engine.check_ast(&query);
        if report.statically_empty {
            prop_assert!(
                rows.is_empty(),
                "false positive on {}: {} witnesses exist\n{}",
                query, rows.len(), report.render(&query.to_string())
            );
        }
        // The verdict drives the planner hook; wherever the relational
        // translation applies, the (possibly constant-empty) plan must
        // still produce exactly the walker's answer.
        if let Ok(via_engine) = engine.query_ast(&query) {
            prop_assert_eq!(via_engine, rows, "check hook changed answers on {}", query);
        }
    }

    #[test]
    fn diagnostics_never_change_service_answers(
        corpus in arb_corpus(),
        query in arb_query(),
    ) {
        let svc = Service::build(&corpus);
        let printed = query.to_string();
        let mut expected = Walker::new(&corpus).eval(&query);
        expected.sort_unstable();
        let got = svc
            .eval(&printed)
            .unwrap_or_else(|e| panic!("{printed}: {e}"));
        let mut got = (*got).clone();
        got.sort_unstable();
        prop_assert_eq!(&got, &expected, "service diverged on {}", printed);
        // When the analyzer proved the query empty, the service must
        // actually have served it from the constant-empty fast path —
        // and that had better not have dropped any answers.
        if svc.check(&printed).unwrap().statically_empty {
            prop_assert!(expected.is_empty(), "fast path dropped answers on {}", printed);
            prop_assert!(
                svc.stats().statically_empty >= 1,
                "statically-empty query was not served by the fast path: {}", printed
            );
        }
    }
}
