//! Observability invariants, property-tested against random workloads.
//!
//! The counters and histograms the service exposes are only useful if
//! they are *exact*: every request accounted to exactly one class,
//! cache identities that hold by construction, histogram totals that
//! equal the requests recorded, and a slow-query log (at a zero
//! threshold) that misses nothing. These tests drive random op
//! sequences over random treebanks and check the books balance.
//!
//! `PROPTEST_CASES` scales the case count (CI's nightly sweep raises
//! it); the default here is the acceptance floor of 128.

use std::time::Duration;

use proptest::prelude::*;

use lpath::prelude::*;
use lpath_service::{ClassMetrics, Metrics, ResultSet};

/// A random subtree of bounded depth/width in bracketed form.
fn arb_subtree(depth: u32) -> BoxedStrategy<String> {
    let tag = prop_oneof![
        Just("A".to_string()),
        Just("B".to_string()),
        Just("C".to_string()),
    ];
    let word = prop_oneof![
        Just("u".to_string()),
        Just("v".to_string()),
        Just("w".to_string()),
    ];
    if depth == 0 {
        (tag, word).prop_map(|(t, w)| format!("({t} {w})")).boxed()
    } else {
        let leaf = (
            prop_oneof![
                Just("A".to_string()),
                Just("B".to_string()),
                Just("C".to_string()),
            ],
            word,
        )
            .prop_map(|(t, w)| format!("({t} {w})"));
        let inner = (tag, prop::collection::vec(arb_subtree(depth - 1), 1..3))
            .prop_map(|(t, kids)| format!("({t} {})", kids.join(" ")));
        prop_oneof![2 => leaf, 2 => inner].boxed()
    }
}

/// Bracketed text for one to five random trees.
fn arb_treebank() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(arb_subtree(2), 1..6)
        .prop_map(|trees| trees.iter().map(|t| format!("( (S {t}) )")).collect())
}

/// Queries spanning the instrumented paths: streamable anchors, joins,
/// negation, attribute filters, the walker fallback, empty results.
const POOL: [&str; 9] = [
    "//A",
    "//_",
    "//S//B",
    "//A->B",
    "//A[not(//B)]",
    "//_[@lex=u]",
    "//B[//_[@lex=v]]",
    "//S/_[last()]", // no SQL translation: exercises the walker fallback
    "//ZZZ",         // matches nothing anywhere
];

/// A service that records everything: zero slow threshold, a log big
/// enough never to evict under these workloads.
fn traced(corpus: &Corpus, shards: usize) -> Service {
    Service::with_config(
        corpus,
        ServiceConfig {
            shards,
            threads: 1,
            slow_query_threshold: Duration::ZERO,
            slow_query_log_capacity: 4_096,
            ..ServiceConfig::default()
        },
    )
}

fn class<'m>(m: &'m Metrics, name: &str) -> &'m ClassMetrics {
    m.classes
        .iter()
        .find(|c| c.class == name)
        .expect("known class")
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: ProptestConfig::cases_or_env(128),
        ..ProptestConfig::default()
    })]

    /// Random op sequences: every counter identity and histogram total
    /// the service promises must balance exactly.
    #[test]
    fn stats_identities_hold_across_random_workloads(
        trees in arb_treebank(),
        ops in prop::collection::vec((0usize..5, 0usize..POOL.len()), 1..32),
        shards in 1usize..4,
    ) {
        let corpus = parse_str(&trees.join("\n")).expect("generated treebank parses");
        let svc = traced(&corpus, shards);
        // Our own books, kept alongside the service's.
        let (mut evals, mut counts, mut pages, mut exists, mut batches, mut members) =
            (0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
        for &(op, qi) in &ops {
            let q = POOL[qi];
            match op {
                0 => { svc.eval(q).unwrap(); evals += 1; }
                1 => { svc.count(q).unwrap(); counts += 1; }
                2 => { svc.eval_page(q, 0, 3).unwrap(); pages += 1; }
                3 => { svc.exists(q).unwrap(); exists += 1; }
                _ => {
                    // Two-member batch, possibly with a duplicate.
                    let other = POOL[(qi + op) % POOL.len()];
                    for r in svc.eval_batch(&[q, other]) { r.unwrap(); }
                    batches += 1;
                    members += 2;
                }
            }
        }
        let s = svc.stats();
        // Every request lands in exactly one class tally.
        prop_assert_eq!(s.queries, evals + counts + pages + exists + members);
        prop_assert_eq!(s.batches, batches);
        prop_assert_eq!(s.pages, pages);
        // Each query member compiles exactly once: hit or miss.
        prop_assert_eq!(s.plan_hits + s.plan_misses, s.queries);
        // Count-cache lookups come only from count() and exists().
        prop_assert!(s.count_hits + s.count_misses <= counts + exists);
        prop_assert!(s.count_misses <= counts);
        // Rates are probabilities, even on empty denominators.
        for r in [s.plan_hit_rate(), s.result_hit_rate(), s.count_hit_rate(), s.prune_rate()] {
            prop_assert!(r.is_finite() && (0.0..=1.0).contains(&r), "rate {}", r);
        }

        let m = svc.metrics();
        prop_assert_eq!(m.queries, s.queries);
        // Histogram totals equal the requests recorded, class by class
        // (exists is deliberately not latency-classified).
        let total = |name: &str| {
            let c = class(&m, name);
            c.hits.count + c.misses.count
        };
        prop_assert_eq!(total("eval"), evals);
        prop_assert_eq!(total("count"), counts);
        prop_assert_eq!(total("eval_page"), pages);
        prop_assert_eq!(total("eval_batch"), batches);
        // Zero threshold, oversized ring: the slow log missed nothing.
        prop_assert_eq!(m.slow_queries.len() as u64, evals + counts + pages + batches);
        // Percentiles stay monotone on every snapshot.
        for c in &m.classes {
            for h in [&c.hits, &c.misses] {
                prop_assert!(h.p50 <= h.p90 && h.p90 <= h.p99 && h.p99 <= h.max);
            }
        }
    }

    /// Suspend/resume page sweeps keep the books stable: a repeated
    /// sweep returns identical rows, adds only cache-hit samples, and
    /// never re-enumerates (no new misses, no shard evals).
    #[test]
    fn repeat_page_sweeps_are_pure_hits(
        trees in arb_treebank(),
        qi in 0usize..POOL.len(),
        page in 1usize..5,
        shards in 1usize..4,
    ) {
        let corpus = parse_str(&trees.join("\n")).expect("generated treebank parses");
        let q = POOL[qi];
        let svc = traced(&corpus, shards);
        let sweep = |svc: &Service| -> (ResultSet, u64) {
            let mut got: ResultSet = Vec::new();
            let mut pages_issued = 0;
            loop {
                let chunk = svc.eval_page(q, got.len(), page).unwrap();
                pages_issued += 1;
                let short = chunk.len() < page;
                got.extend(chunk);
                if short {
                    break;
                }
            }
            (got, pages_issued)
        };
        let (first, pages1) = sweep(&svc);
        let m1 = svc.metrics();
        let (hits1, miss1) = {
            let c = class(&m1, "eval_page");
            (c.hits.count, c.misses.count)
        };
        prop_assert_eq!(hits1 + miss1, pages1);
        let (second, pages2) = sweep(&svc);
        prop_assert_eq!(&second, &first, "repeat sweep rows on {}", q);
        let m2 = svc.metrics();
        let c = class(&m2, "eval_page");
        // The first sweep promoted every prefix; the second is served
        // entirely from cache — misses frozen, hits grow by its pages.
        prop_assert_eq!(c.misses.count, miss1, "no new misses on {}", q);
        prop_assert_eq!(c.hits.count, hits1 + pages2, "all hits on {}", q);
        prop_assert_eq!(svc.stats().shard_evals, 0, "sweeps stay page-bounded on {}", q);
        // Both sweeps' resume counts survived into the slow log.
        let resumed: u64 = m2.slow_queries.iter().map(|e| e.resumes).sum();
        prop_assert_eq!(resumed, svc.stats().page_resumes, "resume trace on {}", q);
    }
}
