//! Serialized-token invariants, property-tested across every layer.
//!
//! A paging token is a suspended enumeration flattened to hostile
//! bytes, so three things must hold for any corpus, query and page
//! schedule: (1) encoding a genuine checkpoint and decoding it back
//! is the identity — at the walker, engine and shard layers the
//! re-encoded bytes are identical and the resumed rows match the
//! never-serialized resume exactly; (2) a token sweep through
//! [`Service::eval_page_token`] is byte-identical to in-process
//! offset paging at *every* row boundary, and re-issuing a token is
//! deterministic (the statelessness contract); (3) corrupted,
//! truncated or version-bumped tokens are typed rejections — or, when
//! a corruption happens to decode to the same bytes, harmless — and
//! never a panic.
//!
//! `PROPTEST_CASES` scales the case count (CI's nightly sweep raises
//! it); the default here is the acceptance floor of 256.

use proptest::prelude::*;

use lpath::prelude::*;
use lpath_relstore::wire;
use lpath_service::shard::CheckpointDecodeError;
use lpath_service::{ResultSet, Shard};

/// A random subtree of bounded depth/width in bracketed form.
fn arb_subtree(depth: u32) -> BoxedStrategy<String> {
    let tag = prop_oneof![
        Just("A".to_string()),
        Just("B".to_string()),
        Just("C".to_string()),
    ];
    let word = prop_oneof![
        Just("u".to_string()),
        Just("v".to_string()),
        Just("w".to_string()),
    ];
    if depth == 0 {
        (tag, word).prop_map(|(t, w)| format!("({t} {w})")).boxed()
    } else {
        let leaf = (
            prop_oneof![
                Just("A".to_string()),
                Just("B".to_string()),
                Just("C".to_string()),
            ],
            word,
        )
            .prop_map(|(t, w)| format!("({t} {w})"));
        let inner = (tag, prop::collection::vec(arb_subtree(depth - 1), 1..3))
            .prop_map(|(t, kids)| format!("({t} {})", kids.join(" ")));
        prop_oneof![2 => leaf, 2 => inner].boxed()
    }
}

/// Bracketed text for one to five random trees.
fn arb_treebank() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(arb_subtree(2), 1..6)
        .prop_map(|trees| trees.iter().map(|t| format!("( (S {t}) )")).collect())
}

/// Queries spanning the serializable checkpoint variants: streamable
/// name anchors (cursor state), chunked fallbacks (tree watermark),
/// attribute filters, the walker fallback, and empty results.
const POOL: [&str; 8] = [
    "//A",
    "//_",
    "//S//B",
    "//A->B",
    "//A[not(//B)]",
    "//_[@lex=u]",
    "//S/_[last()]", // no SQL translation: walker-strategy checkpoints
    "//ZZZ",         // matches nothing anywhere
];

/// The URL-safe base64 alphabet tokens are written in.
const ALPHABET: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

fn service_over(corpus: &Corpus, shards: usize) -> Service {
    Service::with_config(
        corpus,
        ServiceConfig {
            shards,
            threads: 1,
            ..ServiceConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: ProptestConfig::cases_or_env(256),
        ..ProptestConfig::default()
    })]

    /// Encode → decode → encode is the identity at every layer that
    /// serializes a checkpoint, and the decoded checkpoint resumes to
    /// exactly the rows the live one would have produced.
    #[test]
    fn checkpoint_wire_round_trips_at_every_layer(
        trees in arb_treebank(),
        qi in 0usize..POOL.len(),
        split in 1usize..12,
    ) {
        let corpus = parse_str(&trees.join("\n")).expect("generated treebank parses");
        let q = POOL[qi];
        let ast = parse(q).unwrap();

        // Walker checkpoints.
        let walker = Walker::new(&corpus);
        let (_, ckpt) = walker.eval_resume(&ast, None, split);
        if let Some(ckpt) = ckpt {
            let mut w = wire::Writer::new();
            ckpt.encode_into(&mut w);
            let bytes = w.into_bytes();
            let mut r = wire::Reader::new(&bytes);
            let decoded = lpath_core::WalkerCheckpoint::decode(&mut r, corpus.trees().len())
                .expect("genuine walker checkpoint decodes");
            prop_assert!(r.finished(), "walker checkpoint fully consumed on {}", q);
            let mut w2 = wire::Writer::new();
            decoded.encode_into(&mut w2);
            prop_assert_eq!(&bytes, &w2.into_bytes(), "walker re-encode on {}", q);
            let (live, _) = walker.eval_resume(&ast, Some(ckpt), usize::MAX);
            let (thawed, _) = walker.eval_resume(&ast, Some(decoded), usize::MAX);
            prop_assert_eq!(live, thawed, "walker resume through the wire on {}", q);
        }

        // Engine checkpoints (translatable queries only).
        let engine = Engine::build(&corpus);
        if engine.query_ast(&ast).is_ok() {
            let (_, ckpt) = engine.query_resume(&ast, None, split).unwrap();
            if let Some(ckpt) = ckpt {
                let mut w = wire::Writer::new();
                ckpt.encode_into(&mut w);
                let bytes = w.into_bytes();
                let mut r = wire::Reader::new(&bytes);
                let decoded = engine
                    .decode_checkpoint(&ast, &mut r)
                    .expect("genuine engine checkpoint decodes");
                prop_assert!(r.finished(), "engine checkpoint fully consumed on {}", q);
                let mut w2 = wire::Writer::new();
                decoded.encode_into(&mut w2);
                prop_assert_eq!(&bytes, &w2.into_bytes(), "engine re-encode on {}", q);
                let (live, _) = engine.query_resume(&ast, Some(ckpt), usize::MAX / 4).unwrap();
                let (thawed, _) = engine.query_resume(&ast, Some(decoded), usize::MAX / 4).unwrap();
                prop_assert_eq!(live, thawed, "engine resume through the wire on {}", q);
            }
        }

        // Shard checkpoints (build-id tagged, strategy dispatched).
        let svc = service_over(&corpus, 1);
        let compiled = svc.compile(q).unwrap();
        let shard = Shard::build(&corpus, 0, corpus.trees().len(), 0);
        let (_, ckpt) = shard.eval_resume(&compiled, None, split).unwrap();
        if let Some(ckpt) = ckpt {
            let mut w = wire::Writer::new();
            ckpt.encode_into(&mut w);
            let bytes = w.into_bytes();
            let mut r = wire::Reader::new(&bytes);
            let decoded = match shard.decode_checkpoint(&compiled, &mut r) {
                Ok(c) => c,
                Err(CheckpointDecodeError::Stale(s)) => {
                    return Err(TestCaseError::fail(format!("own checkpoint stale: {s}")))
                }
                Err(CheckpointDecodeError::Wire(e)) => {
                    return Err(TestCaseError::fail(format!("own checkpoint malformed: {e}")))
                }
            };
            prop_assert!(r.finished(), "shard checkpoint fully consumed on {}", q);
            let mut w2 = wire::Writer::new();
            decoded.encode_into(&mut w2);
            prop_assert_eq!(&bytes, &w2.into_bytes(), "shard re-encode on {}", q);
            let (live, _) = shard.eval_resume(&compiled, Some(ckpt), usize::MAX / 4).unwrap();
            let (thawed, _) = shard.eval_resume(&compiled, Some(decoded), usize::MAX / 4).unwrap();
            prop_assert_eq!(live, thawed, "shard resume through the wire on {}", q);
        }
    }

    /// A token handed out at any row boundary continues to exactly the
    /// rows in-process offset paging serves from that boundary — and
    /// re-issuing the same token is deterministic, which is the
    /// statelessness contract (nothing server-side distinguishes the
    /// first echo from the second).
    #[test]
    fn token_resume_matches_in_process_paging_at_every_boundary(
        trees in arb_treebank(),
        qi in 0usize..POOL.len(),
        shards in 1usize..4,
    ) {
        let corpus = parse_str(&trees.join("\n")).expect("generated treebank parses");
        let q = POOL[qi];
        let svc = service_over(&corpus, shards);
        let full = (*svc.eval(q).unwrap()).clone();
        for boundary in 1..=full.len() {
            let head = svc.eval_page_token(q, None, boundary).unwrap();
            prop_assert_eq!(&head.rows[..], &full[..boundary], "head at {} on {}", boundary, q);
            let Some(token) = head.token else {
                prop_assert_eq!(boundary, full.len(), "early exhaustion on {}", q);
                continue;
            };
            let tail = svc.eval_page_token(q, Some(&token), usize::MAX - 1).unwrap();
            prop_assert_eq!(&tail.rows[..], &full[boundary..], "tail at {} on {}", boundary, q);
            prop_assert!(tail.token.is_none(), "tail exhausts on {}", q);
            let again = svc.eval_page_token(q, Some(&token), usize::MAX - 1).unwrap();
            prop_assert_eq!(&tail.rows, &again.rows, "re-issue at {} on {}", boundary, q);
            prop_assert_eq!(&tail.token, &again.token, "re-issued token at {} on {}", boundary, q);
            let offset: ResultSet = svc.eval_page(q, boundary, full.len() - boundary + 1).unwrap();
            prop_assert_eq!(&tail.rows, &offset, "offset parity at {} on {}", boundary, q);
        }
    }

    /// Single-character corruption anywhere in a token either fails
    /// with a typed [`ServiceError::BadToken`] or (when the flipped
    /// bits are padding the decoder ignores) serves exactly the
    /// original continuation — and never panics. Truncation at every
    /// boundary is likewise panic-free.
    #[test]
    fn corrupted_and_truncated_tokens_never_panic(
        trees in arb_treebank(),
        qi in 0usize..POOL.len(),
        at in 0usize..4096,
        sub in 0usize..64,
    ) {
        let corpus = parse_str(&trees.join("\n")).expect("generated treebank parses");
        let q = POOL[qi];
        let svc = service_over(&corpus, 2);
        let Some(token) = svc.eval_page_token(q, None, 1).unwrap().token else {
            return Ok(()); // single-row or empty result: nothing to corrupt
        };
        let reference = svc.eval_page_token(q, Some(&token), 3).unwrap();

        let i = at % token.len();
        let replacement = ALPHABET[sub % ALPHABET.len()];
        let mut bad = token.clone().into_bytes();
        if bad[i] == replacement {
            return Ok(()); // identity substitution: nothing corrupted
        }
        bad[i] = replacement;
        let bad = String::from_utf8(bad).unwrap();
        match svc.eval_page_token(q, Some(&bad), 3) {
            Err(ServiceError::BadToken(_)) => {}
            Ok(page) => {
                prop_assert_eq!(&page.rows, &reference.rows, "harmless corruption on {}", q);
            }
            Err(other) => {
                return Err(TestCaseError::fail(format!("unexpected error class: {other}")))
            }
        }

        for cut in 0..token.len() {
            let _ = svc.eval_page_token(q, Some(&token[..cut]), 3);
        }
    }

    /// The same hostile-bytes discipline for **count** tokens:
    /// single-character corruption is a typed rejection or harmless
    /// (same continuation), truncation at every boundary never
    /// panics, and a count sweep driven only by echoed tokens always
    /// lands on the one-shot count.
    #[test]
    fn corrupted_and_truncated_count_tokens_never_panic(
        trees in arb_treebank(),
        qi in 0usize..POOL.len(),
        at in 0usize..4096,
        sub in 0usize..64,
    ) {
        let corpus = parse_str(&trees.join("\n")).expect("generated treebank parses");
        let q = POOL[qi];
        let svc = service_over(&corpus, 2);
        let Some(token) = svc.count_token(q, None, 1).unwrap().token else {
            return Ok(()); // counted out within the first budget
        };
        let reference = svc.count_token(q, Some(&token), usize::MAX).unwrap();
        prop_assert_eq!(
            reference.total, Some(svc.count(q).unwrap() as u64),
            "token sweep lands on the one-shot count on {}", q
        );

        let i = at % token.len();
        let replacement = ALPHABET[sub % ALPHABET.len()];
        let mut bad = token.clone().into_bytes();
        if bad[i] == replacement {
            return Ok(()); // identity substitution: nothing corrupted
        }
        bad[i] = replacement;
        let bad = String::from_utf8(bad).unwrap();
        match svc.count_token(q, Some(&bad), usize::MAX) {
            Err(ServiceError::BadToken(_)) => {}
            Ok(page) => {
                prop_assert_eq!(page.so_far, reference.so_far, "harmless corruption on {}", q);
            }
            Err(other) => {
                return Err(TestCaseError::fail(format!("unexpected error class: {other}")))
            }
        }

        for cut in 0..token.len() {
            let _ = svc.count_token(q, Some(&token[..cut]), 3);
        }

        // Count and paging tokens are version-gated apart: echoing
        // one where the other belongs is a typed rejection, never a
        // misread (both checksum cleanly).
        match svc.eval_page_token(q, Some(&token), 3) {
            Err(ServiceError::BadToken(_)) => {}
            other => {
                return Err(TestCaseError::fail(format!(
                    "count token accepted as page token: {other:?}"
                )))
            }
        }
        if let Some(page_token) = svc.eval_page_token(q, None, 1).unwrap().token {
            match svc.count_token(q, Some(&page_token), 3) {
                Err(ServiceError::BadToken(_)) => {}
                other => {
                    return Err(TestCaseError::fail(format!(
                        "page token accepted as count token: {other:?}"
                    )))
                }
            }
        }
    }

    /// A count token held across an `append_ptb` is stale, not
    /// broken: the service discards the suspended position, recounts
    /// current content, and answers a final page whose total is the
    /// post-append count — and the `stale_checkpoints` counter
    /// advances.
    #[test]
    fn stale_count_tokens_recover_against_current_content(
        trees in arb_treebank(),
        extra in arb_treebank(),
        qi in 0usize..POOL.len(),
        shards in 1usize..4,
    ) {
        let corpus = parse_str(&trees.join("\n")).expect("generated treebank parses");
        let q = POOL[qi];
        let svc = service_over(&corpus, shards);
        let Some(token) = svc.count_token(q, None, 1).unwrap().token else {
            return Ok(()); // counted out before any checkpoint existed
        };
        let before = svc.stats().stale_checkpoints;
        svc.append_ptb(&extra.join("\n")).unwrap();
        let page = svc.count_token(q, Some(&token), 1).unwrap();
        prop_assert_eq!(
            page.total, Some(svc.count(q).unwrap() as u64),
            "stale recovery recounts current content on {}", q
        );
        prop_assert_eq!(page.so_far, page.total.unwrap(), "recovery page is final on {}", q);
        prop_assert!(page.token.is_none(), "no token after recovery on {}", q);
        prop_assert!(svc.stats().stale_checkpoints > before, "recovery counted on {}", q);
    }
}

// ---------------------------------------------------------------
// Version skew, deterministically
// ---------------------------------------------------------------

/// A token whose envelope version was bumped — with the checksum
/// recomputed so only the version check can reject it — fails with
/// exactly [`wire::WireError::Version`], and the rejection counter
/// advances.
#[test]
fn version_bumped_tokens_are_rejected_with_the_version() {
    let corpus = generate(&GenConfig::wsj(10).with_seed(3));
    let svc = service_over(&corpus, 2);
    let token = svc
        .eval_page_token("//NP", None, 1)
        .unwrap()
        .token
        .expect("a 10-sentence corpus has many NPs");
    let mut bytes = wire::b64_decode(&token).unwrap();
    let body_len = bytes.len() - 8;
    let bumped = u16::from_le_bytes([bytes[0], bytes[1]]) + 1;
    bytes[0..2].copy_from_slice(&bumped.to_le_bytes());
    let sum = wire::fnv1a(&bytes[..body_len]);
    bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
    let forged = wire::b64_encode(&bytes);
    let before = svc.stats().tokens_rejected;
    match svc.eval_page_token("//NP", Some(&forged), 1) {
        Err(ServiceError::BadToken(wire::WireError::Version(v))) => assert_eq!(v, bumped),
        other => panic!("expected a version rejection, got {other:?}"),
    }
    assert_eq!(svc.stats().tokens_rejected, before + 1);
}

// ---------------------------------------------------------------
// Batch-minted tokens
// ---------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig {
        cases: ProptestConfig::cases_or_env(256),
        ..ProptestConfig::default()
    })]

    /// A token minted mid-batch by [`Service::eval_multi_tokens`] is
    /// interchangeable with a solo-minted one: the member's first page
    /// equals the solo first page, the batch token resumes through
    /// [`Service::eval_page_token`] exactly as the solo token does,
    /// and a full sweep from either mint reproduces the member's
    /// complete [`Service::eval`] result.
    #[test]
    fn batch_minted_tokens_resume_like_solo_minted_ones(
        trees in arb_treebank(),
        members in prop::collection::vec(0usize..POOL.len(), 1..4),
        limit in 1usize..6,
    ) {
        let corpus = parse_str(&trees.join("\n")).expect("generated treebank parses");
        let svc = service_over(&corpus, 2);
        let texts: Vec<&str> = members.iter().map(|&i| POOL[i]).collect();

        let pages = svc.eval_multi_tokens(&texts, limit);
        prop_assert_eq!(pages.len(), texts.len());
        for (q, page) in texts.iter().zip(pages) {
            let page = page.expect("pool members evaluate");
            let solo = svc.eval_page_token(q, None, limit).unwrap();
            prop_assert_eq!(&page.rows, &solo.rows, "first page on {}", q);

            // Sweep both mints to exhaustion; the concatenations must
            // agree with each other and with the unpaged eval.
            let mut via_batch = page.rows.clone();
            let mut token = page.token.clone();
            while let Some(t) = token {
                let next = svc.eval_page_token(q, Some(&t), limit).unwrap();
                via_batch.extend_from_slice(&next.rows);
                token = next.token;
            }
            let mut via_solo = solo.rows.clone();
            let mut token = solo.token.clone();
            while let Some(t) = token {
                let next = svc.eval_page_token(q, Some(&t), limit).unwrap();
                via_solo.extend_from_slice(&next.rows);
                token = next.token;
            }
            prop_assert_eq!(&via_batch, &via_solo, "sweeps diverged on {}", q);
            prop_assert_eq!(&via_batch, &*svc.eval(q).unwrap(), "sweep vs eval on {}", q);
        }
    }
}
