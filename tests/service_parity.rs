//! Service ↔ engine parity: the sharded, cached, concurrent service
//! must be answer-indistinguishable from one single-threaded
//! [`Engine`] (and from the [`Walker`]) on the paper's whole
//! evaluation query set — at every shard count, before and after
//! cache warm-up, through batches, and across incremental appends.

use std::sync::Arc;

use lpath::prelude::*;
use lpath::service::ExecStrategy;
use lpath_core::EXTENDED_QUERIES;

fn check_parity(corpus: &Corpus, shards: usize, label: &str) {
    let engine = Engine::build(corpus);
    let walker = Walker::new(corpus);
    let service = Service::with_config(
        corpus,
        ServiceConfig {
            shards,
            ..ServiceConfig::default()
        },
    );
    assert_eq!(service.shard_count(), shards, "{label}");

    let texts: Vec<&str> = QUERIES.iter().map(|q| q.lpath).collect();
    let first: Vec<Arc<lpath::service::ResultSet>> = texts
        .iter()
        .map(|q| {
            service
                .eval(q)
                .unwrap_or_else(|e| panic!("{label} {q}: {e}"))
        })
        .collect();

    for (q, got) in QUERIES.iter().zip(&first) {
        let via_engine = engine
            .query(q.lpath)
            .unwrap_or_else(|e| panic!("{label} Q{}: {e}", q.id));
        assert_eq!(
            **got, via_engine,
            "{label} Q{}: service vs engine on {}",
            q.id, q.lpath
        );
        let via_walker = walker.eval(&parse(q.lpath).unwrap());
        assert_eq!(
            **got, via_walker,
            "{label} Q{}: service vs walker on {}",
            q.id, q.lpath
        );
    }

    // A cache-hit re-run returns identical (in fact shared) results —
    // except queries the static analyzer proves empty against this
    // corpus's vocabulary (e.g. a WSJ-only lexeme on SWB), which are
    // answered by the constant-empty fast path and never enter the
    // result cache at all.
    let before = service.stats();
    let mut cached = 0u64;
    let mut fast = 0u64;
    for (q, first_run) in texts.iter().zip(&first) {
        let again = service.eval(q).unwrap();
        assert_eq!(again, *first_run, "{label}: rerun differs on {q}");
        if service.check(q).unwrap().statically_empty {
            assert!(again.is_empty(), "{label}: fast path not empty on {q}");
            fast += 1;
        } else {
            assert!(
                Arc::ptr_eq(&again, first_run),
                "{label}: rerun of {q} was not a cache hit"
            );
            cached += 1;
        }
    }
    let after = service.stats();
    assert_eq!(
        after.result_hits,
        before.result_hits + cached,
        "{label}: rerun must be all result-cache hits"
    );
    assert_eq!(after.result_misses, before.result_misses, "{label}");
    assert_eq!(
        after.statically_empty,
        before.statically_empty + fast,
        "{label}: statically-empty queries must take the fast path"
    );

    // The batch API answers exactly like the one-at-a-time API.
    for (i, r) in service.eval_batch(&texts).into_iter().enumerate() {
        assert_eq!(
            *r.unwrap(),
            *first[i],
            "{label}: batch differs on {}",
            texts[i]
        );
    }
}

#[test]
fn service_matches_engine_and_walker_on_all_23_queries() {
    let wsj = generate(&GenConfig::wsj(120));
    check_parity(&wsj, 1, "wsj/1");
    check_parity(&wsj, 4, "wsj/4");
    let swb = generate(&GenConfig::swb(120));
    check_parity(&swb, 1, "swb/1");
    check_parity(&swb, 4, "swb/4");
}

#[test]
fn walker_fallback_queries_agree_with_the_walker() {
    // The extended set includes queries the relational translation
    // rejects; the service must answer them via its walker fallback,
    // identically to a walker over the full corpus.
    let corpus = generate(&GenConfig::wsj(60));
    let walker = Walker::new(&corpus);
    let service = Service::with_config(
        &corpus,
        ServiceConfig {
            shards: 4,
            ..ServiceConfig::default()
        },
    );
    let mut fallback_seen = 0;
    for q in EXTENDED_QUERIES {
        let compiled = service.compile(q.lpath).unwrap();
        if !q.sql_supported {
            assert_eq!(compiled.strategy, ExecStrategy::Walker, "E{}", q.id);
            fallback_seen += 1;
        }
        let got = service.eval(q.lpath).unwrap();
        let want = walker.eval(&parse(q.lpath).unwrap());
        assert_eq!(*got, want, "E{}: {}", q.id, q.lpath);
    }
    assert!(fallback_seen >= 3, "extended set should exercise fallback");
}

#[test]
fn paged_and_existence_results_survive_appends_and_fallback() {
    // Pages, counts and existence checks must stay prefix-exact across
    // corpus generations (append invalidates both caches) and on
    // walker-fallback queries.
    let base = generate(&GenConfig::wsj(60));
    let extra = generate(&GenConfig::wsj(20).with_seed(7));
    let combined = parse_str(&format!(
        "{}\n{}",
        base.to_ptb_string(),
        extra.to_ptb_string()
    ))
    .unwrap();
    let service = Service::with_config(
        &base,
        ServiceConfig {
            shards: 4,
            ..ServiceConfig::default()
        },
    );
    let check = |label: &str, master: &Corpus| {
        let engine = Engine::build(master);
        let walker = Walker::new(master);
        for q in QUERIES {
            let full = engine.query(q.lpath).unwrap();
            assert_eq!(
                service.count(q.lpath).unwrap(),
                full.len(),
                "{label} Q{} count",
                q.id
            );
            assert_eq!(
                service.exists(q.lpath).unwrap(),
                !full.is_empty(),
                "{label} Q{} exists",
                q.id
            );
            for (offset, limit) in [(0, 7), (2, 3)] {
                let want: Vec<(u32, NodeId)> =
                    full.iter().skip(offset).take(limit).copied().collect();
                assert_eq!(
                    service.eval_page(q.lpath, offset, limit).unwrap(),
                    want,
                    "{label} Q{} page {offset}/{limit}",
                    q.id
                );
            }
        }
        // Walker-fallback queries page identically too.
        for q in EXTENDED_QUERIES.iter().filter(|q| !q.sql_supported) {
            let full = walker.eval(&parse(q.lpath).unwrap());
            let want: Vec<(u32, NodeId)> = full.iter().take(5).copied().collect();
            assert_eq!(
                service.eval_page(q.lpath, 0, 5).unwrap(),
                want,
                "{label} E{} fallback page",
                q.id
            );
        }
    };
    check("gen0", &base);
    service.append_ptb(&extra.to_ptb_string()).unwrap();
    check("gen1", &combined);
}

#[test]
fn incremental_append_matches_fresh_service() {
    // Grow a service tree-batch by tree-batch; answers must always
    // equal a service (and engine) built fresh over the same trees.
    let full = generate(&GenConfig::wsj(80));
    let cut = 60;
    let prefix = full.subcorpus(0..cut);
    let service = Service::with_config(
        &prefix,
        ServiceConfig {
            shards: 4,
            ..ServiceConfig::default()
        },
    );
    let text = full.subcorpus(cut..full.trees().len()).to_ptb_string();
    assert_eq!(service.append_ptb(&text).unwrap(), full.trees().len() - cut);

    let engine = Engine::build(&full);
    for q in QUERIES {
        assert_eq!(
            *service.eval(q.lpath).unwrap(),
            engine.query(q.lpath).unwrap(),
            "post-append Q{}: {}",
            q.id,
            q.lpath
        );
    }
}

#[test]
fn eval_multi_racing_appends_sees_one_consistent_snapshot() {
    // A batch holds one shard snapshot for all its members, so however
    // appends interleave, members whose queries are provably
    // coextensive (`//A` and `//A[not(//ZZZ)]` with `ZZZ` nowhere in
    // any appended text) must return identical rows — a member pair
    // straddling an append would disagree on the trees it saw.
    use std::sync::atomic::{AtomicBool, Ordering};

    let base = generate(&GenConfig::wsj(30));
    let service = std::sync::Arc::new(Service::with_config(
        &base,
        ServiceConfig {
            shards: 4,
            ..ServiceConfig::default()
        },
    ));
    let extra = generate(&GenConfig::wsj(40));
    let done = std::sync::Arc::new(AtomicBool::new(false));

    let writer = {
        let service = std::sync::Arc::clone(&service);
        let done = std::sync::Arc::clone(&done);
        let batches: Vec<String> = (0..10)
            .map(|k| extra.subcorpus(k * 4..(k + 1) * 4).to_ptb_string())
            .collect();
        std::thread::spawn(move || {
            for text in &batches {
                service.append_ptb(text).unwrap();
            }
            done.store(true, Ordering::SeqCst);
        })
    };

    let texts = ["//NP", "//NP[not(//ZZZQQ)]", "//VP", "//VP[not(//ZZZQQ)]"];
    let mut batches_run = 0u32;
    while !done.load(Ordering::SeqCst) || batches_run == 0 {
        let results = service.eval_multi(&texts);
        let rows: Vec<_> = results
            .into_iter()
            .map(|r| r.expect("batch member evaluates"))
            .collect();
        assert_eq!(
            *rows[0], *rows[1],
            "members of one batch must see the same corpus snapshot"
        );
        assert_eq!(*rows[2], *rows[3], "same, on the VP pair");
        batches_run += 1;
    }
    writer.join().unwrap();

    // Settled state: the batch agrees with a fresh engine over the
    // full corpus.
    let full = parse_str(&format!(
        "{}{}",
        base.to_ptb_string(),
        extra.to_ptb_string()
    ))
    .unwrap();
    let engine = Engine::build(&full);
    let settled = service.eval_multi(&["//NP", "//VP"]);
    assert_eq!(
        *settled[0].as_ref().unwrap().clone(),
        engine.query("//NP").unwrap()
    );
    assert_eq!(
        *settled[1].as_ref().unwrap().clone(),
        engine.query("//VP").unwrap()
    );
}
