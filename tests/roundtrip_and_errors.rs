//! Serialization round-trips and error-path behaviour across the
//! workspace.

use lpath::prelude::*;

#[test]
fn generated_corpus_survives_ptb_round_trip() {
    let corpus = generate(&GenConfig::wsj(150));
    let text = corpus.to_ptb_string();
    let back = parse_str(&text).expect("rendered treebank parses");
    assert_eq!(back.trees().len(), corpus.trees().len());
    assert_eq!(back.stats(), {
        let mut s = corpus.stats();
        // ascii_bytes is identical because rendering is canonical.
        s.ascii_bytes = back.stats().ascii_bytes;
        s
    });
}

#[test]
fn query_counts_invariant_under_ptb_round_trip() {
    // Re-parsing the rendered corpus changes symbol ids (fresh
    // interner) but must not change any query's answer.
    let corpus = generate(&GenConfig::wsj(150));
    let back = parse_str(&corpus.to_ptb_string()).unwrap();
    let e1 = Engine::build(&corpus);
    let e2 = Engine::build(&back);
    for q in QUERIES {
        assert_eq!(
            e1.count(q.lpath).unwrap(),
            e2.count(q.lpath).unwrap(),
            "Q{}",
            q.id
        );
    }
}

#[test]
fn engines_reject_garbage_queries_without_panicking() {
    let corpus = generate(&GenConfig::wsj(10));
    let engine = Engine::build(&corpus);
    let tgrep = TgrepEngine::build(&corpus);
    let cs = CsEngine::new(&corpus);
    let xp = XPathEngine::build(&corpus);
    for junk in ["", "//", "((", "//VP{", "//VP[", "->", "\\", "@", "//V=>"] {
        assert!(engine.count(junk).is_err(), "lpath accepted {junk:?}");
        assert!(xp.count(junk).is_err(), "xpath accepted {junk:?}");
    }
    for junk in ["", "<", "NP <", "(", "=x"] {
        assert!(tgrep.count(junk).is_err(), "tgrep accepted {junk:?}");
    }
    for junk in ["", "find", "where x", "find x:NP where x bogus y"] {
        assert!(cs.count(junk).is_err(), "cs accepted {junk:?}");
    }
}

#[test]
fn unknown_vocabulary_is_empty_not_an_error() {
    // Querying tags/words the corpus never saw must return empty
    // result sets on every engine (XPath semantics), not errors.
    let corpus = generate(&GenConfig::wsj(25));
    let engine = Engine::build(&corpus);
    assert_eq!(engine.count("//ZZZ-UNSEEN").unwrap(), 0);
    assert_eq!(engine.count("//_[@lex=zzzunseen]").unwrap(), 0);
    assert_eq!(
        engine.count("//NP[not(//ZZZ)]").unwrap(),
        engine.count("//NP").unwrap()
    );
    let tgrep = TgrepEngine::build(&corpus);
    assert_eq!(tgrep.count("ZZZ-UNSEEN").unwrap(), 0);
    assert_eq!(
        tgrep.count("NP !<< ZZZ-UNSEEN").unwrap(),
        tgrep.count("NP").unwrap()
    );
    let cs = CsEngine::new(&corpus);
    assert_eq!(cs.count("find x:ZZZ-UNSEEN").unwrap(), 0);
}

#[test]
fn empty_and_tiny_corpora() {
    // One-word sentences and minimal trees must not break labeling,
    // loading or any engine.
    let corpus = parse_str("( (S (UH yes)) )\n( (S (NP (PRP I)) (VP (VBP go))) )").unwrap();
    let engine = Engine::build(&corpus);
    assert_eq!(engine.count("//S").unwrap(), 2);
    assert_eq!(engine.count("//UH").unwrap(), 1);
    assert_eq!(engine.count("//NP=>VP").unwrap(), 1);
    assert_eq!(engine.count("//S{/UH$}").unwrap(), 1);
    let walker = Walker::new(&corpus);
    assert_eq!(walker.count(&parse("//^UH$").unwrap()), 1); // spans the whole tree
    let tgrep = TgrepEngine::build(&corpus);
    assert_eq!(tgrep.count("S <- UH").unwrap(), 1);
}

#[test]
fn sql_and_explain_render_for_all_evaluation_queries() {
    let corpus = generate(&GenConfig::wsj(40));
    let engine = Engine::build(&corpus);
    for q in QUERIES {
        let sql = engine
            .sql(q.lpath)
            .unwrap_or_else(|e| panic!("Q{}: {e}", q.id));
        assert!(sql.starts_with("SELECT DISTINCT"), "Q{}: {sql}", q.id);
        assert!(sql.contains("FROM node"), "Q{}: {sql}", q.id);
        let plan = engine.explain(q.lpath).unwrap();
        assert!(plan.contains("step 0"), "Q{}: {plan}", q.id);
    }
}

#[test]
fn tgrep_image_serialization_round_trips_on_generated_corpus() {
    use lpath::tgrep::binfmt::{build_image, decode, encode};
    let corpus = generate(&GenConfig::swb(60));
    let img = build_image(&corpus);
    let back = decode(&encode(&img)).unwrap();
    assert_eq!(img.trees.len(), back.trees.len());
    for (a, b) in img.trees.iter().zip(&back.trees) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.subtree_end, b.subtree_end);
        assert_eq!(a.leaf_at, b.leaf_at);
    }
}

#[test]
fn display_round_trip_on_evaluation_queries() {
    for q in QUERIES {
        let ast = parse(q.lpath).unwrap();
        let printed = ast.to_string();
        let reparsed = parse(&printed).unwrap();
        assert_eq!(ast, reparsed, "Q{}: {} → {}", q.id, q.lpath, printed);
    }
}

mod literal_roundtrip_properties {
    //! Print→parse round-trips for string literals holding arbitrary
    //! characters — most importantly the quote characters themselves,
    //! which the printer escapes by doubling.

    use lpath::syntax::{parse, Axis, CmpOp, NodeTest, Path, Pred, Step, StrFunc};
    use proptest::prelude::*;

    /// Strings over an alphabet that stresses the lexer: quotes of
    /// both kinds, metacharacters, spaces, names.
    fn arb_literal() -> impl Strategy<Value = String> {
        prop::collection::vec(
            prop_oneof![
                Just('\''),
                Just('"'),
                Just('a'),
                Just('B'),
                Just('-'),
                Just('_'),
                Just(' '),
                Just('$'),
                Just('>'),
                Just('['),
            ],
            0..8,
        )
        .prop_map(|cs| cs.into_iter().collect())
    }

    fn attr_path() -> Path {
        Path::relative(vec![Step::new(Axis::Attribute, NodeTest::tag("lex"))])
    }

    proptest! {
        #[test]
        fn value_literals_round_trip(value in arb_literal()) {
            let mut step = Step::new(Axis::Descendant, NodeTest::Any);
            step.predicates.push(Pred::Cmp {
                path: attr_path(),
                op: CmpOp::Eq,
                value: value.clone(),
            });
            let path = Path { absolute: true, steps: vec![step], scope: None };
            let printed = path.to_string();
            let reparsed = parse(&printed)
                .unwrap_or_else(|e| panic!("{value:?} printed as {printed}: {e}"));
            prop_assert_eq!(&path, &reparsed, "{:?} -> {}", value, printed);
        }

        #[test]
        fn tag_literals_round_trip(tag in arb_literal()) {
            let path = Path {
                absolute: true,
                steps: vec![Step::new(Axis::Descendant, NodeTest::tag(tag.clone()))],
                scope: None,
            };
            let printed = path.to_string();
            let reparsed = parse(&printed)
                .unwrap_or_else(|e| panic!("{tag:?} printed as {printed}: {e}"));
            prop_assert_eq!(&path, &reparsed, "{:?} -> {}", tag, printed);
        }

        #[test]
        fn string_function_arguments_round_trip(arg in arb_literal()) {
            let mut step = Step::new(Axis::Descendant, NodeTest::Any);
            step.predicates.push(Pred::StrCmp {
                func: StrFunc::Contains,
                path: attr_path(),
                arg: arg.clone(),
            });
            let path = Path { absolute: true, steps: vec![step], scope: None };
            let printed = path.to_string();
            let reparsed = parse(&printed)
                .unwrap_or_else(|e| panic!("{arg:?} printed as {printed}: {e}"));
            prop_assert_eq!(&path, &reparsed, "{:?} -> {}", arg, printed);
        }
    }
}
