//! The shared evaluation fixture: the paper's 23 queries (Figure 6(c))
//! zipped across all four dialects, with the golden result sizes the
//! paper reports.
//!
//! This is the **single source** for cross-dialect query alignment —
//! consumed by the benchmark harness (`crates/bench`), the
//! `cross_engine` agreement tests and the `prop_pagination` suite,
//! which previously each zipped `QUERIES` with `TGREP_QUERIES[i]` /
//! `CS_QUERIES[i]` by hand. The arrays themselves still live with their
//! engines; this module owns the *correspondence*.
//!
//! Shared from two compilation contexts (the root package's
//! integration tests via `mod fixtures;`, the bench crate via a
//! `#[path]` include), so every consumer uses only a subset of it.
#![allow(dead_code)]

use lpath_core::queryset::QUERIES;
use lpath_corpussearch::CS_QUERIES;
use lpath_tgrep::TGREP_QUERIES;
use lpath_xpath::XPATH_QUERIES;

/// One evaluation query in every dialect it exists in, plus the golden
/// result sizes of the paper's full-scale corpora.
pub struct EvalCase {
    /// 1-based query id (Q1–Q23).
    pub id: usize,
    /// The LPath spelling (Figure 6(c), verbatim).
    pub lpath: &'static str,
    /// The TGrep2-dialect spelling.
    pub tgrep: &'static str,
    /// The CorpusSearch-dialect spelling.
    pub cs: &'static str,
    /// The XPath 1.0 spelling, for the 11 XPath-expressible queries.
    pub xpath: Option<&'static str>,
    /// Result size the paper reports on the full WSJ corpus.
    pub paper_wsj: usize,
    /// Result size the paper reports on the full Switchboard corpus.
    pub paper_swb: usize,
}

/// The evaluation query aligned across dialects, by 1-based id.
pub fn eval_case(id: usize) -> EvalCase {
    let q = &QUERIES[id - 1];
    EvalCase {
        id: q.id,
        lpath: q.lpath,
        tgrep: TGREP_QUERIES[id - 1],
        cs: CS_QUERIES[id - 1],
        xpath: XPATH_QUERIES
            .iter()
            .find(|&&(xid, _)| xid == q.id)
            .map(|&(_, x)| x),
        paper_wsj: q.paper_wsj,
        paper_swb: q.paper_swb,
    }
}

/// All 23 evaluation queries, aligned across dialects.
pub fn eval_cases() -> Vec<EvalCase> {
    QUERIES.iter().map(|q| eval_case(q.id)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_align_one_to_one() {
        let cases = eval_cases();
        assert_eq!(cases.len(), 23);
        let xpath_expressible = cases.iter().filter(|c| c.xpath.is_some()).count();
        assert_eq!(xpath_expressible, 11);
        for (i, c) in cases.iter().enumerate() {
            assert_eq!(c.id, i + 1);
            assert!(!c.lpath.is_empty() && !c.tgrep.is_empty() && !c.cs.is_empty());
        }
    }
}
