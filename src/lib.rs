//! # LPath — an XPath dialect and query engine for linguistic trees
//!
//! A from-scratch reproduction of Bird, Chen, Davidson, Lee & Zheng,
//! *Designing and Evaluating an XPath Dialect for Linguistic Queries*
//! (ICDE 2006), as a Rust workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`model`] | ordered trees, interval labeling (Def. 4.1), Penn Treebank I/O, synthetic WSJ/SWB corpora |
//! | [`syntax`] | the LPath language: lexer, parser, AST, printer |
//! | [`check`] | static query analysis: spanned lint diagnostics, vocabulary-aware emptiness |
//! | [`relstore`] | embedded relational engine: columnar tables, ordered indexes, planner, executor |
//! | [`core`] | the LPath engine: translation to SQL (Table 2), walker and naive oracles, the 23 evaluation queries |
//! | [`xpath`] | XPath 1.0 baseline over the DeHaan start/end labeling (Figure 10) |
//! | [`tgrep`] | TGrep2-style baseline: binary corpus image + word index + backtracking matcher |
//! | [`corpussearch`] | CorpusSearch-style baseline: full-scan search-function interpreter |
//! | [`condxpath`] | Conditional XPath (Marx, PODS 2004): the expressiveness side of Lemma 3.1 |
//! | [`service`] | sharded, cached, concurrent query service over the engines (plan/result caches, incremental ingest, batch fan-out) |
//! | [`server`] | network edge: line-delimited JSON protocol with stateless, serialized paging tokens |
//! | [`obs`] | observability primitives: span timers, log-bucketed histograms, counters, the slow-query ring |
//!
//! ## Quickstart
//!
//! ```
//! use lpath::prelude::*;
//!
//! // Load a treebank (or generate a synthetic one; see `GenConfig`).
//! let corpus = parse_str(
//!     "( (S (NP-SBJ (PRP I)) (VP (VBD saw) (NP (DT the) (NN man))) (. .)) )",
//! ).unwrap();
//!
//! // Build the paper's engine: label, load, cluster, index.
//! let engine = Engine::build(&corpus);
//!
//! // Horizontal navigation beyond XPath: NPs immediately following a verb.
//! assert_eq!(engine.count("//VBD->NP").unwrap(), 1);
//!
//! // Subtree scoping and edge alignment.
//! assert_eq!(engine.count("//VP{/NP$}").unwrap(), 1);
//!
//! // The SQL the paper's engine would emit.
//! let sql = engine.sql("//VBD->NP").unwrap();
//! assert!(sql.contains("n1.left = n0.right"));
//!
//! // Serving many queries? The service shards the corpus, caches
//! // plans and results, and answers batches concurrently.
//! let service = Service::build(&corpus);
//! assert_eq!(service.count("//VBD->NP").unwrap(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lpath_check as check;
pub use lpath_condxpath as condxpath;
pub use lpath_core as core;
pub use lpath_corpussearch as corpussearch;
pub use lpath_model as model;
pub use lpath_obs as obs;
pub use lpath_relstore as relstore;
pub use lpath_server as server;
pub use lpath_service as service;
pub use lpath_syntax as syntax;
pub use lpath_tgrep as tgrep;
pub use lpath_xpath as xpath;

// Compile the README's examples as doctests so the front-page
// quick-starts can never drift from the API.
#[doc = include_str!("../README.md")]
#[doc(hidden)]
pub mod readme {}

/// The architecture guide — layer map, data flow of a paged query,
/// and the cache inventory with invalidation scopes — rendered from
/// `docs/ARCHITECTURE.md` so its examples compile and run as
/// doctests.
///
#[doc = include_str!("../docs/ARCHITECTURE.md")]
pub mod architecture {}

/// The LPath dialect reference — operators, the 23-query translation
/// table across TGrep2/CorpusSearch/XPath, and the EXPLAIN output
/// format — rendered from `docs/DIALECT.md` so its examples compile
/// and run as doctests.
///
#[doc = include_str!("../docs/DIALECT.md")]
pub mod dialect {}

/// The common imports for working with LPath.
pub mod prelude {
    pub use lpath_check::{CheckReport, Diagnostic, Severity};
    pub use lpath_core::{Engine, EngineError, NaiveEvaluator, Walker, QUERIES};
    pub use lpath_corpussearch::{CsEngine, CS_QUERIES};
    pub use lpath_model::ptb::{parse_into, parse_str};
    pub use lpath_model::{generate, Corpus, GenConfig, NodeId, Profile, Tree};
    pub use lpath_relstore::{JoinOrder, OptGoal, PlannerConfig};
    pub use lpath_server::{serve, Client, ServerConfig};
    pub use lpath_service::{Service, ServiceConfig, ServiceError, ServiceStats};
    pub use lpath_syntax::{parse, Axis, Path};
    pub use lpath_tgrep::{TgrepEngine, TGREP_QUERIES};
    pub use lpath_xpath::XPathEngine;
}
