//! Figure 7: per-query execution time on the WSJ-profile corpus,
//! LPath engine vs TGrep2-style vs CorpusSearch-style.
//!
//! Expected shape (paper §5.2): LPath fastest on most queries, except
//! those dominated by low-selectivity tags (Q3, Q18, Q22) where join
//! input sizes dominate; TGrep2 strongest on rare-word queries;
//! CorpusSearch slowest throughout.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lpath_bench::{wsj_corpus, Engines};
use lpath_core::QUERIES;
use lpath_corpussearch::CS_QUERIES;
use lpath_tgrep::TGREP_QUERIES;

fn bench_sentences() -> usize {
    std::env::var("LPATH_BENCH_SENTENCES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(800)
}

fn fig7(c: &mut Criterion) {
    let corpus = wsj_corpus(bench_sentences());
    let engines = Engines::build(&corpus);
    let mut group = c.benchmark_group("fig7_wsj");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(700));
    for q in QUERIES {
        let i = q.id - 1;
        group.bench_with_input(BenchmarkId::new("lpath", q.id), &q.id, |b, _| {
            b.iter(|| engines.lpath.count(q.lpath).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("tgrep", q.id), &q.id, |b, _| {
            b.iter(|| engines.tgrep.count(TGREP_QUERIES[i]).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("corpussearch", q.id), &q.id, |b, _| {
            b.iter(|| engines.cs.count(CS_QUERIES[i]).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);
