//! Figure 10: the LPath leaf-interval labeling vs the XPath start/end
//! labeling (DeHaan et al.) on the 11 XPath-expressible queries, with
//! every other engine component shared.
//!
//! Expected shape: near-identical times — the added expressiveness of
//! the LPath labels costs nothing on the XPath fragment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lpath_bench::wsj_corpus;
use lpath_core::{queryset::by_id, Engine};
use lpath_xpath::{XPathEngine, XPATH_QUERIES};

fn bench_sentences() -> usize {
    std::env::var("LPATH_BENCH_SENTENCES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(800)
}

fn fig10(c: &mut Criterion) {
    let corpus = wsj_corpus(bench_sentences());
    let lpath = Engine::build(&corpus);
    let xpath = XPathEngine::build(&corpus);
    let mut group = c.benchmark_group("fig10_labeling");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(700));
    for (id, xq) in XPATH_QUERIES {
        let lq = by_id(id).lpath;
        assert_eq!(
            lpath.count(lq).unwrap(),
            xpath.count(xq).unwrap(),
            "Q{id} disagreement"
        );
        group.bench_with_input(BenchmarkId::new("lpath_label", id), &id, |b, _| {
            b.iter(|| lpath.count(lq).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("xpath_label", id), &id, |b, _| {
            b.iter(|| xpath.count(xq).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, fig10);
criterion_main!(benches);
