//! Figure 8: per-query execution time on the SWB-profile corpus.
//!
//! Expected shape (paper §5.2): LPath fastest on *all* queries here —
//! the tags its queries touch are much rarer in Switchboard than in
//! WSJ, so the join inputs stay small.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lpath_bench::{swb_corpus, Engines};
use lpath_core::QUERIES;
use lpath_corpussearch::CS_QUERIES;
use lpath_tgrep::TGREP_QUERIES;

fn bench_sentences() -> usize {
    std::env::var("LPATH_BENCH_SENTENCES")
        .ok()
        .and_then(|v| v.parse().ok())
        .map_or(1_800, |wsj: usize| wsj * 110 / 49)
}

fn fig8(c: &mut Criterion) {
    let corpus = swb_corpus(bench_sentences());
    let engines = Engines::build(&corpus);
    let mut group = c.benchmark_group("fig8_swb");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(700));
    for q in QUERIES {
        let i = q.id - 1;
        group.bench_with_input(BenchmarkId::new("lpath", q.id), &q.id, |b, _| {
            b.iter(|| engines.lpath.count(q.lpath).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("tgrep", q.id), &q.id, |b, _| {
            b.iter(|| engines.tgrep.count(TGREP_QUERIES[i]).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("corpussearch", q.id), &q.id, |b, _| {
            b.iter(|| engines.cs.count(CS_QUERIES[i]).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, fig8);
criterion_main!(benches);
