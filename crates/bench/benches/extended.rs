//! Benchmarks for the extended (beyond-paper) query surface.
//!
//! Two questions:
//!
//! * do the function-library forms cost the same as their Figure 6(c)
//!   identities (`count(p)=0` vs `not(p)` — same NOT EXISTS plan)?
//! * what do the string functions cost (IN-set expansion vs plain
//!   value equality)?

use criterion::{criterion_group, criterion_main, Criterion};

use lpath_bench::wsj_corpus;
use lpath_core::Engine;

fn bench_sentences() -> usize {
    std::env::var("LPATH_BENCH_SENTENCES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(800)
}

fn identity_pairs(c: &mut Criterion) {
    let corpus = wsj_corpus(bench_sentences());
    let engine = Engine::build(&corpus);
    let mut group = c.benchmark_group("extended_identities");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(700));
    for (name, query) in [
        ("not_jj", "//NP[not(//JJ)]"),
        ("count_jj_eq0", "//NP[count(//JJ)=0]"),
        ("exists_vp", "//S[//VP]"),
        ("count_vp_gt0", "//S[count(//VP)>0]"),
    ] {
        group.bench_function(name, |b| b.iter(|| engine.count(query).unwrap()));
    }
    group.finish();
}

fn string_functions(c: &mut Criterion) {
    let corpus = wsj_corpus(bench_sentences());
    let engine = Engine::build(&corpus);
    let mut group = c.benchmark_group("extended_string_functions");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(700));
    for (name, query) in [
        // Plain equality — the baseline the paper's engine handles.
        ("value_eq", "//_[@lex=company]"),
        // IN-set expansions of increasing set size.
        ("contains_rare", "//_[contains(@lex,ing)]"),
        ("starts_with", "//_[starts-with(@lex,c)]"),
        ("strlen_gt8", "//_[string-length(@lex)>8]"),
        ("not_contains", "//_[@lex][not(contains(@lex,e))]"),
    ] {
        group.bench_function(name, |b| b.iter(|| engine.count(query).unwrap()));
    }
    group.finish();
}

criterion_group!(benches, identity_pairs, string_functions);
criterion_main!(benches);
