//! Figure 9: scalability — the WSJ corpus replicated 0.5×–4× (paper
//! §5.3), queries Q3, Q6, Q11 on all three engines.
//!
//! Expected shape: near-linear growth for every engine, with LPath
//! keeping its lead as size grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lpath_bench::{wsj_corpus, Engines};
use lpath_core::queryset::{by_id, FIG9_QUERY_IDS};
use lpath_corpussearch::CS_QUERIES;
use lpath_tgrep::TGREP_QUERIES;

fn base_sentences() -> usize {
    std::env::var("LPATH_BENCH_SENTENCES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(600)
}

fn fig9(c: &mut Criterion) {
    let base = wsj_corpus(base_sentences());
    let mut group = c.benchmark_group("fig9_scaling");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(700));
    for factor in [0.5f64, 1.0, 2.0, 3.0, 4.0] {
        let corpus = base.replicate(factor);
        let engines = Engines::build(&corpus);
        let size = corpus.trees().len();
        for qid in FIG9_QUERY_IDS {
            let q = by_id(qid);
            let i = qid - 1;
            group.bench_with_input(
                BenchmarkId::new(format!("q{qid}_lpath"), size),
                &size,
                |b, _| b.iter(|| engines.lpath.count(q.lpath).unwrap()),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("q{qid}_tgrep"), size),
                &size,
                |b, _| b.iter(|| engines.tgrep.count(TGREP_QUERIES[i]).unwrap()),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("q{qid}_corpussearch"), size),
                &size,
                |b, _| b.iter(|| engines.cs.count(CS_QUERIES[i]).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig9);
criterion_main!(benches);
