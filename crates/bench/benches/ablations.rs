//! Ablation benches for the design decisions DESIGN.md calls out:
//!
//! * **join ordering** — greedy statistics-driven vs syntactic order
//!   on the evaluation queries with the largest join graphs;
//! * **tgrep label index** — with vs without postings-based tree
//!   pruning, on a rare-word and a common-tag query;
//! * **engine build cost** — labeling + loading + clustering +
//!   indexing, the one-time preprocessing the paper amortizes;
//! * **parallel scan** — the walker's per-tree partitioned evaluation
//!   at 1/2/4/8 threads (beyond-paper extension).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lpath_bench::wsj_corpus;
use lpath_core::{queryset::by_id, Engine};
use lpath_relstore::{JoinOrder, PlannerConfig};
use lpath_tgrep::{TgrepEngine, TGREP_QUERIES};

fn bench_sentences() -> usize {
    std::env::var("LPATH_BENCH_SENTENCES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(800)
}

fn join_order(c: &mut Criterion) {
    let corpus = wsj_corpus(bench_sentences());
    let greedy = Engine::build(&corpus);
    let syntactic = Engine::with_config(
        &corpus,
        PlannerConfig {
            order: JoinOrder::Syntactic,
            ..Default::default()
        },
    );
    let mut group = c.benchmark_group("ablation_join_order");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(700));
    // Queries with several joins, where ordering can matter.
    for qid in [3usize, 4, 7, 10, 18, 19, 22] {
        let q = by_id(qid);
        group.bench_with_input(BenchmarkId::new("greedy", qid), &qid, |b, _| {
            b.iter(|| greedy.count(q.lpath).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("syntactic", qid), &qid, |b, _| {
            b.iter(|| syntactic.count(q.lpath).unwrap());
        });
    }
    group.finish();
}

fn tgrep_index(c: &mut Criterion) {
    let corpus = wsj_corpus(bench_sentences());
    let engine = TgrepEngine::build(&corpus);
    let mut group = c.benchmark_group("ablation_tgrep_index");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(700));
    // Q12 (rare word) benefits hugely; Q2 (common tags) cannot.
    for qid in [12usize, 13, 1, 2] {
        let pat = TGREP_QUERIES[qid - 1];
        group.bench_with_input(BenchmarkId::new("indexed", qid), &qid, |b, _| {
            b.iter(|| engine.count(pat).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("full_scan", qid), &qid, |b, _| {
            b.iter(|| engine.count_unindexed(pat).unwrap());
        });
    }
    group.finish();
}

fn build_cost(c: &mut Criterion) {
    let corpus = wsj_corpus(400);
    let mut group = c.benchmark_group("ablation_build_cost");
    group.sample_size(10);
    group.bench_function("lpath_engine_build", |b| b.iter(|| Engine::build(&corpus)));
    group.bench_function("tgrep_image_build", |b| {
        b.iter(|| TgrepEngine::build(&corpus));
    });
    group.finish();
}

fn parallel_scan(c: &mut Criterion) {
    use lpath_core::{queryset::QUERIES, Walker};
    use lpath_syntax::{parse, Path};
    let corpus = wsj_corpus(bench_sentences());
    let walker = Walker::new(&corpus);
    let mut group = c.benchmark_group("ablation_parallel_scan");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_secs(2));
    // The whole 23-query evaluation set as one batch: thread startup
    // is paid once per batch, not once per query.
    let queries: Vec<Path> = QUERIES.iter().map(|q| parse(q.lpath).unwrap()).collect();
    let refs: Vec<&Path> = queries.iter().collect();
    let sequential = walker.eval_batch_parallel(&refs, 1);
    for threads in [1usize, 2, 4] {
        assert_eq!(walker.eval_batch_parallel(&refs, threads), sequential);
        group.bench_with_input(
            BenchmarkId::new("batch23_threads", threads),
            &threads,
            |b, &t| b.iter(|| walker.eval_batch_parallel(&refs, t).len()),
        );
    }
    group.finish();
}

criterion_group!(benches, join_order, tgrep_index, build_cost, parallel_scan);
criterion_main!(benches);
