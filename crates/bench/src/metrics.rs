//! The `metrics` harness mode's report: per-query latency percentiles
//! measured under the instrumented service, estimate-vs-actual row
//! counts from `EXPLAIN ANALYZE`, and the instrumentation-overhead
//! comparison — plus the shape validator CI runs over the emitted
//! `BENCH_metrics.json`.
//!
//! The builder and the validator live together (and in the library,
//! not the harness binary) so the checked-in validator test exercises
//! exactly the code the harness emits with.

/// One query's row in `BENCH_metrics.json`.
pub struct QueryMetricsRow {
    /// Query id (Q1–Q23).
    pub id: usize,
    /// The LPath query text.
    pub lpath: &'static str,
    /// Full result size.
    pub results: usize,
    /// Latency percentiles over the measured iterations, nanoseconds.
    pub p50_ns: u64,
    /// 90th percentile latency.
    pub p90_ns: u64,
    /// 99th percentile latency.
    pub p99_ns: u64,
    /// Slowest observed iteration.
    pub max_ns: u64,
    /// The planner's estimated result cardinality.
    pub estimated_rows: usize,
    /// The observed result cardinality.
    pub actual_rows: usize,
    /// The +1-smoothed q-error of the estimate (finite, ≥ 1).
    pub estimate_error: f64,
}

/// Everything the `metrics` mode measures.
pub struct MetricsReport {
    /// WSJ corpus scale (sentences).
    pub wsj_sentences: usize,
    /// Timed iterations per query behind the percentiles.
    pub iterations: usize,
    /// Service shard count.
    pub shards: usize,
    /// Per-query measurements, Q1–Q23.
    pub per_query: Vec<QueryMetricsRow>,
    /// 23-query sweep time with metrics recording on (seconds).
    pub instrumented_secs: f64,
    /// The same sweep with metrics recording off.
    pub baseline_secs: f64,
    /// Instrumentation overhead, percent of the baseline.
    pub overhead_pct: f64,
}

impl MetricsReport {
    /// Render the report in the repository's `BENCH_*.json` house
    /// style (hand-built, one `per_query` object per line).
    pub fn to_json(&self) -> String {
        let mut json = String::new();
        json.push_str("{\n");
        json.push_str("  \"bench\": \"metrics\",\n");
        json.push_str(&format!("  \"wsj_sentences\": {},\n", self.wsj_sentences));
        json.push_str(&format!("  \"iterations\": {},\n", self.iterations));
        json.push_str(&format!("  \"service_shards\": {},\n", self.shards));
        json.push_str("  \"per_query\": [\n");
        for (i, r) in self.per_query.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"id\": {}, \"lpath\": {:?}, \"results\": {}, \"p50_ns\": {}, \
                 \"p90_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}, \"estimated_rows\": {}, \
                 \"actual_rows\": {}, \"estimate_error\": {:.4}}}{}\n",
                r.id,
                r.lpath,
                r.results,
                r.p50_ns,
                r.p90_ns,
                r.p99_ns,
                r.max_ns,
                r.estimated_rows,
                r.actual_rows,
                r.estimate_error,
                if i + 1 < self.per_query.len() {
                    ","
                } else {
                    ""
                },
            ));
        }
        json.push_str("  ],\n");
        json.push_str(&format!(
            "  \"instrumented_secs\": {:.9},\n  \"baseline_secs\": {:.9},\n  \
             \"overhead_pct\": {:.3}\n",
            self.instrumented_secs, self.baseline_secs, self.overhead_pct,
        ));
        json.push_str("}\n");
        json
    }
}

/// Extract the number following `"key": ` on `line` (the house JSON
/// style puts each `per_query` object on one line). Shared with the
/// `server` report validator.
pub(crate) fn field<T: std::str::FromStr>(line: &str, key: &str) -> Option<T> {
    let needle = format!("\"{key}\": ");
    let at = line.find(&needle)? + needle.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Validate the shape of a `BENCH_metrics.json` document: required
/// keys present, at least one per-query row, every row's percentiles
/// monotone (`p50 ≤ p90 ≤ p99 ≤ max`) and its estimate error finite
/// and ≥ 1, and the overhead figures present. Returns the first
/// problem found.
pub fn validate(json: &str) -> Result<(), String> {
    for key in [
        "\"bench\": \"metrics\"",
        "\"per_query\"",
        "\"instrumented_secs\"",
        "\"baseline_secs\"",
        "\"overhead_pct\"",
    ] {
        if !json.contains(key) {
            return Err(format!("missing {key}"));
        }
    }
    let mut rows = 0;
    for line in json.lines().filter(|l| l.contains("\"p50_ns\"")) {
        rows += 1;
        let get = |key: &str| -> Result<u64, String> {
            field(line, key).ok_or_else(|| format!("row missing {key}: {line}"))
        };
        let (p50, p90, p99, max) = (
            get("p50_ns")?,
            get("p90_ns")?,
            get("p99_ns")?,
            get("max_ns")?,
        );
        if !(p50 <= p90 && p90 <= p99 && p99 <= max) {
            return Err(format!(
                "percentiles not monotone (p50 {p50}, p90 {p90}, p99 {p99}, max {max}): {line}"
            ));
        }
        let err: f64 = field(line, "estimate_error")
            .ok_or_else(|| format!("row missing estimate_error: {line}"))?;
        if !err.is_finite() || err < 1.0 {
            return Err(format!("estimate_error {err} not finite and >= 1: {line}"));
        }
    }
    if rows == 0 {
        return Err("no per-query rows".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> MetricsReport {
        MetricsReport {
            wsj_sentences: 300,
            iterations: 9,
            shards: 8,
            per_query: vec![
                QueryMetricsRow {
                    id: 1,
                    lpath: "//VP",
                    results: 42,
                    p50_ns: 1_000,
                    p90_ns: 2_000,
                    p99_ns: 4_000,
                    max_ns: 4_096,
                    estimated_rows: 40,
                    actual_rows: 42,
                    estimate_error: 1.0465,
                },
                QueryMetricsRow {
                    id: 2,
                    lpath: "//NP[@lex=\"man\"]",
                    results: 0,
                    p50_ns: 500,
                    p90_ns: 500,
                    p99_ns: 500,
                    max_ns: 500,
                    estimated_rows: 3,
                    actual_rows: 0,
                    estimate_error: 4.0,
                },
            ],
            instrumented_secs: 0.101,
            baseline_secs: 0.100,
            overhead_pct: 1.0,
        }
    }

    #[test]
    fn emitted_json_validates() {
        let json = report().to_json();
        validate(&json).unwrap();
        // Quoted query text survives the round trip escaped.
        assert!(json.contains("\\\"man\\\""));
    }

    #[test]
    fn validator_rejects_non_monotone_percentiles() {
        let mut r = report();
        r.per_query[0].p90_ns = 100; // below p50
        let err = validate(&r.to_json()).unwrap_err();
        assert!(err.contains("not monotone"), "{err}");
    }

    #[test]
    fn validator_rejects_bad_estimate_error() {
        let mut r = report();
        r.per_query[1].estimate_error = 0.5;
        let err = validate(&r.to_json()).unwrap_err();
        assert!(err.contains("estimate_error"), "{err}");
    }

    #[test]
    fn validator_rejects_missing_keys_and_empty_reports() {
        assert!(validate("{}").is_err());
        let mut r = report();
        r.per_query.clear();
        let err = validate(&r.to_json()).unwrap_err();
        assert!(err.contains("no per-query rows"), "{err}");
    }
}
