//! Shared benchmark infrastructure: corpus construction, engine
//! bundles, the paper's timing methodology and table printers.
//!
//! Every figure and table of the paper's evaluation (§5) is regenerated
//! either by the `harness` binary (paper-style tables, wall-clock
//! timings with the 7-run trimmed mean the paper describes) or by the
//! Criterion benches under `benches/` (statistically rigorous
//! per-query measurements).
//!
//! Scale: the paper's corpora hold ~3.5M nodes each. The default here
//! is 1/20 of the paper's sentence counts — large enough to reproduce
//! every relative effect, small enough for CI. Set
//! `LPATH_BENCH_SENTENCES` (WSJ sentences; SWB is scaled to match the
//! paper's ratio) to change it, e.g. the paper-scale
//! `LPATH_BENCH_SENTENCES=49000`.
//!
//! ```
//! use lpath_bench::{fixtures, wsj_corpus};
//!
//! // A tiny synthetic WSJ slice plus the 23-query alignment fixture.
//! let corpus = wsj_corpus(5);
//! assert_eq!(corpus.trees().len(), 5);
//! assert_eq!(fixtures::eval_cases().len(), 23);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// The cross-dialect query alignment is shared with the repository's
// integration tests — one fixture, consumed from both compilation
// contexts.
#[path = "../../../tests/fixtures/mod.rs"]
pub mod fixtures;

pub mod count;
pub mod metrics;
pub mod multiquery;
pub mod server;

use std::time::{Duration, Instant};

use fixtures::eval_case;
use lpath_core::Engine;
use lpath_corpussearch::CsEngine;
use lpath_model::{generate, Corpus, GenConfig};
use lpath_tgrep::TgrepEngine;
use lpath_xpath::XPathEngine;

/// WSJ sentences at the default benchmark scale.
pub fn default_wsj_sentences() -> usize {
    std::env::var("LPATH_BENCH_SENTENCES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_450)
}

/// SWB sentences matching the paper's WSJ:SWB sentence ratio.
pub fn default_swb_sentences() -> usize {
    default_wsj_sentences() * 110 / 49
}

/// The synthetic WSJ-profile corpus.
pub fn wsj_corpus(sentences: usize) -> Corpus {
    generate(&GenConfig::wsj(sentences))
}

/// The synthetic SWB-profile corpus.
pub fn swb_corpus(sentences: usize) -> Corpus {
    generate(&GenConfig::swb(sentences))
}

/// All engines over one corpus.
pub struct Engines<'c> {
    /// The shared corpus.
    pub corpus: &'c Corpus,
    /// The paper's relational engine.
    pub lpath: Engine,
    /// The TGrep2-style baseline.
    pub tgrep: TgrepEngine,
    /// The CorpusSearch-style baseline.
    pub cs: CsEngine<'c>,
}

impl<'c> Engines<'c> {
    /// Build all three engines over one corpus.
    pub fn build(corpus: &'c Corpus) -> Self {
        Engines {
            corpus,
            lpath: Engine::build(corpus),
            tgrep: TgrepEngine::build(corpus),
            cs: CsEngine::new(corpus),
        }
    }

    /// Run query `id` (1-based) on every engine, returning
    /// (lpath, tgrep, corpussearch) counts — they must agree.
    pub fn counts(&self, id: usize) -> (usize, usize, usize) {
        let case = eval_case(id);
        (
            self.lpath.count(case.lpath).expect("lpath query"),
            self.tgrep.count(case.tgrep).expect("tgrep query"),
            self.cs.count(case.cs).expect("cs query"),
        )
    }
}

/// The paper's timing methodology (§5.1): run 7 times, discard the
/// fastest and slowest, average the rest. Returns the trimmed mean.
pub fn time7(mut f: impl FnMut()) -> Duration {
    let mut runs: Vec<Duration> = (0..7)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    runs.sort();
    let kept = &runs[1..6];
    kept.iter().sum::<Duration>() / kept.len() as u32
}

/// Format a duration the way the paper's log-scale plots think about
/// it: seconds with enough precision for sub-millisecond times.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.6}", d.as_secs_f64())
}

/// The per-query engine timings backing Figures 7 and 8.
pub struct QueryTiming {
    /// Query id (Q1–Q23).
    pub id: usize,
    /// LPath engine time (7-run trimmed mean).
    pub lpath: Duration,
    /// TGrep2 baseline time.
    pub tgrep: Duration,
    /// CorpusSearch baseline time.
    pub cs: Duration,
    /// Result size (sanity cross-check across engines).
    pub result_size: usize,
}

/// Time all 23 queries on all three engines (Figures 7/8 rows).
pub fn figure7_rows(engines: &Engines<'_>) -> Vec<QueryTiming> {
    fixtures::eval_cases()
        .iter()
        .map(|case| {
            let (n1, n2, n3) = engines.counts(case.id);
            assert_eq!(n1, n2, "Q{} lpath vs tgrep", case.id);
            assert_eq!(n1, n3, "Q{} lpath vs corpussearch", case.id);
            QueryTiming {
                id: case.id,
                lpath: time7(|| {
                    engines.lpath.count(case.lpath).unwrap();
                }),
                tgrep: time7(|| {
                    engines.tgrep.count(case.tgrep).unwrap();
                }),
                cs: time7(|| {
                    engines.cs.count(case.cs).unwrap();
                }),
                result_size: n1,
            }
        })
        .collect()
}

/// One Figure 10 row: LPath vs XPath labeling on a shared query.
pub struct LabelingTiming {
    /// Query id (one of the 11 XPath-expressible).
    pub id: usize,
    /// Time over the LPath labeling.
    pub lpath: Duration,
    /// Time over the start/end (DeHaan) labeling.
    pub xpath: Duration,
}

/// Time the 11 XPath-expressible queries on both labeling schemes.
pub fn figure10_rows(corpus: &Corpus) -> Vec<LabelingTiming> {
    let lp = Engine::build(corpus);
    let xp = XPathEngine::build(corpus);
    fixtures::eval_cases()
        .iter()
        .filter_map(|case| case.xpath.map(|xq| (case.id, case.lpath, xq)))
        .map(|(id, lq, xq)| {
            let a = lp.count(lq).unwrap();
            let b = xp.count(xq).unwrap();
            assert_eq!(a, b, "Q{id} labeling schemes disagree");
            LabelingTiming {
                id,
                lpath: time7(|| {
                    lp.count(lq).unwrap();
                }),
                xpath: time7(|| {
                    xp.count(xq).unwrap();
                }),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpath_core::QUERIES;

    #[test]
    fn engines_bundle_agrees_on_a_tiny_corpus() {
        let corpus = wsj_corpus(60);
        let engines = Engines::build(&corpus);
        for q in QUERIES {
            let (a, b, c) = engines.counts(q.id);
            assert_eq!(a, b, "Q{}", q.id);
            assert_eq!(a, c, "Q{}", q.id);
        }
    }

    #[test]
    fn explain_analyze_is_finite_on_all_23_queries() {
        let corpus = wsj_corpus(60);
        let engine = Engine::build(&corpus);
        for q in QUERIES {
            let ea = engine.explain_analyze(q.lpath).expect("evaluation query");
            assert!(
                ea.estimate_error.is_finite() && ea.estimate_error >= 1.0,
                "Q{}: estimate_error {}",
                q.id,
                ea.estimate_error
            );
            assert_eq!(
                ea.actual_rows,
                engine.count(q.lpath).unwrap(),
                "Q{}: analyzed row count disagrees with count()",
                q.id
            );
            // Walker-fallback queries have no plan steps; relational
            // ones emit at most what survived the final step (plan-
            // level checks and dedup may still discard rows after it).
            if let Some(last) = ea.steps.last() {
                assert!(last.actual_rows as usize >= ea.actual_rows, "Q{}", q.id);
            }
        }
    }

    #[test]
    fn time7_returns_a_sane_duration() {
        let d = time7(|| std::thread::sleep(Duration::from_micros(100)));
        assert!(d >= Duration::from_micros(80));
        assert!(d < Duration::from_millis(50));
    }

    #[test]
    fn default_scales_follow_the_paper_ratio() {
        // SWB has ~2.2× the sentences of WSJ in the paper.
        let w = default_wsj_sentences();
        let s = default_swb_sentences();
        assert!(s > 2 * w && s < 3 * w);
    }
}
