//! The `count` harness mode's report: per-query latency of the three
//! ways to learn a result size — the service's index-level count
//! (O(index) when the query classifies into the aggregate tables),
//! the engine's streaming-cursor count (no materialization), and full
//! enumeration — plus the budgeted, checkpointed count sweep; and the
//! shape validator CI runs over the emitted `BENCH_count.json`.
//!
//! The builder and the validator live together (and in the library,
//! not the harness binary) so the checked-in validator test exercises
//! exactly the code the harness emits with.

use crate::metrics::field;

/// One query's row in `BENCH_count.json`.
pub struct CountRow {
    /// Query id (Q1–Q23).
    pub id: usize,
    /// The LPath query text.
    pub lpath: &'static str,
    /// Full result size (the number every path must agree on).
    pub results: usize,
    /// Whether the service answered from the aggregate tables
    /// (observed through the `count_fast` stats delta, not inferred
    /// from the query's shape).
    pub fast: bool,
    /// Service count latency, seconds (the aggregate fast path when
    /// `fast`, the per-shard counting cursor otherwise).
    pub index_count_secs: f64,
    /// Engine streaming-cursor count latency (no materialization).
    pub cursor_count_secs: f64,
    /// Full enumeration latency (materialize + sort).
    pub full_eval_secs: f64,
    /// Pages a budgeted checkpointed count sweep took.
    pub sweep_pages: usize,
    /// Wall time of that whole token-driven sweep, seconds.
    pub sweep_secs: f64,
}

impl CountRow {
    /// How much faster the service count is than full enumeration.
    pub fn speedup_vs_full(&self) -> f64 {
        self.full_eval_secs / self.index_count_secs.max(1e-12)
    }
}

/// Everything the `count` mode measures.
pub struct CountReport {
    /// WSJ corpus scale (sentences).
    pub wsj_sentences: usize,
    /// Service shard count.
    pub shards: usize,
    /// Per-sweep-call match budget.
    pub sweep_budget: usize,
    /// Per-query measurements, Q1–Q23.
    pub per_query: Vec<CountRow>,
}

impl CountReport {
    /// Queries whose count is at least `factor`× faster than full
    /// enumeration.
    pub fn queries_faster_than(&self, factor: f64) -> usize {
        self.per_query
            .iter()
            .filter(|r| r.speedup_vs_full() >= factor)
            .count()
    }

    /// Render the report in the repository's `BENCH_*.json` house
    /// style (hand-built, one `per_query` object per line).
    pub fn to_json(&self) -> String {
        let mut json = String::new();
        json.push_str("{\n");
        json.push_str("  \"bench\": \"count\",\n");
        json.push_str(&format!("  \"wsj_sentences\": {},\n", self.wsj_sentences));
        json.push_str(&format!("  \"service_shards\": {},\n", self.shards));
        json.push_str(&format!("  \"sweep_budget\": {},\n", self.sweep_budget));
        json.push_str("  \"per_query\": [\n");
        for (i, r) in self.per_query.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"id\": {}, \"lpath\": {:?}, \"results\": {}, \"fast\": {}, \
                 \"index_count_secs\": {:.9}, \"cursor_count_secs\": {:.9}, \
                 \"full_eval_secs\": {:.9}, \"sweep_pages\": {}, \"sweep_secs\": {:.9}, \
                 \"speedup_vs_full\": {:.3}}}{}\n",
                r.id,
                r.lpath,
                r.results,
                r.fast,
                r.index_count_secs,
                r.cursor_count_secs,
                r.full_eval_secs,
                r.sweep_pages,
                r.sweep_secs,
                r.speedup_vs_full(),
                if i + 1 < self.per_query.len() {
                    ","
                } else {
                    ""
                },
            ));
        }
        json.push_str("  ],\n");
        json.push_str(&format!(
            "  \"queries_fast_path\": {},\n",
            self.per_query.iter().filter(|r| r.fast).count()
        ));
        json.push_str(&format!(
            "  \"queries_10x\": {}\n",
            self.queries_faster_than(10.0)
        ));
        json.push_str("}\n");
        json
    }
}

/// Validate the shape of a `BENCH_count.json` document: required keys
/// present, at least one per-query row, every row's timings positive
/// and its speedup finite and consistent with them, at least one
/// fast-path row, and a sweep that took at least one page. Returns
/// the first problem found.
pub fn validate(json: &str) -> Result<(), String> {
    for key in [
        "\"bench\": \"count\"",
        "\"per_query\"",
        "\"sweep_budget\"",
        "\"queries_fast_path\"",
        "\"queries_10x\"",
    ] {
        if !json.contains(key) {
            return Err(format!("missing {key}"));
        }
    }
    let mut rows = 0;
    let mut fast_rows = 0;
    for line in json.lines().filter(|l| l.contains("\"index_count_secs\"")) {
        rows += 1;
        let get = |key: &str| -> Result<f64, String> {
            field(line, key).ok_or_else(|| format!("row missing {key}: {line}"))
        };
        let (index, cursor, full) = (
            get("index_count_secs")?,
            get("cursor_count_secs")?,
            get("full_eval_secs")?,
        );
        for (name, v) in [
            ("index_count_secs", index),
            ("cursor_count_secs", cursor),
            ("full_eval_secs", full),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("{name} {v} not finite and positive: {line}"));
            }
        }
        let speedup = get("speedup_vs_full")?;
        if !speedup.is_finite() || speedup <= 0.0 {
            return Err(format!("speedup_vs_full {speedup} not positive: {line}"));
        }
        let pages: u64 =
            field(line, "sweep_pages").ok_or_else(|| format!("row missing sweep_pages: {line}"))?;
        if pages == 0 {
            return Err(format!("sweep took zero pages: {line}"));
        }
        if line.contains("\"fast\": true") {
            fast_rows += 1;
        }
    }
    if rows == 0 {
        return Err("no per-query rows".to_string());
    }
    if fast_rows == 0 {
        return Err("no query took the aggregate fast path".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> CountReport {
        CountReport {
            wsj_sentences: 300,
            shards: 8,
            sweep_budget: 2_000,
            per_query: vec![
                CountRow {
                    id: 12,
                    lpath: "//VB",
                    results: 9_000,
                    fast: true,
                    index_count_secs: 0.000_001,
                    cursor_count_secs: 0.000_900,
                    full_eval_secs: 0.001_100,
                    sweep_pages: 5,
                    sweep_secs: 0.000_800,
                },
                CountRow {
                    id: 1,
                    lpath: "//VP[//VB]//NP",
                    results: 120,
                    fast: false,
                    index_count_secs: 0.000_400,
                    cursor_count_secs: 0.000_350,
                    full_eval_secs: 0.000_500,
                    sweep_pages: 1,
                    sweep_secs: 0.000_450,
                },
            ],
        }
    }

    #[test]
    fn emitted_json_validates() {
        let r = report();
        validate(&r.to_json()).unwrap();
        assert_eq!(r.queries_faster_than(10.0), 1);
        assert_eq!(r.queries_faster_than(1.0), 2);
    }

    #[test]
    fn validator_rejects_nonpositive_timings() {
        let mut r = report();
        r.per_query[0].index_count_secs = 0.0;
        let err = validate(&r.to_json()).unwrap_err();
        assert!(err.contains("index_count_secs"), "{err}");
    }

    #[test]
    fn validator_rejects_zero_page_sweeps() {
        let mut r = report();
        r.per_query[1].sweep_pages = 0;
        let err = validate(&r.to_json()).unwrap_err();
        assert!(err.contains("zero pages"), "{err}");
    }

    #[test]
    fn validator_requires_a_fast_path_row() {
        let mut r = report();
        r.per_query[0].fast = false;
        let err = validate(&r.to_json()).unwrap_err();
        assert!(err.contains("fast path"), "{err}");
    }

    #[test]
    fn validator_rejects_missing_keys_and_empty_reports() {
        assert!(validate("{}").is_err());
        let mut r = report();
        r.per_query.clear();
        let err = validate(&r.to_json()).unwrap_err();
        assert!(err.contains("no per-query rows"), "{err}");
    }
}
