//! The `server` harness mode's report: per-request latency
//! percentiles of the line-delimited JSON protocol measured over a
//! real loopback socket at several concurrency levels, plus the
//! cold-first-page vs deep-token-page comparison — and the shape
//! validator CI runs over the emitted `BENCH_server.json`.
//!
//! The builder and the validator live together (and in the library,
//! not the harness binary) so the checked-in validator test exercises
//! exactly the code the harness emits with.

/// One concurrency level's row in `BENCH_server.json`: `connections`
/// clients each run the full 23-query token sweep; every `eval_page`
/// round trip is one latency sample.
pub struct ConcurrencyRow {
    /// Concurrent client connections.
    pub connections: usize,
    /// Total round trips measured across all connections.
    pub requests: usize,
    /// Median round-trip latency, nanoseconds.
    pub p50_ns: u64,
    /// 90th percentile round-trip latency.
    pub p90_ns: u64,
    /// 99th percentile round-trip latency.
    pub p99_ns: u64,
    /// Slowest observed round trip.
    pub max_ns: u64,
    /// Aggregate request throughput across the level's connections.
    pub throughput_rps: f64,
}

/// One page-phase row: the same query measured at a fixed sweep
/// position — `cold_page` (no token, page 1: parse + plan + first
/// rows) or `deep_page` (the deepest token of the sweep, re-issued;
/// stateless tokens make any page repeatable).
pub struct PhaseRow {
    /// Phase name: `cold_page` or `deep_page`.
    pub phase: &'static str,
    /// The measured LPath query.
    pub lpath: String,
    /// How many pages into the sweep the measured token sits
    /// (0 for the cold page).
    pub page_depth: usize,
    /// Median round-trip latency, nanoseconds.
    pub p50_ns: u64,
    /// 90th percentile round-trip latency.
    pub p90_ns: u64,
    /// 99th percentile round-trip latency.
    pub p99_ns: u64,
    /// Slowest observed round trip.
    pub max_ns: u64,
}

/// Everything the `server` mode measures.
pub struct ServerReport {
    /// WSJ corpus scale (sentences).
    pub wsj_sentences: usize,
    /// Service shard count behind the server.
    pub shards: usize,
    /// Page limit used for every `eval_page` request.
    pub page_limit: usize,
    /// Latency under 1, 2, 4, 8 concurrent connections.
    pub per_concurrency: Vec<ConcurrencyRow>,
    /// Cold first page vs deepest token page.
    pub page_phases: Vec<PhaseRow>,
}

impl ServerReport {
    /// Render the report in the repository's `BENCH_*.json` house
    /// style (hand-built, one row object per line).
    pub fn to_json(&self) -> String {
        let mut json = String::new();
        json.push_str("{\n");
        json.push_str("  \"bench\": \"server\",\n");
        json.push_str(&format!("  \"wsj_sentences\": {},\n", self.wsj_sentences));
        json.push_str(&format!("  \"service_shards\": {},\n", self.shards));
        json.push_str(&format!("  \"page_limit\": {},\n", self.page_limit));
        json.push_str("  \"per_concurrency\": [\n");
        for (i, r) in self.per_concurrency.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"connections\": {}, \"requests\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \
                 \"p99_ns\": {}, \"max_ns\": {}, \"throughput_rps\": {:.3}}}{}\n",
                r.connections,
                r.requests,
                r.p50_ns,
                r.p90_ns,
                r.p99_ns,
                r.max_ns,
                r.throughput_rps,
                if i + 1 < self.per_concurrency.len() {
                    ","
                } else {
                    ""
                },
            ));
        }
        json.push_str("  ],\n");
        json.push_str("  \"page_phases\": [\n");
        for (i, r) in self.page_phases.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"phase\": {:?}, \"lpath\": {:?}, \"page_depth\": {}, \"p50_ns\": {}, \
                 \"p90_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}{}\n",
                r.phase,
                r.lpath,
                r.page_depth,
                r.p50_ns,
                r.p90_ns,
                r.p99_ns,
                r.max_ns,
                if i + 1 < self.page_phases.len() {
                    ","
                } else {
                    ""
                },
            ));
        }
        json.push_str("  ]\n");
        json.push_str("}\n");
        json
    }
}

/// Nearest-rank percentile over an ascending-sorted sample set.
/// Returns 0 for an empty set (an empty level is caught by the
/// validator, not here).
pub fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Validate the shape of a `BENCH_server.json` document: required
/// keys present, every percentile row monotone
/// (`p50 ≤ p90 ≤ p99 ≤ max`), at least one concurrency level with
/// ≥ 4 connections (the acceptance bar), and both page phases
/// present. Returns the first problem found.
pub fn validate(json: &str) -> Result<(), String> {
    for key in [
        "\"bench\": \"server\"",
        "\"per_concurrency\"",
        "\"page_phases\"",
        "\"throughput_rps\"",
        "\"cold_page\"",
        "\"deep_page\"",
    ] {
        if !json.contains(key) {
            return Err(format!("missing {key}"));
        }
    }
    let mut rows = 0;
    let mut max_connections = 0u64;
    for line in json.lines().filter(|l| l.contains("\"p50_ns\"")) {
        rows += 1;
        let get = |key: &str| -> Result<u64, String> {
            crate::metrics::field(line, key).ok_or_else(|| format!("row missing {key}: {line}"))
        };
        let (p50, p90, p99, max) = (
            get("p50_ns")?,
            get("p90_ns")?,
            get("p99_ns")?,
            get("max_ns")?,
        );
        if !(p50 <= p90 && p90 <= p99 && p99 <= max) {
            return Err(format!(
                "percentiles not monotone (p50 {p50}, p90 {p90}, p99 {p99}, max {max}): {line}"
            ));
        }
        if let Some(connections) = crate::metrics::field::<u64>(line, "connections") {
            max_connections = max_connections.max(connections);
            let rps: f64 = crate::metrics::field(line, "throughput_rps")
                .ok_or_else(|| format!("row missing throughput_rps: {line}"))?;
            if !rps.is_finite() || rps <= 0.0 {
                return Err(format!("throughput_rps {rps} not finite and > 0: {line}"));
            }
        }
    }
    if rows == 0 {
        return Err("no percentile rows".to_string());
    }
    if max_connections < 4 {
        return Err(format!(
            "no concurrency level with >= 4 connections (max seen: {max_connections})"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ServerReport {
        let level = |connections: usize| ConcurrencyRow {
            connections,
            requests: 230 * connections,
            p50_ns: 40_000,
            p90_ns: 90_000,
            p99_ns: 200_000,
            max_ns: 1_000_000,
            throughput_rps: 12_000.0,
        };
        ServerReport {
            wsj_sentences: 300,
            shards: 4,
            page_limit: 25,
            per_concurrency: vec![level(1), level(2), level(4), level(8)],
            page_phases: vec![
                PhaseRow {
                    phase: "cold_page",
                    lpath: "//NP".into(),
                    page_depth: 0,
                    p50_ns: 60_000,
                    p90_ns: 80_000,
                    p99_ns: 120_000,
                    max_ns: 130_000,
                },
                PhaseRow {
                    phase: "deep_page",
                    lpath: "//NP".into(),
                    page_depth: 37,
                    p50_ns: 45_000,
                    p90_ns: 70_000,
                    p99_ns: 100_000,
                    max_ns: 110_000,
                },
            ],
        }
    }

    #[test]
    fn emitted_json_validates() {
        validate(&report().to_json()).unwrap();
    }

    #[test]
    fn validator_rejects_non_monotone_percentiles() {
        let mut r = report();
        r.per_concurrency[2].p99_ns = 1; // below p90
        let err = validate(&r.to_json()).unwrap_err();
        assert!(err.contains("not monotone"), "{err}");
    }

    #[test]
    fn validator_requires_four_concurrent_connections() {
        let mut r = report();
        r.per_concurrency.retain(|row| row.connections < 4);
        let err = validate(&r.to_json()).unwrap_err();
        assert!(err.contains(">= 4 connections"), "{err}");
    }

    #[test]
    fn validator_rejects_missing_keys_and_zero_throughput() {
        assert!(validate("{}").is_err());
        let mut r = report();
        r.per_concurrency[0].throughput_rps = 0.0;
        let err = validate(&r.to_json()).unwrap_err();
        assert!(err.contains("throughput_rps"), "{err}");
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let sorted = [10, 20, 30, 40];
        assert_eq!(percentile(&sorted, 50.0), 20);
        assert_eq!(percentile(&sorted, 90.0), 40);
        assert_eq!(percentile(&sorted, 99.0), 40);
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 99.0), 7);
    }
}
