//! The `multiquery` harness mode's report: the paper's 23-query
//! evaluation fixture issued as one `Service::eval_multi` batch
//! against 23 independent `Service::eval` calls, in two regimes.
//!
//! **Steady state** (the headline `solo_secs`/`multi_secs`, where the
//! ≥2× bar applies): the production configuration — result caches on,
//! service warmed — so both sides serve the same hot working set and
//! the measurement isolates what batching amortizes: one plan-cache
//! pass, one shard snapshot, one result-cache lock round and one
//! instrumentation sample per *batch* instead of per *query*. This is
//! the regime a high-traffic service actually lives in.
//!
//! **Cold** (`cold_solo_secs`/`cold_multi_secs`): every cache disabled,
//! so both sides pay full evaluation. Here the batch wins only what
//! subplan sharing saves — duplicate plans executed once, shared
//! anchor enumerations — and the validator demands it stays within a
//! bounded factor of the uncached solo loop (see
//! [`COLD_REGRESSION_SLACK`]). The sharing counters
//! (`shared_members`, `residual_evals`) come from one instrumented
//! cold batch.
//!
//! Before any timing, every member's batched rows are verified
//! byte-identical to its solo rows on the cache-disabled service
//! (`verified_identical`) — independent executions, so the check can
//! never compare a cache entry against itself.
//!
//! The builder and the validator live together (and in the library,
//! not the harness binary) so the checked-in validator test exercises
//! exactly the code the harness emits with.

use crate::metrics::field;

/// One query's row in `BENCH_multiquery.json`.
pub struct MultiRow {
    /// Query id (Q1–Q23).
    pub id: usize,
    /// The LPath query text.
    pub lpath: &'static str,
    /// Full result size (identical on both execution paths).
    pub results: usize,
    /// Solo `Service::eval` latency on the cache-disabled service,
    /// seconds (7-run trimmed mean).
    pub solo_secs: f64,
}

/// Everything the `multiquery` mode measures.
pub struct MultiReport {
    /// WSJ corpus scale (sentences).
    pub wsj_sentences: usize,
    /// Service shard count.
    pub shards: usize,
    /// Steady state: the fixture as 23 independent evals on the warmed
    /// production-config service, seconds (trimmed mean of the loop).
    pub solo_secs: f64,
    /// Steady state: the fixture as one `eval_multi` batch, seconds.
    pub multi_secs: f64,
    /// Cold: the fixture as 23 independent evals with every cache
    /// disabled, seconds.
    pub cold_solo_secs: f64,
    /// Cold: the fixture as one batch with every cache disabled,
    /// seconds.
    pub cold_multi_secs: f64,
    /// Batch members that shared another member's work — rode a shared
    /// anchor enumeration or copied a structurally identical plan's
    /// rows (summed over shards), from the `multi_shared_scans` stats
    /// delta of one cold batch.
    pub shared_members: u64,
    /// Residual filter evaluations those shared scans performed.
    pub residual_evals: u64,
    /// Whether every member's batched rows were verified identical to
    /// its solo rows (independent executions) before timing.
    pub verified_identical: bool,
    /// Per-query measurements, Q1–Q23.
    pub per_query: Vec<MultiRow>,
}

impl MultiReport {
    /// Steady state: how much faster the batch is than the
    /// independent-eval loop (the headline the ≥2× bar applies to).
    pub fn speedup(&self) -> f64 {
        self.solo_secs / self.multi_secs.max(1e-12)
    }

    /// Cold: the uncached execution ratio — what subplan sharing alone
    /// buys (≥1 means the batch also wins cold).
    pub fn cold_speedup(&self) -> f64 {
        self.cold_solo_secs / self.cold_multi_secs.max(1e-12)
    }

    /// Render the report in the repository's `BENCH_*.json` house
    /// style (hand-built, one `per_query` object per line).
    pub fn to_json(&self) -> String {
        let mut json = String::new();
        json.push_str("{\n");
        json.push_str("  \"bench\": \"multiquery\",\n");
        json.push_str(&format!("  \"wsj_sentences\": {},\n", self.wsj_sentences));
        json.push_str(&format!("  \"service_shards\": {},\n", self.shards));
        json.push_str(&format!("  \"solo_secs\": {:.9},\n", self.solo_secs));
        json.push_str(&format!("  \"multi_secs\": {:.9},\n", self.multi_secs));
        json.push_str(&format!("  \"speedup\": {:.3},\n", self.speedup()));
        json.push_str(&format!(
            "  \"cold_solo_secs\": {:.9},\n",
            self.cold_solo_secs
        ));
        json.push_str(&format!(
            "  \"cold_multi_secs\": {:.9},\n",
            self.cold_multi_secs
        ));
        json.push_str(&format!(
            "  \"cold_speedup\": {:.3},\n",
            self.cold_speedup()
        ));
        json.push_str(&format!("  \"shared_members\": {},\n", self.shared_members));
        json.push_str(&format!("  \"residual_evals\": {},\n", self.residual_evals));
        json.push_str(&format!(
            "  \"verified_identical\": {},\n",
            self.verified_identical
        ));
        json.push_str("  \"per_query\": [\n");
        for (i, r) in self.per_query.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"id\": {}, \"lpath\": {:?}, \"results\": {}, \"solo_secs\": {:.9}}}{}\n",
                r.id,
                r.lpath,
                r.results,
                r.solo_secs,
                if i + 1 < self.per_query.len() {
                    ","
                } else {
                    ""
                },
            ));
        }
        json.push_str("  ]\n");
        json.push_str("}\n");
        json
    }
}

/// How much slower than the solo loop the cold batch may run before
/// the validator calls it a regression. Cold execution is roughly
/// work-neutral, not strictly better: sharing removes duplicate work,
/// but a member whose solo plan is more selective than the shared
/// anchor pays residual-filter overhead on the shared candidate
/// stream. Observed cold ratios sit near 1× (±30%); this bound guards
/// against a structural blow-up while absorbing that overhead plus
/// single-run timer noise on loaded CI boxes. The performance *claim*
/// (the ≥2× bar) is steady state.
const COLD_REGRESSION_SLACK: f64 = 2.0;

/// Validate the shape and the claims of a `BENCH_multiquery.json`
/// document: required keys present, at least one per-query row with
/// positive solo timing, the batched results verified identical to
/// the solo ones, at least two members actually sharing work, the
/// steady-state batch at least 2× faster than the independent-eval
/// loop, and the cold batch not meaningfully slower than the cold
/// loop. Returns the first problem found.
pub fn validate(json: &str) -> Result<(), String> {
    for key in [
        "\"bench\": \"multiquery\"",
        "\"per_query\"",
        "\"solo_secs\"",
        "\"multi_secs\"",
        "\"speedup\"",
        "\"cold_solo_secs\"",
        "\"cold_multi_secs\"",
        "\"shared_members\"",
        "\"residual_evals\"",
    ] {
        if !json.contains(key) {
            return Err(format!("missing {key}"));
        }
    }
    if !json.contains("\"verified_identical\": true") {
        return Err("batched results were not verified identical to solo evals".to_string());
    }
    let top = |key: &str| -> Result<f64, String> {
        json.lines()
            .find_map(|l| field(l, key))
            .ok_or_else(|| format!("missing numeric {key}"))
    };
    let (solo, multi) = (top("solo_secs")?, top("multi_secs")?);
    let (cold_solo, cold_multi) = (top("cold_solo_secs")?, top("cold_multi_secs")?);
    for (name, v) in [
        ("solo_secs", solo),
        ("multi_secs", multi),
        ("cold_solo_secs", cold_solo),
        ("cold_multi_secs", cold_multi),
    ] {
        if !(v.is_finite() && v > 0.0) {
            return Err(format!("{name} {v} not finite and positive"));
        }
    }
    let speedup = top("speedup")?;
    if !speedup.is_finite() || speedup < 2.0 {
        return Err(format!(
            "steady-state speedup {speedup:.3} below the 2x bar for the batched fixture"
        ));
    }
    if cold_multi > cold_solo * COLD_REGRESSION_SLACK {
        return Err(format!(
            "cold batch {cold_multi:.6}s regresses the cold solo loop {cold_solo:.6}s"
        ));
    }
    let shared = top("shared_members")?;
    if shared < 2.0 {
        return Err(format!(
            "shared_members {shared} — no work was actually shared"
        ));
    }
    let mut rows = 0;
    for line in json
        .lines()
        .filter(|l| l.contains("\"solo_secs\"") && l.contains("\"id\""))
    {
        rows += 1;
        let secs: f64 =
            field(line, "solo_secs").ok_or_else(|| format!("row missing solo_secs: {line}"))?;
        if !(secs.is_finite() && secs > 0.0) {
            return Err(format!("solo_secs {secs} not finite and positive: {line}"));
        }
    }
    if rows == 0 {
        return Err("no per-query rows".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> MultiReport {
        MultiReport {
            wsj_sentences: 300,
            shards: 8,
            solo_secs: 0.000_08,
            multi_secs: 0.000_02,
            cold_solo_secs: 0.0050,
            cold_multi_secs: 0.0044,
            shared_members: 9,
            residual_evals: 4_200,
            verified_identical: true,
            per_query: vec![
                MultiRow {
                    id: 1,
                    lpath: "//VP[//VB]//NP",
                    results: 120,
                    solo_secs: 0.004,
                },
                MultiRow {
                    id: 12,
                    lpath: "//VB",
                    results: 9_000,
                    solo_secs: 0.006,
                },
            ],
        }
    }

    #[test]
    fn emitted_json_validates() {
        let r = report();
        validate(&r.to_json()).unwrap();
        assert!((r.speedup() - 4.0).abs() < 1e-9);
        assert!(r.cold_speedup() > 1.0);
    }

    #[test]
    fn validator_rejects_sub_2x_speedups() {
        let mut r = report();
        r.multi_secs = 0.000_07;
        let err = validate(&r.to_json()).unwrap_err();
        assert!(err.contains("below the 2x bar"), "{err}");
    }

    #[test]
    fn validator_rejects_cold_regressions() {
        let mut r = report();
        r.cold_multi_secs = r.cold_solo_secs * (COLD_REGRESSION_SLACK + 0.1);
        let err = validate(&r.to_json()).unwrap_err();
        assert!(err.contains("regresses the cold solo loop"), "{err}");
    }

    #[test]
    fn validator_requires_actual_sharing() {
        let mut r = report();
        r.shared_members = 0;
        let err = validate(&r.to_json()).unwrap_err();
        assert!(err.contains("shared"), "{err}");
    }

    #[test]
    fn validator_requires_the_differential_check() {
        let mut r = report();
        r.verified_identical = false;
        let err = validate(&r.to_json()).unwrap_err();
        assert!(err.contains("verified identical"), "{err}");
    }

    #[test]
    fn validator_rejects_missing_keys_and_empty_reports() {
        assert!(validate("{}").is_err());
        let mut r = report();
        r.per_query.clear();
        let err = validate(&r.to_json()).unwrap_err();
        assert!(err.contains("no per-query rows"), "{err}");
    }

    #[test]
    fn validator_rejects_nonpositive_timings() {
        let mut r = report();
        r.per_query[0].solo_secs = 0.0;
        let err = validate(&r.to_json()).unwrap_err();
        assert!(err.contains("solo_secs"), "{err}");
    }
}
