//! Paper-table harness: regenerates every figure of the evaluation
//! section as a textual table, using the paper's own methodology
//! (7 runs, trimmed mean).
//!
//! ```text
//! harness [fig6a|fig6b|fig6c|fig7|fig8|fig9|fig10|ablation|extended|sql|service|firstmatch|page|sweep|metrics|check|count|multiquery|server|all] [sentences]
//! ```
//!
//! With no arguments, prints everything at the default scale (1/20 of
//! the paper's corpus; see `lpath-bench`'s crate docs). Six modes
//! additionally write machine-readable numbers to the working
//! directory: `service` (`BENCH_service.json`), `firstmatch`
//! (`BENCH_firstmatch.json`), `page` — page-1 latency of the
//! limit-aware `FirstRows` pipeline against the `AllRows` baseline —
//! (`BENCH_page.json`), `sweep` — a page-1 → page-K sweep on the
//! resumable executor against per-page recomputation —
//! (`BENCH_sweep.json`), `metrics` — per-query latency
//! percentiles under the instrumented service, `EXPLAIN ANALYZE`
//! estimate errors, and the instrumentation-overhead comparison —
//! (`BENCH_metrics.json`), `check` — static-analysis cost per
//! evaluation query plus the constant-empty fast path against a full
//! walker scan proving emptiness dynamically — (`BENCH_check.json`),
//! `count` — result-size latency three ways (index-level aggregate
//! count, streaming-cursor count, full enumeration) plus the
//! checkpointed count sweep — (`BENCH_count.json`),
//! `multiquery` — the 23-query fixture as one shared-anchor
//! `eval_multi` batch against 23 independent evals, differentially
//! verified — (`BENCH_multiquery.json`),
//! and `server` — round-trip latency of the line-delimited JSON
//! protocol over a real loopback socket: token sweeps at 1/2/4/8
//! concurrent connections plus the cold-first-page vs
//! deep-token-page comparison — (`BENCH_server.json`).

use std::sync::Arc;
use std::time::Instant;

use lpath_bench::{
    default_swb_sentences, default_wsj_sentences, figure10_rows, figure7_rows, fmt_secs,
    swb_corpus, time7, wsj_corpus, Engines,
};
use lpath_core::{Engine, Walker, EXTENDED_QUERIES, QUERIES};
use lpath_corpussearch::CS_QUERIES;
use lpath_model::{Corpus, Profile};
use lpath_relstore::{JoinOrder, OptGoal, PlannerConfig};
use lpath_server::{serve, Client, ServerConfig};
use lpath_service::{Service, ServiceConfig};
use lpath_tgrep::TGREP_QUERIES;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map_or("all", String::as_str);
    let wsj_n = args
        .get(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(default_wsj_sentences);
    let swb_n = wsj_n * default_swb_sentences() / default_wsj_sentences();

    println!("LPath evaluation harness — synthetic corpora");
    println!(
        "scale: WSJ {wsj_n} sentences, SWB {swb_n} sentences \
         (paper: ~49000 / ~110000)\n"
    );

    let wsj = wsj_corpus(wsj_n);
    let swb = swb_corpus(swb_n);

    match what {
        "fig6a" => fig6a(&wsj, &swb),
        "fig6b" => fig6b(&wsj, &swb),
        "fig6c" => fig6c(&wsj, &swb),
        "fig7" => fig7_or_8(&wsj, Profile::Wsj),
        "fig8" => fig7_or_8(&swb, Profile::Swb),
        "fig9" => fig9(&wsj, wsj_n),
        "fig10" => fig10(&wsj),
        "ablation" => ablation(&wsj),
        "extended" => extended(&wsj, &swb),
        "sql" => sql(&wsj),
        "service" => service(&wsj, wsj_n),
        "firstmatch" => firstmatch(&wsj, wsj_n),
        "page" => page(&wsj, wsj_n),
        "sweep" => sweep(&wsj, wsj_n),
        "metrics" => metrics(&wsj, wsj_n),
        "check" => check(&wsj, wsj_n),
        "count" => count(&wsj, wsj_n),
        "multiquery" => multiquery(&wsj, wsj_n),
        "server" => server(&wsj, wsj_n),
        "all" => {
            fig6a(&wsj, &swb);
            fig6b(&wsj, &swb);
            fig6c(&wsj, &swb);
            fig7_or_8(&wsj, Profile::Wsj);
            fig7_or_8(&swb, Profile::Swb);
            fig9(&wsj, wsj_n);
            fig10(&wsj);
            ablation(&wsj);
            extended(&wsj, &swb);
            service(&wsj, wsj_n);
            firstmatch(&wsj, wsj_n);
            page(&wsj, wsj_n);
            sweep(&wsj, wsj_n);
            metrics(&wsj, wsj_n);
            check(&wsj, wsj_n);
            count(&wsj, wsj_n);
            multiquery(&wsj, wsj_n);
            server(&wsj, wsj_n);
        }
        other => {
            eprintln!(
                "unknown figure '{other}'; expected \
                 fig6a|fig6b|fig6c|fig7|fig8|fig9|fig10|ablation|extended|sql|service|firstmatch|page|sweep|metrics|check|count|multiquery|server|all"
            );
            std::process::exit(2);
        }
    }
}

/// Figure 6(a): data set characteristics.
fn fig6a(wsj: &Corpus, swb: &Corpus) {
    println!("== Figure 6(a): test data sets ==");
    println!("{:<22}{:>14}{:>14}", "", "WSJ", "SWB");
    let (w, s) = (wsj.stats(), swb.stats());
    println!(
        "{:<22}{:>13}kB{:>13}kB",
        "File Size",
        w.ascii_bytes / 1024,
        s.ascii_bytes / 1024
    );
    println!("{:<22}{:>14}{:>14}", "Trees", w.trees, s.trees);
    println!(
        "{:<22}{:>14}{:>14}",
        "Tree Nodes", w.total_nodes, s.total_nodes
    );
    println!(
        "{:<22}{:>14}{:>14}",
        "Tokens", w.total_tokens, s.total_tokens
    );
    println!(
        "{:<22}{:>14}{:>14}",
        "Unique Tags", w.unique_tags, s.unique_tags
    );
    println!(
        "{:<22}{:>14}{:>14}",
        "Maximum Depth", w.max_depth, s.max_depth
    );
    println!(
        "(paper, full scale: 35983kB/35880kB; 3484899/3972148 nodes; \
         1274/715 tags; depth 36/36)\n"
    );
}

/// Figure 6(b): top-10 tag frequencies.
fn fig6b(wsj: &Corpus, swb: &Corpus) {
    println!("== Figure 6(b): top 10 frequent tags ==");
    let w = wsj.top_tags(10);
    let s = swb.top_tags(10);
    println!(
        "{:<4}{:<14}{:>10}   {:<14}{:>10}",
        "#", "WSJ tag", "freq", "SWB tag", "freq"
    );
    for i in 0..10 {
        let (wt, wf) = w.get(i).map_or(("-", 0), |(t, f)| (t.as_str(), *f));
        let (st, sf) = s.get(i).map_or(("-", 0), |(t, f)| (t.as_str(), *f));
        println!("{:<4}{:<14}{:>10}   {:<14}{:>10}", i + 1, wt, wf, st, sf);
    }
    println!(
        "(paper order — WSJ: NP VP NN IN NNP S DT NP-SBJ -NONE- JJ; \
         SWB: -DFL- VP NP-SBJ . , S NP PRP NN RB)\n"
    );
}

/// Figure 6(c): the 23 queries and their result sizes.
fn fig6c(wsj: &Corpus, swb: &Corpus) {
    println!("== Figure 6(c): test query set, result sizes ==");
    let we = Engine::build(wsj);
    let se = Engine::build(swb);
    println!(
        "{:<5}{:<44}{:>9}{:>9}{:>11}{:>11}",
        "Q", "LPath", "WSJ", "SWB", "paper-WSJ", "paper-SWB"
    );
    for q in QUERIES {
        let w = we.count(q.lpath).expect("wsj");
        let s = se.count(q.lpath).expect("swb");
        println!(
            "{:<5}{:<44}{:>9}{:>9}{:>11}{:>11}",
            format!("Q{}", q.id),
            q.lpath,
            w,
            s,
            q.paper_wsj,
            q.paper_swb
        );
    }
    println!();
}

/// Figures 7/8: per-query timings, three engines.
fn fig7_or_8(corpus: &Corpus, profile: Profile) {
    let fig = match profile {
        Profile::Wsj => "Figure 7 (WSJ)",
        Profile::Swb => "Figure 8 (SWB)",
    };
    println!("== {fig}: query execution time, seconds (7-run trimmed mean) ==");
    let engines = Engines::build(corpus);
    println!(
        "{:<5}{:>12}{:>12}{:>14}{:>10}",
        "Q", "LPath", "TGrep2", "CorpusSearch", "results"
    );
    for row in figure7_rows(&engines) {
        println!(
            "{:<5}{:>12}{:>12}{:>14}{:>10}",
            format!("Q{}", row.id),
            fmt_secs(row.lpath),
            fmt_secs(row.tgrep),
            fmt_secs(row.cs),
            row.result_size
        );
    }
    println!();
}

/// Figure 9: scalability on replicated WSJ (Q3, Q6, Q11).
fn fig9(wsj: &Corpus, base_sentences: usize) {
    println!("== Figure 9: scalability, replicated WSJ ==");
    for qid in lpath_core::queryset::FIG9_QUERY_IDS {
        let q = lpath_core::queryset::by_id(qid);
        println!("-- Q{qid}: {}", q.lpath);
        println!(
            "{:<12}{:>12}{:>12}{:>14}",
            "sentences", "LPath", "TGrep2", "CorpusSearch"
        );
        for factor in [0.5, 1.0, 2.0, 3.0, 4.0] {
            let corpus = wsj.replicate(factor);
            let engines = Engines::build(&corpus);
            let i = qid - 1;
            let lp = time7(|| {
                engines.lpath.count(q.lpath).unwrap();
            });
            let tg = time7(|| {
                engines.tgrep.count(TGREP_QUERIES[i]).unwrap();
            });
            let cs = time7(|| {
                engines.cs.count(CS_QUERIES[i]).unwrap();
            });
            println!(
                "{:<12}{:>12}{:>12}{:>14}",
                ((base_sentences as f64) * factor) as usize,
                fmt_secs(lp),
                fmt_secs(tg),
                fmt_secs(cs)
            );
        }
    }
    println!();
}

/// Figure 10: LPath vs XPath (start/end) labeling, 11 shared queries.
fn fig10(wsj: &Corpus) {
    println!("== Figure 10: labeling schemes on the XPath-expressible queries (WSJ) ==");
    println!(
        "{:<5}{:>14}{:>14}{:>9}",
        "Q", "LPath-label", "XPath-label", "ratio"
    );
    for row in figure10_rows(wsj) {
        let ratio = row.lpath.as_secs_f64() / row.xpath.as_secs_f64().max(1e-12);
        println!(
            "{:<5}{:>14}{:>14}{:>9.2}",
            format!("Q{}", row.id),
            fmt_secs(row.lpath),
            fmt_secs(row.xpath),
            ratio
        );
    }
    println!();
}

/// Ablations: join ordering and the tgrep label index.
fn ablation(wsj: &Corpus) {
    println!("== Ablation: greedy-statistics vs syntactic join order (WSJ) ==");
    let greedy = Engine::build(wsj);
    let syntactic = Engine::with_config(
        wsj,
        PlannerConfig {
            order: JoinOrder::Syntactic,
            ..Default::default()
        },
    );
    println!("{:<5}{:>12}{:>12}{:>9}", "Q", "greedy", "syntactic", "×");
    for q in QUERIES {
        let a = time7(|| {
            greedy.count(q.lpath).unwrap();
        });
        let b = time7(|| {
            syntactic.count(q.lpath).unwrap();
        });
        println!(
            "{:<5}{:>12}{:>12}{:>9.2}",
            format!("Q{}", q.id),
            fmt_secs(a),
            fmt_secs(b),
            b.as_secs_f64() / a.as_secs_f64().max(1e-12)
        );
    }

    println!("\n== Ablation: tgrep with vs without the label index (WSJ) ==");
    let tg = lpath_tgrep::TgrepEngine::build(wsj);
    println!("{:<5}{:>12}{:>12}{:>9}", "Q", "indexed", "full-scan", "×");
    for (i, pat) in TGREP_QUERIES.iter().enumerate() {
        let a = time7(|| {
            tg.count(pat).unwrap();
        });
        let b = time7(|| {
            tg.count_unindexed(pat).unwrap();
        });
        println!(
            "{:<5}{:>12}{:>12}{:>9.2}",
            format!("Q{}", i + 1),
            fmt_secs(a),
            fmt_secs(b),
            b.as_secs_f64() / a.as_secs_f64().max(1e-12)
        );
    }
    println!();
}

/// The extended (beyond-paper) query set: function library, or-self
/// closures, position() circumlocutions. SQL-supported queries run on
/// the relational engine and are checked against the walker; the rest
/// run on the walker alone. Semantic identities are asserted.
fn extended(wsj: &Corpus, swb: &Corpus) {
    println!("== Extended query set (beyond-paper features) ==");
    println!(
        "{:<5}{:<48}{:>9}{:>9}  {:<8}check",
        "E", "LPath", "WSJ", "SWB", "engine"
    );
    let engines = [Engine::build(wsj), Engine::build(swb)];
    let walkers = [Walker::new(wsj), Walker::new(swb)];
    for q in EXTENDED_QUERIES {
        let ast = lpath_syntax::parse(q.lpath).expect("extended query parses");
        let mut counts = [0usize; 2];
        for ((walker, engine), count) in walkers.iter().zip(&engines).zip(&mut counts) {
            let via_walker = walker.count(&ast);
            if q.sql_supported {
                let via_sql = engine.count(q.lpath).expect("sql-supported");
                assert_eq!(via_sql, via_walker, "E{} engine/walker disagree", q.id);
            }
            *count = via_walker;
        }
        let check = match q.equivalent_to {
            Some(eq) => {
                let eq_ast = lpath_syntax::parse(eq).expect("identity parses");
                for walker in &walkers {
                    assert_eq!(
                        walker.eval(&ast),
                        walker.eval(&eq_ast),
                        "E{} identity violated: {} ≢ {}",
                        q.id,
                        q.lpath,
                        eq
                    );
                }
                format!("≡ {eq}")
            }
            None => String::new(),
        };
        println!(
            "{:<5}{:<48}{:>9}{:>9}  {:<8}{}",
            format!("E{}", q.id),
            q.lpath,
            counts[0],
            counts[1],
            if q.sql_supported { "sql" } else { "walker" },
            check
        );
    }
    println!("(all sql-supported rows verified engine == walker; identities asserted)\n");
}

/// One shard-count row of the service benchmark.
struct ServiceRow {
    shards: usize,
    build_secs: f64,
    query_qps: f64,
    cached_qps: f64,
    cache_hit_rate: f64,
    workload_qps: f64,
    shards_pruned: u64,
    shard_evals: u64,
}

/// The `service` mode: throughput of the sharded, cached, concurrent
/// query service at shard counts {1, 2, 4, 8}, three workloads each:
///
/// * **query** — repeated batches of the 23 evaluation queries with
///   the result cache off (pure evaluation throughput; on multi-core
///   hardware this scales with shards × threads);
/// * **cached** — the same batches with the result cache on (steady-
///   state throughput of a skewed workload);
/// * **ingest+query** — alternating `append_ptb` batches and query
///   batches over a live corpus. Sharding wins here on any hardware:
///   an append rebuilds only the tail shard, so the per-round index
///   maintenance cost drops by roughly the shard count.
///
/// Writes `BENCH_service.json` with every number printed.
fn service(wsj: &Corpus, wsj_n: usize) {
    println!("== Service: sharded, cached, concurrent query service (WSJ) ==");
    let texts: Vec<&str> = QUERIES.iter().map(|q| q.lpath).collect();
    let shard_counts = [1usize, 2, 4, 8];
    let rounds = 3usize;

    // The ingest workload replays the last 20% of the corpus in four
    // batches over a service built on the first 80%.
    let n = wsj.trees().len();
    let cut = n * 4 / 5;
    let prefix = wsj.subcorpus(0..cut);
    let batch_size = ((n - cut) / 4).max(1);
    let ingest_batches: Vec<String> = (cut..n)
        .step_by(batch_size)
        .map(|lo| wsj.subcorpus(lo..(lo + batch_size).min(n)).to_ptb_string())
        .collect();

    let mut rows: Vec<ServiceRow> = Vec::new();
    for &k in &shard_counts {
        // Pure query throughput: result cache off, every batch misses.
        let t = Instant::now();
        let svc = Service::with_config(
            wsj,
            ServiceConfig {
                shards: k,
                result_cache_capacity: 0,
                ..ServiceConfig::default()
            },
        );
        let build_secs = t.elapsed().as_secs_f64();
        let t = Instant::now();
        for _ in 0..rounds {
            for r in svc.eval_batch(&texts) {
                let _ = r.expect("evaluation query");
            }
        }
        let query_qps = (rounds * texts.len()) as f64 / t.elapsed().as_secs_f64();
        let pure_stats = svc.stats();

        // Steady-state cached throughput: warm once, then measure.
        let cached = Service::with_config(
            wsj,
            ServiceConfig {
                shards: k,
                ..ServiceConfig::default()
            },
        );
        for r in cached.eval_batch(&texts) {
            let _ = r.expect("warm-up query");
        }
        let t = Instant::now();
        for _ in 0..rounds {
            for r in cached.eval_batch(&texts) {
                let _ = r.expect("cached query");
            }
        }
        let cached_qps = (rounds * texts.len()) as f64 / t.elapsed().as_secs_f64();
        let cache_hit_rate = cached.stats().result_hit_rate();

        // Live corpus: append a batch, answer the query set, repeat.
        let live = Service::with_config(
            &prefix,
            ServiceConfig {
                shards: k,
                result_cache_capacity: 0,
                ..ServiceConfig::default()
            },
        );
        let t = Instant::now();
        let mut live_queries = 0usize;
        for batch in &ingest_batches {
            live.append_ptb(batch).expect("ingest batch");
            for r in live.eval_batch(&texts) {
                let _ = r.expect("live query");
            }
            live_queries += texts.len();
        }
        let workload_qps = live_queries as f64 / t.elapsed().as_secs_f64();

        rows.push(ServiceRow {
            shards: k,
            build_secs,
            query_qps,
            cached_qps,
            cache_hit_rate,
            workload_qps,
            shards_pruned: pure_stats.shards_pruned,
            shard_evals: pure_stats.shard_evals,
        });
    }

    println!(
        "{:<8}{:>10}{:>12}{:>12}{:>10}{:>18}{:>9}",
        "shards", "build(s)", "query QPS", "cached QPS", "hit", "ingest+query QPS", "pruned"
    );
    for r in &rows {
        println!(
            "{:<8}{:>10.3}{:>12.1}{:>12.1}{:>10.2}{:>18.1}{:>9}",
            r.shards,
            r.build_secs,
            r.query_qps,
            r.cached_qps,
            r.cache_hit_rate,
            r.workload_qps,
            r.shards_pruned,
        );
    }
    let at = |k: usize| rows.iter().find(|r| r.shards == k).unwrap();
    // Guard against 0/0 on degenerate corpora (e.g. `service 0`):
    // NaN would make the JSON unparsable.
    let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
    let speedup_1_to_4 = ratio(at(4).workload_qps, at(1).workload_qps);
    let query_speedup_1_to_4 = ratio(at(4).query_qps, at(1).query_qps);
    println!(
        "ingest+query speedup 1 -> 4 shards: {speedup_1_to_4:.2}x \
         (pure query: {query_speedup_1_to_4:.2}x on {} worker threads)\n",
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
    );

    // Machine-readable trajectory record.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"service\",\n");
    json.push_str(&format!("  \"wsj_sentences\": {wsj_n},\n"));
    json.push_str(&format!(
        "  \"worker_threads\": {},\n",
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
    ));
    json.push_str(&format!("  \"rounds\": {rounds},\n"));
    json.push_str(&format!("  \"queries_per_batch\": {},\n", texts.len()));
    json.push_str("  \"per_shard_count\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"shards\": {}, \"build_secs\": {:.6}, \"query_qps\": {:.3}, \
             \"cached_qps\": {:.3}, \"cache_hit_rate\": {:.4}, \
             \"ingest_query_qps\": {:.3}, \"shard_evals\": {}, \"shards_pruned\": {}}}{}\n",
            r.shards,
            r.build_secs,
            r.query_qps,
            r.cached_qps,
            r.cache_hit_rate,
            r.workload_qps,
            r.shard_evals,
            r.shards_pruned,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"speedup_1_to_4\": {speedup_1_to_4:.4},\n"));
    json.push_str(&format!(
        "  \"query_speedup_1_to_4\": {query_speedup_1_to_4:.4}\n"
    ));
    json.push_str("}\n");
    match std::fs::write("BENCH_service.json", &json) {
        Ok(()) => println!("wrote BENCH_service.json\n"),
        Err(e) => eprintln!("could not write BENCH_service.json: {e}\n"),
    }
}

/// One per-query row of the first-match benchmark.
struct FirstMatchRow {
    id: usize,
    lpath: &'static str,
    results: usize,
    full_secs: f64,
    exists_secs: f64,
    engine_page1_secs: f64,
    service_page1_secs: f64,
}

/// The `firstmatch` mode: interactive-workload latency. The paper
/// measures full enumeration (§5), but a linguist *browsing* matches
/// cares about the first match and the first page. Three early-exit
/// paths against the full-enumeration baseline, per evaluation query:
///
/// * **exists** — [`Engine::exists`]: the streaming cursor stops at
///   its first complete binding;
/// * **engine page-1** — `Engine::query_limit(q, 0, 10)`: tid-range
///   chunked evaluation covering just enough of the corpus;
/// * **service page-1** — `Service::eval_page(q, 0, 10)` at 8 shards
///   with result caching off: shard fan-out short-circuited once the
///   page fills.
///
/// Writes `BENCH_firstmatch.json` with every number printed plus the
/// count of queries whose first-match latency improves ≥ 10×.
fn firstmatch(wsj: &Corpus, wsj_n: usize) {
    println!("== First-match / page-1 latency vs full enumeration (WSJ) ==");
    let engine = Engine::build(wsj);
    let svc = Service::with_config(
        wsj,
        ServiceConfig {
            shards: 8,
            result_cache_capacity: 0,
            ..ServiceConfig::default()
        },
    );
    let mut rows: Vec<FirstMatchRow> = Vec::new();
    for q in QUERIES {
        let results = engine.count(q.lpath).expect("evaluation query");
        let full = time7(|| {
            engine.query(q.lpath).unwrap();
        });
        let exists = time7(|| {
            engine.exists(q.lpath).unwrap();
        });
        let engine_page1 = time7(|| {
            engine.query_limit(q.lpath, 0, 10).unwrap();
        });
        let service_page1 = time7(|| {
            svc.eval_page(q.lpath, 0, 10).unwrap();
        });
        rows.push(FirstMatchRow {
            id: q.id,
            lpath: q.lpath,
            results,
            full_secs: full.as_secs_f64(),
            exists_secs: exists.as_secs_f64(),
            engine_page1_secs: engine_page1.as_secs_f64(),
            service_page1_secs: service_page1.as_secs_f64(),
        });
    }

    // Floor the denominator so an immeasurably fast early exit reads
    // as a huge (finite, JSON-safe) speedup rather than 0×.
    let speedup = |full: f64, fast: f64| full / fast.max(1e-12);
    println!(
        "{:<5}{:>12}{:>12}{:>13}{:>14}{:>10}{:>9}",
        "Q", "full", "exists", "engine pg1", "service pg1", "exist ×", "results"
    );
    for r in &rows {
        println!(
            "{:<5}{:>12.6}{:>12.6}{:>13.6}{:>14.6}{:>10.1}{:>9}",
            format!("Q{}", r.id),
            r.full_secs,
            r.exists_secs,
            r.engine_page1_secs,
            r.service_page1_secs,
            speedup(r.full_secs, r.exists_secs),
            r.results,
        );
    }
    let ten_x = rows
        .iter()
        .filter(|r| r.results > 0 && speedup(r.full_secs, r.exists_secs) >= 10.0)
        .count();
    let page_ten_x = rows
        .iter()
        .filter(|r| {
            r.results > 0
                && speedup(r.full_secs, r.engine_page1_secs.min(r.service_page1_secs)) >= 10.0
        })
        .count();
    println!(
        "queries with first-match latency >= 10x faster than full enumeration: {ten_x} \
         (page-1: {page_ten_x})\n"
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"firstmatch\",\n");
    json.push_str(&format!("  \"wsj_sentences\": {wsj_n},\n"));
    json.push_str("  \"page_size\": 10,\n");
    json.push_str("  \"service_shards\": 8,\n");
    json.push_str("  \"per_query\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"id\": {}, \"lpath\": {:?}, \"results\": {}, \"full_secs\": {:.9}, \
             \"exists_secs\": {:.9}, \"engine_page1_secs\": {:.9}, \
             \"service_page1_secs\": {:.9}, \"first_match_speedup\": {:.3}, \
             \"page1_speedup\": {:.3}}}{}\n",
            r.id,
            r.lpath,
            r.results,
            r.full_secs,
            r.exists_secs,
            r.engine_page1_secs,
            r.service_page1_secs,
            speedup(r.full_secs, r.exists_secs),
            speedup(r.full_secs, r.engine_page1_secs.min(r.service_page1_secs)),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"queries_first_match_10x\": {ten_x},\n  \"queries_page1_10x\": {page_ten_x}\n"
    ));
    json.push_str("}\n");
    match std::fs::write("BENCH_firstmatch.json", &json) {
        Ok(()) => println!("wrote BENCH_firstmatch.json\n"),
        Err(e) => eprintln!("could not write BENCH_firstmatch.json: {e}\n"),
    }
}

/// One per-query row of the page benchmark.
struct PageRow {
    id: usize,
    lpath: &'static str,
    results: usize,
    allrows_secs: f64,
    firstrows_secs: f64,
    service_secs: f64,
}

/// The `page` mode: page-1 (limit 10) latency of the limit-aware
/// pipeline against the pre-limit-aware baseline, per evaluation query:
///
/// * **AllRows** — `Engine::query_limit_with(.., OptGoal::AllRows)`:
///   the plan the engine uses for full enumeration, a fixed initial
///   span of 8 trees doubling per round, tree-id bounds as residual
///   filters (each round rescans the anchor's candidates);
/// * **FirstRows** — the same call under `OptGoal::FirstRows`:
///   startup-cost join order, the initial span sized from the planner's
///   selectivity estimate (~1 round expected), bounds pushed into the
///   anchor's index probe;
/// * **service** — `Service::eval_page` at 8 shards with caching off:
///   the page bound pushed into each visited shard via
///   `Shard::eval_limit`.
///
/// Writes `BENCH_page.json` with every number printed plus the count
/// of queries whose page-1 latency the FirstRows path improves — the
/// plan-regression canary CI smoke-runs on every PR.
fn page(wsj: &Corpus, wsj_n: usize) {
    println!("== Page-1 latency: FirstRows pipeline vs AllRows baseline (WSJ) ==");
    const PAGE: usize = 10;
    let engine = Engine::build(wsj);
    let svc = Service::with_config(
        wsj,
        ServiceConfig {
            shards: 8,
            result_cache_capacity: 0,
            ..ServiceConfig::default()
        },
    );
    let mut rows: Vec<PageRow> = Vec::new();
    for case in lpath_bench::fixtures::eval_cases() {
        let ast = lpath_syntax::parse(case.lpath).expect("evaluation query parses");
        let results = engine.count(case.lpath).expect("evaluation query");
        let baseline = engine
            .query_limit_with(&ast, 0, PAGE, OptGoal::AllRows)
            .unwrap();
        assert_eq!(
            baseline,
            engine
                .query_limit_with(&ast, 0, PAGE, OptGoal::FirstRows(PAGE))
                .unwrap(),
            "Q{}: goals must agree",
            case.id
        );
        let allrows = time7(|| {
            engine
                .query_limit_with(&ast, 0, PAGE, OptGoal::AllRows)
                .unwrap();
        });
        let firstrows = time7(|| {
            engine
                .query_limit_with(&ast, 0, PAGE, OptGoal::FirstRows(PAGE))
                .unwrap();
        });
        let service = time7(|| {
            svc.eval_page(case.lpath, 0, PAGE).unwrap();
        });
        rows.push(PageRow {
            id: case.id,
            lpath: case.lpath,
            results,
            allrows_secs: allrows.as_secs_f64(),
            firstrows_secs: firstrows.as_secs_f64(),
            service_secs: service.as_secs_f64(),
        });
    }

    let speedup = |base: f64, fast: f64| base / fast.max(1e-12);
    println!(
        "{:<5}{:>12}{:>12}{:>13}{:>8}{:>9}",
        "Q", "AllRows", "FirstRows", "service pg1", "×", "results"
    );
    for r in &rows {
        println!(
            "{:<5}{:>12.6}{:>12.6}{:>13.6}{:>8.2}{:>9}",
            format!("Q{}", r.id),
            r.allrows_secs,
            r.firstrows_secs,
            r.service_secs,
            speedup(r.allrows_secs, r.firstrows_secs),
            r.results,
        );
    }
    let improved = rows
        .iter()
        .filter(|r| r.firstrows_secs < r.allrows_secs)
        .count();
    println!(
        "queries with page-1 latency improved by the FirstRows pipeline: {improved} of {}\n",
        rows.len()
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"page\",\n");
    json.push_str(&format!("  \"wsj_sentences\": {wsj_n},\n"));
    json.push_str(&format!("  \"page_size\": {PAGE},\n"));
    json.push_str("  \"service_shards\": 8,\n");
    json.push_str("  \"per_query\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"id\": {}, \"lpath\": {:?}, \"results\": {}, \
             \"allrows_page1_secs\": {:.9}, \"firstrows_page1_secs\": {:.9}, \
             \"service_page1_secs\": {:.9}, \"speedup\": {:.3}}}{}\n",
            r.id,
            r.lpath,
            r.results,
            r.allrows_secs,
            r.firstrows_secs,
            r.service_secs,
            speedup(r.allrows_secs, r.firstrows_secs),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"queries_improved\": {improved},\n  \"queries_total\": {}\n",
        rows.len()
    ));
    json.push_str("}\n");
    match std::fs::write("BENCH_page.json", &json) {
        Ok(()) => println!("wrote BENCH_page.json\n"),
        Err(e) => eprintln!("could not write BENCH_page.json: {e}\n"),
    }
}

/// One per-query row of the sweep benchmark.
struct SweepRow {
    id: usize,
    lpath: &'static str,
    results: usize,
    pages: usize,
    recompute_secs: f64,
    resume_secs: f64,
    service_cold_secs: f64,
    service_warm_secs: f64,
    page_resumes: u64,
    page_partial_evals: u64,
}

/// The `sweep` mode: the interactive paging workload — a user walks
/// pages 1 → K of a query — on the resumable executor against
/// per-page recomputation, per evaluation query:
///
/// * **recompute** — `Engine::query_limit(q, k·10, 10)` for each page
///   `k`: every deeper page re-derives its whole prefix, O(page ×
///   prefix) over the sweep (the PR-3-era cost model);
/// * **resume** — the same pages through `Engine::query_resume`
///   checkpoints: each page enumerates only its own rows, amortized
///   O(rows emitted) over the sweep;
/// * **service cold** — `Service::eval_page` sweeping a fresh
///   8-shard service: deeper pages extend each shard's cached,
///   checkpointed prefix (`page_resumes` counts the extensions;
///   `shard_evals` staying 0 proves no shard was ever fully
///   evaluated);
/// * **service warm** — re-sweeping the same pages, now served
///   entirely from the prefix/result caches.
///
/// Writes `BENCH_sweep.json` with every number printed plus the count
/// of queries the resumable sweep improves — CI smoke-runs this as a
/// regression canary for the resumable executor.
fn sweep(wsj: &Corpus, wsj_n: usize) {
    println!("== Page-1 → page-K sweep: resumable executor vs per-page recompute (WSJ) ==");
    const PAGE: usize = 10;
    const MAX_PAGES: usize = 20;
    let engine = Engine::build(wsj);
    let mut rows: Vec<SweepRow> = Vec::new();
    for case in lpath_bench::fixtures::eval_cases() {
        let ast = lpath_syntax::parse(case.lpath).expect("evaluation query parses");
        let results = engine.count(case.lpath).expect("evaluation query");
        let pages = results.div_ceil(PAGE).clamp(1, MAX_PAGES);

        // Correctness pin: the resumable sweep is byte-identical to
        // the recomputed pages.
        {
            let mut ckpt = None;
            for k in 0..pages {
                let (chunk, next) = engine.query_resume(&ast, ckpt.take(), PAGE).unwrap();
                assert_eq!(
                    chunk,
                    engine.query_limit_ast(&ast, k * PAGE, PAGE).unwrap(),
                    "Q{} page {k}: resume and recompute disagree",
                    case.id
                );
                match next {
                    Some(c) => ckpt = Some(c),
                    None => break,
                }
            }
        }

        let recompute = time7(|| {
            for k in 0..pages {
                engine.query_limit_ast(&ast, k * PAGE, PAGE).unwrap();
            }
        });
        let resume = time7(|| {
            let mut ckpt = None;
            for _ in 0..pages {
                let (_, next) = engine.query_resume(&ast, ckpt.take(), PAGE).unwrap();
                match next {
                    Some(c) => ckpt = Some(c),
                    None => break,
                }
            }
        });

        // Service sweep: cold (prefixes built page by page), then warm
        // (pure cache).
        let svc = Service::with_config(
            wsj,
            ServiceConfig {
                shards: 8,
                ..ServiceConfig::default()
            },
        );
        let t = Instant::now();
        for k in 0..pages {
            svc.eval_page(case.lpath, k * PAGE, PAGE).unwrap();
        }
        let service_cold = t.elapsed();
        let stats = svc.stats();
        assert_eq!(
            stats.shard_evals, 0,
            "Q{}: the sweep must never fully evaluate a shard",
            case.id
        );
        let service_warm = time7(|| {
            for k in 0..pages {
                svc.eval_page(case.lpath, k * PAGE, PAGE).unwrap();
            }
        });
        rows.push(SweepRow {
            id: case.id,
            lpath: case.lpath,
            results,
            pages,
            recompute_secs: recompute.as_secs_f64(),
            resume_secs: resume.as_secs_f64(),
            service_cold_secs: service_cold.as_secs_f64(),
            service_warm_secs: service_warm.as_secs_f64(),
            page_resumes: stats.page_resumes,
            page_partial_evals: stats.page_partial_evals,
        });
    }

    let speedup = |base: f64, fast: f64| base / fast.max(1e-12);
    println!(
        "{:<5}{:>7}{:>12}{:>12}{:>13}{:>13}{:>8}{:>9}",
        "Q", "pages", "recompute", "resume", "svc cold", "svc warm", "×", "results"
    );
    for r in &rows {
        println!(
            "{:<5}{:>7}{:>12.6}{:>12.6}{:>13.6}{:>13.6}{:>8.2}{:>9}",
            format!("Q{}", r.id),
            r.pages,
            r.recompute_secs,
            r.resume_secs,
            r.service_cold_secs,
            r.service_warm_secs,
            speedup(r.recompute_secs, r.resume_secs),
            r.results,
        );
    }
    let improved = rows
        .iter()
        .filter(|r| r.pages > 1 && r.resume_secs < r.recompute_secs)
        .count();
    let multi = rows.iter().filter(|r| r.pages > 1).count();
    println!(
        "multi-page queries whose sweep the resumable executor improves: {improved} of {multi}\n"
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"sweep\",\n");
    json.push_str(&format!("  \"wsj_sentences\": {wsj_n},\n"));
    json.push_str(&format!("  \"page_size\": {PAGE},\n"));
    json.push_str(&format!("  \"max_pages\": {MAX_PAGES},\n"));
    json.push_str("  \"service_shards\": 8,\n");
    json.push_str("  \"per_query\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"id\": {}, \"lpath\": {:?}, \"results\": {}, \"pages\": {}, \
             \"sweep_recompute_secs\": {:.9}, \"sweep_resume_secs\": {:.9}, \
             \"service_cold_sweep_secs\": {:.9}, \"service_warm_sweep_secs\": {:.9}, \
             \"page_resumes\": {}, \"page_partial_evals\": {}, \"speedup\": {:.3}}}{}\n",
            r.id,
            r.lpath,
            r.results,
            r.pages,
            r.recompute_secs,
            r.resume_secs,
            r.service_cold_secs,
            r.service_warm_secs,
            r.page_resumes,
            r.page_partial_evals,
            speedup(r.recompute_secs, r.resume_secs),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"queries_improved\": {improved},\n  \"queries_multi_page\": {multi}\n"
    ));
    json.push_str("}\n");
    match std::fs::write("BENCH_sweep.json", &json) {
        Ok(()) => println!("wrote BENCH_sweep.json\n"),
        Err(e) => eprintln!("could not write BENCH_sweep.json: {e}\n"),
    }
}

/// Show the generated SQL for every evaluation query (paper §4).
fn sql(wsj: &Corpus) {
    println!("== LPath → SQL translations ==");
    let e = Engine::build(wsj);
    for q in QUERIES {
        println!("-- Q{}: {}", q.id, q.lpath);
        match e.sql(q.lpath) {
            Ok(sql) => println!("   {sql}\n"),
            Err(err) => println!("   (unsupported: {err})\n"),
        }
    }
}

/// Per-query latency percentiles under the instrumented service,
/// estimate-vs-actual row counts from `EXPLAIN ANALYZE`, and the
/// instrumentation-overhead comparison (metrics on vs off over the
/// same 23-query page sweep). Writes `BENCH_metrics.json`.
fn metrics(wsj: &Corpus, wsj_n: usize) {
    println!("== Query metrics: latency percentiles, estimate error, overhead (WSJ) ==");
    const ITERS: usize = 9;
    const SHARDS: usize = 8;
    let engine = Engine::build(wsj);
    let svc = Service::with_config(
        wsj,
        ServiceConfig {
            shards: SHARDS,
            ..ServiceConfig::default()
        },
    );

    let mut rows: Vec<lpath_bench::metrics::QueryMetricsRow> = Vec::new();
    for q in QUERIES {
        // Distribution over a cold first page then warm repeats — the
        // shape a live service sees; the histogram is the same
        // primitive the service records into.
        let hist = lpath_obs::Histogram::new();
        for _ in 0..ITERS {
            let t = Instant::now();
            svc.eval_page(q.lpath, 0, 10).unwrap();
            hist.record_duration(t.elapsed());
        }
        let snap = hist.snapshot();
        let ea = engine.explain_analyze(q.lpath).expect("evaluation query");
        rows.push(lpath_bench::metrics::QueryMetricsRow {
            id: q.id,
            lpath: q.lpath,
            results: ea.actual_rows,
            p50_ns: snap.p50,
            p90_ns: snap.p90,
            p99_ns: snap.p99,
            max_ns: snap.max,
            estimated_rows: ea.estimated_rows,
            actual_rows: ea.actual_rows,
            estimate_error: ea.estimate_error,
        });
    }

    println!(
        "{:<5}{:>12}{:>12}{:>12}{:>10}{:>10}{:>8}",
        "Q", "p50", "p90", "p99", "est", "actual", "q-err"
    );
    for r in &rows {
        println!(
            "{:<5}{:>12}{:>12}{:>12}{:>10}{:>10}{:>8.2}",
            format!("Q{}", r.id),
            r.p50_ns,
            r.p90_ns,
            r.p99_ns,
            r.estimated_rows,
            r.actual_rows,
            r.estimate_error,
        );
    }

    // Overhead: the identical 23-query page sweep against two fresh
    // uncached services, one recording latencies, one with metrics
    // off (caches disabled so every run does real evaluation work).
    let sweep_cfg = |metrics: bool| ServiceConfig {
        shards: SHARDS,
        result_cache_capacity: 0,
        metrics,
        ..ServiceConfig::default()
    };
    let svc_on = Service::with_config(wsj, sweep_cfg(true));
    let svc_off = Service::with_config(wsj, sweep_cfg(false));
    let run = |svc: &Service| {
        for q in QUERIES {
            svc.eval_page(q.lpath, 0, 10).unwrap();
        }
    };
    let instrumented = time7(|| run(&svc_on));
    let baseline = time7(|| run(&svc_off));
    let overhead_pct =
        (instrumented.as_secs_f64() / baseline.as_secs_f64().max(1e-12) - 1.0) * 100.0;
    println!(
        "\n23-query sweep: instrumented {}s, baseline {}s, overhead {overhead_pct:.2}%",
        fmt_secs(instrumented),
        fmt_secs(baseline)
    );
    let m = svc_on.metrics();
    println!(
        "service histograms: {} classes recorded, {} slow queries retained\n",
        m.classes
            .iter()
            .filter(|c| c.hits.count + c.misses.count > 0)
            .count(),
        m.slow_queries.len()
    );

    let report = lpath_bench::metrics::MetricsReport {
        wsj_sentences: wsj_n,
        iterations: ITERS,
        shards: SHARDS,
        per_query: rows,
        instrumented_secs: instrumented.as_secs_f64(),
        baseline_secs: baseline.as_secs_f64(),
        overhead_pct,
    };
    let json = report.to_json();
    lpath_bench::metrics::validate(&json).expect("metrics report shape");
    match std::fs::write("BENCH_metrics.json", &json) {
        Ok(()) => println!("wrote BENCH_metrics.json\n"),
        Err(e) => eprintln!("could not write BENCH_metrics.json: {e}\n"),
    }
}

/// The `check` mode: what the static-analysis front door costs and
/// what it buys.
///
/// * cost — `Engine::check` latency for each of the 23 evaluation
///   queries (the pass runs on every compile, so it must be orders of
///   magnitude below plan+execute);
/// * payoff — end-to-end latency of statically-empty queries through
///   the service's constant-empty fast path, against a full walker
///   scan proving the same emptiness dynamically.
///
/// Writes `BENCH_check.json`.
fn check(wsj: &Corpus, wsj_n: usize) {
    println!("== Static analysis: per-query check cost, constant-empty payoff (WSJ) ==");
    let engine = Engine::build(wsj);
    let svc = Service::build(wsj);

    println!("{:<5}{:>14}{:>8}{:>8}", "Q", "check", "lints", "empty");
    let mut cost_rows = Vec::new();
    for q in QUERIES {
        let secs = time7(|| {
            engine.check(q.lpath).unwrap();
        });
        let report = engine.check(q.lpath).unwrap();
        let lints = report.diagnostics.len();
        println!(
            "{:<5}{:>13}s{:>8}{:>8}",
            format!("Q{}", q.id),
            fmt_secs(secs),
            lints,
            report.statically_empty,
        );
        cost_rows.push((
            q.id,
            q.lpath,
            secs.as_secs_f64(),
            lints,
            report.statically_empty,
        ));
    }

    // Statically-empty queries: unknown vocabulary, an impossible
    // position, and contradictory attribute values on one node.
    let empty_queries = [
        "//QQQZ",
        "//_[@lex=qqqzz]",
        "//NP[position()=0]",
        "//_[@lex=alpha and @lex=beta]",
    ];
    let walker = Walker::new(wsj);
    println!(
        "\n{:<34}{:>14}{:>14}{:>10}",
        "statically-empty query", "fast path", "walker scan", "×"
    );
    let mut payoff_rows = Vec::new();
    for q in &empty_queries {
        let fast = time7(|| {
            assert!(svc.eval(q).unwrap().is_empty());
        });
        let ast = lpath_syntax::parse(q).unwrap();
        let scan = time7(|| {
            assert!(walker.eval(&ast).is_empty());
        });
        let speedup = scan.as_secs_f64() / fast.as_secs_f64().max(1e-12);
        println!(
            "{:<34}{:>13}s{:>13}s{:>10.1}",
            q,
            fmt_secs(fast),
            fmt_secs(scan),
            speedup
        );
        payoff_rows.push((*q, fast.as_secs_f64(), scan.as_secs_f64(), speedup));
    }
    let served = svc.stats().statically_empty;
    println!("service requests answered by the constant-empty fast path: {served}\n");

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"check\",\n");
    json.push_str(&format!("  \"wsj_sentences\": {wsj_n},\n"));
    json.push_str("  \"check_cost\": [\n");
    for (i, (id, lpath, secs, lints, empty)) in cost_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"id\": {id}, \"lpath\": {lpath:?}, \"check_secs\": {secs:.9}, \
             \"diagnostics\": {lints}, \"statically_empty\": {empty}}}{}\n",
            if i + 1 < cost_rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"constant_empty_payoff\": [\n");
    for (i, (lpath, fast, scan, speedup)) in payoff_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"lpath\": {lpath:?}, \"fastpath_secs\": {fast:.9}, \
             \"walker_secs\": {scan:.9}, \"speedup\": {speedup:.3}}}{}\n",
            if i + 1 < payoff_rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"statically_empty_served\": {served}\n"));
    json.push_str("}\n");
    match std::fs::write("BENCH_check.json", &json) {
        Ok(()) => println!("wrote BENCH_check.json\n"),
        Err(e) => eprintln!("could not write BENCH_check.json: {e}\n"),
    }
}

/// The `count` mode: result-size latency three ways, per evaluation
/// query:
///
/// * **index count** — `Service::count` with every cache disabled:
///   queries that classify into the per-shard aggregate tables are
///   answered in O(index lookup) — no cursor, no rows (the `fast`
///   column, observed through the `count_fast` stats delta); the rest
///   run the per-shard counting cursor;
/// * **cursor count** — `Engine::count`: the streaming cursor tallies
///   matches without materializing them;
/// * **full eval** — `Engine::query`: materialize and sort
///   everything, then take the length (the pre-counting cost model).
///
/// Also walks one budgeted `Service::count_token` sweep per query —
/// the checkpointed count a client drives over the wire — timing the
/// whole token round and pinning its total to the one-shot count.
/// Writes `BENCH_count.json`; CI smoke-runs this as the aggregate-
/// table regression canary.
fn count(wsj: &Corpus, wsj_n: usize) {
    println!("== Count: index-level aggregates vs cursor count vs full enumeration (WSJ) ==");
    const SHARDS: usize = 8;
    const SWEEP_BUDGET: usize = 2_000;
    let engine = Engine::build(wsj);
    // Every cache off: each timed iteration pays the real cost.
    let svc = Service::with_config(
        wsj,
        ServiceConfig {
            shards: SHARDS,
            result_cache_capacity: 0,
            ..ServiceConfig::default()
        },
    );

    let mut rows: Vec<lpath_bench::count::CountRow> = Vec::new();
    for q in QUERIES {
        let results = engine.count(q.lpath).expect("evaluation query");
        assert_eq!(
            svc.count(q.lpath).unwrap(),
            results,
            "Q{}: service and engine counts must agree",
            q.id
        );
        let fast_before = svc.stats().count_fast;
        svc.count(q.lpath).unwrap();
        let fast = svc.stats().count_fast > fast_before;

        let index_count = time7(|| {
            svc.count(q.lpath).unwrap();
        });
        let cursor_count = time7(|| {
            engine.count(q.lpath).unwrap();
        });
        let full_eval = time7(|| {
            engine.query(q.lpath).unwrap();
        });

        // One checkpointed sweep, driven purely by echoed tokens.
        let t = Instant::now();
        let mut sweep_pages = 0usize;
        let mut token: Option<String> = None;
        let total = loop {
            let page = svc
                .count_token(q.lpath, token.as_deref(), SWEEP_BUDGET)
                .unwrap();
            sweep_pages += 1;
            match page.total {
                Some(n) => break n,
                None => token = Some(page.token.expect("unfinished sweep mints a token")),
            }
        };
        let sweep_secs = t.elapsed().as_secs_f64();
        assert_eq!(
            total, results as u64,
            "Q{}: the checkpointed sweep must land on the one-shot count",
            q.id
        );

        rows.push(lpath_bench::count::CountRow {
            id: q.id,
            lpath: q.lpath,
            results,
            fast,
            index_count_secs: index_count.as_secs_f64(),
            cursor_count_secs: cursor_count.as_secs_f64(),
            full_eval_secs: full_eval.as_secs_f64(),
            sweep_pages,
            sweep_secs,
        });
    }

    println!(
        "{:<5}{:>6}{:>13}{:>13}{:>13}{:>9}{:>7}{:>9}",
        "Q", "fast", "index", "cursor", "full eval", "×full", "pages", "results"
    );
    for r in &rows {
        println!(
            "{:<5}{:>6}{:>13.6}{:>13.6}{:>13.6}{:>9.1}{:>7}{:>9}",
            format!("Q{}", r.id),
            r.fast,
            r.index_count_secs,
            r.cursor_count_secs,
            r.full_eval_secs,
            r.speedup_vs_full(),
            r.sweep_pages,
            r.results,
        );
    }
    let report = lpath_bench::count::CountReport {
        wsj_sentences: wsj_n,
        shards: SHARDS,
        sweep_budget: SWEEP_BUDGET,
        per_query: rows,
    };
    println!(
        "fast-path queries: {} of {}; counts >= 10x faster than full enumeration: {}\n",
        report.per_query.iter().filter(|r| r.fast).count(),
        report.per_query.len(),
        report.queries_faster_than(10.0)
    );
    let json = report.to_json();
    lpath_bench::count::validate(&json).expect("count report shape");
    match std::fs::write("BENCH_count.json", &json) {
        Ok(()) => println!("wrote BENCH_count.json\n"),
        Err(e) => eprintln!("could not write BENCH_count.json: {e}\n"),
    }
}

/// The `multiquery` mode: the 23-query evaluation fixture issued as
/// one `Service::eval_multi` batch against 23 independent
/// `Service::eval` calls, in two regimes (see
/// `lpath_bench::multiquery` for the full methodology):
///
/// * **steady state** — production config, service warmed; the
///   headline the 2x bar applies to. Batching amortizes the per-call
///   machinery (plan-cache pass, shard snapshot, result-cache lock
///   round, instrumentation) across the whole fixture.
/// * **cold** — every result cache disabled, both sides pay full
///   evaluation; the batch wins only what subplan sharing saves
///   (duplicate plans executed once, shared anchor enumerations) and
///   must at minimum not regress.
///
/// Before timing anything, every member's batched rows are asserted
/// identical to its solo rows on the cache-disabled service — the
/// differential check the report records as `verified_identical`.
/// One instrumented cold batch supplies the `multi_shared_scans` /
/// `multi_residual_evals` deltas proving sharing actually happened.
/// Writes `BENCH_multiquery.json`; the validator enforces the 2x bar
/// in-harness.
fn multiquery(wsj: &Corpus, wsj_n: usize) {
    println!("== Multi-query: one shared batch vs 23 independent evals (WSJ) ==");
    const SHARDS: usize = 8;
    let texts = lpath_core::benchmark_batch();

    // --- Cold regime: caches off, full evaluation on every run. ---
    let cold_svc = Service::with_config(
        wsj,
        ServiceConfig {
            shards: SHARDS,
            result_cache_capacity: 0,
            ..ServiceConfig::default()
        },
    );

    // Differential verification first, on the cache-disabled service:
    // the batch must be a pure execution strategy, never a different
    // answer — and with caches off both sides execute independently,
    // so the check can never compare a cache entry against itself.
    let batch = cold_svc.eval_multi(&texts);
    for (q, r) in QUERIES.iter().zip(&batch) {
        let solo = cold_svc.eval(q.lpath).unwrap();
        assert_eq!(
            **r.as_ref().unwrap(),
            *solo,
            "Q{}: batched rows must equal solo rows",
            q.id
        );
    }

    // One instrumented batch for the sharing counters.
    let before = cold_svc.stats();
    for r in cold_svc.eval_multi(&texts) {
        r.unwrap();
    }
    let after = cold_svc.stats();
    let shared_members = after.multi_shared_scans - before.multi_shared_scans;
    let residual_evals = after.multi_residual_evals - before.multi_residual_evals;

    let cold_solo = time7(|| {
        for q in &texts {
            cold_svc.eval(q).unwrap();
        }
    });
    let cold_multi = time7(|| {
        for r in cold_svc.eval_multi(&texts) {
            r.unwrap();
        }
    });

    let mut rows: Vec<lpath_bench::multiquery::MultiRow> = Vec::new();
    for q in QUERIES {
        let results = cold_svc.eval(q.lpath).unwrap().len();
        let solo_secs = time7(|| {
            cold_svc.eval(q.lpath).unwrap();
        })
        .as_secs_f64();
        rows.push(lpath_bench::multiquery::MultiRow {
            id: q.id,
            lpath: q.lpath,
            results,
            solo_secs,
        });
    }

    // --- Steady state: production config, warmed working set. ---
    let svc = Service::with_config(
        wsj,
        ServiceConfig {
            shards: SHARDS,
            ..ServiceConfig::default()
        },
    );
    for q in &texts {
        svc.eval(q).unwrap();
    }
    for r in svc.eval_multi(&texts) {
        r.unwrap();
    }
    // A warm pass over the fixture runs in microseconds — too close to
    // timer granularity for a single-pass sample — so each time7 run
    // times a block of passes and reports the per-pass mean. Identical
    // methodology on both sides.
    const WARM_PASSES: u32 = 100;
    let solo = time7(|| {
        for _ in 0..WARM_PASSES {
            for q in &texts {
                svc.eval(q).unwrap();
            }
        }
    }) / WARM_PASSES;
    let multi = time7(|| {
        for _ in 0..WARM_PASSES {
            for r in svc.eval_multi(&texts) {
                r.unwrap();
            }
        }
    }) / WARM_PASSES;

    println!("{:<5}{:>13}{:>9}", "Q", "cold solo", "results");
    for r in &rows {
        println!(
            "{:<5}{:>13.6}{:>9}",
            format!("Q{}", r.id),
            r.solo_secs,
            r.results,
        );
    }
    let report = lpath_bench::multiquery::MultiReport {
        wsj_sentences: wsj_n,
        shards: SHARDS,
        solo_secs: solo.as_secs_f64(),
        multi_secs: multi.as_secs_f64(),
        cold_solo_secs: cold_solo.as_secs_f64(),
        cold_multi_secs: cold_multi.as_secs_f64(),
        shared_members,
        residual_evals,
        verified_identical: true,
        per_query: rows,
    };
    println!(
        "steady state: solo loop {} s, batched {} s, speedup {:.2}x\n\
         cold:         solo loop {} s, batched {} s, speedup {:.2}x\n\
         {} members shared work, {} residual evals\n",
        fmt_secs(solo),
        fmt_secs(multi),
        report.speedup(),
        fmt_secs(cold_solo),
        fmt_secs(cold_multi),
        report.cold_speedup(),
        shared_members,
        residual_evals,
    );
    let json = report.to_json();
    lpath_bench::multiquery::validate(&json).expect("multiquery report shape and 2x bar");
    match std::fs::write("BENCH_multiquery.json", &json) {
        Ok(()) => println!("wrote BENCH_multiquery.json\n"),
        Err(e) => eprintln!("could not write BENCH_multiquery.json: {e}\n"),
    }
}

/// The `server` mode: round-trip latency of the network edge. Starts
/// a real `lpath-server` on a loopback port, then measures:
///
/// * concurrency — 1/2/4/8 client connections each run the full
///   23-query token sweep; every `eval_page` round trip is one
///   latency sample (percentiles plus aggregate throughput);
/// * cold vs deep — the highest-cardinality evaluation query at
///   page 1 (parse + plan + first rows) and at its deepest token
///   (checkpoint resume), each re-issued repeatedly — stateless
///   tokens make any page repeatable.
///
/// Writes `BENCH_server.json`.
fn server(wsj: &Corpus, wsj_n: usize) {
    println!("== lpath-server: socket round trips under concurrency, cold vs deep pages (WSJ) ==");
    const SHARDS: usize = 4;
    const PAGE: usize = 25;
    const PHASE_ITERS: usize = 40;
    // No result cache: every round trip pays for real evaluation, so
    // cold-vs-deep measures the token machinery, not cache hits.
    let svc = Arc::new(Service::with_config(
        wsj,
        ServiceConfig {
            shards: SHARDS,
            result_cache_capacity: 0,
            ..ServiceConfig::default()
        },
    ));
    let handle = serve(
        Arc::clone(&svc),
        "127.0.0.1:0",
        ServerConfig {
            max_connections: 32,
            ..ServerConfig::default()
        },
    )
    .expect("bind a loopback port");
    let addr = handle.addr();

    // Warm the plan cache so every level measures steady state.
    let mut probe = Client::connect(addr).expect("connect to own server");
    for q in QUERIES {
        probe.eval_sweep(q.lpath, PAGE).unwrap();
    }

    println!(
        "{:<6}{:>10}{:>12}{:>12}{:>12}{:>12}{:>10}",
        "conns", "requests", "p50", "p90", "p99", "max", "req/s"
    );
    let mut per_concurrency = Vec::new();
    for connections in [1usize, 2, 4, 8] {
        let started = Instant::now();
        // The collect is the fan-out: without it the spawns would be
        // driven lazily by the join loop and the "concurrent" clients
        // would run one at a time.
        #[allow(clippy::needless_collect)]
        let workers: Vec<_> = (0..connections)
            .map(|_| {
                std::thread::spawn(move || -> Vec<u64> {
                    let mut client = Client::connect(addr).expect("connect to own server");
                    let mut samples = Vec::new();
                    for q in QUERIES {
                        let mut token: Option<String> = None;
                        loop {
                            let t = Instant::now();
                            let page = client.eval_page(q.lpath, token.as_deref(), PAGE).unwrap();
                            samples.push(t.elapsed().as_nanos() as u64);
                            match page.token {
                                Some(next) => token = Some(next),
                                None => break,
                            }
                        }
                    }
                    samples
                })
            })
            .collect();
        let mut samples: Vec<u64> = workers
            .into_iter()
            .flat_map(|w| w.join().expect("load thread"))
            .collect();
        let wall = started.elapsed().as_secs_f64();
        samples.sort_unstable();
        let p = |pct| lpath_bench::server::percentile(&samples, pct);
        let row = lpath_bench::server::ConcurrencyRow {
            connections,
            requests: samples.len(),
            p50_ns: p(50.0),
            p90_ns: p(90.0),
            p99_ns: p(99.0),
            max_ns: *samples.last().unwrap_or(&0),
            throughput_rps: samples.len() as f64 / wall.max(1e-12),
        };
        println!(
            "{:<6}{:>10}{:>12}{:>12}{:>12}{:>12}{:>10.0}",
            row.connections,
            row.requests,
            row.p50_ns,
            row.p90_ns,
            row.p99_ns,
            row.max_ns,
            row.throughput_rps,
        );
        per_concurrency.push(row);
    }

    // Cold vs deep on the widest query: walk its sweep once to find
    // the deepest token, then re-issue each fixed page repeatedly
    // (stateless tokens answer the same page every time).
    let widest = QUERIES
        .iter()
        .max_by_key(|q| svc.count(q.lpath).unwrap())
        .expect("23 evaluation queries");
    let mut deep_token: Option<String> = None;
    let mut page_depth = 0usize;
    let mut token: Option<String> = None;
    loop {
        let page = probe
            .eval_page(widest.lpath, token.as_deref(), PAGE)
            .unwrap();
        match page.token {
            Some(next) => {
                page_depth += 1;
                deep_token = Some(next.clone());
                token = Some(next);
            }
            None => break,
        }
    }
    let mut measure = |phase: &'static str, token: Option<&str>, depth: usize| {
        let mut samples: Vec<u64> = (0..PHASE_ITERS)
            .map(|_| {
                let t = Instant::now();
                probe.eval_page(widest.lpath, token, PAGE).unwrap();
                t.elapsed().as_nanos() as u64
            })
            .collect();
        samples.sort_unstable();
        let p = |pct| lpath_bench::server::percentile(&samples, pct);
        lpath_bench::server::PhaseRow {
            phase,
            lpath: widest.lpath.to_string(),
            page_depth: depth,
            p50_ns: p(50.0),
            p90_ns: p(90.0),
            p99_ns: p(99.0),
            max_ns: *samples.last().unwrap_or(&0),
        }
    };
    let cold = measure("cold_page", None, 0);
    let deep = measure("deep_page", deep_token.as_deref(), page_depth);
    println!(
        "\ncold vs deep (Q{} {}, {} pages): cold p50 {}ns, deep p50 {}ns\n",
        widest.id,
        widest.lpath,
        page_depth + 1,
        cold.p50_ns,
        deep.p50_ns,
    );

    let report = lpath_bench::server::ServerReport {
        wsj_sentences: wsj_n,
        shards: SHARDS,
        page_limit: PAGE,
        per_concurrency,
        page_phases: vec![cold, deep],
    };
    let json = report.to_json();
    lpath_bench::server::validate(&json).expect("server report shape");
    match std::fs::write("BENCH_server.json", &json) {
        Ok(()) => println!("wrote BENCH_server.json\n"),
        Err(e) => eprintln!("could not write BENCH_server.json: {e}\n"),
    }
}
