//! Paper-table harness: regenerates every figure of the evaluation
//! section as a textual table, using the paper's own methodology
//! (7 runs, trimmed mean).
//!
//! ```text
//! harness [fig6a|fig6b|fig6c|fig7|fig8|fig9|fig10|ablation|extended|sql|all] [sentences]
//! ```
//!
//! With no arguments, prints everything at the default scale (1/20 of
//! the paper's corpus; see `lpath-bench`'s crate docs).

use lpath_bench::{
    default_swb_sentences, default_wsj_sentences, figure10_rows, figure7_rows, fmt_secs,
    swb_corpus, time7, wsj_corpus, Engines,
};
use lpath_core::{Engine, Walker, EXTENDED_QUERIES, QUERIES};
use lpath_corpussearch::CS_QUERIES;
use lpath_model::{Corpus, Profile};
use lpath_relstore::{JoinOrder, PlannerConfig};
use lpath_tgrep::TGREP_QUERIES;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    let wsj_n = args
        .get(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(default_wsj_sentences);
    let swb_n = wsj_n * default_swb_sentences() / default_wsj_sentences();

    println!("LPath evaluation harness — synthetic corpora");
    println!(
        "scale: WSJ {wsj_n} sentences, SWB {swb_n} sentences \
         (paper: ~49000 / ~110000)\n"
    );

    let wsj = wsj_corpus(wsj_n);
    let swb = swb_corpus(swb_n);

    match what {
        "fig6a" => fig6a(&wsj, &swb),
        "fig6b" => fig6b(&wsj, &swb),
        "fig6c" => fig6c(&wsj, &swb),
        "fig7" => fig7_or_8(&wsj, Profile::Wsj),
        "fig8" => fig7_or_8(&swb, Profile::Swb),
        "fig9" => fig9(&wsj, wsj_n),
        "fig10" => fig10(&wsj),
        "ablation" => ablation(&wsj),
        "extended" => extended(&wsj, &swb),
        "sql" => sql(&wsj),
        "all" => {
            fig6a(&wsj, &swb);
            fig6b(&wsj, &swb);
            fig6c(&wsj, &swb);
            fig7_or_8(&wsj, Profile::Wsj);
            fig7_or_8(&swb, Profile::Swb);
            fig9(&wsj, wsj_n);
            fig10(&wsj);
            ablation(&wsj);
            extended(&wsj, &swb);
        }
        other => {
            eprintln!(
                "unknown figure '{other}'; expected \
                 fig6a|fig6b|fig6c|fig7|fig8|fig9|fig10|ablation|extended|sql|all"
            );
            std::process::exit(2);
        }
    }
}

/// Figure 6(a): data set characteristics.
fn fig6a(wsj: &Corpus, swb: &Corpus) {
    println!("== Figure 6(a): test data sets ==");
    println!("{:<22}{:>14}{:>14}", "", "WSJ", "SWB");
    let (w, s) = (wsj.stats(), swb.stats());
    println!(
        "{:<22}{:>13}kB{:>13}kB",
        "File Size",
        w.ascii_bytes / 1024,
        s.ascii_bytes / 1024
    );
    println!("{:<22}{:>14}{:>14}", "Trees", w.trees, s.trees);
    println!("{:<22}{:>14}{:>14}", "Tree Nodes", w.total_nodes, s.total_nodes);
    println!("{:<22}{:>14}{:>14}", "Tokens", w.total_tokens, s.total_tokens);
    println!("{:<22}{:>14}{:>14}", "Unique Tags", w.unique_tags, s.unique_tags);
    println!("{:<22}{:>14}{:>14}", "Maximum Depth", w.max_depth, s.max_depth);
    println!(
        "(paper, full scale: 35983kB/35880kB; 3484899/3972148 nodes; \
         1274/715 tags; depth 36/36)\n"
    );
}

/// Figure 6(b): top-10 tag frequencies.
fn fig6b(wsj: &Corpus, swb: &Corpus) {
    println!("== Figure 6(b): top 10 frequent tags ==");
    let w = wsj.top_tags(10);
    let s = swb.top_tags(10);
    println!(
        "{:<4}{:<14}{:>10}   {:<14}{:>10}",
        "#", "WSJ tag", "freq", "SWB tag", "freq"
    );
    for i in 0..10 {
        let (wt, wf) = w.get(i).map(|(t, f)| (t.as_str(), *f)).unwrap_or(("-", 0));
        let (st, sf) = s.get(i).map(|(t, f)| (t.as_str(), *f)).unwrap_or(("-", 0));
        println!("{:<4}{:<14}{:>10}   {:<14}{:>10}", i + 1, wt, wf, st, sf);
    }
    println!(
        "(paper order — WSJ: NP VP NN IN NNP S DT NP-SBJ -NONE- JJ; \
         SWB: -DFL- VP NP-SBJ . , S NP PRP NN RB)\n"
    );
}

/// Figure 6(c): the 23 queries and their result sizes.
fn fig6c(wsj: &Corpus, swb: &Corpus) {
    println!("== Figure 6(c): test query set, result sizes ==");
    let we = Engine::build(wsj);
    let se = Engine::build(swb);
    println!(
        "{:<5}{:<44}{:>9}{:>9}{:>11}{:>11}",
        "Q", "LPath", "WSJ", "SWB", "paper-WSJ", "paper-SWB"
    );
    for q in QUERIES {
        let w = we.count(q.lpath).expect("wsj");
        let s = se.count(q.lpath).expect("swb");
        println!(
            "{:<5}{:<44}{:>9}{:>9}{:>11}{:>11}",
            format!("Q{}", q.id),
            q.lpath,
            w,
            s,
            q.paper_wsj,
            q.paper_swb
        );
    }
    println!();
}

/// Figures 7/8: per-query timings, three engines.
fn fig7_or_8(corpus: &Corpus, profile: Profile) {
    let fig = match profile {
        Profile::Wsj => "Figure 7 (WSJ)",
        Profile::Swb => "Figure 8 (SWB)",
    };
    println!("== {fig}: query execution time, seconds (7-run trimmed mean) ==");
    let engines = Engines::build(corpus);
    println!(
        "{:<5}{:>12}{:>12}{:>14}{:>10}",
        "Q", "LPath", "TGrep2", "CorpusSearch", "results"
    );
    for row in figure7_rows(&engines) {
        println!(
            "{:<5}{:>12}{:>12}{:>14}{:>10}",
            format!("Q{}", row.id),
            fmt_secs(row.lpath),
            fmt_secs(row.tgrep),
            fmt_secs(row.cs),
            row.result_size
        );
    }
    println!();
}

/// Figure 9: scalability on replicated WSJ (Q3, Q6, Q11).
fn fig9(wsj: &Corpus, base_sentences: usize) {
    println!("== Figure 9: scalability, replicated WSJ ==");
    for qid in lpath_core::queryset::FIG9_QUERY_IDS {
        let q = lpath_core::queryset::by_id(qid);
        println!("-- Q{qid}: {}", q.lpath);
        println!(
            "{:<12}{:>12}{:>12}{:>14}",
            "sentences", "LPath", "TGrep2", "CorpusSearch"
        );
        for factor in [0.5, 1.0, 2.0, 3.0, 4.0] {
            let corpus = wsj.replicate(factor);
            let engines = Engines::build(&corpus);
            let i = qid - 1;
            let lp = time7(|| {
                engines.lpath.count(q.lpath).unwrap();
            });
            let tg = time7(|| {
                engines.tgrep.count(TGREP_QUERIES[i]).unwrap();
            });
            let cs = time7(|| {
                engines.cs.count(CS_QUERIES[i]).unwrap();
            });
            println!(
                "{:<12}{:>12}{:>12}{:>14}",
                ((base_sentences as f64) * factor) as usize,
                fmt_secs(lp),
                fmt_secs(tg),
                fmt_secs(cs)
            );
        }
    }
    println!();
}

/// Figure 10: LPath vs XPath (start/end) labeling, 11 shared queries.
fn fig10(wsj: &Corpus) {
    println!("== Figure 10: labeling schemes on the XPath-expressible queries (WSJ) ==");
    println!("{:<5}{:>14}{:>14}{:>9}", "Q", "LPath-label", "XPath-label", "ratio");
    for row in figure10_rows(wsj) {
        let ratio = row.lpath.as_secs_f64() / row.xpath.as_secs_f64().max(1e-12);
        println!(
            "{:<5}{:>14}{:>14}{:>9.2}",
            format!("Q{}", row.id),
            fmt_secs(row.lpath),
            fmt_secs(row.xpath),
            ratio
        );
    }
    println!();
}

/// Ablations: join ordering and the tgrep label index.
fn ablation(wsj: &Corpus) {
    println!("== Ablation: greedy-statistics vs syntactic join order (WSJ) ==");
    let greedy = Engine::build(wsj);
    let syntactic = Engine::with_config(
        wsj,
        PlannerConfig {
            order: JoinOrder::Syntactic,
        },
    );
    println!("{:<5}{:>12}{:>12}{:>9}", "Q", "greedy", "syntactic", "×");
    for q in QUERIES {
        let a = time7(|| {
            greedy.count(q.lpath).unwrap();
        });
        let b = time7(|| {
            syntactic.count(q.lpath).unwrap();
        });
        println!(
            "{:<5}{:>12}{:>12}{:>9.2}",
            format!("Q{}", q.id),
            fmt_secs(a),
            fmt_secs(b),
            b.as_secs_f64() / a.as_secs_f64().max(1e-12)
        );
    }

    println!("\n== Ablation: tgrep with vs without the label index (WSJ) ==");
    let tg = lpath_tgrep::TgrepEngine::build(wsj);
    println!("{:<5}{:>12}{:>12}{:>9}", "Q", "indexed", "full-scan", "×");
    for (i, pat) in TGREP_QUERIES.iter().enumerate() {
        let a = time7(|| {
            tg.count(pat).unwrap();
        });
        let b = time7(|| {
            tg.count_unindexed(pat).unwrap();
        });
        println!(
            "{:<5}{:>12}{:>12}{:>9.2}",
            format!("Q{}", i + 1),
            fmt_secs(a),
            fmt_secs(b),
            b.as_secs_f64() / a.as_secs_f64().max(1e-12)
        );
    }
    println!();
}

/// The extended (beyond-paper) query set: function library, or-self
/// closures, position() circumlocutions. SQL-supported queries run on
/// the relational engine and are checked against the walker; the rest
/// run on the walker alone. Semantic identities are asserted.
fn extended(wsj: &Corpus, swb: &Corpus) {
    println!("== Extended query set (beyond-paper features) ==");
    println!(
        "{:<5}{:<48}{:>9}{:>9}  {:<8}check",
        "E", "LPath", "WSJ", "SWB", "engine"
    );
    let engines = [Engine::build(wsj), Engine::build(swb)];
    let walkers = [Walker::new(wsj), Walker::new(swb)];
    for q in EXTENDED_QUERIES {
        let ast = lpath_syntax::parse(q.lpath).expect("extended query parses");
        let mut counts = [0usize; 2];
        for ((walker, engine), count) in walkers.iter().zip(&engines).zip(&mut counts) {
            let via_walker = walker.count(&ast);
            if q.sql_supported {
                let via_sql = engine.count(q.lpath).expect("sql-supported");
                assert_eq!(via_sql, via_walker, "E{} engine/walker disagree", q.id);
            }
            *count = via_walker;
        }
        let check = match q.equivalent_to {
            Some(eq) => {
                let eq_ast = lpath_syntax::parse(eq).expect("identity parses");
                for walker in &walkers {
                    assert_eq!(
                        walker.eval(&ast),
                        walker.eval(&eq_ast),
                        "E{} identity violated: {} ≢ {}",
                        q.id,
                        q.lpath,
                        eq
                    );
                }
                format!("≡ {eq}")
            }
            None => String::new(),
        };
        println!(
            "{:<5}{:<48}{:>9}{:>9}  {:<8}{}",
            format!("E{}", q.id),
            q.lpath,
            counts[0],
            counts[1],
            if q.sql_supported { "sql" } else { "walker" },
            check
        );
    }
    println!("(all sql-supported rows verified engine == walker; identities asserted)\n");
}

/// Show the generated SQL for every evaluation query (paper §4).
fn sql(wsj: &Corpus) {
    println!("== LPath → SQL translations ==");
    let e = Engine::build(wsj);
    for q in QUERIES {
        println!("-- Q{}: {}", q.id, q.lpath);
        match e.sql(q.lpath) {
            Ok(sql) => println!("   {sql}\n"),
            Err(err) => println!("   (unsupported: {err})\n"),
        }
    }
}
