//! End-to-end acceptance over a real TCP socket: the paged sweep
//! contract (only echoed tokens, zero server-side session state),
//! equivalence with the in-process service, stale-token recovery
//! across interleaved appends, connection-limit refusal, and
//! per-connection error isolation.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use lpath_core::QUERIES;
use lpath_model::{generate, GenConfig};
use lpath_server::{serve, Client, ClientError, ServerConfig};
use lpath_service::{Service, ServiceConfig};

fn start(sentences: usize, max_connections: usize) -> (lpath_server::ServerHandle, Arc<Service>) {
    let corpus = generate(&GenConfig::wsj(sentences));
    let svc = Arc::new(Service::with_config(
        &corpus,
        ServiceConfig {
            shards: 3,
            threads: 2,
            ..ServiceConfig::default()
        },
    ));
    let handle = serve(
        Arc::clone(&svc),
        "127.0.0.1:0",
        ServerConfig {
            max_connections,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    (handle, svc)
}

/// The tentpole acceptance sweep: every one of the paper's 23 queries
/// paged over the socket with only echoed tokens, byte-identical to
/// the in-process `Service::eval_page` sweep — even when the client
/// reconnects mid-sweep, proving no session state lives server-side.
#[test]
fn token_sweep_over_socket_matches_in_process_paging() {
    let (handle, svc) = start(60, 8);
    let mut client = Client::connect(handle.addr()).unwrap();
    for (qi, q) in QUERIES.iter().enumerate() {
        let reference: Vec<(u32, u32)> = svc
            .eval_page(q.lpath, 0, usize::MAX - 1)
            .unwrap()
            .into_iter()
            .map(|(t, n)| (t, n.index() as u32))
            .collect();
        // A mid-sized page so most queries take several round trips.
        let mut rows = Vec::new();
        let mut token: Option<String> = None;
        loop {
            // Reconnect on a fresh connection every other page of one
            // query: the token alone must carry the whole sweep.
            if qi % 2 == 0 && rows.len() % 2 == 0 {
                client = Client::connect(handle.addr()).unwrap();
            }
            let page = client.eval_page(q.lpath, token.as_deref(), 7).unwrap();
            rows.extend(page.rows);
            match page.token {
                Some(t) => token = Some(t),
                None => break,
            }
        }
        assert_eq!(rows, reference, "Q{} {}", q.id, q.lpath);
    }
}

/// Interleaved appends: a sweep in flight across an `append_ptb` does
/// not panic, the stale token is recovered server-side, and the
/// `stale_checkpoints` counter advances.
#[test]
fn sweep_survives_interleaved_appends() {
    let (handle, svc) = start(40, 8);
    let mut pager = Client::connect(handle.addr()).unwrap();
    let mut writer = Client::connect(handle.addr()).unwrap();
    let q = "//NP";
    let p1 = pager.eval_page(q, None, 5).unwrap();
    let t1 = p1.token.clone().expect("a 40-sentence corpus has many NPs");
    let before = svc.stats().stale_checkpoints;
    let added = writer
        .append_ptb("( (S (NP (NN storm)) (VP (VBD passed) (NP (DT the) (NN coast)))) )")
        .unwrap();
    assert_eq!(added, 1);
    // The echoed token is now stale; the server must recover, not
    // fail, and keep paging against current content.
    let mut rows = p1.rows;
    let mut token = Some(t1);
    while let Some(t) = token {
        let page = pager.eval_page(q, Some(&t), 5).unwrap();
        rows.extend(page.rows);
        token = page.token;
    }
    assert!(svc.stats().stale_checkpoints > before, "recovery counted");
    // Recovery re-enters by global offset against the *new* corpus,
    // so the concatenation equals the post-append result.
    let now: Vec<(u32, u32)> = svc
        .eval_page(q, 0, usize::MAX - 1)
        .unwrap()
        .into_iter()
        .map(|(t, n)| (t, n.index() as u32))
        .collect();
    assert_eq!(rows, now);
}

/// The budgeted count sweep over the socket: only echoed count tokens,
/// reconnecting mid-sweep, lands on the same total as a one-shot
/// `count` — and `hist` agrees with both and with the in-process
/// service.
#[test]
fn count_sweep_and_hist_match_one_shot_counts() {
    let (handle, svc) = start(60, 8);
    let mut client = Client::connect(handle.addr()).unwrap();
    for (qi, q) in QUERIES.iter().enumerate() {
        let reference = svc.count(q.lpath).unwrap() as u64;
        assert_eq!(client.count(q.lpath).unwrap(), reference, "Q{}", q.id);
        let mut token: Option<String> = None;
        let mut pages = 0usize;
        let total = loop {
            if qi % 3 == 0 && pages % 2 == 1 {
                client = Client::connect(handle.addr()).unwrap();
            }
            let page = client.count_page(q.lpath, token.as_deref(), 64).unwrap();
            pages += 1;
            match page.total {
                Some(t) => {
                    assert_eq!(page.so_far, t, "a final page reports the total");
                    assert!(page.token.is_none(), "no token after the total");
                    break t;
                }
                None => token = Some(page.token.expect("an unfinished sweep mints a token")),
            }
        };
        assert_eq!(total, reference, "Q{} {}", q.id, q.lpath);
        let hist = client.hist(q.lpath).unwrap();
        assert_eq!(hist.total, reference, "Q{} hist total", q.id);
        let tree_sum: u64 = hist.per_tree.iter().map(|&(_, n)| n).sum();
        let label_sum: u64 = hist.per_label.iter().map(|&(_, n)| n).sum();
        assert_eq!(tree_sum, reference, "Q{} per-tree sum", q.id);
        assert_eq!(label_sum, reference, "Q{} per-label sum", q.id);
    }
    // A corrupt count token answers with the stable bad_token code.
    match client.count_page("//NP", Some("???not-base64"), 8) {
        Err(ClientError::Remote { code, .. }) => assert_eq!(code, "bad_token"),
        other => panic!("expected bad_token, got {other:?}"),
    }
}

/// All non-paged methods round-trip over the socket.
#[test]
fn full_method_surface_round_trips() {
    let (handle, svc) = start(20, 8);
    let mut client = Client::connect(handle.addr()).unwrap();
    let q = "//VP{/NP$}";
    let reference: Vec<(u32, u32)> = svc
        .eval(q)
        .unwrap()
        .iter()
        .map(|&(t, n)| (t, n.index() as u32))
        .collect();
    assert_eq!(client.eval(q).unwrap(), reference);
    assert_eq!(client.count(q).unwrap(), reference.len() as u64);
    assert_eq!(client.exists(q).unwrap(), !reference.is_empty());
    assert!(!client.exists("//ZZZQQQ").unwrap());
    let report = client.check("//ZZZQQQ").unwrap();
    assert!(report.get("diagnostics").is_some(), "check report shape");
    let metrics = client.metrics().unwrap();
    assert!(metrics.get("classes").is_some(), "metrics shape");
    assert!(metrics.get("queries").unwrap().as_u64().unwrap() >= 4);
}

/// A batched eval over the socket equals independent reference
/// evaluations member by member, keeps a failing member's error
/// in-band, and advances the server's sharing counters.
#[test]
fn eval_multi_round_trips_with_in_band_errors() {
    let (handle, svc) = start(30, 8);
    let mut client = Client::connect(handle.addr()).unwrap();
    let queries = ["//NP", "//NP[not(//DT)]", "//VP[", "//NN"];
    let batch = client.eval_multi(&queries).unwrap();
    assert_eq!(batch.len(), 4);
    for (i, q) in queries.iter().enumerate() {
        if i == 2 {
            match &batch[2] {
                Err(ClientError::Remote { code, .. }) => assert_eq!(code, "syntax"),
                other => panic!("expected in-band syntax error, got {other:?}"),
            }
            continue;
        }
        // The walker reference path shares nothing with the batched
        // relational path — a genuinely independent oracle.
        let reference: Vec<(u32, u32)> = svc
            .reference_eval(q)
            .unwrap()
            .iter()
            .map(|&(t, n)| (t, n.index() as u32))
            .collect();
        assert_eq!(*batch[i].as_ref().unwrap(), reference, "{q}");
    }
    let stats = svc.stats();
    assert!(
        stats.multi_shared_scans >= 2,
        "the two NP-anchored members share a scan: {stats:?}"
    );
}

/// Request-level failures answer with typed codes and leave the
/// connection serving; hostile garbage cannot take the server down.
#[test]
fn errors_are_typed_and_isolated_per_connection() {
    let (handle, _svc) = start(10, 8);
    let mut client = Client::connect(handle.addr()).unwrap();
    // Unparseable query → syntax, connection lives.
    match client.eval("//[") {
        Err(ClientError::Remote { code, .. }) => assert_eq!(code, "syntax"),
        other => panic!("expected syntax error, got {other:?}"),
    }
    // Corrupt token → bad_token, connection lives.
    match client.eval_page("//NP", Some("not-a-token!"), 5) {
        Err(ClientError::Remote { code, .. }) => assert_eq!(code, "bad_token"),
        other => panic!("expected bad_token, got {other:?}"),
    }
    // Unknown method / missing params → bad_request, connection lives.
    match client.call("frobnicate", "{}") {
        Err(ClientError::Remote { code, .. }) => assert_eq!(code, "bad_request"),
        other => panic!("expected bad_request, got {other:?}"),
    }
    match client.call("eval", "{}") {
        Err(ClientError::Remote { code, .. }) => assert_eq!(code, "bad_request"),
        other => panic!("expected bad_request, got {other:?}"),
    }
    // Raw non-JSON lines get bad_request responses on the same socket.
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    raw.write_all(b"this is not json\n{\"id\": 9}\n").unwrap();
    let mut reader = BufReader::new(raw.try_clone().unwrap());
    for _ in 0..2 {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"bad_request\""), "{line}");
    }
    // And the first client still works after all of that.
    assert!(client.count("//NP").unwrap() > 0);
}

/// The connection limit refuses with a typed `overloaded` response
/// instead of hanging or silently dropping.
#[test]
fn over_limit_connections_get_a_typed_refusal() {
    let (handle, _svc) = start(10, 1);
    // Occupy the only slot with a live connection.
    let mut first = Client::connect(handle.addr()).unwrap();
    assert!(first.count("//NP").unwrap() > 0);
    // The next connection is answered with `overloaded` and closed.
    let refused = TcpStream::connect(handle.addr()).unwrap();
    let mut line = String::new();
    BufReader::new(&refused).read_line(&mut line).unwrap();
    assert!(line.contains("\"overloaded\""), "{line}");
    let mut rest = Vec::new();
    (&refused).read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "refused connection is closed");
    // The occupied slot keeps serving, and freeing it readmits.
    assert!(first.count("//VP").unwrap() > 0);
    drop(first);
    // The slot is released asynchronously; poll briefly.
    let mut admitted = false;
    for _ in 0..100 {
        if let Ok(mut c) = Client::connect(handle.addr()) {
            if c.count("//NP").is_ok() {
                admitted = true;
                break;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(admitted, "slot is reusable after disconnect");
}

/// A request line longer than the configured cap is refused without
/// buffering it, with a typed answer before the connection closes.
#[test]
fn overlong_lines_are_rejected_without_buffering() {
    let corpus = generate(&GenConfig::wsj(5));
    let svc = Arc::new(Service::with_config(&corpus, ServiceConfig::default()));
    let handle = serve(
        svc,
        "127.0.0.1:0",
        ServerConfig {
            max_line_bytes: 4096,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    // Just over the cap: small enough that the server drains it all
    // before closing (so the refusal arrives on a clean FIN), large
    // enough to trip the bound.
    let huge = vec![b'x'; 5000];
    raw.write_all(&huge).unwrap();
    raw.write_all(b"\n").unwrap();
    let mut line = String::new();
    BufReader::new(&raw).read_line(&mut line).unwrap();
    assert!(line.contains("\"bad_request\""), "{line}");
    assert!(line.contains("exceeds"), "{line}");
}
