//! Request dispatch and response rendering: one untrusted JSON line
//! in, one JSON line out. All rendering is hand-built on
//! [`lpath_obs::json::escape`]; all parsing goes through the bounded
//! [`lpath_obs::json::parse`].

use lpath_model::NodeId;
use lpath_obs::json::{self, Value};
use lpath_service::{Service, ServiceError};

use crate::ServerConfig;

/// Error codes the protocol can answer with. Stable strings: clients
/// branch on them (`bad_token` → drop the token and restart the
/// sweep; `overloaded` → back off and retry).
const CODE_BAD_REQUEST: &str = "bad_request";

/// Handle one request line, returning the response line (no trailing
/// newline). Never panics: every malformed input maps to a typed
/// error response.
pub(crate) fn handle(svc: &Service, line: &[u8], cfg: &ServerConfig) -> String {
    let Ok(text) = std::str::from_utf8(line) else {
        return error_line(None, CODE_BAD_REQUEST, "request is not UTF-8");
    };
    let req = match json::parse(text) {
        Ok(v) => v,
        Err(e) => return error_line(None, CODE_BAD_REQUEST, &e.to_string()),
    };
    let id = req.get("id").and_then(Value::as_u64);
    let Some(method) = req.get("method").and_then(Value::as_str) else {
        return error_line(id, CODE_BAD_REQUEST, "missing string field 'method'");
    };
    let params = req.get("params");
    match dispatch(svc, method, params, cfg) {
        Ok(result) => {
            let mut out = String::with_capacity(result.len() + 32);
            out.push_str("{\"id\": ");
            push_id(&mut out, id);
            out.push_str(", \"ok\": true, \"result\": ");
            out.push_str(&result);
            out.push('}');
            out
        }
        Err((code, message)) => error_line(id, code, &message),
    }
}

/// Render an error response line (no trailing newline).
pub(crate) fn error_line(id: Option<u64>, code: &str, message: &str) -> String {
    let mut out = String::new();
    out.push_str("{\"id\": ");
    push_id(&mut out, id);
    out.push_str(&format!(
        ", \"ok\": false, \"error\": {{\"code\": \"{}\", \"message\": \"{}\"}}}}",
        json::escape(code),
        json::escape(message)
    ));
    out
}

fn push_id(out: &mut String, id: Option<u64>) {
    match id {
        Some(n) => out.push_str(&n.to_string()),
        None => out.push_str("null"),
    }
}

type MethodError = (&'static str, String);

fn dispatch(
    svc: &Service,
    method: &str,
    params: Option<&Value>,
    cfg: &ServerConfig,
) -> Result<String, MethodError> {
    match method {
        "eval" => {
            let rows = svc.eval(query_param(params)?).map_err(service_error)?;
            Ok(format!(
                "{{\"rows\": {}, \"n\": {}}}",
                rows_json(&rows),
                rows.len()
            ))
        }
        "eval_page" => {
            let query = query_param(params)?;
            let token = match params.and_then(|p| p.get("token")) {
                None | Some(Value::Null) => None,
                Some(Value::Str(t)) => Some(t.as_str()),
                Some(_) => return Err(bad_request("field 'token' must be a string")),
            };
            let limit =
                match params.and_then(|p| p.get("limit")) {
                    None => cfg.default_page_limit,
                    Some(v) => usize::try_from(v.as_u64().ok_or_else(|| {
                        bad_request("field 'limit' must be a non-negative integer")
                    })?)
                    .map_err(|_| bad_request("field 'limit' out of range"))?,
                };
            let page = svc
                .eval_page_token(query, token, limit)
                .map_err(service_error)?;
            let token_json = page.token.map_or_else(
                || "null".to_string(),
                |t| format!("\"{}\"", json::escape(&t)),
            );
            Ok(format!(
                "{{\"rows\": {}, \"token\": {token_json}}}",
                rows_json(&page.rows)
            ))
        }
        "eval_multi" => {
            let queries = params
                .and_then(|p| p.get("queries"))
                .and_then(Value::as_arr)
                .ok_or_else(|| bad_request("missing array field 'queries'"))?;
            let texts: Vec<&str> = queries
                .iter()
                .map(|q| {
                    q.as_str()
                        .ok_or_else(|| bad_request("field 'queries' must be an array of strings"))
                })
                .collect::<Result<_, _>>()?;
            let results = svc.eval_multi(&texts);
            // Member failures are in-band: one bad query must not
            // discard its siblings' answers.
            let mut out = String::from("{\"results\": [");
            for (i, r) in results.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                match r {
                    Ok(rows) => out.push_str(&format!(
                        "{{\"ok\": true, \"rows\": {}, \"n\": {}}}",
                        rows_json(rows),
                        rows.len()
                    )),
                    Err(e) => out.push_str(&format!(
                        "{{\"ok\": false, \"error\": {{\"code\": \"{}\", \"message\": \"{}\"}}}}",
                        json::escape(error_code(e)),
                        json::escape(&e.to_string())
                    )),
                }
            }
            out.push_str("]}");
            Ok(out)
        }
        "count" => {
            let query = query_param(params)?;
            let token = match params.and_then(|p| p.get("token")) {
                None | Some(Value::Null) => None,
                Some(Value::Str(t)) => Some(t.as_str()),
                Some(_) => return Err(bad_request("field 'token' must be a string")),
            };
            let budget = match params.and_then(|p| p.get("budget")) {
                None | Some(Value::Null) => None,
                Some(v) => Some(
                    usize::try_from(v.as_u64().ok_or_else(|| {
                        bad_request("field 'budget' must be a non-negative integer")
                    })?)
                    .map_err(|_| bad_request("field 'budget' out of range"))?,
                ),
            };
            // One-shot form (no token, no budget) keeps the original
            // `{"count": n}` shape; the budgeted form drives the
            // stateless count-token sweep.
            if token.is_none() && budget.is_none() {
                let n = svc.count(query).map_err(service_error)?;
                return Ok(format!("{{\"count\": {n}}}"));
            }
            let page = svc
                .count_token(query, token, budget.unwrap_or(usize::MAX))
                .map_err(service_error)?;
            let total = page
                .total
                .map_or_else(|| "null".to_string(), |n| n.to_string());
            let token_json = page.token.map_or_else(
                || "null".to_string(),
                |t| format!("\"{}\"", json::escape(&t)),
            );
            Ok(format!(
                "{{\"count\": {}, \"total\": {total}, \"token\": {token_json}}}",
                page.so_far
            ))
        }
        "hist" => {
            let h = svc.hist(query_param(params)?).map_err(service_error)?;
            let mut per_tree = String::from("[");
            for (i, (tid, n)) in h.per_tree.iter().enumerate() {
                if i > 0 {
                    per_tree.push_str(", ");
                }
                per_tree.push_str(&format!("[{tid}, {n}]"));
            }
            per_tree.push(']');
            let mut per_label = String::from("[");
            for (i, (label, n)) in h.per_label.iter().enumerate() {
                if i > 0 {
                    per_label.push_str(", ");
                }
                per_label.push_str(&format!("[\"{}\", {n}]", json::escape(label)));
            }
            per_label.push(']');
            Ok(format!(
                "{{\"total\": {}, \"per_tree\": {per_tree}, \"per_label\": {per_label}}}",
                h.total
            ))
        }
        "exists" => {
            let found = svc.exists(query_param(params)?).map_err(service_error)?;
            Ok(format!("{{\"exists\": {found}}}"))
        }
        "check" => {
            let report = svc.check(query_param(params)?).map_err(service_error)?;
            Ok(format!("{{\"report\": {}}}", one_line(&report.to_json())))
        }
        "metrics" => Ok(format!(
            "{{\"metrics\": {}}}",
            one_line(&svc.metrics().to_json())
        )),
        "append_ptb" => {
            let src = params
                .and_then(|p| p.get("src"))
                .and_then(Value::as_str)
                .ok_or_else(|| bad_request("missing string field 'src'"))?;
            let added = svc.append_ptb(src).map_err(service_error)?;
            Ok(format!(
                "{{\"added\": {added}, \"generation\": {}}}",
                svc.generation()
            ))
        }
        other => Err(bad_request(&format!("unknown method '{other}'"))),
    }
}

fn query_param(params: Option<&Value>) -> Result<&str, MethodError> {
    params
        .and_then(|p| p.get("query"))
        .and_then(Value::as_str)
        .ok_or_else(|| bad_request("missing string field 'query'"))
}

fn bad_request(message: &str) -> MethodError {
    (CODE_BAD_REQUEST, message.to_string())
}

/// Map service failures onto stable protocol codes.
fn service_error(e: ServiceError) -> MethodError {
    (error_code(&e), e.to_string())
}

fn error_code(e: &ServiceError) -> &'static str {
    match e {
        ServiceError::Syntax(_) => "syntax",
        ServiceError::Corpus(_) => "corpus",
        ServiceError::BadShard(_) => "bad_shard",
        ServiceError::BadToken(_) => "bad_token",
        ServiceError::Aborted => "aborted",
    }
}

/// `[[tid, node], …]` — the match list in document order.
fn rows_json(rows: &[(u32, NodeId)]) -> String {
    let mut out = String::with_capacity(rows.len() * 8 + 2);
    out.push('[');
    for (i, (tid, node)) in rows.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("[{tid}, {}]", node.index()));
    }
    out.push(']');
    out
}

/// Collapse a multi-line JSON rendering (the house `to_json` style is
/// indented) onto one protocol line. Safe because [`json::escape`]
/// never leaves a raw newline inside a string literal — every `\n` in
/// the rendering is structural whitespace.
fn one_line(s: &str) -> String {
    s.replace('\n', " ")
}
