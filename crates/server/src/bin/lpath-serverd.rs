//! `lpath-serverd` — serve a treebank over the line-delimited JSON
//! protocol.
//!
//! ```text
//! lpath-serverd [--addr HOST:PORT] [--shards N] [--max-conns N] [CORPUS.ptb]
//! ```
//!
//! Without a corpus file, a deterministic synthetic WSJ-profile
//! corpus of 500 sentences is served (handy for smoke tests).

use std::process::ExitCode;
use std::sync::Arc;

use lpath_model::ptb::parse_str;
use lpath_model::{generate, GenConfig};
use lpath_server::{serve, ServerConfig};
use lpath_service::{Service, ServiceConfig};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("lpath-serverd: {msg}");
            eprintln!(
                "usage: lpath-serverd [--addr HOST:PORT] [--shards N] [--max-conns N] [CORPUS.ptb]"
            );
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut svc_cfg = ServiceConfig::default();
    let mut srv_cfg = ServerConfig::default();
    let mut corpus_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut flag_value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--addr" => addr = flag_value("--addr")?,
            "--shards" => {
                svc_cfg.shards = flag_value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
            }
            "--max-conns" => {
                srv_cfg.max_connections = flag_value("--max-conns")?
                    .parse()
                    .map_err(|e| format!("--max-conns: {e}"))?;
            }
            "--help" | "-h" => return Err("help requested".into()),
            other if other.starts_with('-') => return Err(format!("unknown flag '{other}'")),
            path => corpus_path = Some(path.to_string()),
        }
    }

    let corpus = match &corpus_path {
        Some(path) => {
            let src =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            parse_str(&src).map_err(|e| format!("cannot parse {path}: {e}"))?
        }
        None => generate(&GenConfig::wsj(500)),
    };
    eprintln!(
        "lpath-serverd: serving {} trees ({}) on {addr}",
        corpus.trees().len(),
        corpus_path.as_deref().unwrap_or("synthetic WSJ profile"),
    );
    let svc = Arc::new(Service::with_config(&corpus, svc_cfg));
    let handle = serve(svc, addr.as_str(), srv_cfg).map_err(|e| format!("bind {addr}: {e}"))?;
    eprintln!("lpath-serverd: listening on {}", handle.addr());
    // Serve until killed.
    loop {
        std::thread::park();
    }
}
