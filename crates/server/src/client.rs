//! A minimal blocking client for the line-delimited protocol — used
//! by the benchmark harness's load generator, the socket tests, and
//! as a reference implementation of the client side of the token
//! contract (echo the token verbatim; treat it as opaque).

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use lpath_obs::json::{self, Value};

/// A blocking connection to an `lpath-server`.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

/// Why a call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The connection broke.
    Io(io::Error),
    /// The server's bytes violated the protocol (not JSON, missing
    /// fields, wrong id) — or the connection closed mid-call, which
    /// is how an `overloaded` refusal ends.
    Protocol(String),
    /// The server answered with a typed error.
    Remote {
        /// Stable error code (`syntax`, `bad_token`, `overloaded`, …).
        code: String,
        /// Human-readable detail.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ClientError::Remote { code, message } => write!(f, "server error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One page of a remote token sweep: rows as `(tree, node)` pairs
/// plus the opaque continuation token.
#[derive(Clone, Debug)]
pub struct RemotePage {
    /// The page's matches, in document order.
    pub rows: Vec<(u32, u32)>,
    /// Echo to the next [`Client::eval_page`] call; `None` = done.
    pub token: Option<String>,
}

/// One step of a remote budgeted count sweep.
#[derive(Clone, Debug)]
pub struct RemoteCountPage {
    /// Matches counted so far across the sweep.
    pub so_far: u64,
    /// The complete count, once the sweep finished.
    pub total: Option<u64>,
    /// Echo to the next [`Client::count_page`] call; `None` = done.
    pub token: Option<String>,
}

/// A remote query histogram: the match set aggregated per tree and
/// per label; both breakdowns sum to `total`.
#[derive(Clone, Debug)]
pub struct RemoteHistogram {
    /// Total matches (equals the server's `count`).
    pub total: u64,
    /// `(global tree id, count)`, tid-ascending, non-zero only.
    pub per_tree: Vec<(u32, u64)>,
    /// `(label, count)`, label-ascending, non-zero only.
    pub per_label: Vec<(String, u64)>,
}

impl Client {
    /// Connect to a server.
    ///
    /// # Errors
    ///
    /// The connect error, verbatim.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true).ok();
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            reader,
            writer,
            next_id: 1,
        })
    }

    /// Issue one raw call: `params` must render a JSON object (e.g.
    /// `{"query": "//NP"}`). Returns the `result` value of an `ok`
    /// response.
    ///
    /// # Errors
    ///
    /// [`ClientError::Remote`] for typed server errors,
    /// [`ClientError::Protocol`] / [`ClientError::Io`] for transport
    /// failures.
    pub fn call(&mut self, method: &str, params: &str) -> Result<Value, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let request = format!(
            "{{\"id\": {id}, \"method\": \"{}\", \"params\": {params}}}\n",
            json::escape(method)
        );
        self.writer.write_all(request.as_bytes())?;
        self.writer.flush()?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Protocol(
                "connection closed before a response arrived".into(),
            ));
        }
        let response = json::parse(line.trim_end())
            .map_err(|e| ClientError::Protocol(format!("unparseable response: {e}")))?;
        if response.get("id").and_then(Value::as_u64) != Some(id) {
            return Err(ClientError::Protocol(format!(
                "response id does not echo request id {id}"
            )));
        }
        match response.get("ok").and_then(Value::as_bool) {
            Some(true) => response
                .get("result")
                .cloned()
                .ok_or_else(|| ClientError::Protocol("ok response without result".into())),
            Some(false) => {
                let err = response.get("error");
                let field = |k: &str| {
                    err.and_then(|e| e.get(k))
                        .and_then(Value::as_str)
                        .unwrap_or("")
                        .to_string()
                };
                Err(ClientError::Remote {
                    code: field("code"),
                    message: field("message"),
                })
            }
            None => Err(ClientError::Protocol("response without 'ok' field".into())),
        }
    }

    /// The query's full match list, as `(tree, node)` pairs.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn eval(&mut self, query: &str) -> Result<Vec<(u32, u32)>, ClientError> {
        let result = self.call("eval", &query_params(query))?;
        rows_of(result.get("rows"))
    }

    /// Evaluate a batch of queries in one round trip (the server
    /// shares common plan anchors across members). Results come back
    /// in request order; a failing member is an in-band
    /// [`ClientError::Remote`] that does not disturb its siblings.
    ///
    /// # Errors
    ///
    /// The outer `Result` is transport/protocol failure — see
    /// [`Client::call`].
    #[allow(clippy::type_complexity)]
    pub fn eval_multi(
        &mut self,
        queries: &[&str],
    ) -> Result<Vec<Result<Vec<(u32, u32)>, ClientError>>, ClientError> {
        let mut params = String::from("{\"queries\": [");
        for (i, q) in queries.iter().enumerate() {
            if i > 0 {
                params.push_str(", ");
            }
            params.push_str(&format!("\"{}\"", json::escape(q)));
        }
        params.push_str("]}");
        let result = self.call("eval_multi", &params)?;
        let items = result
            .get("results")
            .and_then(Value::as_arr)
            .ok_or_else(|| ClientError::Protocol("eval_multi response without results".into()))?;
        items
            .iter()
            .map(|item| match item.get("ok").and_then(Value::as_bool) {
                Some(true) => Ok(Ok(rows_of(item.get("rows"))?)),
                Some(false) => {
                    let err = item.get("error");
                    let field = |k: &str| {
                        err.and_then(|e| e.get(k))
                            .and_then(Value::as_str)
                            .unwrap_or("")
                            .to_string()
                    };
                    Ok(Err(ClientError::Remote {
                        code: field("code"),
                        message: field("message"),
                    }))
                }
                None => Err(ClientError::Protocol(
                    "batch member without 'ok' field".into(),
                )),
            })
            .collect()
    }

    /// One page of the query's match list. Pass `token: None` for the
    /// first page, then echo [`RemotePage::token`].
    ///
    /// # Errors
    ///
    /// See [`Client::call`]; a corrupt echoed token is
    /// [`ClientError::Remote`] with code `bad_token`.
    pub fn eval_page(
        &mut self,
        query: &str,
        token: Option<&str>,
        limit: usize,
    ) -> Result<RemotePage, ClientError> {
        let mut params = format!(
            "{{\"query\": \"{}\", \"limit\": {limit}",
            json::escape(query)
        );
        if let Some(t) = token {
            params.push_str(&format!(", \"token\": \"{}\"", json::escape(t)));
        }
        params.push('}');
        let result = self.call("eval_page", &params)?;
        let rows = rows_of(result.get("rows"))?;
        let token = match result.get("token") {
            Some(Value::Str(t)) => Some(t.clone()),
            Some(Value::Null) | None => None,
            Some(_) => {
                return Err(ClientError::Protocol(
                    "token field is neither string nor null".into(),
                ))
            }
        };
        Ok(RemotePage { rows, token })
    }

    /// Run a whole token sweep: page until the server stops minting
    /// tokens, concatenating the pages.
    ///
    /// # Errors
    ///
    /// See [`Client::eval_page`].
    pub fn eval_sweep(&mut self, query: &str, page: usize) -> Result<Vec<(u32, u32)>, ClientError> {
        let mut all = Vec::new();
        let mut token: Option<String> = None;
        loop {
            let p = self.eval_page(query, token.as_deref(), page)?;
            all.extend(p.rows);
            match p.token {
                Some(t) => token = Some(t),
                None => return Ok(all),
            }
        }
    }

    /// The query's match count.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn count(&mut self, query: &str) -> Result<u64, ClientError> {
        let result = self.call("count", &query_params(query))?;
        result
            .get("count")
            .and_then(Value::as_u64)
            .ok_or_else(|| ClientError::Protocol("count response without count".into()))
    }

    /// One budgeted step of a remote count sweep. Pass `token: None`
    /// to start, then echo [`RemoteCountPage::token`] until
    /// [`RemoteCountPage::total`] arrives.
    ///
    /// # Errors
    ///
    /// See [`Client::call`]; a corrupt echoed token is
    /// [`ClientError::Remote`] with code `bad_token`.
    pub fn count_page(
        &mut self,
        query: &str,
        token: Option<&str>,
        budget: usize,
    ) -> Result<RemoteCountPage, ClientError> {
        let mut params = format!(
            "{{\"query\": \"{}\", \"budget\": {budget}",
            json::escape(query)
        );
        if let Some(t) = token {
            params.push_str(&format!(", \"token\": \"{}\"", json::escape(t)));
        }
        params.push('}');
        let result = self.call("count", &params)?;
        let so_far = result
            .get("count")
            .and_then(Value::as_u64)
            .ok_or_else(|| ClientError::Protocol("count response without count".into()))?;
        let total = match result.get("total") {
            Some(Value::Null) | None => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or_else(|| ClientError::Protocol("total is not an integer".into()))?,
            ),
        };
        let token = match result.get("token") {
            Some(Value::Str(t)) => Some(t.clone()),
            Some(Value::Null) | None => None,
            Some(_) => {
                return Err(ClientError::Protocol(
                    "token field is neither string nor null".into(),
                ))
            }
        };
        Ok(RemoteCountPage {
            so_far,
            total,
            token,
        })
    }

    /// The query's match histogram (total, per-tree, per-label).
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn hist(&mut self, query: &str) -> Result<RemoteHistogram, ClientError> {
        let result = self.call("hist", &query_params(query))?;
        let total = result
            .get("total")
            .and_then(Value::as_u64)
            .ok_or_else(|| ClientError::Protocol("hist response without total".into()))?;
        let bad = || ClientError::Protocol("hist breakdown is not [[key, n], …]".into());
        let pairs = |field: &str| -> Result<Vec<(Value, u64)>, ClientError> {
            let items = result.get(field).and_then(Value::as_arr).ok_or_else(bad)?;
            items
                .iter()
                .map(|pair| match pair.as_arr().ok_or_else(bad)? {
                    [k, n] => Ok((k.clone(), n.as_u64().ok_or_else(bad)?)),
                    _ => Err(bad()),
                })
                .collect()
        };
        let per_tree = pairs("per_tree")?
            .into_iter()
            .map(|(k, n)| {
                let tid = k.as_u64().and_then(|v| u32::try_from(v).ok());
                tid.map(|t| (t, n)).ok_or_else(bad)
            })
            .collect::<Result<_, _>>()?;
        let per_label = pairs("per_label")?
            .into_iter()
            .map(|(k, n)| match k {
                Value::Str(s) => Ok((s, n)),
                _ => Err(bad()),
            })
            .collect::<Result<_, _>>()?;
        Ok(RemoteHistogram {
            total,
            per_tree,
            per_label,
        })
    }

    /// Does the query match anywhere?
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn exists(&mut self, query: &str) -> Result<bool, ClientError> {
        let result = self.call("exists", &query_params(query))?;
        result
            .get("exists")
            .and_then(Value::as_bool)
            .ok_or_else(|| ClientError::Protocol("exists response without exists".into()))
    }

    /// Static analysis of the query (diagnostics, emptiness) as the
    /// parsed report object.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn check(&mut self, query: &str) -> Result<Value, ClientError> {
        let result = self.call("check", &query_params(query))?;
        result
            .get("report")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("check response without report".into()))
    }

    /// The server's metrics snapshot as the parsed JSON object.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn metrics(&mut self) -> Result<Value, ClientError> {
        let result = self.call("metrics", "{}")?;
        result
            .get("metrics")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("metrics response without metrics".into()))
    }

    /// Append Penn-Treebank text to the served corpus; returns the
    /// number of trees added.
    ///
    /// # Errors
    ///
    /// See [`Client::call`]; unparseable text is code `corpus`.
    pub fn append_ptb(&mut self, src: &str) -> Result<u64, ClientError> {
        let result = self.call(
            "append_ptb",
            &format!("{{\"src\": \"{}\"}}", json::escape(src)),
        )?;
        result
            .get("added")
            .and_then(Value::as_u64)
            .ok_or_else(|| ClientError::Protocol("append response without added".into()))
    }
}

fn query_params(query: &str) -> String {
    format!("{{\"query\": \"{}\"}}", json::escape(query))
}

fn rows_of(rows: Option<&Value>) -> Result<Vec<(u32, u32)>, ClientError> {
    let bad = || ClientError::Protocol("rows are not [[tid, node], …]".into());
    let items = rows.and_then(Value::as_arr).ok_or_else(bad)?;
    items
        .iter()
        .map(|pair| {
            let pair = pair.as_arr().ok_or_else(bad)?;
            match pair {
                [t, n] => {
                    let t = t.as_u64().and_then(|v| u32::try_from(v).ok());
                    let n = n.as_u64().and_then(|v| u32::try_from(v).ok());
                    t.zip(n).ok_or_else(bad)
                }
                _ => Err(bad()),
            }
        })
        .collect()
}
