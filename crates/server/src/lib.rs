//! `lpath-server`: the network edge of the LPath query system.
//!
//! A deliberately small, std-only server: thread-per-connection over
//! TCP, one request per line, one response per line, both sides plain
//! JSON (hand-parsed by [`lpath_obs::json`] — no serde under the
//! offline-shim policy). It exposes the full [`lpath_service::Service`]
//! surface — `eval`, `eval_page`, `count`, `hist`, `exists`, `check`,
//! `metrics`, `append_ptb` — where every paged response carries an
//! **opaque resumption token** ([`lpath_service::Page`]): the
//! serialized, checksummed, corpus-stamped execution checkpoint. The
//! client echoes the token; the server keeps *no* per-client session
//! state, so deep paging survives reconnects, server restarts onto the
//! same corpus, and load-balancing across identical replicas.
//!
//! `count` comes in two shapes: the bare `{"query"}` form answers
//! `{"count": n}` in one shot (O(index) when the query hits the
//! aggregate tables), while a `budget` and/or `token` param turns it
//! into a resumable sweep whose `{"count", "total", "token"}`
//! responses carry a count token ([`lpath_service::CountPage`]) the
//! client echoes until `total` arrives. `hist` returns the GROUP
//! BY-style match histogram: total plus per-tree and per-label
//! breakdowns.
//!
//! # Protocol
//!
//! Requests and responses are single `\n`-terminated JSON objects:
//!
//! ```text
//! → {"id": 1, "method": "eval_page", "params": {"query": "//NP", "limit": 2}}
//! ← {"id": 1, "ok": true, "result": {"rows": [[0, 3], [0, 7]], "token": "AQeK…"}}
//! → {"id": 2, "method": "eval_page", "params": {"query": "//NP", "limit": 2, "token": "AQeK…"}}
//! ← {"id": 2, "ok": true, "result": {"rows": [[1, 2], [2, 5]], "token": null}}
//! ```
//!
//! Failures are typed, not fatal: a malformed line, an unparseable
//! query, or a corrupt token yields `{"id": …, "ok": false, "error":
//! {"code": …, "message": …}}` on the same connection, which then keeps
//! serving. Connections beyond [`ServerConfig::max_connections`]
//! receive one `overloaded` response and are closed — a typed signal
//! the client can back off on, not a silent drop.
//!
//! # Trust boundary
//!
//! Everything arriving on the socket is untrusted: request lines are
//! length-capped *before* buffering ([`ServerConfig::max_line_bytes`]),
//! JSON nesting is depth-bounded, and echoed tokens go through the
//! validating decoder in [`lpath_service::Service::eval_page_token`] —
//! hostile bytes produce typed errors, never panics, and a forged
//! token can never make the server execute a plan it did not build
//! itself.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
mod proto;

pub use client::{Client, ClientError, RemoteCountPage, RemoteHistogram};

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use lpath_service::Service;

/// Server tuning knobs.
#[derive(Copy, Clone, Debug)]
pub struct ServerConfig {
    /// Concurrent connections served; the next one receives a typed
    /// `overloaded` response and is closed (min 1).
    pub max_connections: usize,
    /// Longest accepted request line, in bytes. Enforced while
    /// reading, so a hostile peer cannot balloon server memory by
    /// never sending a newline (min 1024).
    pub max_line_bytes: usize,
    /// Page size used when an `eval_page` request names none.
    pub default_page_limit: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            max_line_bytes: 1 << 20,
            default_page_limit: 100,
        }
    }
}

/// A handle to a running server: its bound address plus shutdown.
///
/// Dropping the handle shuts the acceptor down too (connection
/// threads end when their clients disconnect).
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (port 0 resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the acceptor thread.
    /// Established connections keep being served until their clients
    /// disconnect.
    pub fn shutdown(mut self) {
        self.stop_acceptor();
    }

    fn stop_acceptor(&mut self) {
        let Some(join) = self.acceptor.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        // The acceptor blocks in `accept`; a throwaway connection
        // wakes it so it can observe the flag and exit.
        drop(TcpStream::connect(self.addr));
        let _ = join.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_acceptor();
    }
}

/// Bind `addr` and serve `svc` on a background acceptor thread.
/// Bind to port 0 to let the OS pick (see [`ServerHandle::addr`]).
///
/// # Errors
///
/// The bind error, verbatim, when the address cannot be bound.
pub fn serve(
    svc: Arc<Service>,
    addr: impl ToSocketAddrs,
    cfg: ServerConfig,
) -> io::Result<ServerHandle> {
    let cfg = ServerConfig {
        max_connections: cfg.max_connections.max(1),
        max_line_bytes: cfg.max_line_bytes.max(1024),
        ..cfg
    };
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let acceptor = {
        let stop = Arc::clone(&stop);
        thread::spawn(move || accept_loop(&svc, &listener, &cfg, &stop))
    };
    Ok(ServerHandle {
        addr,
        stop,
        acceptor: Some(acceptor),
    })
}

fn accept_loop(svc: &Arc<Service>, listener: &TcpListener, cfg: &ServerConfig, stop: &AtomicBool) {
    let active = Arc::new(AtomicUsize::new(0));
    for stream in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = stream else { continue };
        // Claim a connection slot optimistically; hand it back (with a
        // typed refusal) when the claim overshot the limit. The
        // increment-then-check shape keeps the limit exact under
        // concurrent accepts.
        let slot = Arc::clone(&active);
        if slot.fetch_add(1, Ordering::AcqRel) >= cfg.max_connections {
            slot.fetch_sub(1, Ordering::AcqRel);
            refuse(stream, cfg.max_connections);
            continue;
        }
        let svc = Arc::clone(svc);
        let cfg = *cfg;
        thread::spawn(move || {
            let _ = connection(&svc, stream, &cfg);
            slot.fetch_sub(1, Ordering::AcqRel);
        });
    }
}

/// Tell an over-limit client why it is being dropped, best-effort.
fn refuse(mut stream: TcpStream, limit: usize) {
    let line = proto::error_line(
        None,
        "overloaded",
        &format!("connection limit ({limit}) reached, retry later"),
    );
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.write_all(b"\n");
}

/// Serve one connection until EOF: read a line, answer a line.
/// Request-level failures answer and continue; only I/O failures and
/// an over-long line end the connection.
fn connection(svc: &Service, mut stream: TcpStream, cfg: &ServerConfig) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    loop {
        match read_line_bounded(&mut reader, cfg.max_line_bytes)? {
            LineRead::Eof => return Ok(()),
            LineRead::TooLong => {
                // The rest of the line was never read, so framing is
                // lost: answer once and hang up.
                let line = proto::error_line(
                    None,
                    "bad_request",
                    &format!("request line exceeds {} bytes", cfg.max_line_bytes),
                );
                stream.write_all(line.as_bytes())?;
                stream.write_all(b"\n")?;
                return Ok(());
            }
            LineRead::Line(line) => {
                if line.iter().all(u8::is_ascii_whitespace) {
                    continue;
                }
                let response = proto::handle(svc, &line, cfg);
                stream.write_all(response.as_bytes())?;
                stream.write_all(b"\n")?;
                stream.flush()?;
            }
        }
    }
}

enum LineRead {
    Eof,
    Line(Vec<u8>),
    TooLong,
}

/// Read one `\n`-terminated line of at most `max` bytes (newline
/// excluded), without ever buffering more than `max` bytes of it.
fn read_line_bounded(reader: &mut impl BufRead, max: usize) -> io::Result<LineRead> {
    let mut line = Vec::new();
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return Ok(if line.is_empty() {
                LineRead::Eof
            } else {
                // EOF mid-line: serve what arrived (a final unterminated
                // request from a half-closed client).
                LineRead::Line(line)
            });
        }
        if let Some(pos) = available.iter().position(|&b| b == b'\n') {
            if line.len() + pos > max {
                return Ok(LineRead::TooLong);
            }
            line.extend_from_slice(&available[..pos]);
            reader.consume(pos + 1);
            return Ok(LineRead::Line(line));
        }
        let n = available.len();
        if line.len() + n > max {
            return Ok(LineRead::TooLong);
        }
        line.extend_from_slice(available);
        reader.consume(n);
    }
}
