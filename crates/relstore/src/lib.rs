//! An embedded relational engine: the storage substrate for the LPath
//! query system.
//!
//! The paper stores labeled tree nodes in a relational database and
//! translates LPath to SQL; this crate supplies the database. It is a
//! deliberately small, read-only engine with exactly the machinery that
//! workload needs:
//!
//! * [`table`] — columnar `u32` tables with clustered ordering;
//! * [`index`] — ordered secondary indexes with prefix + range probes;
//! * [`stats`] — exact per-column frequency statistics;
//! * [`sql`] — logical conjunctive queries (`SELECT … WHERE … EXISTS`)
//!   and their SQL text rendering;
//! * [`planner`] — greedy statistics-driven join ordering and access
//!   path selection;
//! * [`mod@plan`] — pipelined index-nested-loop plans with correlated
//!   semi/anti joins;
//! * [`cursor`] — pull-based streaming execution with early
//!   termination (`exists`, materialization-free `count`,
//!   `limit`/`offset` pages).
//!
//! Nothing here knows about trees or LPath: the query compiler in
//! `lpath-core` lowers axis relations to plain column comparisons.

#![warn(missing_docs)]

pub mod catalog;
pub mod cursor;
pub mod expr;
pub mod index;
pub mod plan;
pub mod planner;
pub mod schema;
pub mod sql;
pub mod stats;
pub mod table;
pub mod value;

pub use catalog::{Database, IndexId, TableId};
pub use cursor::{count, execute, execute_page, exists, Cursor};
pub use expr::{ColRef, Cond, InCond, Operand};
pub use index::Index;
pub use plan::{AccessPath, JoinStep, Plan, SubCheck};
pub use planner::{plan, JoinOrder, OptGoal, PlannerConfig};
pub use schema::{ColId, Schema};
pub use sql::{ConjQuery, SubQuery};
pub use stats::{ColumnStats, TableStats};
pub use table::{RowId, Table};
pub use value::{Cmp, Value, NULL};
