//! An embedded relational engine: the storage substrate for the LPath
//! query system.
//!
//! The paper stores labeled tree nodes in a relational database and
//! translates LPath to SQL; this crate supplies the database. It is a
//! deliberately small, read-only engine with exactly the machinery that
//! workload needs:
//!
//! * [`table`] — columnar `u32` tables with clustered ordering;
//! * [`index`] — ordered secondary indexes with prefix + range probes;
//! * [`stats`] — exact per-column frequency statistics;
//! * [`sql`] — logical conjunctive queries (`SELECT … WHERE … EXISTS`)
//!   and their SQL text rendering;
//! * [`planner`] — greedy statistics-driven join ordering and access
//!   path selection;
//! * [`mod@plan`] — pipelined index-nested-loop plans with correlated
//!   semi/anti joins;
//! * [`cursor`] — pull-based streaming execution with early
//!   termination (`exists`, materialization-free `count`,
//!   `limit`/`offset` pages) and **suspension**: a [`Cursor`] can be
//!   checkpointed mid-enumeration ([`Cursor::suspend`]) and resumed
//!   later ([`Cursor::resume`]) with nothing replayed.
//!
//! Nothing here knows about trees or LPath: the query compiler in
//! `lpath-core` lowers axis relations to plain column comparisons.
//!
//! ```
//! use lpath_relstore::{AccessPath, ColId, ColRef, Cursor, Database,
//!                      JoinStep, Plan, Schema, Table};
//!
//! // A two-column table and a single-step scan plan over it.
//! let mut t = Table::new(Schema::new(&["grp", "val"]));
//! for row in [[1, 10], [1, 11], [2, 20]] {
//!     t.push_row(&row);
//! }
//! let mut db = Database::new();
//! let tid = db.add_table("t", t);
//! let plan = Plan {
//!     alias_tables: vec![tid],
//!     steps: vec![JoinStep {
//!         alias: 0,
//!         table: tid,
//!         access: AccessPath::FullScan,
//!         residual: vec![],
//!         sets: vec![],
//!     }],
//!     projection: vec![ColRef::new(0, ColId(1))],
//!     ..Plan::default()
//! };
//!
//! // Pull one tuple, suspend, resume later: nothing is replayed.
//! let mut cursor = Cursor::new(&plan, &db);
//! assert_eq!(cursor.next(), Some(vec![10]));
//! let checkpoint = cursor.suspend();
//! drop(cursor);
//! let resumed: Vec<_> = Cursor::resume(&plan, &db, checkpoint).collect();
//! assert_eq!(resumed, [[11], [20]]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod cursor;
pub mod expr;
pub mod index;
pub mod multi;
pub mod plan;
pub mod planner;
pub mod schema;
pub mod sql;
pub mod stats;
pub mod table;
pub mod value;
pub mod wire;

pub use catalog::{Database, IndexId, TableId};
pub use cursor::{
    count, count_resume, execute, execute_analyzed, execute_page, execute_resume, exists, Cursor,
    CursorCheckpoint, StepObs,
};
pub use expr::{ColRef, Cond, InCond, Operand};
pub use index::Index;
pub use multi::{anchor_key, execute_shared, group_by_anchor, AnchorKey, SharedScanStats};
pub use plan::{AccessPath, JoinStep, Plan, SubCheck};
pub use planner::{plan, plan_fingerprint, plan_signature, JoinOrder, OptGoal, PlannerConfig};
pub use schema::{ColId, Schema};
pub use sql::{ConjQuery, SubQuery};
pub use stats::{ColumnStats, GroupSpread, TableStats};
pub use table::{RowId, Table};
pub use value::{Cmp, Value, NULL};
pub use wire::WireError;
