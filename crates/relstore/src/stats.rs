//! Per-column frequency statistics.
//!
//! The planner orders joins by estimated input cardinality (paper §5.2's
//! observation: queries over low-selectivity tags like `NP` produce huge
//! intermediate results). Statistics are exact value→count histograms
//! over the columns the catalog was asked to analyze — affordable
//! because the interned `name` and `value` domains are small relative to
//! the table.

use std::collections::{HashMap, HashSet};

use crate::schema::ColId;
use crate::table::Table;
use crate::value::Value;

/// Exact frequency histogram of one column.
#[derive(Clone, Debug, Default)]
pub struct ColumnStats {
    counts: HashMap<Value, u32>,
    total: usize,
}

impl ColumnStats {
    /// Scan one column and collect its value frequencies.
    pub fn build(table: &Table, col: ColId) -> Self {
        let column = table.column(col);
        let mut counts: HashMap<Value, u32> = HashMap::new();
        for &v in column {
            *counts.entry(v).or_insert(0) += 1;
        }
        ColumnStats {
            counts,
            total: column.len(),
        }
    }

    /// Rows with this exact value.
    pub fn count(&self, v: Value) -> usize {
        self.counts.get(&v).copied().unwrap_or(0) as usize
    }

    /// Total rows.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of distinct values.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// The `k` most frequent values, descending.
    pub fn top(&self, k: usize) -> Vec<(Value, u32)> {
        let mut v: Vec<(Value, u32)> = self.counts.iter().map(|(&a, &b)| (a, b)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }
}

/// Per-group (per-tree) spread of one column: how many groups each
/// value occurs in. The grouping column in practice is `tid`, so
/// `spread(v)` answers "how many trees contain at least one row with
/// this value" — the chunk count a chunked (sort-and-rescan) executor
/// pays when it anchors on that value, and the per-tree match-density
/// statistic the aggregation layer tabulates.
#[derive(Clone, Debug, Default)]
pub struct GroupSpread {
    groups_with: HashMap<Value, u32>,
    groups_total: u32,
}

impl GroupSpread {
    /// Scan `(group_col, col)` pairs and count, per distinct value of
    /// `col`, the distinct `group_col` values it co-occurs with.
    pub fn build(table: &Table, group_col: ColId, col: ColId) -> Self {
        let groups = table.column(group_col);
        let values = table.column(col);
        let mut pairs: HashSet<(Value, Value)> = HashSet::new();
        let mut distinct_groups: HashSet<Value> = HashSet::new();
        let mut groups_with: HashMap<Value, u32> = HashMap::new();
        for (&g, &v) in groups.iter().zip(values.iter()) {
            distinct_groups.insert(g);
            if pairs.insert((v, g)) {
                *groups_with.entry(v).or_insert(0) += 1;
            }
        }
        GroupSpread {
            groups_with,
            groups_total: distinct_groups.len() as u32,
        }
    }

    /// Groups containing at least one row with value `v`.
    pub fn groups_with(&self, v: Value) -> u32 {
        self.groups_with.get(&v).copied().unwrap_or(0)
    }

    /// Total distinct groups observed.
    pub fn groups_total(&self) -> u32 {
        self.groups_total
    }
}

/// Statistics for the analyzed columns of one table.
#[derive(Clone, Debug, Default)]
pub struct TableStats {
    cols: HashMap<ColId, ColumnStats>,
    spreads: HashMap<ColId, GroupSpread>,
    rows: usize,
}

impl TableStats {
    /// Collect statistics for the listed columns.
    pub fn analyze(table: &Table, cols: &[ColId]) -> Self {
        TableStats {
            cols: cols
                .iter()
                .map(|&c| (c, ColumnStats::build(table, c)))
                .collect(),
            spreads: HashMap::new(),
            rows: table.num_rows(),
        }
    }

    /// Table row count at analysis time.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Statistics for one column, if analyzed.
    pub fn column(&self, col: ColId) -> Option<&ColumnStats> {
        self.cols.get(&col)
    }

    /// Estimated rows matching `col = v`: the exact count when the
    /// column was analyzed, otherwise a uniformity guess of
    /// `rows / 10`.
    pub fn est_eq(&self, col: ColId, v: Value) -> usize {
        match self.cols.get(&col) {
            Some(s) => s.count(v),
            None => self.rows / 10,
        }
    }

    /// Collect per-group spreads for the listed columns, grouped by
    /// `group_col` (in practice the tree id). Feeds the planner's
    /// first-rows chunk model; see [`TableStats::group_spread`].
    pub fn analyze_grouped(&mut self, table: &Table, group_col: ColId, cols: &[ColId]) {
        for &c in cols {
            self.spreads
                .insert(c, GroupSpread::build(table, group_col, c));
        }
    }

    /// The fraction of groups (trees) containing `col = v`, as
    /// `(groups_with, groups_total)` — `None` unless
    /// [`TableStats::analyze_grouped`] covered the column.
    pub fn group_spread(&self, col: ColId, v: Value) -> Option<(u32, u32)> {
        let s = self.spreads.get(&col)?;
        Some((s.groups_with(v), s.groups_total()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn sample() -> Table {
        let mut t = Table::new(Schema::new(&["name", "value"]));
        for row in [[1, 9], [1, 9], [1, 8], [2, 9], [3, 7], [1, 7]] {
            t.push_row(&row);
        }
        t
    }

    #[test]
    fn counts_and_totals() {
        let s = ColumnStats::build(&sample(), ColId(0));
        assert_eq!(s.total(), 6);
        assert_eq!(s.count(1), 4);
        assert_eq!(s.count(2), 1);
        assert_eq!(s.count(99), 0);
        assert_eq!(s.distinct(), 3);
    }

    #[test]
    fn top_values_sorted() {
        let s = ColumnStats::build(&sample(), ColId(0));
        assert_eq!(s.top(2), [(1, 4), (2, 1)]);
    }

    #[test]
    fn group_spreads_count_distinct_groups_exactly() {
        // (tid, lex) rows deliberately *not* grouped into tid runs.
        let mut t = Table::new(Schema::new(&["tid", "lex"]));
        for row in [[1, 7], [2, 7], [1, 7], [3, 8], [2, 8], [1, 9]] {
            t.push_row(&row);
        }
        let s = GroupSpread::build(&t, ColId(0), ColId(1));
        assert_eq!(s.groups_total(), 3);
        assert_eq!(s.groups_with(7), 2);
        assert_eq!(s.groups_with(8), 2);
        assert_eq!(s.groups_with(9), 1);
        assert_eq!(s.groups_with(42), 0);

        let mut st = TableStats::analyze(&t, &[ColId(1)]);
        assert_eq!(st.group_spread(ColId(1), 7), None, "not yet grouped");
        st.analyze_grouped(&t, ColId(0), &[ColId(1)]);
        assert_eq!(st.group_spread(ColId(1), 7), Some((2, 3)));
        assert_eq!(st.group_spread(ColId(0), 1), None, "uncovered column");
    }

    #[test]
    fn table_stats_estimates() {
        let t = sample();
        let st = TableStats::analyze(&t, &[ColId(0)]);
        assert_eq!(st.rows(), 6);
        assert_eq!(st.est_eq(ColId(0), 1), 4);
        // Unanalyzed column falls back to a fraction of the table.
        assert_eq!(st.est_eq(ColId(1), 9), 0);
        assert!(st.column(ColId(1)).is_none());
    }
}
