//! Per-column frequency statistics.
//!
//! The planner orders joins by estimated input cardinality (paper §5.2's
//! observation: queries over low-selectivity tags like `NP` produce huge
//! intermediate results). Statistics are exact value→count histograms
//! over the columns the catalog was asked to analyze — affordable
//! because the interned `name` and `value` domains are small relative to
//! the table.

use std::collections::HashMap;

use crate::schema::ColId;
use crate::table::Table;
use crate::value::Value;

/// Exact frequency histogram of one column.
#[derive(Clone, Debug, Default)]
pub struct ColumnStats {
    counts: HashMap<Value, u32>,
    total: usize,
}

impl ColumnStats {
    /// Scan one column and collect its value frequencies.
    pub fn build(table: &Table, col: ColId) -> Self {
        let column = table.column(col);
        let mut counts: HashMap<Value, u32> = HashMap::new();
        for &v in column {
            *counts.entry(v).or_insert(0) += 1;
        }
        ColumnStats {
            counts,
            total: column.len(),
        }
    }

    /// Rows with this exact value.
    pub fn count(&self, v: Value) -> usize {
        self.counts.get(&v).copied().unwrap_or(0) as usize
    }

    /// Total rows.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of distinct values.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// The `k` most frequent values, descending.
    pub fn top(&self, k: usize) -> Vec<(Value, u32)> {
        let mut v: Vec<(Value, u32)> = self.counts.iter().map(|(&a, &b)| (a, b)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }
}

/// Statistics for the analyzed columns of one table.
#[derive(Clone, Debug, Default)]
pub struct TableStats {
    cols: HashMap<ColId, ColumnStats>,
    rows: usize,
}

impl TableStats {
    /// Collect statistics for the listed columns.
    pub fn analyze(table: &Table, cols: &[ColId]) -> Self {
        TableStats {
            cols: cols
                .iter()
                .map(|&c| (c, ColumnStats::build(table, c)))
                .collect(),
            rows: table.num_rows(),
        }
    }

    /// Table row count at analysis time.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Statistics for one column, if analyzed.
    pub fn column(&self, col: ColId) -> Option<&ColumnStats> {
        self.cols.get(&col)
    }

    /// Estimated rows matching `col = v`: the exact count when the
    /// column was analyzed, otherwise a uniformity guess of
    /// `rows / 10`.
    pub fn est_eq(&self, col: ColId, v: Value) -> usize {
        match self.cols.get(&col) {
            Some(s) => s.count(v),
            None => self.rows / 10,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn sample() -> Table {
        let mut t = Table::new(Schema::new(&["name", "value"]));
        for row in [[1, 9], [1, 9], [1, 8], [2, 9], [3, 7], [1, 7]] {
            t.push_row(&row);
        }
        t
    }

    #[test]
    fn counts_and_totals() {
        let s = ColumnStats::build(&sample(), ColId(0));
        assert_eq!(s.total(), 6);
        assert_eq!(s.count(1), 4);
        assert_eq!(s.count(2), 1);
        assert_eq!(s.count(99), 0);
        assert_eq!(s.distinct(), 3);
    }

    #[test]
    fn top_values_sorted() {
        let s = ColumnStats::build(&sample(), ColId(0));
        assert_eq!(s.top(2), [(1, 4), (2, 1)]);
    }

    #[test]
    fn table_stats_estimates() {
        let t = sample();
        let st = TableStats::analyze(&t, &[ColId(0)]);
        assert_eq!(st.rows(), 6);
        assert_eq!(st.est_eq(ColId(0), 1), 4);
        // Unanalyzed column falls back to a fraction of the table.
        assert_eq!(st.est_eq(ColId(1), 9), 0);
        assert!(st.column(ColId(1)).is_none());
    }
}
