//! Columnar row store with clustered ordering.
//!
//! Rows are stored column-major (one `Vec<Value>` per column): range
//! scans touch only the columns they read, and sorting into clustered
//! order is a permutation application per column. After loading, a table
//! is sorted once by its clustering key (paper §5: clustered by
//! `{name, tid, left, right, depth, id, pid}`) and never mutated again —
//! treebanks are immutable, as is the paper's setting.

use crate::schema::{ColId, Schema};
use crate::value::Value;

/// Physical position of a row in its table (post-clustering).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct RowId(pub u32);

impl RowId {
    #[inline]
    /// The row's position in its table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An append-then-freeze columnar table.
#[derive(Clone, Debug)]
pub struct Table {
    schema: Schema,
    cols: Vec<Vec<Value>>,
    rows: usize,
}

impl Table {
    /// An empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        let cols = (0..schema.len()).map(|_| Vec::new()).collect();
        Table {
            schema,
            cols,
            rows: 0,
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Does the table have zero rows?
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Reserve capacity for `n` additional rows in every column.
    pub fn reserve(&mut self, n: usize) {
        for c in &mut self.cols {
            c.reserve(n);
        }
    }

    /// Append one row.
    ///
    /// # Panics
    /// Panics if `row.len()` does not match the schema width.
    pub fn push_row(&mut self, row: &[Value]) {
        assert_eq!(
            row.len(),
            self.schema.len(),
            "row width {} vs schema {}",
            row.len(),
            self.schema
        );
        for (c, &v) in self.cols.iter_mut().zip(row) {
            c.push(v);
        }
        self.rows += 1;
    }

    /// One cell.
    #[inline]
    pub fn value(&self, row: RowId, col: ColId) -> Value {
        self.cols[col.index()][row.index()]
    }

    /// A whole column, for tight scan loops.
    #[inline]
    pub fn column(&self, col: ColId) -> &[Value] {
        &self.cols[col.index()]
    }

    /// Materialize one row (diagnostics and tests).
    pub fn row(&self, row: RowId) -> Vec<Value> {
        self.cols.iter().map(|c| c[row.index()]).collect()
    }

    /// All row ids in physical order.
    pub fn scan(&self) -> impl Iterator<Item = RowId> + '_ {
        (0..self.rows as u32).map(RowId)
    }

    /// Sort the table into clustered order by the given key columns
    /// (lexicographic). Returns the permutation applied, mapping new
    /// position → old position, in case callers must remap stored row
    /// ids (none do today: clustering happens before any index exists).
    pub fn cluster_by(&mut self, key: &[ColId]) -> Vec<u32> {
        let mut perm: Vec<u32> = (0..self.rows as u32).collect();
        perm.sort_unstable_by(|&a, &b| {
            for &k in key {
                let col = &self.cols[k.index()];
                let ord = col[a as usize].cmp(&col[b as usize]);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        for c in &mut self.cols {
            let mut next = Vec::with_capacity(c.len());
            next.extend(perm.iter().map(|&p| c[p as usize]));
            *c = next;
        }
        perm
    }

    /// Compare two rows of this table on `key` columns; used by index
    /// construction.
    pub(crate) fn cmp_rows(&self, a: RowId, b: RowId, key: &[ColId]) -> std::cmp::Ordering {
        for &k in key {
            let col = &self.cols[k.index()];
            let ord = col[a.index()].cmp(&col[b.index()]);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(Schema::new(&["a", "b"]));
        t.push_row(&[3, 30]);
        t.push_row(&[1, 10]);
        t.push_row(&[2, 20]);
        t.push_row(&[1, 5]);
        t
    }

    #[test]
    fn push_and_read() {
        let t = sample();
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.value(RowId(0), ColId(0)), 3);
        assert_eq!(t.row(RowId(2)), vec![2, 20]);
        assert_eq!(t.column(ColId(1)), &[30, 10, 20, 5]);
    }

    #[test]
    fn cluster_sorts_rows_lexicographically() {
        let mut t = sample();
        t.cluster_by(&[ColId(0), ColId(1)]);
        let rows: Vec<Vec<Value>> = t.scan().map(|r| t.row(r)).collect();
        assert_eq!(rows, [[1, 5], [1, 10], [2, 20], [3, 30]]);
    }

    #[test]
    fn cluster_returns_permutation() {
        let mut t = sample();
        let perm = t.cluster_by(&[ColId(0), ColId(1)]);
        assert_eq!(perm, [3, 1, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_rejected() {
        let mut t = sample();
        t.push_row(&[1]);
    }

    #[test]
    fn scan_covers_all_rows() {
        let t = sample();
        assert_eq!(t.scan().count(), 4);
    }
}
