//! Table schemas: named, positionally addressed `u32` columns.

use std::fmt;

/// Index of a column within its table's schema.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ColId(pub u16);

impl ColId {
    #[inline]
    /// The column's position in its schema.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An ordered list of column names.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<String>,
}

impl Schema {
    /// Build a schema from column names.
    ///
    /// # Panics
    /// Panics on duplicate column names — a schema bug, not an input
    /// error.
    pub fn new<S: AsRef<str>>(names: &[S]) -> Self {
        let columns: Vec<String> = names.iter().map(|s| s.as_ref().to_string()).collect();
        for (i, a) in columns.iter().enumerate() {
            for b in &columns[i + 1..] {
                assert_ne!(a, b, "duplicate column name {a:?}");
            }
        }
        Schema { columns }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Does the schema have zero columns?
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Look a column up by name.
    pub fn col(&self, name: &str) -> Option<ColId> {
        self.columns
            .iter()
            .position(|c| c == name)
            .map(|i| ColId(i as u16))
    }

    /// Like [`Schema::col`] but panics with a helpful message; for
    /// schema-static code paths.
    pub fn col_expect(&self, name: &str) -> ColId {
        self.col(name)
            .unwrap_or_else(|| panic!("no column {name:?} in schema {self}"))
    }

    /// The column's name.
    pub fn name(&self, col: ColId) -> &str {
        &self.columns[col.index()]
    }

    /// Iterate `(ColId, name)`.
    pub fn iter(&self) -> impl Iterator<Item = (ColId, &str)> {
        self.columns
            .iter()
            .enumerate()
            .map(|(i, n)| (ColId(i as u16), n.as_str()))
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({})", self.columns.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        let s = Schema::new(&["tid", "left", "right"]);
        assert_eq!(s.col("tid"), Some(ColId(0)));
        assert_eq!(s.col("right"), Some(ColId(2)));
        assert_eq!(s.col("missing"), None);
        assert_eq!(s.name(ColId(1)), "left");
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicates_rejected() {
        Schema::new(&["a", "b", "a"]);
    }

    #[test]
    fn display_lists_columns() {
        let s = Schema::new(&["x", "y"]);
        assert_eq!(s.to_string(), "(x, y)");
    }
}
