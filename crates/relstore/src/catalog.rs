//! The database catalog: tables, their indexes and statistics.

use crate::index::Index;
use crate::schema::ColId;
use crate::stats::TableStats;
use crate::table::Table;

/// Handle to a table in a [`Database`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct TableId(pub usize);

/// Handle to an index in a [`Database`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct IndexId(pub usize);

struct IndexEntry {
    table: TableId,
    name: String,
    index: Index,
}

/// A collection of frozen tables with secondary indexes and statistics.
#[derive(Default)]
pub struct Database {
    tables: Vec<(String, Table)>,
    indexes: Vec<IndexEntry>,
    stats: Vec<Option<TableStats>>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a (fully loaded and clustered) table.
    pub fn add_table(&mut self, name: impl Into<String>, table: Table) -> TableId {
        let id = TableId(self.tables.len());
        self.tables.push((name.into(), table));
        self.stats.push(None);
        id
    }

    /// One table by id.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.0].1
    }

    /// A table's registered name.
    pub fn table_name(&self, id: TableId) -> &str {
        &self.tables[id.0].0
    }

    /// Look a table up by name.
    pub fn table_by_name(&self, name: &str) -> Option<TableId> {
        self.tables.iter().position(|(n, _)| n == name).map(TableId)
    }

    /// Build and register an ordered index over `key` columns.
    pub fn add_index(
        &mut self,
        table: TableId,
        name: impl Into<String>,
        key: Vec<ColId>,
    ) -> IndexId {
        let index = Index::build(self.table(table), key);
        let id = IndexId(self.indexes.len());
        self.indexes.push(IndexEntry {
            table,
            name: name.into(),
            index,
        });
        id
    }

    /// One index by id (a catalog accessor, not `std::ops::Index`).
    #[allow(clippy::should_implement_trait)]
    pub fn index(&self, id: IndexId) -> &Index {
        &self.indexes[id.0].index
    }

    /// An index's registered name.
    pub fn index_name(&self, id: IndexId) -> &str {
        &self.indexes[id.0].name
    }

    /// All indexes available on `table`.
    pub fn indexes_on(&self, table: TableId) -> impl Iterator<Item = IndexId> + '_ {
        self.indexes
            .iter()
            .enumerate()
            .filter(move |(_, e)| e.table == table)
            .map(|(i, _)| IndexId(i))
    }

    /// Collect frequency statistics for `cols` of `table`.
    pub fn analyze(&mut self, table: TableId, cols: &[ColId]) {
        let stats = TableStats::analyze(self.table(table), cols);
        self.stats[table.0] = Some(stats);
    }

    /// Augment `table`'s statistics with per-group value spreads of
    /// `cols`, grouped by `group_col` (in the node relation: per-tree
    /// spreads, grouped by `tid`). Collects base statistics first if
    /// [`Database::analyze`] has not run.
    pub fn analyze_grouped(&mut self, table: TableId, group_col: ColId, cols: &[ColId]) {
        let t = &self.tables[table.0].1;
        let stats = self.stats[table.0].get_or_insert_with(|| TableStats::analyze(t, &[]));
        stats.analyze_grouped(t, group_col, cols);
    }

    /// Statistics, if [`Database::analyze`] ran for this table.
    pub fn stats(&self, table: TableId) -> Option<&TableStats> {
        self.stats[table.0].as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn db() -> (Database, TableId) {
        let mut t = Table::new(Schema::new(&["name", "tid", "id"]));
        for row in [[1, 1, 1], [1, 1, 2], [2, 1, 3], [1, 2, 1]] {
            t.push_row(&row);
        }
        t.cluster_by(&[ColId(0), ColId(1), ColId(2)]);
        let mut db = Database::new();
        let id = db.add_table("node", t);
        (db, id)
    }

    #[test]
    fn table_registration_and_lookup() {
        let (db, id) = db();
        assert_eq!(db.table_by_name("node"), Some(id));
        assert_eq!(db.table_by_name("missing"), None);
        assert_eq!(db.table_name(id), "node");
        assert_eq!(db.table(id).num_rows(), 4);
    }

    #[test]
    fn index_registration() {
        let (mut db, id) = db();
        let i1 = db.add_index(id, "by_name", vec![ColId(0)]);
        let i2 = db.add_index(id, "by_tid_id", vec![ColId(1), ColId(2)]);
        let on: Vec<IndexId> = db.indexes_on(id).collect();
        assert_eq!(on, [i1, i2]);
        assert_eq!(db.index_name(i2), "by_tid_id");
        assert_eq!(db.index(i1).equal_range(db.table(id), &[1]).len(), 3);
    }

    #[test]
    fn analyze_and_stats() {
        let (mut db, id) = db();
        assert!(db.stats(id).is_none());
        db.analyze(id, &[ColId(0)]);
        let st = db.stats(id).unwrap();
        assert_eq!(st.est_eq(ColId(0), 1), 3);
        assert_eq!(st.est_eq(ColId(0), 2), 1);
    }
}
