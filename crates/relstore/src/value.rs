//! Column values.
//!
//! Every column of the node relation fits in a `u32` (paper §5: the
//! relation is `{tid, left, right, depth, id, pid, name, value}` with
//! symbols interned upstream). Keeping values word-sized makes rows flat
//! `u32` tuples — cheap to compare, copy and sort.

/// A single column value. Interpretation (position, identifier,
/// interned symbol) is up to the schema.
pub type Value = u32;

/// Sentinel for "no value" (e.g. the `value` column of element rows,
/// which only attribute rows populate). `u32::MAX` cannot collide with
/// interned symbols or labels in practice: it would require four billion
/// distinct symbols or leaves.
pub const NULL: Value = u32::MAX;

/// Comparison operators usable in filters and join conditions.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)] // names are the documentation
pub enum Cmp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Cmp {
    /// Evaluate `a cmp b`.
    #[inline]
    pub fn eval(self, a: Value, b: Value) -> bool {
        match self {
            Cmp::Eq => a == b,
            Cmp::Ne => a != b,
            Cmp::Lt => a < b,
            Cmp::Le => a <= b,
            Cmp::Gt => a > b,
            Cmp::Ge => a >= b,
        }
    }

    /// The operator with operand roles swapped: `a cmp b ⇔ b cmp.flip() a`.
    pub fn flip(self) -> Cmp {
        match self {
            Cmp::Eq => Cmp::Eq,
            Cmp::Ne => Cmp::Ne,
            Cmp::Lt => Cmp::Gt,
            Cmp::Le => Cmp::Ge,
            Cmp::Gt => Cmp::Lt,
            Cmp::Ge => Cmp::Le,
        }
    }

    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            Cmp::Eq => "=",
            Cmp::Ne => "<>",
            Cmp::Lt => "<",
            Cmp::Le => "<=",
            Cmp::Gt => ">",
            Cmp::Ge => ">=",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_covers_all_operators() {
        assert!(Cmp::Eq.eval(3, 3) && !Cmp::Eq.eval(3, 4));
        assert!(Cmp::Ne.eval(3, 4) && !Cmp::Ne.eval(3, 3));
        assert!(Cmp::Lt.eval(3, 4) && !Cmp::Lt.eval(4, 4));
        assert!(Cmp::Le.eval(4, 4) && !Cmp::Le.eval(5, 4));
        assert!(Cmp::Gt.eval(5, 4) && !Cmp::Gt.eval(4, 4));
        assert!(Cmp::Ge.eval(4, 4) && !Cmp::Ge.eval(3, 4));
    }

    #[test]
    fn flip_is_consistent() {
        for op in [Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge] {
            for a in 0..4u32 {
                for b in 0..4u32 {
                    assert_eq!(op.eval(a, b), op.flip().eval(b, a), "{op:?} {a} {b}");
                }
            }
        }
    }
}
