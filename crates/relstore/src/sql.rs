//! Logical conjunctive queries and their SQL rendering.
//!
//! The paper translates each LPath query into one SQL `SELECT` whose
//! `FROM` clause has one alias of the node relation per query node,
//! whose `WHERE` clause conjoins the Table 2 label comparisons, and
//! which nests `EXISTS` / `NOT EXISTS` subqueries for predicates. A
//! [`ConjQuery`] is exactly that shape; [`ConjQuery::to_sql`] renders
//! the statement the paper would feed its commercial RDBMS, and the
//! [planner](crate::planner) compiles the same structure to an in-process
//! physical [plan](mod@crate::plan).

use crate::catalog::{Database, TableId};
use crate::expr::{ColRef, Cond, InCond, Operand};
use crate::value::Value;

/// An `EXISTS` / `NOT EXISTS` subquery, correlated to its parent via
/// [`Operand::Outer`] operands in its conditions.
#[derive(Clone, Debug)]
pub struct SubQuery {
    /// NOT EXISTS instead of EXISTS.
    pub negated: bool,
    /// The subquery body.
    pub query: ConjQuery,
}

/// A conjunctive `SELECT`: aliases × conditions × subqueries.
#[derive(Clone, Debug, Default)]
pub struct ConjQuery {
    /// One table alias per query node.
    pub aliases: Vec<TableId>,
    /// Conjunctive `WHERE` conditions over the aliases.
    pub conds: Vec<Cond>,
    /// Set-membership conditions (`col IN (…)`).
    pub in_conds: Vec<InCond>,
    /// Correlated `EXISTS` / `NOT EXISTS` subqueries.
    pub subqueries: Vec<SubQuery>,
    /// Projected columns (ignored for subqueries, which render
    /// `SELECT 1`).
    pub projection: Vec<ColRef>,
    /// Emit `SELECT DISTINCT`.
    pub distinct: bool,
    /// The translator proved that enumeration cannot produce duplicate
    /// projected tuples (every non-output alias is functionally
    /// determined by the output alias). `DISTINCT` is then a no-op, so
    /// counting paths may skip the dedup watermark sets entirely.
    /// Purely an optimization hint: `false` is always sound.
    pub dedup_free: bool,
}

impl ConjQuery {
    /// Add an alias, returning its position.
    pub fn add_alias(&mut self, table: TableId) -> usize {
        self.aliases.push(table);
        self.aliases.len() - 1
    }

    /// Render as a SQL statement. `resolve` may pretty-print interned
    /// values (e.g. symbol 17 → `'NP'`); return `None` to print the raw
    /// number.
    pub fn to_sql_with(
        &self,
        db: &Database,
        resolve: &dyn Fn(ColRef, Value) -> Option<String>,
    ) -> String {
        let mut counter = 0usize;
        self.render(db, resolve, &mut counter, None, true)
    }

    /// Render as a SQL statement with raw numeric literals.
    pub fn to_sql(&self, db: &Database) -> String {
        self.to_sql_with(db, &|_, _| None)
    }

    fn render(
        &self,
        db: &Database,
        resolve: &dyn Fn(ColRef, Value) -> Option<String>,
        counter: &mut usize,
        outer_names: Option<&[String]>,
        top: bool,
    ) -> String {
        let names: Vec<String> = self
            .aliases
            .iter()
            .map(|_| {
                let n = format!("n{counter}");
                *counter += 1;
                n
            })
            .collect();
        let col_name = |r: ColRef| -> String {
            let table = self.aliases[r.alias];
            format!(
                "{}.{}",
                names[r.alias],
                db.table(table).schema().name(r.col)
            )
        };
        let outer_col_name = |r: ColRef| -> String {
            let outer = outer_names.expect("Outer operand in an uncorrelated context");
            // The column names of the outer table are resolved against
            // this query's own catalog: all aliases range over the node
            // relation in practice, and mixed-table correlation would
            // name columns identically anyway.
            format!(
                "{}.{}",
                outer[r.alias],
                db.table(self.aliases.first().copied().unwrap_or(TableId(0)))
                    .schema()
                    .name(r.col)
            )
        };

        let select = if top {
            let cols: Vec<String> = self.projection.iter().map(|&c| col_name(c)).collect();
            format!(
                "SELECT {}{}",
                if self.distinct { "DISTINCT " } else { "" },
                if cols.is_empty() {
                    "*".to_string()
                } else {
                    cols.join(", ")
                }
            )
        } else {
            "SELECT 1".to_string()
        };

        let from: Vec<String> = self
            .aliases
            .iter()
            .zip(&names)
            .map(|(&t, n)| format!("{} {}", db.table_name(t), n))
            .collect();

        let mut wheres: Vec<String> = self
            .conds
            .iter()
            .map(|c| {
                let lhs = col_name(c.left);
                let rhs = match c.right {
                    Operand::Const(v) => resolve(c.left, v).unwrap_or_else(|| v.to_string()),
                    Operand::Col(r) => col_name(r),
                    Operand::Outer(r) => outer_col_name(r),
                };
                format!("{lhs} {} {rhs}", c.cmp.sql())
            })
            .collect();
        for ic in &self.in_conds {
            let members: Vec<String> = ic
                .values()
                .iter()
                .map(|&v| resolve(ic.col, v).unwrap_or_else(|| v.to_string()))
                .collect();
            wheres.push(format!("{} IN ({})", col_name(ic.col), members.join(", ")));
        }
        for sub in &self.subqueries {
            let inner = sub.query.render(db, resolve, counter, Some(&names), false);
            wheres.push(format!(
                "{}EXISTS ({inner})",
                if sub.negated { "NOT " } else { "" }
            ));
        }

        let mut sql = format!("{select} FROM {}", from.join(", "));
        if !wheres.is_empty() {
            sql.push_str(" WHERE ");
            sql.push_str(&wheres.join(" AND "));
        }
        sql
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColId, Schema};
    use crate::table::Table;
    use crate::value::Cmp;

    fn node_db() -> (Database, TableId) {
        let t = Table::new(Schema::new(&[
            "tid", "left", "right", "depth", "id", "pid", "name", "value",
        ]));
        let mut db = Database::new();
        let id = db.add_table("node", t);
        (db, id)
    }

    const NAME: ColId = ColId(6);
    const TID: ColId = ColId(0);
    const LEFT: ColId = ColId(1);
    const RIGHT: ColId = ColId(2);

    #[test]
    fn renders_join_query() {
        let (db, node) = node_db();
        let mut q = ConjQuery::default();
        let a = q.add_alias(node);
        let b = q.add_alias(node);
        q.conds
            .push(Cond::against_const(ColRef::new(a, NAME), Cmp::Eq, 7));
        q.conds.push(Cond::between(
            ColRef::new(b, TID),
            Cmp::Eq,
            ColRef::new(a, TID),
        ));
        q.conds.push(Cond::between(
            ColRef::new(b, LEFT),
            Cmp::Eq,
            ColRef::new(a, RIGHT),
        ));
        q.projection.push(ColRef::new(b, TID));
        q.distinct = true;
        assert_eq!(
            q.to_sql(&db),
            "SELECT DISTINCT n1.tid FROM node n0, node n1 \
             WHERE n0.name = 7 AND n1.tid = n0.tid AND n1.left = n0.right"
        );
    }

    #[test]
    fn renders_exists_with_correlation() {
        let (db, node) = node_db();
        let mut q = ConjQuery::default();
        let a = q.add_alias(node);
        q.projection.push(ColRef::new(a, TID));
        let mut sub = ConjQuery::default();
        let s = sub.add_alias(node);
        sub.conds.push(Cond::new(
            ColRef::new(s, TID),
            Cmp::Eq,
            Operand::Outer(ColRef::new(a, TID)),
        ));
        q.subqueries.push(SubQuery {
            negated: false,
            query: sub.clone(),
        });
        q.subqueries.push(SubQuery {
            negated: true,
            query: sub,
        });
        let sql = q.to_sql(&db);
        assert_eq!(
            sql,
            "SELECT n0.tid FROM node n0 WHERE \
             EXISTS (SELECT 1 FROM node n1 WHERE n1.tid = n0.tid) AND \
             NOT EXISTS (SELECT 1 FROM node n2 WHERE n2.tid = n0.tid)"
        );
    }

    #[test]
    fn renders_in_conditions() {
        let (db, node) = node_db();
        let mut q = ConjQuery::default();
        let a = q.add_alias(node);
        q.in_conds
            .push(InCond::new(ColRef::new(a, ColId(7)), vec![9, 3, 3, 7]));
        q.projection.push(ColRef::new(a, TID));
        let sql = q.to_sql(&db);
        // Sorted, deduplicated member list.
        assert_eq!(
            sql,
            "SELECT n0.tid FROM node n0 WHERE n0.value IN (3, 7, 9)"
        );
    }

    #[test]
    fn resolver_pretty_prints_symbols() {
        let (db, node) = node_db();
        let mut q = ConjQuery::default();
        let a = q.add_alias(node);
        q.conds
            .push(Cond::against_const(ColRef::new(a, NAME), Cmp::Eq, 7));
        q.projection.push(ColRef::new(a, TID));
        let sql = q.to_sql_with(&db, &|r, v| {
            (r.col == NAME && v == 7).then(|| "'NP'".to_string())
        });
        assert!(sql.contains("n0.name = 'NP'"), "{sql}");
    }
}
