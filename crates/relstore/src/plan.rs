//! Physical plans: pipelined index-nested-loop joins with correlated
//! semi/anti-join checks.
//!
//! A [`Plan`] binds the aliases of a [`crate::sql::ConjQuery`] one at a
//! time. Each [`JoinStep`] produces candidate rows through an
//! [`AccessPath`] — an ordered-index range probe keyed by values from
//! already-bound aliases (the paper's indexed join evaluation) or a full
//! scan — and filters them with residual conditions. `EXISTS` /
//! `NOT EXISTS` subqueries become recursive existence [`SubCheck`]s run
//! as soon as every outer alias they reference is bound.

use std::fmt;
use std::ops::Bound;

use crate::catalog::{Database, IndexId, TableId};
use crate::expr::{ColRef, Cond, InCond, Operand};
use crate::table::RowId;
use crate::value::Value;

/// How a join step produces its candidate rows.
#[derive(Clone, Debug)]
pub enum AccessPath {
    /// Scan the whole table — the fallback when no index key column has
    /// a usable equality or range condition.
    FullScan,
    /// Probe an ordered index: equality on the leading `eq` key columns,
    /// then an optional range on the next key column.
    IndexRange {
        /// The probed index.
        index: IndexId,
        /// Operands for the leading equality key columns.
        eq: Vec<Operand>,
        /// Lower bound on the key column after the equality prefix:
        /// `(inclusive, operand)`.
        lo: Option<(bool, Operand)>,
        /// Upper bound, same shape.
        hi: Option<(bool, Operand)>,
    },
}

/// One pipeline stage: bind `alias` from `table` via `access`, keeping
/// rows that satisfy `residual`.
#[derive(Clone, Debug)]
pub struct JoinStep {
    /// The alias this step binds.
    pub alias: usize,
    /// The table the alias ranges over.
    pub table: TableId,
    /// How candidate rows are produced.
    pub access: AccessPath,
    /// Conditions oriented with `left.alias == alias`; right-hand sides
    /// refer to constants, already-bound aliases, or outer bindings.
    pub residual: Vec<Cond>,
    /// Set-membership filters on this alias's columns
    /// (`col IN (v1, …, vk)`).
    pub sets: Vec<InCond>,
}

/// A correlated existence check compiled from an `EXISTS`/`NOT EXISTS`
/// subquery, scheduled to run once `after_step + 1` steps are bound.
#[derive(Clone, Debug)]
pub struct SubCheck {
    /// Run once this many steps (plus one) are bound.
    pub after_step: usize,
    /// NOT EXISTS instead of EXISTS.
    pub negated: bool,
    /// The subquery's own plan.
    pub plan: Plan,
}

/// A complete physical plan.
#[derive(Clone, Debug, Default)]
pub struct Plan {
    /// Table of every alias (indexed by alias id), for operand
    /// resolution — including aliases bound by later steps.
    pub alias_tables: Vec<TableId>,
    /// Pipeline stages, execution order.
    pub steps: Vec<JoinStep>,
    /// Correlated existence checks.
    pub checks: Vec<SubCheck>,
    /// Output columns.
    pub projection: Vec<ColRef>,
    /// Deduplicate output tuples.
    pub distinct: bool,
    /// Duplicates are provably impossible (see
    /// [`crate::ConjQuery::dedup_free`]): counting may skip the
    /// distinct watermark sets. Never set on hand-built plans.
    pub dedup_free: bool,
    /// Planner estimate of the cost (candidate rows × probes) to
    /// produce the *first* output tuple; includes a constant penalty
    /// for plans whose anchor is not the output alias, whose pages must
    /// be materialized and sorted chunk-wise. Zero for hand-built
    /// plans.
    pub estimated_startup: usize,
    /// Planner estimate of the total enumeration cost (intermediate
    /// tuples summed over the pipeline). Zero for hand-built plans.
    pub estimated_total: usize,
    /// Planner estimate of the result cardinality (the smallest alias
    /// input — joins only filter). Zero for hand-built plans.
    pub estimated_result: usize,
    /// The query was proven empty before planning (static analysis):
    /// every cursor built from this plan is born exhausted and yields
    /// nothing, whatever the steps say. An explicit flag — not an
    /// empty `steps` list, which means "emit the single all-bound row".
    pub const_empty: bool,
}

impl Plan {
    /// The plan for a query proven empty before planning: no steps, no
    /// output, and cursors that never yield.
    pub fn constant_empty() -> Plan {
        Plan {
            const_empty: true,
            ..Plan::default()
        }
    }
}

/// Execution context *view*: the bindings of one plan level plus a link
/// to the enclosing level for `Outer` operands. Borrowing (rather than
/// owning) the binding vector lets both the recursive existence checks
/// and the pull-based [`crate::cursor::Cursor`] share one resolution
/// path without copying bindings.
pub(crate) struct Frame<'a> {
    pub(crate) plan: &'a Plan,
    pub(crate) bindings: &'a [RowId],
    pub(crate) outer: Option<&'a Frame<'a>>,
}

impl Frame<'_> {
    pub(crate) fn value(&self, db: &Database, r: ColRef) -> Value {
        let table = self.plan.alias_tables[r.alias];
        db.table(table).value(self.bindings[r.alias], r.col)
    }

    pub(crate) fn resolve(&self, db: &Database, op: Operand) -> Value {
        match op {
            Operand::Const(v) => v,
            Operand::Col(r) => self.value(db, r),
            Operand::Outer(r) => self
                .outer
                .expect("Outer operand without an enclosing frame")
                .value(db, r),
        }
    }
}

/// Resolve a range bound's operand, if any.
pub(crate) fn resolve_bound(
    frame: &Frame<'_>,
    db: &Database,
    b: &Option<(bool, Operand)>,
) -> Bound<Value> {
    match b {
        None => Bound::Unbounded,
        Some((true, op)) => Bound::Included(frame.resolve(db, *op)),
        Some((false, op)) => Bound::Excluded(frame.resolve(db, *op)),
    }
}

/// Depth-first join enumeration for correlated existence checks.
/// `emit` returns `false` to stop early (first witness). Also the
/// per-member continuation of [`crate::multi::execute_shared`], which
/// hand-binds a shared anchor row and resumes the pipeline at step 1.
pub(crate) fn run(
    plan: &Plan,
    db: &Database,
    bindings: &mut Vec<RowId>,
    outer: Option<&Frame<'_>>,
    step_idx: usize,
    emit: &mut dyn FnMut(&Frame<'_>) -> bool,
) -> bool {
    // Pending subquery checks at this point in the pipeline.
    for check in &plan.checks {
        if check.due_at(step_idx) {
            let frame = Frame {
                plan,
                bindings,
                outer,
            };
            if !run_check(check, db, &frame) {
                return true; // prune this binding, keep enumerating
            }
        }
    }
    if step_idx == plan.steps.len() {
        let frame = Frame {
            plan,
            bindings,
            outer,
        };
        return emit(&frame);
    }
    let step = &plan.steps[step_idx];
    let table = db.table(step.table);
    match &step.access {
        AccessPath::FullScan => {
            for row in table.scan() {
                bindings[step.alias] = row;
                let ok = {
                    let frame = Frame {
                        plan,
                        bindings,
                        outer,
                    };
                    satisfies(step, db, &frame)
                };
                if ok && !run(plan, db, bindings, outer, step_idx + 1, emit) {
                    return false;
                }
            }
        }
        AccessPath::IndexRange { index, eq, lo, hi } => {
            // Index keys are at most the widest key (8 columns for the
            // node relation) — resolve into a stack buffer.
            let mut key_buf = [0 as Value; 8];
            debug_assert!(eq.len() <= key_buf.len());
            let (lo_b, hi_b) = {
                let frame = Frame {
                    plan,
                    bindings,
                    outer,
                };
                for (slot, &op) in key_buf.iter_mut().zip(eq.iter()) {
                    *slot = frame.resolve(db, op);
                }
                (resolve_bound(&frame, db, lo), resolve_bound(&frame, db, hi))
            };
            let keys = &key_buf[..eq.len()];
            let rows: &[RowId] = db.index(*index).range(table, keys, lo_b, hi_b);
            for &row in rows {
                bindings[step.alias] = row;
                let ok = {
                    let frame = Frame {
                        plan,
                        bindings,
                        outer,
                    };
                    satisfies(step, db, &frame)
                };
                if ok && !run(plan, db, bindings, outer, step_idx + 1, emit) {
                    return false;
                }
            }
        }
    }
    true
}

impl SubCheck {
    /// Is this check scheduled to run on entering pipeline position
    /// `step_idx`? (`after_step == usize::MAX` marks uncorrelated
    /// checks that run before the first step binds.)
    pub(crate) fn due_at(&self, step_idx: usize) -> bool {
        self.after_step + 1 == step_idx || (step_idx == 0 && self.after_step == usize::MAX)
    }
}

pub(crate) fn satisfies(step: &JoinStep, db: &Database, frame: &Frame<'_>) -> bool {
    step.residual.iter().all(|c| {
        let lhs = frame.value(db, c.left);
        let rhs = frame.resolve(db, c.right);
        c.cmp.eval(lhs, rhs)
    }) && step
        .sets
        .iter()
        .all(|ic| ic.matches(frame.value(db, ic.col)))
}

pub(crate) fn run_check(check: &SubCheck, db: &Database, outer: &Frame<'_>) -> bool {
    let mut bindings = vec![RowId(0); check.plan.alias_tables.len()];
    let mut found = false;
    run(&check.plan, db, &mut bindings, Some(outer), 0, &mut |_| {
        found = true;
        false // stop at first witness
    });
    found != check.negated
}

impl fmt::Display for Plan {
    /// An EXPLAIN-style rendering, one line per step.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn op_str(op: &Operand) -> String {
            match op {
                Operand::Const(v) => v.to_string(),
                Operand::Col(r) => format!("n{}.c{}", r.alias, r.col.0),
                Operand::Outer(r) => format!("outer n{}.c{}", r.alias, r.col.0),
            }
        }
        if self.const_empty {
            return writeln!(f, "constant empty (proven by static analysis)");
        }
        for (i, s) in self.steps.iter().enumerate() {
            write!(f, "step {i}: bind n{} via ", s.alias)?;
            match &s.access {
                AccessPath::FullScan => write!(f, "full scan")?,
                AccessPath::IndexRange { index, eq, lo, hi } => {
                    write!(f, "index #{} eq [", index.0)?;
                    for (k, e) in eq.iter().enumerate() {
                        if k > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{}", op_str(e))?;
                    }
                    write!(f, "]")?;
                    if let Some((inc, op)) = lo {
                        write!(f, " {} {}", if *inc { ">=" } else { ">" }, op_str(op))?;
                    }
                    if let Some((inc, op)) = hi {
                        write!(f, " {} {}", if *inc { "<=" } else { "<" }, op_str(op))?;
                    }
                }
            }
            write!(f, " (+{} residual", s.residual.len())?;
            if !s.sets.is_empty() {
                write!(f, ", {} set filters", s.sets.len())?;
            }
            writeln!(f, ")")?;
        }
        for c in &self.checks {
            writeln!(
                f,
                "check after step {}: {}EXISTS ({} steps)",
                c.after_step,
                if c.negated { "NOT " } else { "" },
                c.plan.steps.len()
            )?;
        }
        if self.estimated_total > 0 {
            writeln!(
                f,
                "estimates: startup {}, total {}, result {}",
                self.estimated_startup, self.estimated_total, self.estimated_result
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::{count, execute};
    use crate::schema::{ColId, Schema};
    use crate::table::Table;
    use crate::value::Cmp;

    /// A toy two-column table: (grp, val).
    fn setup() -> (Database, TableId, IndexId) {
        let mut t = Table::new(Schema::new(&["grp", "val"]));
        for row in [[1, 10], [1, 11], [1, 12], [2, 20], [2, 21], [3, 30]] {
            t.push_row(&row);
        }
        t.cluster_by(&[ColId(0), ColId(1)]);
        let mut db = Database::new();
        let tid = db.add_table("t", t);
        let idx = db.add_index(tid, "by_grp_val", vec![ColId(0), ColId(1)]);
        (db, tid, idx)
    }

    const GRP: ColId = ColId(0);
    const VAL: ColId = ColId(1);

    #[test]
    fn single_step_index_probe() {
        let (db, tid, idx) = setup();
        let plan = Plan {
            alias_tables: vec![tid],
            steps: vec![JoinStep {
                alias: 0,
                table: tid,
                access: AccessPath::IndexRange {
                    index: idx,
                    eq: vec![Operand::Const(1)],
                    lo: Some((true, Operand::Const(11))),
                    hi: None,
                },
                residual: vec![],
                sets: vec![],
            }],
            checks: vec![],
            projection: vec![ColRef::new(0, VAL)],
            distinct: false,
            ..Plan::default()
        };
        assert_eq!(execute(&plan, &db), [[11], [12]]);
    }

    #[test]
    fn two_step_join_binds_in_order() {
        let (db, tid, idx) = setup();
        // Self-join: pairs (a, b) in the same grp with b.val = a.val + …
        // here simply b.val > a.val.
        let plan = Plan {
            alias_tables: vec![tid, tid],
            steps: vec![
                JoinStep {
                    alias: 0,
                    table: tid,
                    access: AccessPath::IndexRange {
                        index: idx,
                        eq: vec![Operand::Const(1)],
                        lo: None,
                        hi: None,
                    },
                    residual: vec![],
                    sets: vec![],
                },
                JoinStep {
                    alias: 1,
                    table: tid,
                    access: AccessPath::IndexRange {
                        index: idx,
                        eq: vec![Operand::Col(ColRef::new(0, GRP))],
                        lo: Some((false, Operand::Col(ColRef::new(0, VAL)))),
                        hi: None,
                    },
                    residual: vec![],
                    sets: vec![],
                },
            ],
            checks: vec![],
            projection: vec![ColRef::new(0, VAL), ColRef::new(1, VAL)],
            distinct: false,
            ..Plan::default()
        };
        assert_eq!(execute(&plan, &db), [[10, 11], [10, 12], [11, 12]]);
    }

    #[test]
    fn residual_filters_candidates() {
        let (db, tid, _) = setup();
        let plan = Plan {
            alias_tables: vec![tid],
            steps: vec![JoinStep {
                alias: 0,
                table: tid,
                access: AccessPath::FullScan,
                residual: vec![Cond::against_const(ColRef::new(0, VAL), Cmp::Gt, 15)],
                sets: vec![],
            }],
            checks: vec![],
            projection: vec![ColRef::new(0, VAL)],
            distinct: false,
            ..Plan::default()
        };
        assert_eq!(execute(&plan, &db), [[20], [21], [30]]);
    }

    #[test]
    fn distinct_deduplicates() {
        let (db, tid, _) = setup();
        let plan = Plan {
            alias_tables: vec![tid],
            steps: vec![JoinStep {
                alias: 0,
                table: tid,
                access: AccessPath::FullScan,
                residual: vec![],
                sets: vec![],
            }],
            checks: vec![],
            projection: vec![ColRef::new(0, GRP)],
            distinct: true,
            ..Plan::default()
        };
        assert_eq!(execute(&plan, &db), [[1], [2], [3]]);
        assert_eq!(count(&plan, &db), 3);
    }

    #[test]
    fn exists_and_not_exists_checks() {
        let (db, tid, idx) = setup();
        // Groups that have a value > 11 … via EXISTS.
        let sub = Plan {
            alias_tables: vec![tid],
            steps: vec![JoinStep {
                alias: 0,
                table: tid,
                access: AccessPath::IndexRange {
                    index: idx,
                    eq: vec![Operand::Outer(ColRef::new(0, GRP))],
                    lo: Some((false, Operand::Const(11))),
                    hi: None,
                },
                residual: vec![],
                sets: vec![],
            }],
            checks: vec![],
            projection: vec![],
            distinct: false,
            ..Plan::default()
        };
        let mk = |negated: bool| Plan {
            alias_tables: vec![tid],
            steps: vec![JoinStep {
                alias: 0,
                table: tid,
                access: AccessPath::FullScan,
                residual: vec![],
                sets: vec![],
            }],
            checks: vec![SubCheck {
                after_step: 0,
                negated,
                plan: sub.clone(),
            }],
            projection: vec![ColRef::new(0, GRP)],
            distinct: true,
            ..Plan::default()
        };
        assert_eq!(execute(&mk(false), &db), [[1], [2], [3]]);
        let empty: Vec<Vec<Value>> = vec![];
        assert_eq!(execute(&mk(true), &db), empty);

        // Value > 25 exists only in grp 3.
        let sub25 = Plan {
            alias_tables: vec![tid],
            steps: vec![JoinStep {
                alias: 0,
                table: tid,
                access: AccessPath::IndexRange {
                    index: idx,
                    eq: vec![Operand::Outer(ColRef::new(0, GRP))],
                    lo: Some((false, Operand::Const(25))),
                    hi: None,
                },
                residual: vec![],
                sets: vec![],
            }],
            checks: vec![],
            projection: vec![],
            distinct: false,
            ..Plan::default()
        };
        let mut with = mk(false);
        with.checks[0].plan = sub25.clone();
        assert_eq!(execute(&with, &db), [[3]]);
        let mut without = mk(true);
        without.checks[0].plan = sub25;
        assert_eq!(execute(&without, &db), [[1], [2]]);
    }

    #[test]
    fn display_is_informative() {
        let (db, tid, idx) = setup();
        let _ = db;
        let plan = Plan {
            alias_tables: vec![tid],
            steps: vec![JoinStep {
                alias: 0,
                table: tid,
                access: AccessPath::IndexRange {
                    index: idx,
                    eq: vec![Operand::Const(1)],
                    lo: None,
                    hi: Some((true, Operand::Const(5))),
                },
                residual: vec![],
                sets: vec![],
            }],
            checks: vec![],
            projection: vec![],
            distinct: false,
            ..Plan::default()
        };
        let s = plan.to_string();
        assert!(s.contains("index #0 eq [1] <= 5"), "{s}");
    }
}
