//! Hand-rolled binary serialization for checkpoint tokens.
//!
//! The workspace ships no serde (offline-shim policy), so suspended
//! execution state crosses the wire in a small fixed format built
//! here: little-endian fixed-width integers, length-prefixed
//! sequences, an FNV-1a checksum over the payload, and a URL-safe
//! base64 rendering for embedding tokens in line-delimited JSON.
//!
//! Everything in this module is written against **hostile input**: the
//! reader never allocates more than the bytes actually present (the
//! `tgrep` binfmt lesson — a corrupted length prefix must not turn
//! into a giant allocation), never indexes past the buffer, and
//! returns [`WireError`] instead of panicking on truncation,
//! corruption or version skew.

/// Why a byte sequence failed to decode. Every variant is a
/// recoverable protocol error; decoding never panics.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the announced structure did.
    Truncated,
    /// A field held a value the format does not allow (bad tag, a
    /// length prefix larger than the remaining input, an out-of-range
    /// reference into the data the checkpoint resumes over).
    Malformed(&'static str),
    /// The payload checksum did not match: bytes were corrupted or
    /// forged in transit.
    Checksum,
    /// The token was minted by a different format version.
    Version(u16),
    /// The base64 rendering contained a character outside the
    /// URL-safe alphabet, or an impossible length.
    Encoding,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated input"),
            WireError::Malformed(what) => write!(f, "malformed field: {what}"),
            WireError::Checksum => write!(f, "checksum mismatch"),
            WireError::Version(v) => write!(f, "unsupported token version {v}"),
            WireError::Encoding => write!(f, "invalid token encoding"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only byte sink for encoding (little-endian throughout).
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far (for checksumming mid-stream).
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as `u64` (the format is 64-bit everywhere).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Append a boolean as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Append a length-prefixed byte slice (`u32` length).
    pub fn bytes_prefixed(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str_prefixed(&mut self, v: &str) {
        self.bytes_prefixed(v.as_bytes());
    }
}

/// Bounds-checked sequential reader over an untrusted byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at its start.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Has every byte been consumed? Decoders check this last so
    /// trailing garbage is rejected rather than silently ignored.
    pub fn finished(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a `u64` that must fit `usize` on this platform.
    pub fn usize(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.u64()?).map_err(|_| WireError::Malformed("usize overflow"))
    }

    /// Read a boolean byte (`0` or `1`; anything else is malformed).
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("bool")),
        }
    }

    /// Read a length-prefixed byte slice. The length is validated
    /// against the remaining input *before* any allocation — a
    /// corrupted prefix cannot request more than what is actually
    /// there.
    pub fn bytes_prefixed(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(WireError::Malformed("length prefix exceeds input"));
        }
        self.take(len)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str_prefixed(&mut self) -> Result<&'a str, WireError> {
        std::str::from_utf8(self.bytes_prefixed()?).map_err(|_| WireError::Malformed("utf-8"))
    }

    /// Read a sequence length prefix (`u64`), validated against a
    /// per-element lower bound in bytes so a hostile count cannot
    /// drive a huge `Vec::with_capacity`.
    pub fn seq_len(&mut self, min_bytes_per_elem: usize) -> Result<usize, WireError> {
        let n = self.usize()?;
        if n.saturating_mul(min_bytes_per_elem.max(1)) > self.remaining() {
            return Err(WireError::Malformed("sequence length exceeds input"));
        }
        Ok(n)
    }
}

/// FNV-1a 64-bit over `bytes` — the token checksum. Not
/// cryptographic: it catches corruption, truncation-at-a-boundary and
/// casual tampering; content stamps and server-side validation carry
/// the rest of the trust story.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const B64: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

/// Render bytes in URL-safe base64 (no padding) — the printable form
/// tokens take inside JSON strings.
pub fn b64_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b = [
            chunk[0],
            *chunk.get(1).unwrap_or(&0),
            *chunk.get(2).unwrap_or(&0),
        ];
        let v = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
        let chars = [
            B64[(v >> 18) as usize & 63],
            B64[(v >> 12) as usize & 63],
            B64[(v >> 6) as usize & 63],
            B64[v as usize & 63],
        ];
        // 1 byte → 2 chars, 2 → 3, 3 → 4.
        for &c in &chars[..=chunk.len()] {
            out.push(c as char);
        }
    }
    out
}

/// Decode URL-safe base64 (no padding). Rejects characters outside
/// the alphabet and lengths no encoder produces.
pub fn b64_decode(s: &str) -> Result<Vec<u8>, WireError> {
    fn val(c: u8) -> Result<u32, WireError> {
        match c {
            b'A'..=b'Z' => Ok(u32::from(c - b'A')),
            b'a'..=b'z' => Ok(u32::from(c - b'a') + 26),
            b'0'..=b'9' => Ok(u32::from(c - b'0') + 52),
            b'-' => Ok(62),
            b'_' => Ok(63),
            _ => Err(WireError::Encoding),
        }
    }
    let bytes = s.as_bytes();
    if bytes.len() % 4 == 1 {
        return Err(WireError::Encoding);
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3 + 2);
    for chunk in bytes.chunks(4) {
        let mut v: u32 = 0;
        for &c in chunk {
            v = (v << 6) | val(c)?;
        }
        v <<= 6 * (4 - chunk.len());
        let emit = chunk.len() - 1;
        let parts = [(v >> 16) as u8, (v >> 8) as u8, v as u8];
        out.extend_from_slice(&parts[..emit]);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(65_000);
        w.u32(4_000_000_000);
        w.u64(u64::MAX - 1);
        w.usize(12_345);
        w.bool(true);
        w.bool(false);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 65_000);
        assert_eq!(r.u32().unwrap(), 4_000_000_000);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.usize().unwrap(), 12_345);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert!(r.finished());
    }

    #[test]
    fn prefixed_slices_round_trip_and_reject_liar_lengths() {
        let mut w = Writer::new();
        w.str_prefixed("//VBD->NP");
        w.bytes_prefixed(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.str_prefixed().unwrap(), "//VBD->NP");
        assert_eq!(r.bytes_prefixed().unwrap(), &[1, 2, 3]);
        // A length prefix announcing more than the input holds is
        // rejected before any allocation.
        let mut liar = Writer::new();
        liar.u32(u32::MAX);
        let bytes = liar.into_bytes();
        assert_eq!(
            Reader::new(&bytes).bytes_prefixed().unwrap_err(),
            WireError::Malformed("length prefix exceeds input")
        );
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.u64(42);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            assert_eq!(
                Reader::new(&bytes[..cut]).u64().unwrap_err(),
                WireError::Truncated
            );
        }
    }

    #[test]
    fn seq_len_caps_at_remaining_input() {
        let mut w = Writer::new();
        w.usize(1_000_000);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.seq_len(4), Err(WireError::Malformed(_))));
    }

    #[test]
    fn base64_round_trips_all_lengths() {
        for len in 0..=17usize {
            let data: Vec<u8> = (0..len as u8)
                .map(|i| i.wrapping_mul(37).wrapping_add(5))
                .collect();
            let enc = b64_encode(&data);
            assert!(enc
                .bytes()
                .all(|c| c.is_ascii_alphanumeric() || c == b'-' || c == b'_'));
            assert_eq!(b64_decode(&enc).unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn base64_rejects_garbage() {
        assert_eq!(b64_decode("ab!d").unwrap_err(), WireError::Encoding);
        assert_eq!(b64_decode("abcde").unwrap_err(), WireError::Encoding);
        assert_eq!(b64_decode("a\u{e9}").unwrap_err(), WireError::Encoding);
    }

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }
}
