//! Scalar expressions over query aliases: column references, operands
//! and conjunctive conditions. These form the WHERE clause of the
//! logical [`crate::sql::ConjQuery`] and, once oriented by the planner,
//! the access/residual conditions of physical plans.

use crate::schema::ColId;
use crate::value::{Cmp, Value};

/// A column of one query alias (`n3.left`).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct ColRef {
    /// Alias position within the query's `aliases` vector.
    pub alias: usize,
    /// The referenced column.
    pub col: ColId,
}

impl ColRef {
    /// `alias.col`.
    pub fn new(alias: usize, col: ColId) -> Self {
        ColRef { alias, col }
    }
}

/// The right-hand side of a comparison.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// A literal.
    Const(Value),
    /// A column of another (or the same) alias in the same query.
    Col(ColRef),
    /// A column of an alias of the *immediately enclosing* query —
    /// the correlation of an EXISTS/NOT EXISTS subquery.
    Outer(ColRef),
}

/// One conjunct: `left cmp right`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Cond {
    /// Left-hand column.
    pub left: ColRef,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand operand.
    pub right: Operand,
}

/// A set-membership conjunct: `col IN (v1, …, vk)`.
///
/// Produced when a query-language function expands to a set of interned
/// values (e.g. `contains(@lex, 'og')` → every symbol whose text contains
/// `og`). Values are kept sorted for binary-search membership tests.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InCond {
    /// The constrained column.
    pub col: ColRef,
    values: Vec<Value>,
}

impl InCond {
    /// Build from an arbitrary value list (sorted and deduplicated).
    pub fn new(col: ColRef, mut values: Vec<Value>) -> Self {
        values.sort_unstable();
        values.dedup();
        InCond { col, values }
    }

    /// The sorted member values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Is `v` a member of the set?
    #[inline]
    pub fn matches(&self, v: Value) -> bool {
        self.values.binary_search(&v).is_ok()
    }
}

impl Cond {
    /// `left cmp right`.
    pub fn new(left: ColRef, cmp: Cmp, right: Operand) -> Self {
        Cond { left, cmp, right }
    }

    /// `left cmp const`.
    pub fn against_const(left: ColRef, cmp: Cmp, v: Value) -> Self {
        Cond::new(left, cmp, Operand::Const(v))
    }

    /// `left cmp other-alias column`.
    pub fn between(left: ColRef, cmp: Cmp, right: ColRef) -> Self {
        Cond::new(left, cmp, Operand::Col(right))
    }

    /// Rewrite so that `target` appears on the left, if possible:
    /// `a.x < b.y` oriented toward `b` becomes `b.y > a.x`. Returns
    /// `None` when the condition does not mention `target` on either
    /// side, or mentions it only inside an [`Operand::Outer`].
    pub fn oriented_toward(&self, target: usize) -> Option<Cond> {
        if self.left.alias == target {
            return Some(*self);
        }
        if let Operand::Col(r) = self.right {
            if r.alias == target {
                return Some(Cond {
                    left: r,
                    cmp: self.cmp.flip(),
                    right: Operand::Col(self.left),
                });
            }
        }
        None
    }

    /// The aliases of the *current* query this condition mentions.
    pub fn local_aliases(&self) -> impl Iterator<Item = usize> {
        let second = match self.right {
            Operand::Col(r) => Some(r.alias),
            _ => None,
        };
        std::iter::once(self.left.alias).chain(second)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cr(alias: usize, col: u16) -> ColRef {
        ColRef::new(alias, ColId(col))
    }

    #[test]
    fn orientation_flips_comparison() {
        let c = Cond::between(cr(0, 1), Cmp::Lt, cr(1, 2));
        let toward0 = c.oriented_toward(0).unwrap();
        assert_eq!(toward0.left, cr(0, 1));
        assert_eq!(toward0.cmp, Cmp::Lt);
        let toward1 = c.oriented_toward(1).unwrap();
        assert_eq!(toward1.left, cr(1, 2));
        assert_eq!(toward1.cmp, Cmp::Gt);
        assert_eq!(toward1.right, Operand::Col(cr(0, 1)));
        assert_eq!(c.oriented_toward(2), None);
    }

    #[test]
    fn const_conditions_orient_only_to_their_alias() {
        let c = Cond::against_const(cr(3, 0), Cmp::Eq, 42);
        assert!(c.oriented_toward(3).is_some());
        assert!(c.oriented_toward(0).is_none());
    }

    #[test]
    fn local_aliases_listed() {
        let c = Cond::between(cr(0, 1), Cmp::Eq, cr(2, 2));
        assert_eq!(c.local_aliases().collect::<Vec<_>>(), [0, 2]);
        let k = Cond::against_const(cr(1, 0), Cmp::Eq, 7);
        assert_eq!(k.local_aliases().collect::<Vec<_>>(), [1]);
        let o = Cond::new(cr(1, 0), Cmp::Eq, Operand::Outer(cr(5, 0)));
        assert_eq!(o.local_aliases().collect::<Vec<_>>(), [1]);
    }
}
