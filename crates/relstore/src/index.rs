//! Ordered secondary indexes.
//!
//! An index is a permutation of the table's rows sorted by a key column
//! list. Lookups are binary searches: an *equality prefix* over the
//! leading key columns, optionally refined by a *range* on the next key
//! column. This supports exactly the access patterns the paper's axis
//! joins need, e.g. on the clustered key `{name, tid, left, …}`:
//!
//! * `name = 'NP' ∧ tid = t ∧ left = c.right` — immediate-following;
//! * `name = 'NP' ∧ tid = t ∧ left ≥ c.right` — following;
//! * `name = 'NP' ∧ tid = t ∧ c.left ≤ left ≤ c.right` — containment.

use std::ops::Bound;

use crate::schema::ColId;
use crate::table::{RowId, Table};
use crate::value::Value;

/// A sorted-permutation index over `key` columns of one table.
#[derive(Clone, Debug)]
pub struct Index {
    key: Vec<ColId>,
    perm: Vec<RowId>,
}

impl Index {
    /// Build by sorting the row permutation; `O(n log n)`.
    pub fn build(table: &Table, key: Vec<ColId>) -> Self {
        assert!(!key.is_empty(), "index needs at least one key column");
        let mut perm: Vec<RowId> = table.scan().collect();
        perm.sort_unstable_by(|&a, &b| table.cmp_rows(a, b, &key));
        Index { key, perm }
    }

    /// The key columns, major first.
    pub fn key(&self) -> &[ColId] {
        &self.key
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// Does the index cover zero rows?
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// Rows whose leading key columns equal `prefix`, in key order.
    pub fn equal_range(&self, table: &Table, prefix: &[Value]) -> &[RowId] {
        self.range(table, prefix, Bound::Unbounded, Bound::Unbounded)
    }

    /// Rows whose leading key columns equal `prefix` and whose *next*
    /// key column lies within `(lo, hi)`.
    ///
    /// # Panics
    /// Panics if `prefix` is as long as the whole key but a bound is
    /// given (there is no next column), or longer than the key.
    pub fn range(
        &self,
        table: &Table,
        prefix: &[Value],
        lo: Bound<Value>,
        hi: Bound<Value>,
    ) -> &[RowId] {
        assert!(
            prefix.len() <= self.key.len(),
            "prefix {} longer than key {}",
            prefix.len(),
            self.key.len()
        );
        let bounded = !matches!((lo, hi), (Bound::Unbounded, Bound::Unbounded));
        assert!(
            !bounded || prefix.len() < self.key.len(),
            "range bound given but prefix covers the whole key"
        );

        // Row `r` is *before* the window iff its prefix is less than
        // `prefix`, or prefixes tie and the next column is below `lo`.
        let start = self
            .perm
            .partition_point(|&r| match self.cmp_prefix(table, r, prefix) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => match lo {
                    Bound::Unbounded => false,
                    Bound::Included(v) => self.next_col(table, r, prefix.len()) < v,
                    Bound::Excluded(v) => self.next_col(table, r, prefix.len()) <= v,
                },
            });
        let end = self
            .perm
            .partition_point(|&r| match self.cmp_prefix(table, r, prefix) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => match hi {
                    Bound::Unbounded => true,
                    Bound::Included(v) => self.next_col(table, r, prefix.len()) <= v,
                    Bound::Excluded(v) => self.next_col(table, r, prefix.len()) < v,
                },
            });
        &self.perm[start..end.max(start)]
    }

    #[inline]
    fn cmp_prefix(&self, table: &Table, row: RowId, prefix: &[Value]) -> std::cmp::Ordering {
        for (&k, &want) in self.key.iter().zip(prefix) {
            let ord = table.value(row, k).cmp(&want);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    }

    #[inline]
    fn next_col(&self, table: &Table, row: RowId, prefix_len: usize) -> Value {
        table.value(row, self.key[prefix_len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn sample() -> (Table, Index) {
        let mut t = Table::new(Schema::new(&["name", "tid", "left"]));
        // (name, tid, left)
        for row in [
            [1, 1, 5],
            [1, 1, 2],
            [1, 2, 7],
            [2, 1, 3],
            [1, 1, 9],
            [2, 1, 1],
            [1, 2, 2],
        ] {
            t.push_row(&row);
        }
        let idx = Index::build(&t, vec![ColId(0), ColId(1), ColId(2)]);
        (t, idx)
    }

    fn lefts(t: &Table, rows: &[RowId]) -> Vec<Value> {
        rows.iter().map(|&r| t.value(r, ColId(2))).collect()
    }

    #[test]
    fn equal_range_on_prefix() {
        let (t, idx) = sample();
        assert_eq!(lefts(&t, idx.equal_range(&t, &[1, 1])), [2, 5, 9]);
        assert_eq!(lefts(&t, idx.equal_range(&t, &[1, 2])), [2, 7]);
        assert_eq!(lefts(&t, idx.equal_range(&t, &[2, 1])), [1, 3]);
        assert_eq!(idx.equal_range(&t, &[3]).len(), 0);
        assert_eq!(idx.equal_range(&t, &[]).len(), 7);
    }

    #[test]
    fn bounded_ranges() {
        let (t, idx) = sample();
        // name=1, tid=1, left >= 5
        assert_eq!(
            lefts(
                &t,
                idx.range(&t, &[1, 1], Bound::Included(5), Bound::Unbounded)
            ),
            [5, 9]
        );
        // name=1, tid=1, left > 5
        assert_eq!(
            lefts(
                &t,
                idx.range(&t, &[1, 1], Bound::Excluded(5), Bound::Unbounded)
            ),
            [9]
        );
        // name=1, tid=1, 2 <= left < 9
        assert_eq!(
            lefts(
                &t,
                idx.range(&t, &[1, 1], Bound::Included(2), Bound::Excluded(9))
            ),
            [2, 5]
        );
        // point lookup via equal bounds
        assert_eq!(
            lefts(
                &t,
                idx.range(&t, &[1, 1], Bound::Included(5), Bound::Included(5))
            ),
            [5]
        );
        // empty window
        assert_eq!(
            idx.range(&t, &[1, 1], Bound::Included(10), Bound::Unbounded)
                .len(),
            0
        );
        assert_eq!(
            idx.range(&t, &[1, 1], Bound::Included(6), Bound::Included(3))
                .len(),
            0
        );
    }

    #[test]
    fn full_prefix_point_lookup() {
        let (t, idx) = sample();
        assert_eq!(lefts(&t, idx.equal_range(&t, &[1, 1, 5])), [5]);
        assert_eq!(idx.equal_range(&t, &[1, 1, 6]).len(), 0);
    }

    #[test]
    #[should_panic(expected = "range bound")]
    fn bound_without_next_column_panics() {
        let (t, idx) = sample();
        idx.range(&t, &[1, 1, 5], Bound::Included(1), Bound::Unbounded);
    }

    #[test]
    fn matches_linear_scan_on_random_data() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
        let mut t = Table::new(Schema::new(&["a", "b"]));
        for _ in 0..500 {
            t.push_row(&[rng.gen_range(0..8), rng.gen_range(0..50)]);
        }
        let idx = Index::build(&t, vec![ColId(0), ColId(1)]);
        for a in 0..8u32 {
            for lo in [0u32, 10, 25, 49] {
                let got = idx
                    .range(&t, &[a], Bound::Included(lo), Bound::Unbounded)
                    .len();
                let want = t
                    .scan()
                    .filter(|&r| t.value(r, ColId(0)) == a && t.value(r, ColId(1)) >= lo)
                    .count();
                assert_eq!(got, want, "a={a} lo={lo}");
            }
        }
    }
}
