//! Shared-anchor batched execution: one anchor scan feeding many plans.
//!
//! A batch of tree-pattern queries over the same corpus tends to share
//! its most expensive piece: the *anchor* — the first pipeline step,
//! a full scan or a constant-keyed index probe that every downstream
//! join hangs off. ("Conjunctive Queries over Trees" decomposes such
//! queries into exactly these shareable tractable cores.) This module
//! executes a group of plans with structurally identical anchors by
//! enumerating the anchor's candidate rows **once** and fanning each
//! candidate out to every member plan's residual filter and join tail.
//!
//! Compatibility is decided by [`anchor_key`]: two plans share an
//! anchor when step 0 reads the same table through the same access
//! path with identical *constant* operands (a non-constant operand
//! would make the candidate set binding-dependent, so such plans are
//! never grouped). The hash of this key is the planner's structural
//! plan signature ([`crate::planner::plan_signature`]).
//!
//! Per-member results are exactly what [`crate::cursor::execute`]
//! produces for that plan alone — same multiset of projected tuples,
//! same `DISTINCT` semantics — verified differentially by the
//! `prop_multiquery` suite.

use std::collections::{HashMap, HashSet};

use crate::catalog::{Database, IndexId, TableId};
use crate::expr::Operand;
use crate::plan::{resolve_bound, run, run_check, satisfies, AccessPath, Frame, Plan};
use crate::table::RowId;
use crate::value::Value;

/// Structural identity of a plan's anchor (step 0): table plus access
/// path with all operands resolved to constants. Plans with equal keys
/// enumerate identical candidate row sets and may share one scan.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct AnchorKey {
    table: TableId,
    access: AnchorAccess,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum AnchorAccess {
    Scan,
    Probe {
        index: IndexId,
        eq: Vec<Value>,
        lo: Option<(bool, Value)>,
        hi: Option<(bool, Value)>,
    },
}

/// The anchor-compatibility key of `plan`, or `None` when the plan has
/// no shareable anchor: constant-empty plans, zero-step plans (which
/// emit one all-bound row), and anchors keyed by non-constant operands.
pub fn anchor_key(plan: &Plan) -> Option<AnchorKey> {
    if plan.const_empty {
        return None;
    }
    let step = plan.steps.first()?;
    let access = match &step.access {
        AccessPath::FullScan => AnchorAccess::Scan,
        AccessPath::IndexRange { index, eq, lo, hi } => {
            let konst = |op: &Operand| match op {
                Operand::Const(v) => Some(*v),
                _ => None,
            };
            let bound = |b: &Option<(bool, Operand)>| match b {
                None => Some(None),
                Some((inc, op)) => konst(op).map(|v| Some((*inc, v))),
            };
            AnchorAccess::Probe {
                index: *index,
                eq: eq.iter().map(konst).collect::<Option<Vec<_>>>()?,
                lo: bound(lo)?,
                hi: bound(hi)?,
            }
        }
    };
    Some(AnchorKey {
        table: step.table,
        access,
    })
}

/// Work accounting for one [`execute_shared`] call.
#[derive(Clone, Copy, Debug, Default)]
pub struct SharedScanStats {
    /// Anchor candidate rows enumerated — once for the whole group,
    /// however many members consumed them.
    pub anchor_rows: u64,
    /// Per-member residual evaluations against shared anchor
    /// candidates (the work that remains after sharing the scan).
    pub residual_evals: u64,
}

/// Per-member DISTINCT watermark, mirroring the cursor's dedup: narrow
/// projections (≤ 2 columns) dedup through a packed `u64`, wider ones
/// through the full tuple.
enum Seen {
    All,
    Narrow(HashSet<u64>),
    Wide(HashSet<Vec<Value>>),
}

impl Seen {
    fn for_plan(plan: &Plan) -> Seen {
        if !plan.distinct {
            Seen::All
        } else if plan.projection.len() <= 2 {
            Seen::Narrow(HashSet::new())
        } else {
            Seen::Wide(HashSet::new())
        }
    }
}

/// One member plan's in-flight execution state.
struct Member<'a> {
    plan: &'a Plan,
    bindings: Vec<RowId>,
    seen: Seen,
    out: Vec<Vec<Value>>,
    /// `false` once an uncorrelated `NOT EXISTS`-style check proved the
    /// member empty before the anchor loop started.
    live: bool,
}

/// Execute every plan in `plans` — all sharing one [`AnchorKey`] —
/// with a single enumeration of the anchor's candidate rows, returning
/// each member's projected tuples (identical to running that plan
/// alone through [`crate::cursor::execute`]) plus work accounting.
///
/// # Panics
///
/// Debug builds assert that all plans carry the same anchor key;
/// release builds would silently evaluate members against the first
/// plan's anchor, so callers must group by [`anchor_key`] first.
pub fn execute_shared(plans: &[&Plan], db: &Database) -> (Vec<Vec<Vec<Value>>>, SharedScanStats) {
    let mut stats = SharedScanStats::default();
    let Some(first) = plans.first() else {
        return (Vec::new(), stats);
    };
    debug_assert!(
        plans
            .iter()
            .all(|p| anchor_key(p) == anchor_key(first) && anchor_key(p).is_some()),
        "execute_shared requires one shared anchor key"
    );
    let mut members: Vec<Member<'_>> = plans
        .iter()
        .map(|plan| {
            let bindings = vec![RowId(0); plan.alias_tables.len()];
            // Uncorrelated checks fire before the first step binds in
            // the solo pipeline; here that is once, before the shared
            // anchor loop. A failed check kills the member outright.
            let live = plan.checks.iter().filter(|c| c.due_at(0)).all(|c| {
                let frame = Frame {
                    plan,
                    bindings: &bindings,
                    outer: None,
                };
                run_check(c, db, &frame)
            });
            Member {
                plan,
                bindings,
                seen: Seen::for_plan(plan),
                out: Vec::new(),
                live,
            }
        })
        .collect();

    let anchor = &first.steps[0];
    let table = db.table(anchor.table);
    // Resolve the shared candidate set once, exactly as the solo
    // pipeline would: the key guarantees every operand is a constant.
    let probe: Vec<RowId> = match &anchor.access {
        AccessPath::FullScan => table.scan().collect(),
        AccessPath::IndexRange { index, eq, lo, hi } => {
            let bindings = vec![RowId(0); first.alias_tables.len()];
            let frame = Frame {
                plan: first,
                bindings: &bindings,
                outer: None,
            };
            let mut key_buf = [0 as Value; 8];
            debug_assert!(eq.len() <= key_buf.len());
            for (slot, &op) in key_buf.iter_mut().zip(eq.iter()) {
                *slot = frame.resolve(db, op);
            }
            let (lo_b, hi_b) = (resolve_bound(&frame, db, lo), resolve_bound(&frame, db, hi));
            db.index(*index)
                .range(table, &key_buf[..eq.len()], lo_b, hi_b)
                .to_vec()
        }
    };

    for &row in &probe {
        stats.anchor_rows += 1;
        for m in &mut members {
            if !m.live {
                continue;
            }
            let step0 = &m.plan.steps[0];
            m.bindings[step0.alias] = row;
            stats.residual_evals += 1;
            let ok = {
                let frame = Frame {
                    plan: m.plan,
                    bindings: &m.bindings,
                    outer: None,
                };
                satisfies(step0, db, &frame)
            };
            if !ok {
                continue;
            }
            let Member {
                plan,
                bindings,
                seen,
                out,
                ..
            } = m;
            run(plan, db, bindings, None, 1, &mut |frame: &Frame<'_>| {
                emit_row(db, frame, seen, out);
                true // full enumeration: never stop early
            });
        }
    }

    (members.into_iter().map(|m| m.out).collect(), stats)
}

/// Project the frame and append it to `out`, subject to the member's
/// DISTINCT watermark.
fn emit_row(db: &Database, frame: &Frame<'_>, seen: &mut Seen, out: &mut Vec<Vec<Value>>) {
    let tuple: Vec<Value> = frame
        .plan
        .projection
        .iter()
        .map(|&c| frame.value(db, c))
        .collect();
    match seen {
        Seen::All => out.push(tuple),
        Seen::Narrow(set) => {
            let mut packed = 0u64;
            for &v in &tuple {
                packed = (packed << 32) | u64::from(v);
            }
            if set.insert(packed) {
                out.push(tuple);
            }
        }
        Seen::Wide(set) => {
            if set.insert(tuple.clone()) {
                out.push(tuple);
            }
        }
    }
}

/// Group plan indexes by shared anchor: the returned map holds, for
/// every shareable anchor, the (input-order) positions of the plans
/// that can ride one scan. Positions of unshareable plans are absent.
pub fn group_by_anchor(plans: &[&Plan]) -> HashMap<AnchorKey, Vec<usize>> {
    let mut groups: HashMap<AnchorKey, Vec<usize>> = HashMap::new();
    for (i, plan) in plans.iter().enumerate() {
        if let Some(key) = anchor_key(plan) {
            groups.entry(key).or_default().push(i);
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::execute;
    use crate::expr::{ColRef, Cond};
    use crate::plan::JoinStep;
    use crate::schema::{ColId, Schema};
    use crate::table::Table;
    use crate::value::Cmp;

    const GRP: ColId = ColId(0);
    const VAL: ColId = ColId(1);

    fn setup() -> (Database, TableId, IndexId) {
        let mut t = Table::new(Schema::new(&["grp", "val"]));
        for row in [[1, 10], [1, 11], [1, 12], [2, 20], [2, 21], [3, 30]] {
            t.push_row(&row);
        }
        t.cluster_by(&[GRP, VAL]);
        let mut db = Database::new();
        let tid = db.add_table("t", t);
        let idx = db.add_index(tid, "by_grp_val", vec![GRP, VAL]);
        (db, tid, idx)
    }

    fn scan_plan(tid: TableId, residual: Vec<Cond>, distinct: bool) -> Plan {
        Plan {
            alias_tables: vec![tid],
            steps: vec![JoinStep {
                alias: 0,
                table: tid,
                access: AccessPath::FullScan,
                residual,
                sets: vec![],
            }],
            checks: vec![],
            projection: vec![ColRef::new(0, VAL)],
            distinct,
            ..Plan::default()
        }
    }

    #[test]
    fn anchor_keys_distinguish_access_paths() {
        let (_, tid, idx) = setup();
        let scan = scan_plan(tid, vec![], false);
        let mut probe = scan_plan(tid, vec![], false);
        probe.steps[0].access = AccessPath::IndexRange {
            index: idx,
            eq: vec![Operand::Const(1)],
            lo: None,
            hi: None,
        };
        let mut probe2 = probe.clone();
        if let AccessPath::IndexRange { eq, .. } = &mut probe2.steps[0].access {
            eq[0] = Operand::Const(2);
        }
        assert_eq!(anchor_key(&scan), anchor_key(&scan.clone()));
        assert_ne!(anchor_key(&scan), anchor_key(&probe));
        assert_ne!(anchor_key(&probe), anchor_key(&probe2));
        // Non-constant operands are never shareable.
        let mut corr = probe.clone();
        if let AccessPath::IndexRange { eq, .. } = &mut corr.steps[0].access {
            eq[0] = Operand::Col(ColRef::new(0, GRP));
        }
        assert_eq!(anchor_key(&corr), None);
        assert_eq!(anchor_key(&Plan::constant_empty()), None);
    }

    #[test]
    fn shared_execution_matches_solo_execution() {
        let (db, tid, _) = setup();
        let plans = [
            scan_plan(tid, vec![], false),
            scan_plan(
                tid,
                vec![Cond::against_const(ColRef::new(0, VAL), Cmp::Gt, 15)],
                false,
            ),
            scan_plan(
                tid,
                vec![Cond::against_const(ColRef::new(0, GRP), Cmp::Eq, 1)],
                false,
            ),
        ];
        let refs: Vec<&Plan> = plans.iter().collect();
        let (got, stats) = execute_shared(&refs, &db);
        for (plan, rows) in plans.iter().zip(&got) {
            assert_eq!(*rows, execute(plan, &db));
        }
        // Six table rows scanned once, not once per member.
        assert_eq!(stats.anchor_rows, 6);
        assert_eq!(stats.residual_evals, 18);
    }

    #[test]
    fn shared_distinct_dedups_per_member() {
        let (db, tid, _) = setup();
        let mut grp = scan_plan(tid, vec![], true);
        grp.projection = vec![ColRef::new(0, GRP)];
        let plain = scan_plan(tid, vec![], false);
        let refs: Vec<&Plan> = vec![&grp, &plain];
        let (got, _) = execute_shared(&refs, &db);
        assert_eq!(got[0], execute(&grp, &db));
        assert_eq!(got[0], [[1], [2], [3]]);
        assert_eq!(got[1].len(), 6);
    }

    #[test]
    fn grouping_buckets_compatible_anchors() {
        let (_, tid, idx) = setup();
        let a = scan_plan(tid, vec![], false);
        let b = scan_plan(
            tid,
            vec![Cond::against_const(ColRef::new(0, VAL), Cmp::Gt, 15)],
            false,
        );
        let mut c = scan_plan(tid, vec![], false);
        c.steps[0].access = AccessPath::IndexRange {
            index: idx,
            eq: vec![Operand::Const(1)],
            lo: None,
            hi: None,
        };
        let empty = Plan::constant_empty();
        let groups = group_by_anchor(&[&a, &b, &c, &empty]);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[&anchor_key(&a).unwrap()], [0, 1]);
        assert_eq!(groups[&anchor_key(&c).unwrap()], [2]);
    }
}
