//! Pull-based plan execution with early termination.
//!
//! [`Cursor`] is the streaming form of the pipelined
//! index-nested-loop executor: instead of materializing the complete
//! match set, it maintains the join state of [`crate::plan::Plan`]
//! explicitly (one candidate source per pipeline stage) and yields one
//! projected tuple per [`Iterator::next`] call. Everything downstream
//! of it can therefore stop as early as it likes:
//!
//! * [`exists`] — stop at the very first result tuple (the
//!   Boolean-evaluation gap of Gottlob–Koch–Schulz's *Conjunctive
//!   Queries over Trees*);
//! * [`count`] — enumerate without materializing tuples (the common
//!   narrow projection dedups through a packed `u64` set);
//! * [`execute_page`] — skip `offset` tuples, keep `limit`, stop;
//! * [`execute`] — the classic collect-everything form, now a thin
//!   wrapper over the cursor;
//! * [`execute_resume`] — stop after `limit` tuples **and keep the
//!   right to continue**: the enumeration suspends into a
//!   [`CursorCheckpoint`] and a later call picks up exactly where it
//!   stopped, paying nothing for the tuples already emitted.
//!
//! Suspension captures the complete join state — the binding of every
//! alias, each open stage's candidate position, and the `DISTINCT`
//! watermark — as plain owned data ([`CursorCheckpoint`]), so a
//! checkpoint can outlive the cursor, the plan borrow, and the calling
//! frame (e.g. live in a service's cache between page requests).
//!
//! ```
//! use lpath_relstore::{execute, execute_resume, Cursor};
//! # use lpath_relstore::{AccessPath, ColRef, Database, JoinStep, Plan, Schema, Table, ColId};
//! # let mut t = Table::new(Schema::new(&["grp", "val"]));
//! # for row in [[1, 10], [1, 11], [2, 20]] { t.push_row(&row); }
//! # let mut db = Database::new();
//! # let tid = db.add_table("t", t);
//! # let plan = Plan {
//! #     alias_tables: vec![tid],
//! #     steps: vec![JoinStep { alias: 0, table: tid, access: AccessPath::FullScan,
//! #                            residual: vec![], sets: vec![] }],
//! #     checks: vec![], projection: vec![ColRef::new(0, ColId(1))], distinct: false,
//! #     ..Plan::default()
//! # };
//! // Two tuples now…
//! let (first, ckpt) = execute_resume(&plan, &db, None, 2);
//! assert_eq!(first.len(), 2);
//! // …the rest later, with no replay of the first two.
//! let (rest, done) = execute_resume(&plan, &db, ckpt, usize::MAX);
//! assert!(done.is_none());
//! let mut all = first; all.extend(rest);
//! assert_eq!(all, execute(&plan, &db));
//! ```
//!
//! Output order and dedup semantics are identical to the historical
//! recursive executor: tuples appear in pipeline (depth-first join)
//! order, and `DISTINCT` plans deduplicate on the **projected** tuple —
//! never on the full wide binding — so the distinct set's size is
//! bounded by the output, not by alias-count × width.

use std::borrow::Cow;
use std::collections::HashSet;
use std::time::Instant;

use crate::catalog::Database;
use crate::plan::{resolve_bound, run_check, Frame, JoinStep, Plan};
use crate::table::RowId;
use crate::value::Value;
use crate::wire;

/// Observed per-step execution counts — the *actual* side of the
/// planner's estimated costs, maintained by every cursor at the price
/// of a few plain integer increments per candidate row.
///
/// One `StepObs` per [`JoinStep`], carried across [`Cursor::suspend`] /
/// [`Cursor::resume`] so a paged enumeration accumulates the same
/// totals as an uninterrupted one (modulo the re-run probe each resume
/// performs, which is counted honestly as a probe).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StepObs {
    /// Access-path openings: index range probes (or scan starts),
    /// including the re-probe a resume performs per suspended stage.
    pub probes: u64,
    /// Candidate rows pulled from the step's scan or probe slice.
    pub candidates: u64,
    /// Residual and set-filter conditions actually evaluated on those
    /// candidates (short-circuiting, so ≤ candidates × conditions).
    pub residual_evals: u64,
    /// Candidates that survived the step's filters — the step's
    /// observed output rows (pre-`DISTINCT`).
    pub rows_out: u64,
}

/// [`crate::plan::satisfies`] with an evaluation tally: counts each
/// residual / set condition actually evaluated, short-circuiting
/// exactly like the original.
fn satisfies_counting(step: &JoinStep, db: &Database, frame: &Frame<'_>, evals: &mut u64) -> bool {
    for c in &step.residual {
        *evals += 1;
        if !c
            .cmp
            .eval(frame.value(db, c.left), frame.resolve(db, c.right))
        {
            return false;
        }
    }
    for ic in &step.sets {
        *evals += 1;
        if !ic.matches(frame.value(db, ic.col)) {
            return false;
        }
    }
    true
}

/// Candidate rows of one opened pipeline stage.
enum Cands<'a> {
    /// Full table scan: the remaining physical row range.
    Scan { next: u32, end: u32 },
    /// Index probe: the matching (clustered-order) row slice.
    Rows { rows: &'a [RowId], pos: usize },
}

impl Cands<'_> {
    /// The suspendable half of this stage's state (see [`LevelPos`]).
    fn pos(&self) -> LevelPos {
        match self {
            Cands::Scan { next, .. } => LevelPos::Scan { next: *next },
            Cands::Rows { pos, .. } => LevelPos::Rows { pos: *pos },
        }
    }

    fn next(&mut self) -> Option<RowId> {
        match self {
            Cands::Scan { next, end } => {
                if next < end {
                    *next += 1;
                    Some(RowId(*next - 1))
                } else {
                    None
                }
            }
            Cands::Rows { rows, pos } => {
                let row = rows.get(*pos).copied();
                *pos += 1;
                row
            }
        }
    }
}

/// The suspendable position of one open pipeline stage — the owned
/// mirror of [`Cands`], minus everything re-derivable from the plan
/// and database (the scan's end, the index probe's row slice).
#[derive(Clone, Debug, PartialEq, Eq)]
enum LevelPos {
    /// Next physical row of a full scan.
    Scan { next: u32 },
    /// Position within an index probe's candidate slice.
    Rows { pos: usize },
}

/// A suspended [`Cursor`]: the complete join state as plain owned data.
///
/// Produced by [`Cursor::suspend`]; turned back into a live cursor by
/// [`Cursor::resume`] / [`Cursor::resume_owning`]. A checkpoint holds
///
/// * the current binding of **every** alias (the join `Frame` the
///   recursive checker and the cursor share),
/// * each open stage's candidate position (scan offset or index-probe
///   position — the probe itself is re-run on resume and lands on the
///   same clustered-order slice, since the bindings it is keyed by are
///   restored first),
/// * the emitted-tuple `DISTINCT` watermark (packed for narrow
///   projections, materialized for wide ones), so duplicates spanning
///   a suspension are still suppressed.
///
/// A checkpoint is only meaningful against the **same plan over the
/// same database contents** it was suspended from. Callers that cache
/// checkpoints must scope them accordingly (the service scopes them to
/// a shard's immutable build); resuming against a structurally
/// different plan panics, resuming against different *data* silently
/// yields garbage.
#[derive(Clone, Debug)]
pub struct CursorCheckpoint {
    bindings: Vec<RowId>,
    levels: Vec<LevelPos>,
    primed: bool,
    done: bool,
    seen_narrow: HashSet<u64>,
    seen_wide: HashSet<Vec<Value>>,
    obs: Vec<StepObs>,
}

impl CursorCheckpoint {
    /// Has the suspended enumeration already finished? A resumed
    /// cursor over a finished checkpoint yields nothing (cheaply).
    pub fn exhausted(&self) -> bool {
        self.done
    }

    /// Serialize the checkpoint into `w` (the deterministic half of a
    /// wire token: the dedup watermarks are written sorted, so
    /// encoding the same logical state always yields the same bytes).
    pub fn encode_into(&self, w: &mut wire::Writer) {
        w.usize(self.bindings.len());
        for b in &self.bindings {
            w.u32(b.0);
        }
        w.usize(self.levels.len());
        for level in &self.levels {
            match level {
                LevelPos::Scan { next } => {
                    w.u8(0);
                    w.u64(u64::from(*next));
                }
                LevelPos::Rows { pos } => {
                    w.u8(1);
                    w.usize(*pos);
                }
            }
        }
        w.bool(self.primed);
        w.bool(self.done);
        let mut narrow: Vec<u64> = self.seen_narrow.iter().copied().collect();
        narrow.sort_unstable();
        w.usize(narrow.len());
        for v in narrow {
            w.u64(v);
        }
        let mut wide: Vec<&Vec<Value>> = self.seen_wide.iter().collect();
        wide.sort_unstable();
        w.usize(wide.len());
        for tuple in wide {
            w.usize(tuple.len());
            for &v in tuple {
                w.u32(v);
            }
        }
        w.usize(self.obs.len());
        for o in &self.obs {
            w.u64(o.probes);
            w.u64(o.candidates);
            w.u64(o.residual_evals);
            w.u64(o.rows_out);
        }
    }

    /// Decode a checkpoint from untrusted bytes, validated against the
    /// `plan` and `db` it claims to resume over: the alias count must
    /// match the plan, each open stage's recorded kind must agree with
    /// the plan's access path, and every binding an open stage has
    /// fixed must reference a real row of its alias's table. A
    /// checkpoint this accepts can be fed to [`Cursor::resume`]
    /// without tripping its shape assertions.
    pub fn decode(
        r: &mut wire::Reader<'_>,
        plan: &Plan,
        db: &Database,
    ) -> Result<CursorCheckpoint, wire::WireError> {
        use wire::WireError::Malformed;
        let nbind = r.seq_len(4)?;
        if nbind != plan.alias_tables.len() {
            return Err(Malformed("alias count does not match plan"));
        }
        let mut bindings = Vec::with_capacity(nbind);
        for _ in 0..nbind {
            bindings.push(RowId(r.u32()?));
        }
        let nlevels = r.seq_len(2)?;
        if nlevels > plan.steps.len() {
            return Err(Malformed("more open stages than plan steps"));
        }
        let mut levels = Vec::with_capacity(nlevels);
        for d in 0..nlevels {
            let level = match r.u8()? {
                0 => LevelPos::Scan {
                    next: u32::try_from(r.u64()?).unwrap_or(u32::MAX),
                },
                1 => LevelPos::Rows { pos: r.usize()? },
                _ => return Err(Malformed("level kind")),
            };
            let scan = matches!(level, LevelPos::Scan { .. });
            let wants_scan = matches!(plan.steps[d].access, crate::plan::AccessPath::FullScan);
            if scan != wants_scan {
                return Err(Malformed("stage kind disagrees with plan access path"));
            }
            levels.push(level);
        }
        // Every alias a suspended open stage has bound must point at a
        // real row — those bindings are read when checks run and when
        // deeper probes resolve their keys. Aliases beyond the open
        // stages keep their placeholder and are never read before
        // being rebound, so they need no constraint.
        for step in &plan.steps[..nlevels] {
            let rows = db.table(step.table).num_rows();
            if bindings[step.alias].0 as usize >= rows {
                return Err(Malformed("binding references a missing row"));
            }
        }
        let primed = r.bool()?;
        let done = r.bool()?;
        if !primed && nlevels > 0 {
            return Err(Malformed("open stages on an unprimed cursor"));
        }
        let n_narrow = r.seq_len(8)?;
        let mut seen_narrow = HashSet::with_capacity(n_narrow);
        for _ in 0..n_narrow {
            seen_narrow.insert(r.u64()?);
        }
        let n_wide = r.seq_len(8)?;
        let mut seen_wide = HashSet::with_capacity(n_wide);
        for _ in 0..n_wide {
            let tlen = r.seq_len(4)?;
            let mut tuple = Vec::with_capacity(tlen);
            for _ in 0..tlen {
                tuple.push(r.u32()?);
            }
            seen_wide.insert(tuple);
        }
        let nobs = r.seq_len(32)?;
        if nobs != plan.steps.len() {
            return Err(Malformed("observation count does not match plan"));
        }
        let mut obs = Vec::with_capacity(nobs);
        for _ in 0..nobs {
            obs.push(StepObs {
                probes: r.u64()?,
                candidates: r.u64()?,
                residual_evals: r.u64()?,
                rows_out: r.u64()?,
            });
        }
        Ok(CursorCheckpoint {
            bindings,
            levels,
            primed,
            done,
            seen_narrow,
            seen_wide,
            obs,
        })
    }

    /// The per-step observed counts accumulated up to the suspension
    /// (restored into the cursor on resume, so they keep growing).
    pub fn step_observations(&self) -> &[StepObs] {
        &self.obs
    }

    /// Number of distinct tuples emitted before suspension (the dedup
    /// watermark's size). Zero for non-`DISTINCT` plans, whose
    /// emissions are not tracked.
    pub fn distinct_emitted(&self) -> usize {
        self.seen_narrow.len() + self.seen_wide.len()
    }
}

/// Where the state machine resumes.
enum Mode {
    /// Entering pipeline position `d`: run due checks, then either
    /// emit (`d == steps.len()`) or open stage `d`'s candidates.
    Enter(usize),
    /// Pull the next candidate of the already-open stage `d`.
    Advance(usize),
}

/// A streaming executor over one plan. Yields projected tuples (with
/// the plan's `DISTINCT` applied) on demand; dropping it abandons the
/// remaining enumeration at zero cost.
pub struct Cursor<'a> {
    plan: Cow<'a, Plan>,
    db: &'a Database,
    bindings: Vec<RowId>,
    levels: Vec<Cands<'a>>,
    primed: bool,
    done: bool,
    /// Narrow projections (≤ 2 columns, the common `(tid, id)`) dedup
    /// through a packed `u64`, keeping duplicate emissions
    /// allocation-free.
    narrow: bool,
    seen_narrow: HashSet<u64>,
    seen_wide: HashSet<Vec<Value>>,
    /// Per-step observed counts (always on: plain integer increments).
    obs: Vec<StepObs>,
    /// Attribute wall-clock time to steps? Off by default — only
    /// EXPLAIN ANALYZE pays for a clock read per state transition.
    timed: bool,
    step_nanos: Vec<u64>,
}

impl<'a> Cursor<'a> {
    /// A cursor over a borrowed plan.
    pub fn new(plan: &'a Plan, db: &'a Database) -> Self {
        Self::build(Cow::Borrowed(plan), db)
    }

    /// A cursor that owns its plan — for iterators that must outlive
    /// the planning scope (e.g. an engine handing a streaming result
    /// to its caller).
    pub fn owning(plan: Plan, db: &'a Database) -> Self {
        Self::build(Cow::Owned(plan), db)
    }

    fn build(plan: Cow<'a, Plan>, db: &'a Database) -> Self {
        let bindings = vec![RowId(0); plan.alias_tables.len()];
        let narrow = plan.projection.len() <= 2;
        let obs = vec![StepObs::default(); plan.steps.len()];
        // A constant-empty plan's cursor is born exhausted: every
        // entry point (execute, count, exists, paging, resume) funnels
        // through `advance_match`, whose first check is `done`.
        let done = plan.const_empty;
        Cursor {
            plan,
            db,
            bindings,
            levels: Vec::new(),
            primed: false,
            done,
            narrow,
            seen_narrow: HashSet::new(),
            seen_wide: HashSet::new(),
            obs,
            timed: false,
            step_nanos: Vec::new(),
        }
    }

    /// Enable per-step wall-clock attribution (EXPLAIN ANALYZE mode).
    /// Costs one monotonic clock read per state-machine transition, so
    /// it is opt-in; the counted observations are always maintained.
    pub fn with_timing(mut self) -> Self {
        self.timed = true;
        self.step_nanos = vec![0; self.plan.steps.len()];
        self
    }

    /// The per-step observed counts accumulated so far.
    pub fn step_observations(&self) -> &[StepObs] {
        &self.obs
    }

    /// Nanoseconds attributed to each step so far. Empty unless the
    /// cursor was built [`Cursor::with_timing`].
    pub fn step_nanos(&self) -> &[u64] {
        &self.step_nanos
    }

    /// Capture the complete join state as owned data, leaving the
    /// cursor untouched. Valid at any point between [`Iterator::next`]
    /// calls — before the first pull, mid-enumeration, or after
    /// exhaustion.
    pub fn suspend(&self) -> CursorCheckpoint {
        CursorCheckpoint {
            bindings: self.bindings.clone(),
            levels: self.levels.iter().map(Cands::pos).collect(),
            primed: self.primed,
            done: self.done,
            seen_narrow: self.seen_narrow.clone(),
            seen_wide: self.seen_wide.clone(),
            obs: self.obs.clone(),
        }
    }

    /// [`Cursor::suspend`] by move: consumes the cursor and hands its
    /// state over without copying the `DISTINCT` watermark — the
    /// right form when the cursor is done being polled (a paging loop
    /// suspending between requests), where cloning a large emitted
    /// set per page would make suspension itself O(rows emitted).
    pub fn into_checkpoint(self) -> CursorCheckpoint {
        CursorCheckpoint {
            levels: self.levels.iter().map(Cands::pos).collect(),
            bindings: self.bindings,
            primed: self.primed,
            done: self.done,
            seen_narrow: self.seen_narrow,
            seen_wide: self.seen_wide,
            obs: self.obs,
        }
    }

    /// Rebuild a live cursor from a checkpoint taken over the same
    /// `plan` and `db`. The continuation is exact: the resumed cursor
    /// yields precisely the tuples the suspended one would have yielded
    /// next, in the same order, with the same `DISTINCT` suppression.
    ///
    /// # Panics
    ///
    /// If the checkpoint's shape does not match `plan` (different alias
    /// count, more open stages than steps, or a stage whose recorded
    /// position kind disagrees with the plan's access path).
    pub fn resume(plan: &'a Plan, db: &'a Database, checkpoint: CursorCheckpoint) -> Self {
        Self::restore(Cow::Borrowed(plan), db, checkpoint)
    }

    /// [`Cursor::resume`] with an owned plan (see [`Cursor::owning`]).
    pub fn resume_owning(plan: Plan, db: &'a Database, checkpoint: CursorCheckpoint) -> Self {
        Self::restore(Cow::Owned(plan), db, checkpoint)
    }

    fn restore(plan: Cow<'a, Plan>, db: &'a Database, ckpt: CursorCheckpoint) -> Self {
        assert_eq!(
            ckpt.bindings.len(),
            plan.alias_tables.len(),
            "checkpoint does not belong to this plan (alias count)"
        );
        assert!(
            ckpt.levels.len() <= plan.steps.len(),
            "checkpoint does not belong to this plan (open stages)"
        );
        let narrow = plan.projection.len() <= 2;
        debug_assert_eq!(ckpt.obs.len(), plan.steps.len());
        let done = ckpt.done || plan.const_empty;
        let mut cursor = Cursor {
            plan,
            db,
            bindings: ckpt.bindings,
            levels: Vec::with_capacity(ckpt.levels.len()),
            primed: ckpt.primed,
            done,
            narrow,
            seen_narrow: ckpt.seen_narrow,
            seen_wide: ckpt.seen_wide,
            obs: ckpt.obs,
            timed: false,
            step_nanos: Vec::new(),
        };
        // Reopen each suspended stage against the restored bindings.
        // While stage `d` is open, the bindings of steps `< d` are
        // fixed (only deeper stages mutate deeper aliases), so the
        // re-run probe resolves to the same candidate slice the
        // suspended stage was iterating — only the position needs
        // fast-forwarding.
        for (d, saved) in ckpt.levels.iter().enumerate() {
            let mut cands = cursor.open(d);
            cursor.obs[d].probes += 1; // the re-run probe is real work
            match (&mut cands, saved) {
                (Cands::Scan { next, .. }, LevelPos::Scan { next: n }) => *next = *n,
                (Cands::Rows { rows, pos }, LevelPos::Rows { pos: p }) => {
                    // A legitimate checkpoint's position is always
                    // within the re-run probe's slice; clamping (not
                    // asserting) keeps decoded-from-the-wire state —
                    // validated structurally, but not against this
                    // probe — safe: past-the-end means exhausted.
                    *pos = (*p).min(rows.len());
                }
                _ => panic!("checkpoint stage {d} disagrees with the plan's access path"),
            }
            cursor.levels.push(cands);
        }
        cursor
    }

    fn frame(&self) -> Frame<'_> {
        Frame {
            plan: &self.plan,
            bindings: &self.bindings,
            outer: None,
        }
    }

    /// Run the checks scheduled for pipeline position `depth`.
    fn checks_pass(&self, depth: usize) -> bool {
        self.plan
            .checks
            .iter()
            .filter(|c| c.due_at(depth))
            .all(|c| run_check(c, self.db, &self.frame()))
    }

    /// Open stage `d`: resolve its access path against the current
    /// bindings and return its candidate rows.
    fn open(&self, d: usize) -> Cands<'a> {
        let db = self.db;
        let step = &self.plan.steps[d];
        let table = db.table(step.table);
        match &step.access {
            crate::plan::AccessPath::FullScan => Cands::Scan {
                next: 0,
                end: table.num_rows() as u32,
            },
            crate::plan::AccessPath::IndexRange { index, eq, lo, hi } => {
                let frame = self.frame();
                let mut key_buf = [0 as Value; 8];
                debug_assert!(eq.len() <= key_buf.len());
                for (slot, &op) in key_buf.iter_mut().zip(eq.iter()) {
                    *slot = frame.resolve(db, op);
                }
                let lo_b = resolve_bound(&frame, db, lo);
                let hi_b = resolve_bound(&frame, db, hi);
                Cands::Rows {
                    rows: db
                        .index(*index)
                        .range(table, &key_buf[..eq.len()], lo_b, hi_b),
                    pos: 0,
                }
            }
        }
    }

    /// Advance to the next complete (pre-`DISTINCT`) binding. Returns
    /// `false` when the enumeration is exhausted. This is the
    /// iterative mirror of the recursive depth-first join: `Enter(d)`
    /// corresponds to calling `run(.., d, ..)`, `Advance(d)` to the
    /// candidate loop of stage `d`, and check failure to pruning the
    /// stage-`d-1` binding.
    fn advance_match(&mut self) -> bool {
        if self.done {
            return false;
        }
        let nsteps = self.plan.steps.len();
        let mut mode = if !self.primed {
            self.primed = true;
            Mode::Enter(0)
        } else if nsteps == 0 {
            // A stepless plan emits exactly once.
            self.done = true;
            return false;
        } else {
            Mode::Advance(nsteps - 1)
        };
        loop {
            // In EXPLAIN ANALYZE mode, attribute each transition's wall
            // clock to the step it works for (check-and-emit work at
            // `Enter(d)` goes to the step that produced the binding).
            let timer = (self.timed && nsteps > 0).then(|| {
                let at = match mode {
                    Mode::Enter(d) => d.min(nsteps - 1),
                    Mode::Advance(d) => d,
                };
                (Instant::now(), at)
            });
            // `Some(emitted)` ends the enumeration step for the caller.
            let mut outcome = None;
            match mode {
                Mode::Enter(d) => {
                    if !self.checks_pass(d) {
                        if d == 0 {
                            self.done = true;
                            outcome = Some(false);
                        } else {
                            mode = Mode::Advance(d - 1);
                        }
                    } else if d == nsteps {
                        outcome = Some(true);
                    } else {
                        self.obs[d].probes += 1;
                        let cands = self.open(d);
                        self.levels.push(cands);
                        mode = Mode::Advance(d);
                    }
                }
                Mode::Advance(d) => {
                    debug_assert_eq!(self.levels.len(), d + 1);
                    match self.levels[d].next() {
                        None => {
                            self.levels.pop();
                            if d == 0 {
                                self.done = true;
                                outcome = Some(false);
                            } else {
                                mode = Mode::Advance(d - 1);
                            }
                        }
                        Some(row) => {
                            let alias = self.plan.steps[d].alias;
                            self.bindings[alias] = row;
                            let mut evals = 0u64;
                            let ok = satisfies_counting(
                                &self.plan.steps[d],
                                self.db,
                                &self.frame(),
                                &mut evals,
                            );
                            let o = &mut self.obs[d];
                            o.candidates += 1;
                            o.residual_evals += evals;
                            if ok {
                                o.rows_out += 1;
                                mode = Mode::Enter(d + 1);
                            }
                        }
                    }
                }
            }
            if let Some((start, at)) = timer {
                self.step_nanos[at] +=
                    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            }
            if let Some(emitted) = outcome {
                return emitted;
            }
        }
    }

    /// The projection of the current binding, packed into a `u64`
    /// (valid only for narrow projections).
    fn packed(&self) -> u64 {
        let frame = self.frame();
        let mut packed = 0u64;
        for &c in &self.plan.projection {
            packed = (packed << 32) | u64::from(frame.value(self.db, c));
        }
        packed
    }

    /// Materialize the projection of the current binding.
    fn project(&self) -> Vec<Value> {
        let frame = self.frame();
        self.plan
            .projection
            .iter()
            .map(|&c| frame.value(self.db, c))
            .collect()
    }
}

impl Cursor<'_> {
    /// Count the tuples this cursor has yet to produce, without
    /// materializing an output vector. Non-distinct plans count every
    /// complete binding; distinct plans count first-encounter tuples
    /// through the watermark sets — unless the plan is
    /// [`dedup_free`](Plan::dedup_free), in which case duplicates are
    /// provably impossible and both the projection and the watermark
    /// sets are skipped (the count pushdown fast path).
    pub fn count_remaining(&mut self) -> u64 {
        self.count_up_to(u64::MAX).0
    }

    /// Count at most `budget` further tuples. Returns the number
    /// counted plus whether the enumeration is exhausted (`false`
    /// means the budget ran out and the cursor can be suspended).
    fn count_up_to(&mut self, budget: u64) -> (u64, bool) {
        let mut n = 0u64;
        if !self.plan.distinct || self.plan.dedup_free {
            while n < budget {
                if !self.advance_match() {
                    return (n, true);
                }
                n += 1;
            }
        } else if self.narrow {
            while n < budget {
                if !self.advance_match() {
                    return (n, true);
                }
                let key = self.packed();
                if self.seen_narrow.insert(key) {
                    n += 1;
                }
            }
        } else {
            while n < budget {
                if !self.advance_match() {
                    return (n, true);
                }
                let tuple = self.project();
                if self.seen_wide.insert(tuple) {
                    n += 1;
                }
            }
        }
        (n, false)
    }
}

impl Iterator for Cursor<'_> {
    type Item = Vec<Value>;

    fn next(&mut self) -> Option<Vec<Value>> {
        loop {
            if !self.advance_match() {
                return None;
            }
            if !self.plan.distinct {
                return Some(self.project());
            }
            if self.narrow {
                let key = self.packed();
                if self.seen_narrow.insert(key) {
                    return Some(self.project());
                }
            } else {
                let tuple = self.project();
                if self.seen_wide.insert(tuple.clone()) {
                    return Some(tuple);
                }
            }
        }
    }
}

/// Run `plan` to completion, returning projected tuples (distinct if
/// the plan says so, in first-encounter order).
pub fn execute(plan: &Plan, db: &Database) -> Vec<Vec<Value>> {
    Cursor::new(plan, db).collect()
}

/// [`execute`] under full instrumentation: the tuples, plus per-step
/// observed counts and per-step attributed nanoseconds — the raw
/// material of EXPLAIN ANALYZE.
pub fn execute_analyzed(plan: &Plan, db: &Database) -> (Vec<Vec<Value>>, Vec<StepObs>, Vec<u64>) {
    let mut cursor = Cursor::new(plan, db).with_timing();
    let rows: Vec<Vec<Value>> = cursor.by_ref().collect();
    let nanos = std::mem::take(&mut cursor.step_nanos);
    (rows, cursor.obs, nanos)
}

/// Does `plan` produce at least one tuple? Stops at the first complete
/// binding — no projection, no dedup, no materialization.
pub fn exists(plan: &Plan, db: &Database) -> bool {
    Cursor::new(plan, db).advance_match()
}

/// Number of (distinct) result tuples, without materializing an output
/// vector. Narrow distinct projections count through the packed set;
/// only wide distinct projections hash materialized tuples (and drop
/// them immediately).
pub fn count(plan: &Plan, db: &Database) -> usize {
    Cursor::new(plan, db).count_remaining() as usize
}

/// Count up to `budget` further tuples of `plan`'s output, continuing
/// from `checkpoint` (or from the start when `None`), plus the
/// checkpoint to continue from next — `None` once the enumeration is
/// known exhausted. Summing the counts of successive calls equals
/// [`count`], whatever the per-call budgets: the checkpoint carries
/// the distinct watermark sets, so resumed counting never double- or
/// under-counts across a suspension boundary.
pub fn count_resume(
    plan: &Plan,
    db: &Database,
    checkpoint: Option<CursorCheckpoint>,
    budget: usize,
) -> (u64, Option<CursorCheckpoint>) {
    let mut cursor = match checkpoint {
        Some(ckpt) => Cursor::resume(plan, db, ckpt),
        None => Cursor::new(plan, db),
    };
    let (n, exhausted) = cursor.count_up_to(budget as u64);
    if exhausted {
        (n, None)
    } else {
        (n, Some(cursor.into_checkpoint()))
    }
}

/// The `[offset, offset + limit)` slice of `execute`'s output, stopping
/// the enumeration as soon as the page is filled. Exactly equal to
/// `execute(plan, db)[offset..][..limit]` (clamped at the end).
pub fn execute_page(plan: &Plan, db: &Database, offset: usize, limit: usize) -> Vec<Vec<Value>> {
    if limit == 0 {
        return Vec::new();
    }
    Cursor::new(plan, db).skip(offset).take(limit).collect()
}

/// Up to `limit` further tuples of `plan`'s output, continuing from
/// `checkpoint` (or from the start when `None`), plus the checkpoint
/// to continue from *next* — `None` once the enumeration is known
/// exhausted. Concatenating the row chunks of successive calls is
/// byte-identical to [`execute`], whatever the per-call limits.
///
/// A full page may coincide with the end of the enumeration; the call
/// then still returns a checkpoint, and the following call returns
/// `(vec![], None)` — "no more rows" is only ever discovered by asking.
pub fn execute_resume(
    plan: &Plan,
    db: &Database,
    checkpoint: Option<CursorCheckpoint>,
    limit: usize,
) -> (Vec<Vec<Value>>, Option<CursorCheckpoint>) {
    let mut cursor = match checkpoint {
        Some(ckpt) => Cursor::resume(plan, db, ckpt),
        None => Cursor::new(plan, db),
    };
    let mut rows = Vec::new();
    while rows.len() < limit {
        match cursor.next() {
            Some(row) => rows.push(row),
            None => return (rows, None),
        }
    }
    (rows, Some(cursor.into_checkpoint()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Database, IndexId, TableId};
    use crate::expr::{ColRef, Operand};
    use crate::plan::{AccessPath, JoinStep, Plan, SubCheck};
    use crate::schema::{ColId, Schema};
    use crate::table::Table;

    const GRP: ColId = ColId(0);
    const VAL: ColId = ColId(1);

    /// The same toy table as the plan tests: (grp, val).
    fn setup() -> (Database, TableId, IndexId) {
        let mut t = Table::new(Schema::new(&["grp", "val"]));
        for row in [[1, 10], [1, 11], [1, 12], [2, 20], [2, 21], [3, 30]] {
            t.push_row(&row);
        }
        t.cluster_by(&[ColId(0), ColId(1)]);
        let mut db = Database::new();
        let tid = db.add_table("t", t);
        let idx = db.add_index(tid, "by_grp_val", vec![ColId(0), ColId(1)]);
        (db, tid, idx)
    }

    fn scan_plan(tid: TableId, projection: Vec<ColRef>, distinct: bool) -> Plan {
        Plan {
            alias_tables: vec![tid],
            steps: vec![JoinStep {
                alias: 0,
                table: tid,
                access: AccessPath::FullScan,
                residual: vec![],
                sets: vec![],
            }],
            checks: vec![],
            projection,
            distinct,
            ..Plan::default()
        }
    }

    #[test]
    fn cursor_streams_execute_exactly() {
        let (db, tid, idx) = setup();
        // Self-join pairs, same shape as the plan test.
        let plan = Plan {
            alias_tables: vec![tid, tid],
            steps: vec![
                JoinStep {
                    alias: 0,
                    table: tid,
                    access: AccessPath::FullScan,
                    residual: vec![],
                    sets: vec![],
                },
                JoinStep {
                    alias: 1,
                    table: tid,
                    access: AccessPath::IndexRange {
                        index: idx,
                        eq: vec![Operand::Col(ColRef::new(0, GRP))],
                        lo: Some((false, Operand::Col(ColRef::new(0, VAL)))),
                        hi: None,
                    },
                    residual: vec![],
                    sets: vec![],
                },
            ],
            checks: vec![],
            projection: vec![ColRef::new(0, VAL), ColRef::new(1, VAL)],
            distinct: false,
            ..Plan::default()
        };
        let full = execute(&plan, &db);
        let streamed: Vec<Vec<Value>> = Cursor::new(&plan, &db).collect();
        assert_eq!(streamed, full);
        assert_eq!(count(&plan, &db), full.len());
        assert!(exists(&plan, &db));
    }

    #[test]
    fn pages_are_prefix_slices() {
        let (db, tid, _) = setup();
        let plan = scan_plan(tid, vec![ColRef::new(0, VAL)], false);
        let full = execute(&plan, &db);
        assert_eq!(full.len(), 6);
        for offset in 0..8 {
            for limit in 0..8 {
                let page = execute_page(&plan, &db, offset, limit);
                let want: Vec<Vec<Value>> = full.iter().skip(offset).take(limit).cloned().collect();
                assert_eq!(page, want, "offset {offset} limit {limit}");
            }
        }
    }

    #[test]
    fn distinct_dedups_on_the_projected_tuple() {
        // Regression pin: duplicate *projected* tuples arising from
        // distinct wide bindings must collapse. Rows (1,10), (1,11),
        // (1,12) are three distinct bindings but one projected (grp,)
        // tuple.
        let (db, tid, _) = setup();
        let plan = scan_plan(tid, vec![ColRef::new(0, GRP)], true);
        assert_eq!(execute(&plan, &db), [[1], [2], [3]]);
        assert_eq!(count(&plan, &db), 3);
        // Same through a wide (> 2 column) projection: (grp, grp, grp).
        let wide = scan_plan(
            tid,
            vec![
                ColRef::new(0, GRP),
                ColRef::new(0, GRP),
                ColRef::new(0, GRP),
            ],
            true,
        );
        assert_eq!(execute(&wide, &db), [[1, 1, 1], [2, 2, 2], [3, 3, 3]]);
        assert_eq!(count(&wide, &db), 3);
        assert_eq!(execute_page(&wide, &db, 1, 1), [[2, 2, 2]]);
    }

    #[test]
    fn exists_stops_before_enumerating() {
        let (db, tid, _) = setup();
        let plan = scan_plan(tid, vec![ColRef::new(0, VAL)], false);
        let mut cursor = Cursor::new(&plan, &db);
        assert!(cursor.advance_match());
        // Only the first candidate of the first (and only) stage has
        // been pulled.
        match &cursor.levels[0] {
            Cands::Scan { next, .. } => assert_eq!(*next, 1),
            Cands::Rows { .. } => panic!("expected a scan"),
        }
    }

    #[test]
    fn stepless_plan_emits_once() {
        let (db, _, _) = setup();
        let plan = Plan::default();
        assert_eq!(execute(&plan, &db), [Vec::<Value>::new()]);
        assert_eq!(count(&plan, &db), 1);
        assert!(exists(&plan, &db));
        assert_eq!(execute_page(&plan, &db, 1, 5), Vec::<Vec<Value>>::new());
    }

    /// Every plan shape the suspension tests sweep: scans, probes,
    /// joins, distinct narrow/wide projections, existence checks.
    fn checkpoint_plans(db: &Database, tid: TableId, idx: IndexId) -> Vec<Plan> {
        let _ = db;
        let join = Plan {
            alias_tables: vec![tid, tid],
            steps: vec![
                JoinStep {
                    alias: 0,
                    table: tid,
                    access: AccessPath::FullScan,
                    residual: vec![],
                    sets: vec![],
                },
                JoinStep {
                    alias: 1,
                    table: tid,
                    access: AccessPath::IndexRange {
                        index: idx,
                        eq: vec![Operand::Col(ColRef::new(0, GRP))],
                        lo: Some((false, Operand::Col(ColRef::new(0, VAL)))),
                        hi: None,
                    },
                    residual: vec![],
                    sets: vec![],
                },
            ],
            checks: vec![],
            projection: vec![ColRef::new(0, VAL), ColRef::new(1, VAL)],
            distinct: false,
            ..Plan::default()
        };
        let sub = Plan {
            alias_tables: vec![tid],
            steps: vec![JoinStep {
                alias: 0,
                table: tid,
                access: AccessPath::IndexRange {
                    index: idx,
                    eq: vec![Operand::Outer(ColRef::new(0, GRP))],
                    lo: Some((false, Operand::Const(11))),
                    hi: None,
                },
                residual: vec![],
                sets: vec![],
            }],
            checks: vec![],
            projection: vec![],
            distinct: false,
            ..Plan::default()
        };
        let mut checked = scan_plan(tid, vec![ColRef::new(0, GRP)], true);
        checked.checks.push(SubCheck {
            after_step: 0,
            negated: false,
            plan: sub,
        });
        vec![
            scan_plan(tid, vec![ColRef::new(0, VAL)], false),
            scan_plan(tid, vec![ColRef::new(0, GRP)], true), // narrow distinct
            scan_plan(
                tid,
                vec![
                    ColRef::new(0, GRP),
                    ColRef::new(0, GRP),
                    ColRef::new(0, GRP),
                ],
                true,
            ), // wide distinct
            join,
            checked,
            Plan::default(), // stepless
        ]
    }

    #[test]
    fn suspend_resume_at_every_row_boundary_is_exact() {
        let (db, tid, idx) = setup();
        for (pi, plan) in checkpoint_plans(&db, tid, idx).iter().enumerate() {
            let full = execute(plan, &db);
            // Split the enumeration at every boundary, including 0
            // (suspend before the first pull) and len (suspend after
            // the last row but before discovering exhaustion).
            for split in 0..=full.len() {
                let (head, ckpt) = execute_resume(plan, &db, None, split);
                assert_eq!(head, full[..split], "plan {pi} split {split}");
                let Some(ckpt) = ckpt else {
                    // Only possible when the head already exhausted
                    // the enumeration.
                    assert_eq!(split, full.len(), "plan {pi}");
                    continue;
                };
                let (tail, end) = execute_resume(plan, &db, Some(ckpt), usize::MAX);
                assert_eq!(tail, full[split..], "plan {pi} split {split}");
                assert!(end.is_none(), "plan {pi} split {split}");
            }
        }
    }

    #[test]
    fn resume_in_single_steps_matches_execute() {
        let (db, tid, idx) = setup();
        for (pi, plan) in checkpoint_plans(&db, tid, idx).iter().enumerate() {
            let full = execute(plan, &db);
            // Row-at-a-time resumption across fresh cursors each time.
            let mut got = Vec::new();
            let mut ckpt = None;
            loop {
                let (rows, next) = execute_resume(plan, &db, ckpt, 1);
                got.extend(rows);
                match next {
                    Some(c) => ckpt = Some(c),
                    None => break,
                }
            }
            assert_eq!(got, full, "plan {pi}");
        }
    }

    #[test]
    fn distinct_watermark_survives_suspension() {
        // Rows (1,10), (1,11), (1,12) project to one distinct (grp,)
        // tuple; suspending between them must not re-emit it.
        let (db, tid, _) = setup();
        let plan = scan_plan(tid, vec![ColRef::new(0, GRP)], true);
        let (head, ckpt) = execute_resume(&plan, &db, None, 1);
        assert_eq!(head, [[1]]);
        let ckpt = ckpt.unwrap();
        assert_eq!(ckpt.distinct_emitted(), 1);
        assert!(!ckpt.exhausted());
        let (tail, _) = execute_resume(&plan, &db, Some(ckpt), usize::MAX);
        assert_eq!(tail, [[2], [3]]);
    }

    #[test]
    fn suspending_an_exhausted_cursor_resumes_to_nothing() {
        let (db, tid, _) = setup();
        let plan = scan_plan(tid, vec![ColRef::new(0, VAL)], false);
        let mut cursor = Cursor::new(&plan, &db);
        while cursor.next().is_some() {}
        let ckpt = cursor.suspend();
        assert!(ckpt.exhausted());
        let (rows, end) = execute_resume(&plan, &db, Some(ckpt), 10);
        assert_eq!(rows, Vec::<Vec<Value>>::new());
        assert!(end.is_none());
    }

    #[test]
    #[should_panic(expected = "alias count")]
    fn resuming_against_a_different_plan_panics() {
        let (db, tid, idx) = setup();
        let one = scan_plan(tid, vec![ColRef::new(0, VAL)], false);
        let (_, ckpt) = execute_resume(&one, &db, None, 1);
        let other = &checkpoint_plans(&db, tid, idx)[3]; // two aliases
        let _ = Cursor::resume(other, &db, ckpt.unwrap());
    }

    #[test]
    fn observations_count_candidates_rows_and_probes() {
        let (db, tid, idx) = setup();
        let join = &checkpoint_plans(&db, tid, idx)[3]; // scan ⋈ probe
        let (rows, obs, nanos) = execute_analyzed(join, &db);
        assert_eq!(rows, execute(join, &db));
        assert_eq!(obs.len(), 2);
        assert_eq!(nanos.len(), 2);
        // Step 0 scans the table once: 6 candidates, all pass (no
        // residual conditions), so 6 observed rows and 0 evaluations.
        assert_eq!(
            obs[0],
            StepObs {
                probes: 1,
                candidates: 6,
                residual_evals: 0,
                rows_out: 6
            }
        );
        // Step 1 probes once per outer row and its observed rows are
        // exactly the join's output.
        assert_eq!(obs[1].probes, 6);
        assert_eq!(obs[1].rows_out as usize, rows.len());
        assert_eq!(obs[1].candidates, obs[1].rows_out);
    }

    #[test]
    fn residual_evaluations_are_counted_per_condition() {
        use crate::expr::Cond;
        use crate::value::Cmp;
        let (db, tid, _) = setup();
        let mut plan = scan_plan(tid, vec![ColRef::new(0, VAL)], false);
        plan.steps[0].residual.push(Cond {
            left: ColRef::new(0, GRP),
            cmp: Cmp::Eq,
            right: Operand::Const(1),
        });
        let (rows, obs, _) = execute_analyzed(&plan, &db);
        assert_eq!(rows.len(), 3);
        // One condition evaluated for each of the 6 candidates; 3 pass.
        assert_eq!(obs[0].candidates, 6);
        assert_eq!(obs[0].residual_evals, 6);
        assert_eq!(obs[0].rows_out, 3);
    }

    #[test]
    fn observations_accumulate_across_suspend_resume() {
        let (db, tid, idx) = setup();
        for (pi, plan) in checkpoint_plans(&db, tid, idx).iter().enumerate() {
            let (_, straight, _) = execute_analyzed(plan, &db);
            // Row-at-a-time sweep: every boundary suspends and resumes.
            let mut ckpt: Option<CursorCheckpoint> = None;
            let final_obs = loop {
                let (_, next) = execute_resume(plan, &db, ckpt.clone(), 1);
                match next {
                    Some(c) => ckpt = Some(c),
                    // Exhaustion drops the cursor; the last checkpoint
                    // before it carries the accumulated counts.
                    None => break ckpt.take(),
                }
            };
            // The checkpoint right before exhaustion already accounts
            // for every candidate pulled so far; compare the row/eval
            // totals (probes legitimately exceed the straight run by
            // the per-resume re-probes).
            if let Some(c) = final_obs {
                for (d, (got, want)) in c.step_observations().iter().zip(&straight).enumerate() {
                    assert!(
                        got.candidates <= want.candidates && got.rows_out <= want.rows_out,
                        "plan {pi} step {d}: suspended sweep overshot the straight run"
                    );
                    assert!(
                        got.probes >= want.probes,
                        "plan {pi} step {d}: resumes must re-probe"
                    );
                }
            }
            // And a single mid-way suspension, drained to the end,
            // lands on exactly the straight-run candidate totals.
            let (_, ckpt) = execute_resume(plan, &db, None, 1);
            if let Some(ckpt) = ckpt {
                let mut cursor = Cursor::resume(plan, &db, ckpt);
                while cursor.next().is_some() {}
                for (d, (got, want)) in cursor.step_observations().iter().zip(&straight).enumerate()
                {
                    assert_eq!(
                        (got.candidates, got.residual_evals, got.rows_out),
                        (want.candidates, want.residual_evals, want.rows_out),
                        "plan {pi} step {d}: split run diverged from straight run"
                    );
                }
            }
        }
    }

    #[test]
    fn timing_is_opt_in() {
        let (db, tid, _) = setup();
        let plan = scan_plan(tid, vec![ColRef::new(0, VAL)], false);
        let mut plain = Cursor::new(&plan, &db);
        while plain.next().is_some() {}
        assert!(plain.step_nanos().is_empty());
        let mut timed = Cursor::new(&plan, &db).with_timing();
        while timed.next().is_some() {}
        assert_eq!(timed.step_nanos().len(), 1);
    }

    #[test]
    fn empty_table_yields_nothing() {
        let mut db = Database::new();
        let tid = db.add_table("t", Table::new(Schema::new(&["grp", "val"])));
        let plan = scan_plan(tid, vec![ColRef::new(0, VAL)], false);
        assert!(!exists(&plan, &db));
        assert_eq!(count(&plan, &db), 0);
        assert_eq!(execute_page(&plan, &db, 0, 5), Vec::<Vec<Value>>::new());
    }

    #[test]
    fn constant_empty_plan_yields_nothing_everywhere() {
        let (db, _, _) = setup();
        let plan = Plan::constant_empty();
        // A steps-less plan normally emits the single all-bound row;
        // the flag must override that.
        assert_eq!(execute(&plan, &db), Vec::<Vec<Value>>::new());
        assert!(!exists(&plan, &db));
        assert_eq!(count(&plan, &db), 0);
        assert_eq!(execute_page(&plan, &db, 0, 5), Vec::<Vec<Value>>::new());
        let (rows, obs, nanos) = execute_analyzed(&plan, &db);
        assert!(rows.is_empty() && obs.is_empty() && nanos.is_empty());
        // Paged/resumed execution stays empty and reports exhaustion.
        let (rows, ckpt) = execute_resume(&plan, &db, None, 10);
        assert!(rows.is_empty());
        assert!(ckpt.is_none(), "a constant-empty cursor is exhausted");
        // A checkpoint restored over a constant-empty plan never runs.
        let live = Cursor::new(&plan, &db);
        let ckpt = live.suspend();
        let mut resumed = Cursor::resume(&plan, &db, ckpt);
        assert!(resumed.next().is_none());
    }
}
