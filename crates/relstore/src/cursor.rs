//! Pull-based plan execution with early termination.
//!
//! [`Cursor`] is the streaming form of the pipelined
//! index-nested-loop executor: instead of materializing the complete
//! match set, it maintains the join state of [`crate::plan::Plan`]
//! explicitly (one candidate source per pipeline stage) and yields one
//! projected tuple per [`Iterator::next`] call. Everything downstream
//! of it can therefore stop as early as it likes:
//!
//! * [`exists`] — stop at the very first result tuple (the
//!   Boolean-evaluation gap of Gottlob–Koch–Schulz's *Conjunctive
//!   Queries over Trees*);
//! * [`count`] — enumerate without materializing tuples (the common
//!   narrow projection dedups through a packed `u64` set);
//! * [`execute_page`] — skip `offset` tuples, keep `limit`, stop;
//! * [`execute`] — the classic collect-everything form, now a thin
//!   wrapper over the cursor.
//!
//! Output order and dedup semantics are identical to the historical
//! recursive executor: tuples appear in pipeline (depth-first join)
//! order, and `DISTINCT` plans deduplicate on the **projected** tuple —
//! never on the full wide binding — so the distinct set's size is
//! bounded by the output, not by alias-count × width.

use std::borrow::Cow;
use std::collections::HashSet;

use crate::catalog::Database;
use crate::plan::{resolve_bound, run_check, satisfies, Frame, Plan};
use crate::table::RowId;
use crate::value::Value;

/// Candidate rows of one opened pipeline stage.
enum Cands<'a> {
    /// Full table scan: the remaining physical row range.
    Scan { next: u32, end: u32 },
    /// Index probe: the matching (clustered-order) row slice.
    Rows { rows: &'a [RowId], pos: usize },
}

impl Cands<'_> {
    fn next(&mut self) -> Option<RowId> {
        match self {
            Cands::Scan { next, end } => {
                if next < end {
                    *next += 1;
                    Some(RowId(*next - 1))
                } else {
                    None
                }
            }
            Cands::Rows { rows, pos } => {
                let row = rows.get(*pos).copied();
                *pos += 1;
                row
            }
        }
    }
}

/// Where the state machine resumes.
enum Mode {
    /// Entering pipeline position `d`: run due checks, then either
    /// emit (`d == steps.len()`) or open stage `d`'s candidates.
    Enter(usize),
    /// Pull the next candidate of the already-open stage `d`.
    Advance(usize),
}

/// A streaming executor over one plan. Yields projected tuples (with
/// the plan's `DISTINCT` applied) on demand; dropping it abandons the
/// remaining enumeration at zero cost.
pub struct Cursor<'a> {
    plan: Cow<'a, Plan>,
    db: &'a Database,
    bindings: Vec<RowId>,
    levels: Vec<Cands<'a>>,
    primed: bool,
    done: bool,
    /// Narrow projections (≤ 2 columns, the common `(tid, id)`) dedup
    /// through a packed `u64`, keeping duplicate emissions
    /// allocation-free.
    narrow: bool,
    seen_narrow: HashSet<u64>,
    seen_wide: HashSet<Vec<Value>>,
}

impl<'a> Cursor<'a> {
    /// A cursor over a borrowed plan.
    pub fn new(plan: &'a Plan, db: &'a Database) -> Self {
        Self::build(Cow::Borrowed(plan), db)
    }

    /// A cursor that owns its plan — for iterators that must outlive
    /// the planning scope (e.g. an engine handing a streaming result
    /// to its caller).
    pub fn owning(plan: Plan, db: &'a Database) -> Self {
        Self::build(Cow::Owned(plan), db)
    }

    fn build(plan: Cow<'a, Plan>, db: &'a Database) -> Self {
        let bindings = vec![RowId(0); plan.alias_tables.len()];
        let narrow = plan.projection.len() <= 2;
        Cursor {
            plan,
            db,
            bindings,
            levels: Vec::new(),
            primed: false,
            done: false,
            narrow,
            seen_narrow: HashSet::new(),
            seen_wide: HashSet::new(),
        }
    }

    fn frame(&self) -> Frame<'_> {
        Frame {
            plan: &self.plan,
            bindings: &self.bindings,
            outer: None,
        }
    }

    /// Run the checks scheduled for pipeline position `depth`.
    fn checks_pass(&self, depth: usize) -> bool {
        self.plan
            .checks
            .iter()
            .filter(|c| c.due_at(depth))
            .all(|c| run_check(c, self.db, &self.frame()))
    }

    /// Open stage `d`: resolve its access path against the current
    /// bindings and return its candidate rows.
    fn open(&self, d: usize) -> Cands<'a> {
        let db = self.db;
        let step = &self.plan.steps[d];
        let table = db.table(step.table);
        match &step.access {
            crate::plan::AccessPath::FullScan => Cands::Scan {
                next: 0,
                end: table.num_rows() as u32,
            },
            crate::plan::AccessPath::IndexRange { index, eq, lo, hi } => {
                let frame = self.frame();
                let mut key_buf = [0 as Value; 8];
                debug_assert!(eq.len() <= key_buf.len());
                for (slot, &op) in key_buf.iter_mut().zip(eq.iter()) {
                    *slot = frame.resolve(db, op);
                }
                let lo_b = resolve_bound(&frame, db, lo);
                let hi_b = resolve_bound(&frame, db, hi);
                Cands::Rows {
                    rows: db
                        .index(*index)
                        .range(table, &key_buf[..eq.len()], lo_b, hi_b),
                    pos: 0,
                }
            }
        }
    }

    /// Advance to the next complete (pre-`DISTINCT`) binding. Returns
    /// `false` when the enumeration is exhausted. This is the
    /// iterative mirror of the recursive depth-first join: `Enter(d)`
    /// corresponds to calling `run(.., d, ..)`, `Advance(d)` to the
    /// candidate loop of stage `d`, and check failure to pruning the
    /// stage-`d-1` binding.
    fn advance_match(&mut self) -> bool {
        if self.done {
            return false;
        }
        let nsteps = self.plan.steps.len();
        let mut mode = if !self.primed {
            self.primed = true;
            Mode::Enter(0)
        } else if nsteps == 0 {
            // A stepless plan emits exactly once.
            self.done = true;
            return false;
        } else {
            Mode::Advance(nsteps - 1)
        };
        loop {
            match mode {
                Mode::Enter(d) => {
                    if !self.checks_pass(d) {
                        if d == 0 {
                            self.done = true;
                            return false;
                        }
                        mode = Mode::Advance(d - 1);
                    } else if d == nsteps {
                        return true;
                    } else {
                        let cands = self.open(d);
                        self.levels.push(cands);
                        mode = Mode::Advance(d);
                    }
                }
                Mode::Advance(d) => {
                    debug_assert_eq!(self.levels.len(), d + 1);
                    match self.levels[d].next() {
                        None => {
                            self.levels.pop();
                            if d == 0 {
                                self.done = true;
                                return false;
                            }
                            mode = Mode::Advance(d - 1);
                        }
                        Some(row) => {
                            let alias = self.plan.steps[d].alias;
                            self.bindings[alias] = row;
                            let ok = satisfies(&self.plan.steps[d], self.db, &self.frame());
                            if ok {
                                mode = Mode::Enter(d + 1);
                            }
                        }
                    }
                }
            }
        }
    }

    /// The projection of the current binding, packed into a `u64`
    /// (valid only for narrow projections).
    fn packed(&self) -> u64 {
        let frame = self.frame();
        let mut packed = 0u64;
        for &c in &self.plan.projection {
            packed = (packed << 32) | frame.value(self.db, c) as u64;
        }
        packed
    }

    /// Materialize the projection of the current binding.
    fn project(&self) -> Vec<Value> {
        let frame = self.frame();
        self.plan
            .projection
            .iter()
            .map(|&c| frame.value(self.db, c))
            .collect()
    }
}

impl Iterator for Cursor<'_> {
    type Item = Vec<Value>;

    fn next(&mut self) -> Option<Vec<Value>> {
        loop {
            if !self.advance_match() {
                return None;
            }
            if !self.plan.distinct {
                return Some(self.project());
            }
            if self.narrow {
                let key = self.packed();
                if self.seen_narrow.insert(key) {
                    return Some(self.project());
                }
            } else {
                let tuple = self.project();
                if self.seen_wide.insert(tuple.clone()) {
                    return Some(tuple);
                }
            }
        }
    }
}

/// Run `plan` to completion, returning projected tuples (distinct if
/// the plan says so, in first-encounter order).
pub fn execute(plan: &Plan, db: &Database) -> Vec<Vec<Value>> {
    Cursor::new(plan, db).collect()
}

/// Does `plan` produce at least one tuple? Stops at the first complete
/// binding — no projection, no dedup, no materialization.
pub fn exists(plan: &Plan, db: &Database) -> bool {
    Cursor::new(plan, db).advance_match()
}

/// Number of (distinct) result tuples, without materializing an output
/// vector. Narrow distinct projections count through the packed set;
/// only wide distinct projections hash materialized tuples (and drop
/// them immediately).
pub fn count(plan: &Plan, db: &Database) -> usize {
    let mut c = Cursor::new(plan, db);
    let mut n = 0;
    if !plan.distinct {
        while c.advance_match() {
            n += 1;
        }
    } else if c.narrow {
        while c.advance_match() {
            let key = c.packed();
            if c.seen_narrow.insert(key) {
                n += 1;
            }
        }
    } else {
        while c.advance_match() {
            let tuple = c.project();
            if c.seen_wide.insert(tuple) {
                n += 1;
            }
        }
    }
    n
}

/// The `[offset, offset + limit)` slice of `execute`'s output, stopping
/// the enumeration as soon as the page is filled. Exactly equal to
/// `execute(plan, db)[offset..][..limit]` (clamped at the end).
pub fn execute_page(plan: &Plan, db: &Database, offset: usize, limit: usize) -> Vec<Vec<Value>> {
    if limit == 0 {
        return Vec::new();
    }
    Cursor::new(plan, db).skip(offset).take(limit).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Database, IndexId, TableId};
    use crate::expr::{ColRef, Operand};
    use crate::plan::{AccessPath, JoinStep, Plan};
    use crate::schema::{ColId, Schema};
    use crate::table::Table;

    const GRP: ColId = ColId(0);
    const VAL: ColId = ColId(1);

    /// The same toy table as the plan tests: (grp, val).
    fn setup() -> (Database, TableId, IndexId) {
        let mut t = Table::new(Schema::new(&["grp", "val"]));
        for row in [[1, 10], [1, 11], [1, 12], [2, 20], [2, 21], [3, 30]] {
            t.push_row(&row);
        }
        t.cluster_by(&[ColId(0), ColId(1)]);
        let mut db = Database::new();
        let tid = db.add_table("t", t);
        let idx = db.add_index(tid, "by_grp_val", vec![ColId(0), ColId(1)]);
        (db, tid, idx)
    }

    fn scan_plan(tid: TableId, projection: Vec<ColRef>, distinct: bool) -> Plan {
        Plan {
            alias_tables: vec![tid],
            steps: vec![JoinStep {
                alias: 0,
                table: tid,
                access: AccessPath::FullScan,
                residual: vec![],
                sets: vec![],
            }],
            checks: vec![],
            projection,
            distinct,
            ..Plan::default()
        }
    }

    #[test]
    fn cursor_streams_execute_exactly() {
        let (db, tid, idx) = setup();
        // Self-join pairs, same shape as the plan test.
        let plan = Plan {
            alias_tables: vec![tid, tid],
            steps: vec![
                JoinStep {
                    alias: 0,
                    table: tid,
                    access: AccessPath::FullScan,
                    residual: vec![],
                    sets: vec![],
                },
                JoinStep {
                    alias: 1,
                    table: tid,
                    access: AccessPath::IndexRange {
                        index: idx,
                        eq: vec![Operand::Col(ColRef::new(0, GRP))],
                        lo: Some((false, Operand::Col(ColRef::new(0, VAL)))),
                        hi: None,
                    },
                    residual: vec![],
                    sets: vec![],
                },
            ],
            checks: vec![],
            projection: vec![ColRef::new(0, VAL), ColRef::new(1, VAL)],
            distinct: false,
            ..Plan::default()
        };
        let full = execute(&plan, &db);
        let streamed: Vec<Vec<Value>> = Cursor::new(&plan, &db).collect();
        assert_eq!(streamed, full);
        assert_eq!(count(&plan, &db), full.len());
        assert!(exists(&plan, &db));
    }

    #[test]
    fn pages_are_prefix_slices() {
        let (db, tid, _) = setup();
        let plan = scan_plan(tid, vec![ColRef::new(0, VAL)], false);
        let full = execute(&plan, &db);
        assert_eq!(full.len(), 6);
        for offset in 0..8 {
            for limit in 0..8 {
                let page = execute_page(&plan, &db, offset, limit);
                let want: Vec<Vec<Value>> = full.iter().skip(offset).take(limit).cloned().collect();
                assert_eq!(page, want, "offset {offset} limit {limit}");
            }
        }
    }

    #[test]
    fn distinct_dedups_on_the_projected_tuple() {
        // Regression pin: duplicate *projected* tuples arising from
        // distinct wide bindings must collapse. Rows (1,10), (1,11),
        // (1,12) are three distinct bindings but one projected (grp,)
        // tuple.
        let (db, tid, _) = setup();
        let plan = scan_plan(tid, vec![ColRef::new(0, GRP)], true);
        assert_eq!(execute(&plan, &db), [[1], [2], [3]]);
        assert_eq!(count(&plan, &db), 3);
        // Same through a wide (> 2 column) projection: (grp, grp, grp).
        let wide = scan_plan(
            tid,
            vec![
                ColRef::new(0, GRP),
                ColRef::new(0, GRP),
                ColRef::new(0, GRP),
            ],
            true,
        );
        assert_eq!(execute(&wide, &db), [[1, 1, 1], [2, 2, 2], [3, 3, 3]]);
        assert_eq!(count(&wide, &db), 3);
        assert_eq!(execute_page(&wide, &db, 1, 1), [[2, 2, 2]]);
    }

    #[test]
    fn exists_stops_before_enumerating() {
        let (db, tid, _) = setup();
        let plan = scan_plan(tid, vec![ColRef::new(0, VAL)], false);
        let mut cursor = Cursor::new(&plan, &db);
        assert!(cursor.advance_match());
        // Only the first candidate of the first (and only) stage has
        // been pulled.
        match &cursor.levels[0] {
            Cands::Scan { next, .. } => assert_eq!(*next, 1),
            Cands::Rows { .. } => panic!("expected a scan"),
        }
    }

    #[test]
    fn stepless_plan_emits_once() {
        let (db, _, _) = setup();
        let plan = Plan::default();
        assert_eq!(execute(&plan, &db), [Vec::<Value>::new()]);
        assert_eq!(count(&plan, &db), 1);
        assert!(exists(&plan, &db));
        assert_eq!(execute_page(&plan, &db, 1, 5), Vec::<Vec<Value>>::new());
    }

    #[test]
    fn empty_table_yields_nothing() {
        let mut db = Database::new();
        let tid = db.add_table("t", Table::new(Schema::new(&["grp", "val"])));
        let plan = scan_plan(tid, vec![ColRef::new(0, VAL)], false);
        assert!(!exists(&plan, &db));
        assert_eq!(count(&plan, &db), 0);
        assert_eq!(execute_page(&plan, &db, 0, 5), Vec::<Vec<Value>>::new());
    }
}
