//! The conjunctive planner: logical [`ConjQuery`] → physical
//! [`Plan`].
//!
//! Strategy (mirroring what the paper's commercial RDBMS does with the
//! schema of §5):
//!
//! 1. **Equality closure** — column equalities (`n2.tid = n1.tid`,
//!    `n1.tid = n0.tid`) are closed under transitivity, so a join step
//!    can always key its index probe off *any* bound alias of the
//!    equivalence class, not just its syntactic neighbour. Without
//!    this, reordering the tid-chained aliases of an LPath query would
//!    degrade probes into scans.
//! 2. **Join order** — greedy smallest-estimated-cardinality first,
//!    restricted to aliases connected to the already-bound set when
//!    possible. Estimates come from the catalog's frequency statistics
//!    on equality-with-constant conditions (`name = 'NP'`,
//!    `value = 'saw'`); correlated equalities get a strong fixed
//!    discount. A syntactic (query order) mode exists for the
//!    join-order ablation benchmark.
//! 3. **Access path** — per step, every index is scored by the
//!    estimated rows its best probe would return (equality prefix from
//!    available conditions, then a range on the next key column);
//!    the cheapest wins. Conditions consumed by the access path are
//!    removed from the residual.
//! 4. **Subqueries** — planned recursively; each becomes a
//!    [`SubCheck`] scheduled at the earliest pipeline position where
//!    all of its outer correlations are bound.

use crate::catalog::Database;
use crate::expr::{ColRef, Cond, Operand};
use crate::plan::{AccessPath, JoinStep, Plan, SubCheck};
use crate::sql::ConjQuery;
use crate::value::Cmp;

/// Join-order policy.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum JoinOrder {
    /// Greedy by estimated cardinality (the default).
    #[default]
    GreedyStats,
    /// Bind aliases in query (syntactic) order — the ablation baseline.
    Syntactic,
}

/// What the plan should optimize for.
///
/// `AllRows` is the classical objective: the cheapest *complete*
/// enumeration, which the greedy order approximates by binding the
/// smallest estimated input first. `FirstRows(k)` instead minimizes the
/// estimated cost of the first `k` output tuples — the objective of an
/// interactive, page-1-dominated workload. A first-rows plan prefers to
/// anchor the pipeline on the **output alias** when that is
/// competitive: scanning the output alias in index (document) order
/// means tuples emerge roughly in document order, so a paged executor
/// can stop after a bounded prefix instead of enumerating and sorting
/// everything. Both goals produce plans with identical result sets —
/// only cost (and emission order) may differ.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum OptGoal {
    /// Minimize estimated total enumeration cost (the default).
    #[default]
    AllRows,
    /// Minimize the estimated cost of the first `k` tuples.
    FirstRows(usize),
}

/// Planner configuration.
#[derive(Copy, Clone, Debug, Default)]
pub struct PlannerConfig {
    /// Join-order policy.
    pub order: JoinOrder,
    /// Optimization goal (all rows vs first rows).
    pub goal: OptGoal,
}

/// Union-find over `(alias, column)` pairs, built from `Eq`
/// column-column conditions.
struct EqClasses {
    members: Vec<ColRef>,
    parent: Vec<usize>,
}

impl EqClasses {
    fn build(q: &ConjQuery) -> Self {
        let mut members: Vec<ColRef> = Vec::new();
        let index = |members: &mut Vec<ColRef>, r: ColRef| -> usize {
            match members.iter().position(|&m| m == r) {
                Some(i) => i,
                None => {
                    members.push(r);
                    members.len() - 1
                }
            }
        };
        let mut pairs = Vec::new();
        for c in &q.conds {
            if c.cmp != Cmp::Eq {
                continue;
            }
            if let Operand::Col(r) = c.right {
                let a = index(&mut members, c.left);
                let b = index(&mut members, r);
                pairs.push((a, b));
            }
        }
        let mut parent: Vec<usize> = (0..members.len()).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = x;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        for (a, b) in pairs {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[ra] = rb;
            }
        }
        // Flatten.
        for i in 0..parent.len() {
            let r = find(&mut parent, i);
            parent[i] = r;
        }
        EqClasses { members, parent }
    }

    fn class_of(&self, r: ColRef) -> Option<usize> {
        self.members
            .iter()
            .position(|&m| m == r)
            .map(|i| self.parent[i])
    }

    /// Members equal to `r` (excluding `r` itself).
    fn peers(&self, r: ColRef) -> impl Iterator<Item = ColRef> + '_ {
        let class = self.class_of(r);
        self.members
            .iter()
            .enumerate()
            .filter(move |&(i, &m)| Some(self.parent[i]) == class && m != r)
            .map(|(_, &m)| m)
    }

    /// Are two aliases linked through any column equality?
    fn aliases_linked(&self, a: usize, b: usize) -> bool {
        self.members.iter().enumerate().any(|(i, m)| {
            m.alias == a
                && self
                    .members
                    .iter()
                    .enumerate()
                    .any(|(j, n)| n.alias == b && self.parent[i] == self.parent[j])
        })
    }
}

/// Compile `q` against `db`.
pub fn plan(db: &Database, q: &ConjQuery, cfg: &PlannerConfig) -> Plan {
    let classes = EqClasses::build(q);
    let est: Vec<usize> = (0..q.aliases.len()).map(|a| estimate(db, q, a)).collect();
    let pen: Vec<usize> = (0..q.aliases.len())
        .map(|a| chunk_penalty(db, q, a))
        .collect();
    let order = match cfg.order {
        JoinOrder::Syntactic => (0..q.aliases.len()).collect::<Vec<_>>(),
        JoinOrder::GreedyStats => {
            let seed = match cfg.goal {
                OptGoal::AllRows => None,
                OptGoal::FirstRows(k) => first_rows_anchor(q, &est, k, &pen),
            };
            greedy_order(q, &classes, &est, seed)
        }
    };
    let (estimated_startup, estimated_total, estimated_result) =
        plan_estimates(q, &classes, &est, &order, &pen);

    let mut bound: Vec<bool> = vec![false; q.aliases.len()];
    let mut consumed: Vec<bool> = vec![false; q.conds.len()];
    let mut steps = Vec::with_capacity(order.len());
    for &alias in &order {
        let step = build_step(db, q, alias, &bound, &mut consumed, &classes);
        bound[alias] = true;
        steps.push(step);
    }

    // Any condition not consumed by an access path and not oriented into
    // a residual would be silently dropped — assert none remain.
    debug_assert!(
        consumed.iter().all(|&c| c),
        "planner left conditions unconsumed"
    );

    // Position of each alias in the pipeline, for subquery scheduling.
    let mut position = vec![0usize; q.aliases.len()];
    for (i, &a) in order.iter().enumerate() {
        position[a] = i;
    }

    // Set-membership conditions filter at the step binding their alias.
    for ic in &q.in_conds {
        steps[position[ic.col.alias]].sets.push(ic.clone());
    }
    let checks = q
        .subqueries
        .iter()
        .map(|sub| {
            let after_step = outer_refs(&sub.query)
                .into_iter()
                .map(|a| position[a])
                .max()
                .unwrap_or(usize::MAX); // uncorrelated: check up front
            SubCheck {
                after_step,
                negated: sub.negated,
                plan: plan(db, &sub.query, cfg),
            }
        })
        .collect();

    Plan {
        alias_tables: q.aliases.clone(),
        steps,
        checks,
        projection: q.projection.clone(),
        distinct: q.distinct,
        dedup_free: q.dedup_free,
        estimated_startup,
        estimated_total,
        estimated_result,
        const_empty: false,
    }
}

/// Aliases of the *outer* query referenced by `q`'s conditions (its own
/// subqueries' `Outer` operands resolve against `q`, so they do not
/// escape).
fn outer_refs(q: &ConjQuery) -> Vec<usize> {
    let mut v: Vec<usize> = q
        .conds
        .iter()
        .filter_map(|c| match c.right {
            Operand::Outer(r) => Some(r.alias),
            _ => None,
        })
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// Estimated number of rows alias `a` contributes before joins:
/// the tightest equality-with-constant estimate available.
fn estimate(db: &Database, q: &ConjQuery, a: usize) -> usize {
    let table = q.aliases[a];
    let rows = db.table(table).num_rows();
    let mut best = rows;
    for c in &q.conds {
        if c.left.alias != a || c.cmp != Cmp::Eq {
            continue;
        }
        match c.right {
            Operand::Const(v) => {
                if let Some(stats) = db.stats(table) {
                    best = best.min(stats.est_eq(c.left.col, v));
                }
            }
            // A correlated equality binds this alias to one value of
            // the outer row at execution time — typically a point or
            // near-point probe. Without correlation statistics, apply a
            // strong fixed discount so correlated aliases (in
            // particular id-mirrors) are bound early.
            Operand::Outer(_) => best /= 1_000,
            Operand::Col(_) => {}
        }
    }
    // IN-set conditions: the alias contributes at most the sum of the
    // per-value estimates.
    for ic in &q.in_conds {
        if ic.col.alias != a {
            continue;
        }
        if let Some(stats) = db.stats(table) {
            let sum: usize = ic
                .values()
                .iter()
                .map(|&v| stats.est_eq(ic.col.col, v))
                .sum();
            best = best.min(sum);
        }
    }
    best
}

/// How alias `a` relates to the already-bound set: `0` — joined by a
/// *direct* condition; `1` — only transitively, through an equality
/// class (typically the tid chain); `2` — not at all.
fn connectivity(q: &ConjQuery, classes: &EqClasses, bound: &[bool], a: usize) -> usize {
    let direct = q.conds.iter().any(|c| {
        let mentions_a = c.left.alias == a || matches!(c.right, Operand::Col(r) if r.alias == a);
        let mentions_bound = (c.left.alias != a && bound[c.left.alias])
            || matches!(c.right, Operand::Col(r) if r.alias != a && bound[r.alias]);
        mentions_a && mentions_bound
    });
    if direct {
        0
    } else if (0..bound.len()).any(|b| b != a && bound[b] && classes.aliases_linked(a, b)) {
        1
    } else {
        2
    }
}

/// Greedy connected ordering by cardinality estimate. `seed`, when
/// given, is forced to bind first (the first-rows anchor), and the
/// completion prefers *directly* conditioned aliases over
/// closure-only ones: an anchor in the middle of a structural chain
/// must be extended along the chain, not jumped across — a
/// closure-only join degenerates to a same-tree cross product.
/// (Unseeded orders keep the historical behavior: any connectivity
/// qualifies equally, selectivity decides.)
fn greedy_order(
    q: &ConjQuery,
    classes: &EqClasses,
    est: &[usize],
    seed: Option<usize>,
) -> Vec<usize> {
    let n = q.aliases.len();
    let prefer_direct = seed.is_some();
    let mut order = Vec::with_capacity(n);
    let mut bound = vec![false; n];
    if let Some(s) = seed {
        bound[s] = true;
        order.push(s);
    }
    while order.len() < n {
        // Candidates connected to the bound set get priority;
        // otherwise any unbound alias qualifies.
        let pick = (0..n)
            .filter(|&a| !bound[a])
            .min_by_key(|&a| {
                let class = if order.is_empty() {
                    0
                } else {
                    let c = connectivity(q, classes, &bound, a);
                    if prefer_direct {
                        c
                    } else {
                        // Historical two-way split: connected or not.
                        usize::from(c == 2)
                    }
                };
                (class, est[a], a)
            })
            .expect("an unbound alias remains");
        bound[pick] = true;
        order.push(pick);
    }
    order
}

/// Penalty factor for first-rows anchors that are *not* the output
/// alias: their tuples emerge out of document order, so a paged
/// executor must evaluate and sort whole corpus chunks (and rescan the
/// anchor's candidates once per chunk round) instead of streaming a
/// document-ordered prefix.
const CHUNK_PENALTY: usize = 2;

/// The chunked-emission penalty for anchoring the pipeline on alias
/// `a`, refined by per-tree match-density statistics when the catalog
/// carries them ([`crate::stats::TableStats::group_spread`], fed by
/// the aggregation layer's per-tree tables): a chunked executor pays
/// one sort-and-rescan round per *tree chunk* the anchor's candidates
/// span, so an anchor value confined to a few trees is barely worse
/// than document-ordered emission, while a corpus-wide value pays up
/// to double the flat penalty. The spread of the alias's **tightest**
/// constant equality governs (that is the probe the access path will
/// key on); without grouped statistics the flat [`CHUNK_PENALTY`]
/// keeps the historical model.
fn chunk_penalty(db: &Database, q: &ConjQuery, a: usize) -> usize {
    let table = q.aliases[a];
    let Some(stats) = db.stats(table) else {
        return CHUNK_PENALTY;
    };
    let mut tightest: Option<(usize, u32, u32)> = None;
    for c in &q.conds {
        if c.left.alias != a || c.cmp != Cmp::Eq {
            continue;
        }
        let Operand::Const(v) = c.right else { continue };
        let Some((gw, gt)) = stats.group_spread(c.left.col, v) else {
            continue;
        };
        let e = stats.est_eq(c.left.col, v);
        let tighter = match tightest {
            None => true,
            Some((be, _, _)) => e < be,
        };
        if tighter {
            tightest = Some((e, gw, gt));
        }
    }
    match tightest {
        Some((_, gw, gt)) if gt > 0 => {
            // Map the spanned-tree fraction onto [1, 2 · CHUNK_PENALTY],
            // rounding to nearest; a third of the corpus lands on the
            // flat penalty.
            let span = (2 * CHUNK_PENALTY - 1) * gw as usize;
            1 + (span + gt as usize / 2) / gt as usize
        }
        _ => CHUNK_PENALTY,
    }
}

/// Estimated cost of the first `k` output tuples when the pipeline is
/// anchored on alias `a`.
///
/// Model: the join only filters, so the result size is roughly
/// `m = min_a est[a]`. Scanning anchor `a` in index order, matches are
/// spread across its `est[a]` rows, so the first `min(k, m)` tuples
/// cost about `est[a] · min(k, m) / m` candidate rows, each paying one
/// index probe per remaining alias. Non-output anchors additionally pay
/// their [`chunk_penalty`] for chunked (sort-and-rescan) emission.
fn startup_cost(est: &[usize], k: usize, a: usize, out: Option<usize>, pen: &[usize]) -> usize {
    let n = est.len().max(1);
    let m = est.iter().copied().min().unwrap_or(0).max(1);
    let k = k.max(1);
    let rows = est[a].saturating_mul(k.min(m)) / m;
    let cost = rows.saturating_mul(n).max(1);
    if Some(a) == out {
        cost
    } else {
        cost.saturating_mul(pen.get(a).copied().unwrap_or(CHUNK_PENALTY))
    }
}

/// The anchor (first bound alias) minimizing [`startup_cost`], ties
/// broken toward the output alias (document-order emission), then the
/// smaller estimate, then the alias id.
fn first_rows_anchor(q: &ConjQuery, est: &[usize], k: usize, pen: &[usize]) -> Option<usize> {
    let out = q.projection.first().map(|c| c.alias);
    (0..q.aliases.len()).min_by_key(|&a| {
        (
            startup_cost(est, k, a, out, pen),
            usize::from(Some(a) != out),
            est[a],
            a,
        )
    })
}

/// The plan-level cost estimates surfaced on [`Plan`]:
/// `(startup, total, result)`.
///
/// * `startup` — [`startup_cost`] of the chosen anchor for `k = 1`
///   (comparable across goals: it includes the chunked-emission
///   penalty for plans not anchored on the output alias);
/// * `total` — a crude left-deep enumeration estimate: the anchor
///   contributes its full input, each later alias multiplies the
///   intermediate size by its fan-out (1 when it joins the bound set
///   through an equality — near-point probes — else its own input);
/// * `result` — the smallest alias estimate, the "joins only filter"
///   proxy for the output cardinality.
fn plan_estimates(
    q: &ConjQuery,
    classes: &EqClasses,
    est: &[usize],
    order: &[usize],
    pen: &[usize],
) -> (usize, usize, usize) {
    if order.is_empty() {
        // A stepless plan emits exactly one (empty) tuple.
        return (1, 1, 1);
    }
    let out = q.projection.first().map(|c| c.alias);
    let startup = startup_cost(est, 1, order[0], out, pen);
    let mut bound = vec![false; q.aliases.len()];
    let mut inter = 1usize;
    let mut total = 0usize;
    for (i, &a) in order.iter().enumerate() {
        let fan = if i == 0 || connectivity(q, classes, &bound, a) == 2 {
            est[a]
        } else {
            1
        };
        inter = inter.saturating_mul(fan.max(1));
        total = total.saturating_add(inter);
        bound[a] = true;
    }
    let result = est.iter().copied().min().unwrap_or(1);
    (startup, total, result)
}

/// A structural hash of `plan`'s shareable anchor — the batch
/// scheduler's bucket key for common-subplan sharing. Two plans with
/// equal signatures *probably* enumerate the same anchor candidate
/// set; the full [`crate::multi::AnchorKey`] is the equality guard
/// (use [`crate::multi::group_by_anchor`] when grouping). `None` when
/// the plan has no shareable anchor: constant-empty or zero-step
/// plans, or an anchor keyed by non-constant operands.
pub fn plan_signature(plan: &Plan) -> Option<u64> {
    use std::hash::{Hash, Hasher};
    let key = crate::multi::anchor_key(plan)?;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    Some(h.finish())
}

/// An *exact* structural identity for the whole plan: two plans with
/// equal fingerprints have equal steps, access paths, residuals,
/// checks, projection and DISTINCT mode, so they produce identical
/// output — the batch scheduler executes one and copies. Derived from
/// the structure's canonical debug rendering (every field, recursively),
/// so — unlike the 64-bit [`plan_signature`] bucket — equality here is
/// never a false positive. Distinct surface queries routinely collapse
/// to one fingerprint (e.g. a child-axis and a descendant-axis edge
/// the planner keys through the same interval probe).
pub fn plan_fingerprint(plan: &Plan) -> String {
    format!("{plan:?}")
}

/// An available condition for a step: either an original query
/// condition (with its index, for `consumed` bookkeeping) or one
/// synthesized from the equality closure.
struct Avail {
    /// `Some(i)` for `q.conds[i]`, `None` for synthesized.
    source: Option<usize>,
    cond: Cond,
}

/// Build the join step binding `alias`, choosing the cheapest access
/// path among the table's indexes.
fn build_step(
    db: &Database,
    q: &ConjQuery,
    alias: usize,
    bound: &[bool],
    consumed: &mut [bool],
    classes: &EqClasses,
) -> JoinStep {
    let table = q.aliases[alias];
    let rows = db.table(table).num_rows();

    // Conditions usable now: oriented toward `alias`, with the other
    // side a constant, an outer reference, or an already-bound alias.
    let mut avail: Vec<Avail> = Vec::new();
    for (i, c) in q.conds.iter().enumerate() {
        if consumed[i] {
            continue;
        }
        if let Some(o) = c.oriented_toward(alias) {
            let ready = match o.right {
                Operand::Const(_) | Operand::Outer(_) => true,
                Operand::Col(r) => r.alias == alias || bound[r.alias],
            };
            if ready {
                avail.push(Avail {
                    source: Some(i),
                    cond: o,
                });
            }
        }
    }
    // Synthesize equalities through the closure: for each column of
    // this alias that belongs to a class with a bound member, an
    // equality against that member is implied.
    let schema_len = db.table(table).schema().len();
    for col_idx in 0..schema_len {
        let here = ColRef::new(alias, crate::schema::ColId(col_idx as u16));
        let already = avail.iter().any(|a| {
            a.cond.left == here
                && a.cond.cmp == Cmp::Eq
                && !matches!(a.cond.right, Operand::Col(r) if r.alias == alias)
        });
        if already {
            continue;
        }
        if let Some(peer) = classes
            .peers(here)
            .find(|p| p.alias != alias && bound[p.alias])
        {
            avail.push(Avail {
                source: None,
                cond: Cond::between(here, Cmp::Eq, peer),
            });
        }
    }

    let eq_usable = |a: &Avail, col: crate::schema::ColId| {
        a.cond.left.col == col
            && a.cond.cmp == Cmp::Eq
            && !matches!(a.cond.right, Operand::Col(r) if r.alias == alias)
    };
    let range_usable = |a: &Avail, col: crate::schema::ColId| {
        a.cond.left.col == col
            && matches!(a.cond.cmp, Cmp::Lt | Cmp::Le | Cmp::Gt | Cmp::Ge | Cmp::Eq)
            && !matches!(a.cond.right, Operand::Col(r) if r.alias == alias)
    };

    // Score every index by the estimated rows of its best probe.
    let mut best: Option<(crate::catalog::IndexId, usize, bool, usize)> = None;
    for idx_id in db.indexes_on(table) {
        let key = db.index(idx_id).key();
        let mut eq_len = 0;
        let mut est = rows;
        for &kc in key {
            let Some(a) = avail.iter().find(|a| eq_usable(a, kc)) else {
                break;
            };
            eq_len += 1;
            est = match a.cond.right {
                Operand::Const(v) => db
                    .stats(table)
                    .map_or(est / 10, |s| est.min(s.est_eq(kc, v))),
                // Correlated or bound-column probes: assume a strong
                // but not perfect reduction per key column.
                _ => (est / 50).max(1),
            };
        }
        let has_range = eq_len < key.len() && avail.iter().any(|a| range_usable(a, key[eq_len]));
        if has_range {
            est = (est / 4).max(1);
        }
        if eq_len == 0 && !has_range {
            continue;
        }
        let better = match best {
            None => true,
            Some((_, be, br, bcost)) => {
                est < bcost || (est == bcost && (eq_len, has_range) > (be, br))
            }
        };
        if better {
            best = Some((idx_id, eq_len, has_range, est));
        }
    }

    // Positions in `avail` consumed by the access path.
    let mut used: Vec<usize> = Vec::new();
    let access = match best {
        None => AccessPath::FullScan,
        Some((idx_id, eq_len, has_range, _)) => {
            let key = db.index(idx_id).key();
            let mut eq = Vec::with_capacity(eq_len);
            for &kc in &key[..eq_len] {
                let (pos, a) = avail
                    .iter()
                    .enumerate()
                    .find(|(pos, a)| !used.contains(pos) && eq_usable(a, kc))
                    .expect("scored equality exists");
                eq.push(a.cond.right);
                used.push(pos);
            }
            let (mut lo, mut hi) = (None, None);
            if has_range {
                let rc = key[eq_len];
                for (pos, a) in avail.iter().enumerate() {
                    if used.contains(&pos) || !range_usable(a, rc) {
                        continue;
                    }
                    match a.cond.cmp {
                        // Equality on the range column: closed point
                        // interval (only if no bound taken yet — first
                        // wins, rest stay residual).
                        Cmp::Eq if lo.is_none() && hi.is_none() => {
                            lo = Some((true, a.cond.right));
                            hi = Some((true, a.cond.right));
                            used.push(pos);
                        }
                        Cmp::Eq => {}
                        Cmp::Ge if lo.is_none() => {
                            lo = Some((true, a.cond.right));
                            used.push(pos);
                        }
                        Cmp::Gt if lo.is_none() => {
                            lo = Some((false, a.cond.right));
                            used.push(pos);
                        }
                        Cmp::Le if hi.is_none() => {
                            hi = Some((true, a.cond.right));
                            used.push(pos);
                        }
                        Cmp::Lt if hi.is_none() => {
                            hi = Some((false, a.cond.right));
                            used.push(pos);
                        }
                        _ => {}
                    }
                }
            }
            AccessPath::IndexRange {
                index: idx_id,
                eq,
                lo,
                hi,
            }
        }
    };

    // Original conditions not consumed by the access path stay as
    // residual filters; synthesized equalities are implied by the
    // originals, so dropping unused ones is sound.
    let mut residual = Vec::new();
    for (pos, a) in avail.iter().enumerate() {
        if let Some(ci) = a.source {
            if !used.contains(&pos) {
                residual.push(a.cond);
            }
            consumed[ci] = true;
        }
    }

    JoinStep {
        alias,
        table,
        access,
        residual,
        sets: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TableId;
    use crate::cursor::execute;
    use crate::expr::ColRef;
    use crate::schema::{ColId, Schema};
    use crate::table::Table;

    const GRP: ColId = ColId(0);
    const VAL: ColId = ColId(1);

    fn setup() -> (Database, TableId) {
        let mut t = Table::new(Schema::new(&["grp", "val"]));
        for g in 0..10u32 {
            for v in 0..=g {
                t.push_row(&[g, v]);
            }
        }
        t.cluster_by(&[GRP, VAL]);
        let mut db = Database::new();
        let tid = db.add_table("t", t);
        db.add_index(tid, "by_grp_val", vec![GRP, VAL]);
        db.add_index(tid, "by_val", vec![VAL]);
        db.analyze(tid, &[GRP, VAL]);
        (db, tid)
    }

    fn exec_both(db: &Database, q: &ConjQuery) -> (Vec<Vec<u32>>, Vec<Vec<u32>>) {
        let p1 = plan(db, q, &PlannerConfig::default());
        let p2 = plan(
            db,
            q,
            &PlannerConfig {
                order: JoinOrder::Syntactic,
                ..Default::default()
            },
        );
        let mut a = execute(&p1, db);
        let mut b = execute(&p2, db);
        a.sort();
        b.sort();
        (a, b)
    }

    #[test]
    fn single_alias_const_filter_uses_index() {
        let (db, tid) = setup();
        let mut q = ConjQuery::default();
        let a = q.add_alias(tid);
        q.conds
            .push(Cond::against_const(ColRef::new(a, GRP), Cmp::Eq, 4));
        q.projection.push(ColRef::new(a, VAL));
        let p = plan(&db, &q, &PlannerConfig::default());
        assert!(matches!(p.steps[0].access, AccessPath::IndexRange { .. }));
        assert!(p.steps[0].residual.is_empty());
        let (got, got_syn) = exec_both(&db, &q);
        assert_eq!(got, (0..5).map(|v| vec![v]).collect::<Vec<_>>());
        assert_eq!(got, got_syn);
    }

    #[test]
    fn join_orders_agree_on_results() {
        let (db, tid) = setup();
        // pairs (a, b): a.grp = 9, b.grp = a.val, b.val = 0
        let mut q = ConjQuery::default();
        let a = q.add_alias(tid);
        let b = q.add_alias(tid);
        q.conds
            .push(Cond::against_const(ColRef::new(a, GRP), Cmp::Eq, 9));
        q.conds.push(Cond::between(
            ColRef::new(b, GRP),
            Cmp::Eq,
            ColRef::new(a, VAL),
        ));
        q.conds
            .push(Cond::against_const(ColRef::new(b, VAL), Cmp::Eq, 0));
        q.projection.push(ColRef::new(a, VAL));
        q.projection.push(ColRef::new(b, GRP));
        q.distinct = true;
        let (got, got_syn) = exec_both(&db, &q);
        assert_eq!(got.len(), 10);
        assert_eq!(got, got_syn);
        for row in &got {
            assert_eq!(row[0], row[1]);
        }
    }

    #[test]
    fn greedy_starts_with_most_selective_alias() {
        let (db, tid) = setup();
        let mut q = ConjQuery::default();
        let a = q.add_alias(tid); // unselective: no conds
        let b = q.add_alias(tid); // selective: grp = 0 (1 row)
        q.conds
            .push(Cond::against_const(ColRef::new(b, GRP), Cmp::Eq, 0));
        q.conds.push(Cond::between(
            ColRef::new(a, GRP),
            Cmp::Eq,
            ColRef::new(b, VAL),
        ));
        q.projection.push(ColRef::new(a, VAL));
        let p = plan(&db, &q, &PlannerConfig::default());
        assert_eq!(p.steps[0].alias, b);
        let p_syn = plan(
            &db,
            &q,
            &PlannerConfig {
                order: JoinOrder::Syntactic,
                ..Default::default()
            },
        );
        assert_eq!(p_syn.steps[0].alias, a);
    }

    #[test]
    fn range_conditions_become_index_bounds() {
        let (db, tid) = setup();
        let mut q = ConjQuery::default();
        let a = q.add_alias(tid);
        q.conds
            .push(Cond::against_const(ColRef::new(a, GRP), Cmp::Eq, 8));
        q.conds
            .push(Cond::against_const(ColRef::new(a, VAL), Cmp::Ge, 3));
        q.conds
            .push(Cond::against_const(ColRef::new(a, VAL), Cmp::Lt, 6));
        q.projection.push(ColRef::new(a, VAL));
        let p = plan(&db, &q, &PlannerConfig::default());
        let AccessPath::IndexRange { lo, hi, .. } = &p.steps[0].access else {
            panic!("expected index access");
        };
        assert!(lo.is_some() && hi.is_some());
        assert!(p.steps[0].residual.is_empty());
        assert_eq!(execute(&p, &db), [[3], [4], [5]]);
    }

    #[test]
    fn correlated_subquery_scheduled_after_binding() {
        let (db, tid) = setup();
        let mut q = ConjQuery::default();
        let a = q.add_alias(tid);
        q.conds
            .push(Cond::against_const(ColRef::new(a, VAL), Cmp::Eq, 0));
        q.projection.push(ColRef::new(a, GRP));
        q.distinct = true;
        let mut sub = ConjQuery::default();
        let s = sub.add_alias(tid);
        sub.conds.push(Cond::new(
            ColRef::new(s, GRP),
            Cmp::Eq,
            Operand::Outer(ColRef::new(a, GRP)),
        ));
        sub.conds
            .push(Cond::against_const(ColRef::new(s, VAL), Cmp::Eq, 5));
        q.subqueries.push(crate::sql::SubQuery {
            negated: false,
            query: sub,
        });
        let p = plan(&db, &q, &PlannerConfig::default());
        assert_eq!(p.checks.len(), 1);
        assert_eq!(p.checks[0].after_step, 0);
        let got = execute(&p, &db);
        assert_eq!(got, (5..10).map(|g| vec![g]).collect::<Vec<_>>());
    }

    #[test]
    fn wildcard_alias_falls_back_to_scan() {
        let (db, tid) = setup();
        let mut q = ConjQuery::default();
        let a = q.add_alias(tid);
        q.projection.push(ColRef::new(a, GRP));
        q.distinct = true;
        let p = plan(&db, &q, &PlannerConfig::default());
        assert!(matches!(p.steps[0].access, AccessPath::FullScan));
        assert_eq!(execute(&p, &db).len(), 10);
    }

    #[test]
    fn equality_closure_enables_transitive_probes() {
        // Three aliases chained by grp equalities: a—b—c. Binding order
        // (a, c, b) must still give c an index probe on grp via the
        // class {a.grp, b.grp, c.grp}.
        let (db, tid) = setup();
        let mut q = ConjQuery::default();
        let a = q.add_alias(tid);
        let b = q.add_alias(tid);
        let c = q.add_alias(tid);
        q.conds
            .push(Cond::against_const(ColRef::new(a, GRP), Cmp::Eq, 7));
        q.conds.push(Cond::between(
            ColRef::new(b, GRP),
            Cmp::Eq,
            ColRef::new(a, GRP),
        ));
        q.conds.push(Cond::between(
            ColRef::new(c, GRP),
            Cmp::Eq,
            ColRef::new(b, GRP),
        ));
        // Make c selective so greedy binds it before b.
        q.conds
            .push(Cond::against_const(ColRef::new(c, VAL), Cmp::Eq, 0));
        q.projection.push(ColRef::new(c, VAL));
        q.distinct = true;
        let p = plan(&db, &q, &PlannerConfig::default());
        // Whatever the order, nobody may fall back to a full scan: the
        // closure supplies a grp probe for every alias after the first.
        let scans = p
            .steps
            .iter()
            .skip(1)
            .filter(|s| matches!(s.access, AccessPath::FullScan))
            .count();
        assert_eq!(scans, 0, "{p}");
        assert_eq!(execute(&p, &db), [[0]]);
    }

    #[test]
    fn in_set_conditions_filter_at_binding_step() {
        let (db, tid) = setup();
        let mut q = ConjQuery::default();
        let a = q.add_alias(tid);
        q.conds
            .push(Cond::against_const(ColRef::new(a, GRP), Cmp::Eq, 9));
        q.in_conds
            .push(crate::expr::InCond::new(ColRef::new(a, VAL), vec![2, 5, 7]));
        q.projection.push(ColRef::new(a, VAL));
        let p = plan(&db, &q, &PlannerConfig::default());
        assert_eq!(p.steps[0].sets.len(), 1);
        let (got, got_syn) = exec_both(&db, &q);
        assert_eq!(got, [[2], [5], [7]]);
        assert_eq!(got, got_syn);
    }

    #[test]
    fn empty_in_set_yields_no_rows() {
        let (db, tid) = setup();
        let mut q = ConjQuery::default();
        let a = q.add_alias(tid);
        q.in_conds
            .push(crate::expr::InCond::new(ColRef::new(a, VAL), vec![]));
        q.projection.push(ColRef::new(a, VAL));
        let p = plan(&db, &q, &PlannerConfig::default());
        assert!(execute(&p, &db).is_empty());
    }

    #[test]
    fn in_set_tightens_cardinality_estimate() {
        let (db, tid) = setup();
        // Unfiltered: 55 rows. val IN {0} has 10 occurrences; the
        // estimate must drop below the unfiltered count so the greedy
        // order binds this alias first.
        let mut q = ConjQuery::default();
        let a = q.add_alias(tid); // no conditions: est 55
        let b = q.add_alias(tid);
        q.in_conds
            .push(crate::expr::InCond::new(ColRef::new(b, VAL), vec![0]));
        q.conds.push(Cond::between(
            ColRef::new(a, GRP),
            Cmp::Eq,
            ColRef::new(b, GRP),
        ));
        q.projection.push(ColRef::new(b, GRP));
        q.distinct = true;
        let p = plan(&db, &q, &PlannerConfig::default());
        assert_eq!(p.steps[0].alias, b);
    }

    #[test]
    fn first_rows_flips_the_anchor_to_the_output_alias() {
        // Skew: the output alias (grp = 5, 6 rows) is slightly less
        // selective than its join partner (grp = 4, 5 rows). AllRows
        // anchors the smaller input; FirstRows pays the small input
        // premium to anchor the output alias and emit in scan order.
        let (db, tid) = setup();
        let mut q = ConjQuery::default();
        let a = q.add_alias(tid);
        let b = q.add_alias(tid);
        q.conds
            .push(Cond::against_const(ColRef::new(a, GRP), Cmp::Eq, 5));
        q.conds
            .push(Cond::against_const(ColRef::new(b, GRP), Cmp::Eq, 4));
        q.conds.push(Cond::between(
            ColRef::new(a, VAL),
            Cmp::Eq,
            ColRef::new(b, VAL),
        ));
        q.projection.push(ColRef::new(a, VAL));
        let all = plan(&db, &q, &PlannerConfig::default());
        assert_eq!(all.steps[0].alias, b, "{all}");
        let first = plan(
            &db,
            &q,
            &PlannerConfig {
                goal: OptGoal::FirstRows(10),
                ..Default::default()
            },
        );
        assert_eq!(first.steps[0].alias, a, "{first}");
        // The goal may change the order, never the answers.
        let (mut x, mut y) = (execute(&all, &db), execute(&first, &db));
        x.sort();
        y.sort();
        assert_eq!(x, y);
        // FirstRows minimizes the surfaced startup estimate.
        assert!(first.estimated_startup <= all.estimated_startup);
    }

    #[test]
    fn first_rows_keeps_a_dominant_selective_anchor() {
        // When a join partner is orders of magnitude more selective
        // than the output alias, first-rows cost is still minimized by
        // anchoring the selective alias — document order is not worth
        // scanning the whole output input.
        let (db, tid) = setup();
        let mut q = ConjQuery::default();
        let a = q.add_alias(tid); // output: unfiltered, 55 rows
        let b = q.add_alias(tid); // point: grp = 0, 1 row
        q.conds
            .push(Cond::against_const(ColRef::new(b, GRP), Cmp::Eq, 0));
        q.conds.push(Cond::between(
            ColRef::new(a, GRP),
            Cmp::Eq,
            ColRef::new(b, VAL),
        ));
        q.projection.push(ColRef::new(a, VAL));
        for k in [1, 10, usize::MAX] {
            let p = plan(
                &db,
                &q,
                &PlannerConfig {
                    goal: OptGoal::FirstRows(k),
                    ..Default::default()
                },
            );
            assert_eq!(p.steps[0].alias, b, "k = {k}: {p}");
        }
    }

    #[test]
    fn plan_signatures_bucket_shared_anchors() {
        let (db, tid) = setup();
        let mk = |g: u32| {
            let mut q = ConjQuery::default();
            let a = q.add_alias(tid);
            q.conds
                .push(Cond::against_const(ColRef::new(a, GRP), Cmp::Eq, g));
            q.projection.push(ColRef::new(a, VAL));
            plan(&db, &q, &PlannerConfig::default())
        };
        let (p4, p4b, p5) = (mk(4), mk(4), mk(5));
        assert!(plan_signature(&p4).is_some());
        assert_eq!(plan_signature(&p4), plan_signature(&p4b));
        assert_ne!(plan_signature(&p4), plan_signature(&p5));
        assert_eq!(plan_signature(&Plan::constant_empty()), None);
    }

    #[test]
    fn grouped_stats_scale_the_chunked_anchor_penalty() {
        // Two-alias query anchored (greedy) on the selective non-output
        // alias b: its startup estimate carries the chunk penalty.
        // val = 0 occurs in every grp (10/10 trees); val = 9 in one.
        let mk = |tid, v| {
            let mut q = ConjQuery::default();
            let a = q.add_alias(tid);
            let b = q.add_alias(tid);
            q.conds
                .push(Cond::against_const(ColRef::new(b, VAL), Cmp::Eq, v));
            q.conds.push(Cond::between(
                ColRef::new(a, GRP),
                Cmp::Eq,
                ColRef::new(b, GRP),
            ));
            q.projection.push(ColRef::new(a, VAL));
            q
        };
        let (mut db, tid) = setup();
        let cfg = PlannerConfig::default();
        let flat_wide = plan(&db, &mk(tid, 0), &cfg).estimated_startup;
        let flat_point = plan(&db, &mk(tid, 9), &cfg).estimated_startup;
        db.analyze_grouped(tid, GRP, &[VAL]);
        let wide = plan(&db, &mk(tid, 0), &cfg);
        let point = plan(&db, &mk(tid, 9), &cfg);
        assert_eq!(wide.steps[0].alias, 1, "{wide}");
        assert!(
            wide.estimated_startup > flat_wide,
            "corpus-wide anchor values pay more than the flat penalty"
        );
        assert!(
            point.estimated_startup < flat_point,
            "single-tree anchor values pay less than the flat penalty"
        );
    }

    #[test]
    fn plans_surface_cost_estimates() {
        let (db, tid) = setup();
        let mut q = ConjQuery::default();
        let a = q.add_alias(tid);
        q.conds
            .push(Cond::against_const(ColRef::new(a, GRP), Cmp::Eq, 4));
        q.projection.push(ColRef::new(a, VAL));
        let p = plan(&db, &q, &PlannerConfig::default());
        // grp = 4 has exactly 5 rows; the estimates must reflect it.
        assert_eq!(p.estimated_result, 5);
        assert_eq!(p.estimated_total, 5);
        assert!(p.estimated_startup >= 1);
        assert!(p.to_string().contains("estimates:"), "{p}");
        // Hand-built plans carry no estimates and print none.
        assert_eq!(Plan::default().estimated_total, 0);
    }

    #[test]
    fn selective_index_preferred_on_tie() {
        // grp = 5 (6 rows) vs val = 0 (10 rows): both single-column
        // equality probes; the cheaper one must win.
        let (db, tid) = setup();
        let mut q = ConjQuery::default();
        let a = q.add_alias(tid);
        q.conds
            .push(Cond::against_const(ColRef::new(a, GRP), Cmp::Eq, 5));
        q.conds
            .push(Cond::against_const(ColRef::new(a, VAL), Cmp::Eq, 0));
        q.projection.push(ColRef::new(a, VAL));
        let p = plan(&db, &q, &PlannerConfig::default());
        let AccessPath::IndexRange { index, .. } = &p.steps[0].access else {
            panic!("expected index probe");
        };
        // by_grp_val probes (grp=5, val=0) — a point, estimated below
        // any single-column alternative.
        assert_eq!(db.index_name(*index), "by_grp_val");
        assert_eq!(execute(&p, &db), [[0]]);
    }
}
