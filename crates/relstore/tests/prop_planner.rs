//! Property tests for the relational substrate: random conjunctive
//! queries against a brute-force nested-loop reference.
//!
//! The planner may choose any join order and access path; whatever it
//! picks must enumerate exactly the tuples the naive cross-product
//! semantics defines. IN-set conditions and correlated (NOT) EXISTS
//! subqueries are included in the generated space.

use lpath_relstore::{
    execute, plan, Cmp, ColId, ColRef, Cond, ConjQuery, Database, InCond, JoinOrder, Operand,
    OptGoal, PlannerConfig, Schema, SubQuery, Table, TableId, Value,
};
use proptest::prelude::*;

const NCOLS: usize = 3;

/// A random small table over a small value domain (collisions are the
/// point: joins must handle duplicates).
fn arb_table() -> impl Strategy<Value = Vec<[Value; NCOLS]>> {
    prop::collection::vec(
        [0u32..6, 0u32..6, 0u32..6].prop_map(|[a, b, c]| [a, b, c]),
        1..24,
    )
}

#[derive(Clone, Debug)]
struct QSpec {
    aliases: usize,
    /// (alias, col, cmp, const) filters.
    filters: Vec<(usize, usize, u8, Value)>,
    /// (alias a, col, alias b, col) equalities.
    joins: Vec<(usize, usize, usize, usize)>,
    /// (alias, col, members) IN conditions.
    ins: Vec<(usize, usize, Vec<Value>)>,
    /// Correlated subquery: Some((outer alias, col, negated)) adds
    /// EXISTS (SELECT 1 FROM t s WHERE s.c0 = outer.col).
    sub: Option<(usize, usize, bool)>,
}

fn arb_spec() -> impl Strategy<Value = QSpec> {
    (1usize..=3).prop_flat_map(|aliases| {
        let filters = prop::collection::vec((0..aliases, 0..NCOLS, 0u8..4, 0u32..6), 0..3);
        let joins = prop::collection::vec((0..aliases, 0..NCOLS, 0..aliases, 0..NCOLS), 0..3);
        let ins = prop::collection::vec(
            (0..aliases, 0..NCOLS, prop::collection::vec(0u32..6, 0..4)),
            0..2,
        );
        let sub = prop::option::of((0..aliases, 0..NCOLS, any::<bool>()));
        (Just(aliases), filters, joins, ins, sub).prop_map(|(aliases, filters, joins, ins, sub)| {
            QSpec {
                aliases,
                filters,
                joins,
                ins,
                sub,
            }
        })
    })
}

fn cmp_of(code: u8) -> Cmp {
    match code {
        0 => Cmp::Eq,
        1 => Cmp::Ne,
        2 => Cmp::Lt,
        _ => Cmp::Ge,
    }
}

fn build_db(rows: &[[Value; NCOLS]]) -> (Database, TableId) {
    let mut t = Table::new(Schema::new(&["c0", "c1", "c2"]));
    for r in rows {
        t.push_row(r);
    }
    t.cluster_by(&[ColId(0), ColId(1), ColId(2)]);
    let mut db = Database::new();
    let tid = db.add_table("t", t);
    db.add_index(tid, "c0c1c2", vec![ColId(0), ColId(1), ColId(2)]);
    db.add_index(tid, "c1", vec![ColId(1)]);
    db.add_index(tid, "c2c0", vec![ColId(2), ColId(0)]);
    db.analyze(tid, &[ColId(0), ColId(1), ColId(2)]);
    (db, tid)
}

fn build_query(spec: &QSpec, tid: TableId) -> ConjQuery {
    let mut q = ConjQuery {
        distinct: true,
        ..Default::default()
    };
    for _ in 0..spec.aliases {
        q.add_alias(tid);
    }
    for &(a, c, op, v) in &spec.filters {
        q.conds.push(Cond::against_const(
            ColRef::new(a, ColId(c as u16)),
            cmp_of(op),
            v,
        ));
    }
    for &(a, ca, b, cb) in &spec.joins {
        if a == b && ca == cb {
            continue; // tautology; skip to keep the reference simple
        }
        q.conds.push(Cond::between(
            ColRef::new(a, ColId(ca as u16)),
            Cmp::Eq,
            ColRef::new(b, ColId(cb as u16)),
        ));
    }
    for (a, c, members) in &spec.ins {
        q.in_conds.push(InCond::new(
            ColRef::new(*a, ColId(*c as u16)),
            members.clone(),
        ));
    }
    if let Some((outer, col, negated)) = spec.sub {
        let mut sub = ConjQuery::default();
        let s = sub.add_alias(tid);
        sub.conds.push(Cond::new(
            ColRef::new(s, ColId(0)),
            Cmp::Eq,
            Operand::Outer(ColRef::new(outer, ColId(col as u16))),
        ));
        q.subqueries.push(SubQuery {
            negated,
            query: sub,
        });
    }
    // Project every column of every alias (makes DISTINCT trivial to
    // mirror in the reference).
    for a in 0..spec.aliases {
        for c in 0..NCOLS {
            q.projection.push(ColRef::new(a, ColId(c as u16)));
        }
    }
    q
}

/// Brute force: enumerate the full cross product and filter.
fn reference(spec: &QSpec, rows: &[[Value; NCOLS]]) -> Vec<Vec<Value>> {
    let n = spec.aliases;
    let mut out: Vec<Vec<Value>> = Vec::new();
    let mut idx = vec![0usize; n];
    'outer: loop {
        let binding: Vec<&[Value; NCOLS]> = idx.iter().map(|&i| &rows[i]).collect();
        let mut ok = true;
        for &(a, c, op, v) in &spec.filters {
            ok &= cmp_of(op).eval(binding[a][c], v);
        }
        for &(a, ca, b, cb) in &spec.joins {
            if a == b && ca == cb {
                continue;
            }
            ok &= binding[a][ca] == binding[b][cb];
        }
        for (a, c, members) in &spec.ins {
            ok &= members.contains(&binding[*a][*c]);
        }
        if ok {
            if let Some((outer, col, negated)) = spec.sub {
                let witness = rows.iter().any(|r| r[0] == binding[outer][col]);
                ok &= witness != negated;
            }
        }
        if ok {
            let tuple: Vec<Value> = binding.iter().flat_map(|r| r.iter().copied()).collect();
            if !out.contains(&tuple) {
                out.push(tuple);
            }
        }
        // Advance the odometer.
        for pos in (0..n).rev() {
            idx[pos] += 1;
            if idx[pos] < rows.len() {
                continue 'outer;
            }
            idx[pos] = 0;
        }
        break;
    }
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: ProptestConfig::cases_or_env(96), ..ProptestConfig::default() })]

    #[test]
    fn planner_matches_brute_force(rows in arb_table(), spec in arb_spec()) {
        let (db, tid) = build_db(&rows);
        let q = build_query(&spec, tid);
        let want = reference(&spec, &rows);
        for order in [JoinOrder::GreedyStats, JoinOrder::Syntactic] {
            for goal in [OptGoal::AllRows, OptGoal::FirstRows(1), OptGoal::FirstRows(7)] {
                let p = plan(&db, &q, &PlannerConfig { order, goal });
                let mut got = execute(&p, &db);
                got.sort();
                prop_assert_eq!(&got, &want, "order {:?} goal {:?} on {:?}", order, goal, spec);
            }
        }
    }

    #[test]
    fn distinct_projection_never_duplicates(rows in arb_table(), spec in arb_spec()) {
        let (db, tid) = build_db(&rows);
        let q = build_query(&spec, tid);
        let p = plan(&db, &q, &PlannerConfig::default());
        let got = execute(&p, &db);
        let mut dedup = got.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(got.len(), dedup.len(), "duplicates in DISTINCT output");
    }
}
