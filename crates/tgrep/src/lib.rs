//! A TGrep2-style linguistic search engine — the first baseline of the
//! paper's evaluation (Figures 7–9).
//!
//! Like TGrep2, this engine preprocesses the treebank into a binary
//! corpus image ([`binfmt`]) in which words are leaf nodes, maintains an
//! index from every label to the trees containing it, and answers
//! queries with a per-tree backtracking matcher ([`matcher`]). Rare-word
//! queries skip most of the corpus via the index; everything else costs
//! a scan over candidate trees.
//!
//! ```
//! use lpath_model::ptb::parse_str;
//! use lpath_tgrep::TgrepEngine;
//!
//! let corpus = parse_str(
//!     "( (S (NP-SBJ (PRP I)) (VP (VBD saw) (NP (DT the) (NN man)))) )",
//! ).unwrap();
//! let engine = TgrepEngine::build(&corpus);
//! assert_eq!(engine.count("S << saw").unwrap(), 1);  // sentence with "saw"
//! assert_eq!(engine.count("NP , VBD").unwrap(), 1);  // NP right after a VBD
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod binfmt;
pub mod engine;
pub mod matcher;
pub mod parser;
pub mod queries;

pub use ast::{NodePattern, RelOp, Relation, Test};
pub use engine::{TgrepEngine, TgrepError};
pub use parser::{parse_pattern, TgrepParseError};
pub use queries::TGREP_QUERIES;
