//! Parser for the TGrep2-style pattern language.
//!
//! Grammar:
//!
//! ```text
//! pattern  := node
//! node     := test binding? relation*
//! test     := LABEL | '__' | '=' NAME
//! binding  := '=' NAME
//! relation := '!'? OP target
//! target   := test binding? | '(' node ')' | '=' NAME
//! ```
//!
//! Labels follow Penn Treebank conventions (may contain `-`, `$`, digits
//! — note `$.` the operator always has the operator characters glued,
//! while a label like `PRP$` is written quoted: `'PRP$'`).

use crate::ast::{NodePattern, RelOp, Relation, Test};

/// Parse error with byte offset.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TgrepParseError {
    /// Byte offset in the pattern source.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TgrepParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tgrep parse error at {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for TgrepParseError {}

/// Parse a TGrep2-style pattern.
pub fn parse_pattern(src: &str) -> Result<NodePattern, TgrepParseError> {
    let mut p = P {
        b: src.as_bytes(),
        i: 0,
    };
    p.ws();
    let node = p.node()?;
    p.ws();
    if p.i < p.b.len() {
        return Err(p.err("trailing input"));
    }
    Ok(node)
}

struct P<'a> {
    b: &'a [u8],
    i: usize,
}

impl P<'_> {
    fn err(&self, m: impl Into<String>) -> TgrepParseError {
        TgrepParseError {
            offset: self.i,
            message: m.into(),
        }
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    /// Longest-match operator lexing.
    fn rel_op(&mut self) -> Option<RelOp> {
        let rest = &self.b[self.i..];
        const OPS: [(&[u8], RelOp); 17] = [
            (b"<<,", RelOp::LeftmostDescendant),
            (b"<<-", RelOp::RightmostDescendant),
            (b"<<", RelOp::Descendant),
            (b"<,", RelOp::FirstChild),
            (b"<-", RelOp::LastChild),
            (b"<", RelOp::Child),
            (b">>", RelOp::Ancestor),
            (b">", RelOp::Parent),
            (b"..", RelOp::Before),
            (b".", RelOp::ImmediatelyBefore),
            (b",,", RelOp::After),
            (b",", RelOp::ImmediatelyAfter),
            (b"$..", RelOp::SisterBeforeAny),
            (b"$,,", RelOp::SisterAfterAny),
            (b"$.", RelOp::SisterBefore),
            (b"$,", RelOp::SisterAfter),
            (b"$", RelOp::Sister),
        ];
        for (sym, op) in OPS {
            if rest.starts_with(sym) {
                self.i += sym.len();
                return Some(op);
            }
        }
        None
    }

    fn label_char(c: u8) -> bool {
        c.is_ascii_alphanumeric() || c == b'-' || c == b'_'
    }

    fn name(&mut self) -> Result<String, TgrepParseError> {
        if self.peek() == Some(b'\'') {
            self.i += 1;
            let start = self.i;
            while self.i < self.b.len() && self.b[self.i] != b'\'' {
                self.i += 1;
            }
            if self.i >= self.b.len() {
                return Err(self.err("unterminated quoted label"));
            }
            let s = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
            self.i += 1;
            return Ok(s);
        }
        let start = self.i;
        while self.i < self.b.len() && Self::label_char(self.b[self.i]) {
            self.i += 1;
        }
        if self.i == start {
            return Err(self.err("expected a label"));
        }
        Ok(String::from_utf8_lossy(&self.b[start..self.i]).into_owned())
    }

    fn test(&mut self) -> Result<Test, TgrepParseError> {
        if self.peek() == Some(b'=') {
            self.i += 1;
            return Ok(Test::BackRef(self.name()?));
        }
        let label = self.name()?;
        if label == "__" {
            Ok(Test::Any)
        } else {
            Ok(Test::Label(label))
        }
    }

    fn node(&mut self) -> Result<NodePattern, TgrepParseError> {
        let test = self.test()?;
        let mut node = NodePattern::new(test);
        // A back-reference cannot also bind.
        if self.peek() == Some(b'=') && !matches!(node.test, Test::BackRef(_)) {
            self.i += 1;
            node.binding = Some(self.name()?);
        }
        loop {
            self.ws();
            let negated = if self.peek() == Some(b'!') {
                self.i += 1;
                self.ws();
                true
            } else {
                false
            };
            let Some(op) = self.rel_op() else {
                if negated {
                    return Err(self.err("expected an operator after '!'"));
                }
                break;
            };
            self.ws();
            let target = if self.peek() == Some(b'(') {
                self.i += 1;
                self.ws();
                let inner = self.node()?;
                self.ws();
                if self.peek() != Some(b')') {
                    return Err(self.err("expected ')'"));
                }
                self.i += 1;
                inner
            } else {
                let test = self.test()?;
                let mut n = NodePattern::new(test);
                if self.peek() == Some(b'=') && !matches!(n.test, Test::BackRef(_)) {
                    self.i += 1;
                    n.binding = Some(self.name()?);
                }
                n
            };
            node.relations.push(Relation {
                negated,
                op,
                target,
            });
        }
        Ok(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_relation() {
        let p = parse_pattern("NP , VB").unwrap();
        assert_eq!(p.test, Test::Label("NP".into()));
        assert_eq!(p.relations.len(), 1);
        assert_eq!(p.relations[0].op, RelOp::ImmediatelyAfter);
        assert_eq!(p.relations[0].target.test, Test::Label("VB".into()));
    }

    #[test]
    fn nested_and_bound() {
        let p = parse_pattern("VP <<, (VB . (NP . PP=p)) <<- =p").unwrap();
        assert_eq!(p.relations.len(), 2);
        assert_eq!(p.relations[0].op, RelOp::LeftmostDescendant);
        let vb = &p.relations[0].target;
        assert_eq!(vb.test, Test::Label("VB".into()));
        let np = &vb.relations[0].target;
        let pp = &np.relations[0].target;
        assert_eq!(pp.binding.as_deref(), Some("p"));
        assert_eq!(p.relations[1].op, RelOp::RightmostDescendant);
        assert_eq!(p.relations[1].target.test, Test::BackRef("p".into()));
    }

    #[test]
    fn negation() {
        let p = parse_pattern("NP !<< JJ").unwrap();
        assert!(p.relations[0].negated);
        assert_eq!(p.relations[0].op, RelOp::Descendant);
    }

    #[test]
    fn all_operators_lex() {
        for (src, op) in [
            ("A < B", RelOp::Child),
            ("A > B", RelOp::Parent),
            ("A << B", RelOp::Descendant),
            ("A >> B", RelOp::Ancestor),
            ("A <, B", RelOp::FirstChild),
            ("A <- B", RelOp::LastChild),
            ("A <<, B", RelOp::LeftmostDescendant),
            ("A <<- B", RelOp::RightmostDescendant),
            ("A . B", RelOp::ImmediatelyBefore),
            ("A , B", RelOp::ImmediatelyAfter),
            ("A .. B", RelOp::Before),
            ("A ,, B", RelOp::After),
            ("A $. B", RelOp::SisterBefore),
            ("A $, B", RelOp::SisterAfter),
            ("A $.. B", RelOp::SisterBeforeAny),
            ("A $,, B", RelOp::SisterAfterAny),
            ("A $ B", RelOp::Sister),
        ] {
            let p = parse_pattern(src).unwrap_or_else(|e| panic!("{src}: {e}"));
            assert_eq!(p.relations[0].op, op, "{src}");
        }
    }

    #[test]
    fn treebank_labels() {
        let p = parse_pattern("-NONE- > NP-SBJ-2").unwrap();
        assert_eq!(p.test, Test::Label("-NONE-".into()));
        let p = parse_pattern("'PRP$' < __").unwrap();
        assert_eq!(p.test, Test::Label("PRP$".into()));
        assert_eq!(p.relations[0].target.test, Test::Any);
    }

    #[test]
    fn chained_relations_on_head() {
        let p = parse_pattern("NN >> VP=v ,, (VB > =v)").unwrap();
        assert_eq!(p.relations.len(), 2);
        assert_eq!(p.relations[0].target.binding.as_deref(), Some("v"));
        let vb = &p.relations[1].target;
        assert_eq!(vb.relations[0].target.test, Test::BackRef("v".into()));
    }

    #[test]
    fn required_labels_skip_negated() {
        let p = parse_pattern("NP !<< JJ << (DT . NN)").unwrap();
        let mut labels = Vec::new();
        p.required_labels(&mut labels);
        assert_eq!(labels, ["NP", "DT", "NN"]);
    }

    #[test]
    fn errors() {
        for bad in ["", "NP <", "NP ! JJ", "(NP", "NP ) ", "=", "NP << (VB"] {
            assert!(parse_pattern(bad).is_err(), "{bad}");
        }
    }
}
