//! Pattern AST for the TGrep2-style query language.
//!
//! A pattern is a head node with a list of relations to sub-patterns,
//! e.g. `NP , VB` ("an NP immediately following a VB") or
//! `VP <<, (VB . (NP . PP=p)) <<- =p` (the tgrep rendering of the
//! paper's Q7). Words are ordinary leaf nodes in the tgrep corpus
//! image, so `saw` is a valid node test.

/// Relations between a node `A` and a related node `B` (`A op B`).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum RelOp {
    /// `<` — B is a child of A.
    Child,
    /// `>` — A is a child of B.
    Parent,
    /// `<<` — B is a descendant of A.
    Descendant,
    /// `>>` — A is a descendant of B.
    Ancestor,
    /// `<,` — B is the first child of A.
    FirstChild,
    /// `<-` — B is the last child of A.
    LastChild,
    /// `<<,` — B is a left-aligned (leftmost-edge) descendant of A.
    LeftmostDescendant,
    /// `<<-` — B is a right-aligned descendant of A.
    RightmostDescendant,
    /// `.` — B immediately follows A (terminal adjacency).
    ImmediatelyBefore,
    /// `,` — B immediately precedes A.
    ImmediatelyAfter,
    /// `..` — B follows A.
    Before,
    /// `,,` — B precedes A.
    After,
    /// `$.` — B is the immediately following sibling of A.
    SisterBefore,
    /// `$,` — B is the immediately preceding sibling of A.
    SisterAfter,
    /// `$..` — B is a following sibling of A.
    SisterBeforeAny,
    /// `$,,` — B is a preceding sibling of A.
    SisterAfterAny,
    /// `$` — B is any sibling of A.
    Sister,
}

impl RelOp {
    /// The operator as written in patterns.
    pub fn symbol(self) -> &'static str {
        use RelOp::*;
        match self {
            Child => "<",
            Parent => ">",
            Descendant => "<<",
            Ancestor => ">>",
            FirstChild => "<,",
            LastChild => "<-",
            LeftmostDescendant => "<<,",
            RightmostDescendant => "<<-",
            ImmediatelyBefore => ".",
            ImmediatelyAfter => ",",
            Before => "..",
            After => ",,",
            SisterBefore => "$.",
            SisterAfter => "$,",
            SisterBeforeAny => "$..",
            SisterAfterAny => "$,,",
            Sister => "$",
        }
    }
}

/// What a pattern node matches.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Test {
    /// `__` — any node.
    Any,
    /// A tag or word label.
    Label(String),
    /// `=name` — must be the node previously bound to `name`.
    BackRef(String),
}

/// A relation attached to a node: `[!] op pattern`.
#[derive(Clone, PartialEq, Debug)]
pub struct Relation {
    /// Preceded by `!`.
    pub negated: bool,
    /// The node relation.
    pub op: RelOp,
    /// The related sub-pattern.
    pub target: NodePattern,
}

/// A pattern node: test, optional binding label, relations.
#[derive(Clone, PartialEq, Debug)]
pub struct NodePattern {
    /// What this node matches.
    pub test: Test,
    /// `=name` after the test binds the matched node.
    pub binding: Option<String>,
    /// Conjoined relations to sub-patterns.
    pub relations: Vec<Relation>,
}

impl NodePattern {
    /// A bare pattern node with no binding or relations.
    pub fn new(test: Test) -> Self {
        NodePattern {
            test,
            binding: None,
            relations: Vec::new(),
        }
    }

    /// Labels that must exist in a tree for the pattern to match: every
    /// non-negated test in the pattern. Used for index pruning.
    pub fn required_labels<'a>(&'a self, out: &mut Vec<&'a str>) {
        if let Test::Label(l) = &self.test {
            out.push(l);
        }
        for rel in &self.relations {
            if !rel.negated {
                rel.target.required_labels(out);
            }
        }
    }
}
