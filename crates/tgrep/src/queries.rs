//! The 23 evaluation queries of Figure 6(c) in the tgrep dialect.
//!
//! Heads are chosen so every pattern counts the same node set as its
//! LPath original (verified by the cross-engine integration tests at
//! the workspace root).

/// `TGREP_QUERIES[i]` is Q(i+1) in tgrep syntax.
pub const TGREP_QUERIES: [&str; 23] = [
    // Q1  //S[//_[@lex=saw]]
    "S << saw",
    // Q2  //VB->NP
    "NP , VB",
    // Q3  //VP/VB-->NN
    "NN ,, (VB > VP)",
    // Q4  //VP{/VB-->NN}
    "NN >> VP=v ,, (VB > =v)",
    // Q5  //VP{/NP$}
    "NP=n > (VP <- =n)",
    // Q6  //VP{//NP$}
    "NP=n >> (VP <<- =n)",
    // Q7  //VP[{//^VB->NP->PP$}]
    "VP <<, (VB . (NP . PP=p)) <<- =p",
    // Q8  //S[//NP/ADJP]
    "S << (ADJP > NP)",
    // Q9  //NP[not(//JJ)]
    "NP !<< JJ",
    // Q10 //NP[->PP[//IN[@lex=of]]=>VP]
    "NP . (PP << (IN < of) $. VP)",
    // Q11 //S[{//_[@lex=what]->_[@lex=building]}]
    "S << (what . building=b) << =b",
    // Q12 //_[@lex=rapprochement]
    "rapprochement",
    // Q13 //_[@lex=1929]
    "1929",
    // Q14 //ADVP-LOC-CLR
    "ADVP-LOC-CLR",
    // Q15 //WHPP
    "WHPP",
    // Q16 //RRC/PP-TMP
    "PP-TMP > RRC",
    // Q17 //UCP-PRD/ADJP-PRD
    "ADJP-PRD > UCP-PRD",
    // Q18 //NP/NP/NP/NP/NP
    "NP > (NP > (NP > (NP > NP)))",
    // Q19 //VP/VP/VP
    "VP > (VP > VP)",
    // Q20 //PP=>SBAR
    "SBAR $, PP",
    // Q21 //ADVP=>ADJP
    "ADJP $, ADVP",
    // Q22 //NP=>NP=>NP
    "NP $, (NP $, NP)",
    // Q23 //VP=>VP
    "VP $, VP",
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_pattern;

    #[test]
    fn all_queries_parse() {
        for (i, q) in TGREP_QUERIES.iter().enumerate() {
            parse_pattern(q).unwrap_or_else(|e| panic!("Q{}: {e}", i + 1));
        }
    }

    #[test]
    fn q12_counts_a_word() {
        // Words are first-class nodes in the tgrep image, so a bare
        // word is a valid head pattern.
        let p = parse_pattern(TGREP_QUERIES[11]).unwrap();
        assert!(p.relations.is_empty());
    }
}
