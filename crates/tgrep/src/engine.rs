//! The tgrep engine: binary image + label index + matcher.

use lpath_model::{Corpus, Interner};

use crate::ast::NodePattern;
use crate::binfmt::{build_image, encode, CorpusImage};
use crate::matcher::{count_tree, resolve};
use crate::parser::{parse_pattern, TgrepParseError};

/// Errors from the tgrep engine.
#[derive(Debug)]
pub enum TgrepError {
    /// The pattern text does not parse.
    Parse(TgrepParseError),
    /// The pattern is structurally unusable (e.g. unbound backref).
    Pattern(String),
}

impl std::fmt::Display for TgrepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TgrepError::Parse(e) => e.fmt(f),
            TgrepError::Pattern(m) => write!(f, "bad pattern: {m}"),
        }
    }
}

impl std::error::Error for TgrepError {}

impl From<TgrepParseError> for TgrepError {
    fn from(e: TgrepParseError) -> Self {
        TgrepError::Parse(e)
    }
}

/// A TGrep2-style engine over a preprocessed corpus image.
pub struct TgrepEngine {
    image: CorpusImage,
    interner: Interner,
}

impl TgrepEngine {
    /// Preprocess `corpus` into the binary image form.
    pub fn build(corpus: &Corpus) -> Self {
        TgrepEngine {
            image: build_image(corpus),
            interner: corpus.interner().clone(),
        }
    }

    /// Size of the serialized binary image, for reporting.
    pub fn image_bytes(&self) -> usize {
        encode(&self.image).len()
    }

    /// The binary corpus image (for inspection and round-trip tests).
    pub fn image(&self) -> &CorpusImage {
        &self.image
    }

    /// Parse and count matches of a pattern across the corpus.
    pub fn count(&self, pattern: &str) -> Result<usize, TgrepError> {
        let ast = parse_pattern(pattern)?;
        self.count_ast(&ast)
    }

    /// Count matches of a parsed pattern: number of head-node matches
    /// summed over trees, using the label index to skip trees that
    /// cannot match.
    pub fn count_ast(&self, ast: &NodePattern) -> Result<usize, TgrepError> {
        let (pattern, slots) = resolve(ast, &|label| {
            self.interner.get(label).map(lpath_model::Sym::raw)
        })
        .map_err(TgrepError::Pattern)?;

        // Index pruning: scan only trees containing the rarest required
        // label (TGrep2's word-index trick).
        let mut required = Vec::new();
        ast.required_labels(&mut required);
        let mut best: Option<&[u32]> = None;
        for label in required {
            match self.interner.get(label) {
                // A required label absent from the corpus: no tree can
                // match.
                None => return Ok(0),
                Some(sym) => {
                    let postings = self
                        .image
                        .postings
                        .get(&sym.raw())
                        .map_or(&[][..], std::vec::Vec::as_slice);
                    if best.is_none_or(|b| postings.len() < b.len()) {
                        best = Some(postings);
                    }
                }
            }
        }
        let count = match best {
            Some(trees) => trees
                .iter()
                .map(|&t| count_tree(&self.image.trees[t as usize], &pattern, slots))
                .sum(),
            None => self
                .image
                .trees
                .iter()
                .map(|t| count_tree(t, &pattern, slots))
                .sum(),
        };
        Ok(count)
    }

    /// Count without index pruning (the ablation baseline).
    pub fn count_unindexed(&self, pattern: &str) -> Result<usize, TgrepError> {
        let ast = parse_pattern(pattern)?;
        let (pattern, slots) = resolve(&ast, &|label| {
            self.interner.get(label).map(lpath_model::Sym::raw)
        })
        .map_err(TgrepError::Pattern)?;
        Ok(self
            .image
            .trees
            .iter()
            .map(|t| count_tree(t, &pattern, slots))
            .sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpath_model::ptb::parse_str;

    const FIG1: &str = "( (S (NP I) (VP (V saw) (NP (NP (Det the) (Adj old) (N man)) \
                        (PP (Prep with) (NP (Det a) (N dog))))) (N today)) )";

    fn engine() -> TgrepEngine {
        TgrepEngine::build(&parse_str(FIG1).unwrap())
    }

    #[test]
    fn figure2_equivalents() {
        let e = engine();
        // Q: sentence containing "saw".
        assert_eq!(e.count("S << saw").unwrap(), 1);
        // NP immediately following V (LPath //V->NP): {NP6, NP7}.
        assert_eq!(e.count("NP , V").unwrap(), 2);
        // Immediate following sibling (//V=>NP): {NP6}.
        assert_eq!(e.count("NP $, V").unwrap(), 1);
        // //VP/V-->N: {N9, N13, N14}.
        assert_eq!(e.count("N ,, (V > VP)").unwrap(), 3);
        // //VP{/V-->N}: scope cuts N(today): {N9, N13}.
        assert_eq!(e.count("N >> VP=v ,, (V > =v)").unwrap(), 2);
        // //VP{/NP$}: {NP6}.
        assert_eq!(e.count("NP=n > (VP <- =n)").unwrap(), 1);
        // //VP{//NP$}: {NP6, NP11}.
        assert_eq!(e.count("NP=n >> (VP <<- =n)").unwrap(), 2);
    }

    #[test]
    fn vertical_relations() {
        let e = engine();
        assert_eq!(e.count("NP").unwrap(), 4);
        assert_eq!(e.count("NP < Det").unwrap(), 2);
        assert_eq!(e.count("Det > NP").unwrap(), 2);
        assert_eq!(e.count("VP << Det").unwrap(), 1);
        assert_eq!(e.count("NP !<< Det").unwrap(), 1); // NP("I")
        assert_eq!(e.count("NP <, Det").unwrap(), 2);
        assert_eq!(e.count("NP <- N").unwrap(), 2); // "the old man", "a dog"
    }

    #[test]
    fn word_leaves_and_adjacency() {
        let e = engine();
        // "saw" immediately precedes "the".
        assert_eq!(e.count("saw . the").unwrap(), 1);
        assert_eq!(e.count("the . saw").unwrap(), 0);
        // Word order: "old" follows "I".
        assert_eq!(e.count("old ,, I").unwrap(), 1);
        // POS-level adjacency matches word-level adjacency.
        assert_eq!(e.count("Adj , Det").unwrap(), 1);
    }

    #[test]
    fn sister_relations() {
        let e = engine();
        assert_eq!(e.count("N $, Adj").unwrap(), 1); // man after old
        assert_eq!(e.count("N $,, Det").unwrap(), 2);
        assert_eq!(e.count("Det $.. N").unwrap(), 2);
        assert_eq!(e.count("Det $ Adj").unwrap(), 1);
        assert_eq!(e.count("Adj $ Det").unwrap(), 1);
    }

    #[test]
    fn edge_alignment_relations() {
        let e = engine();
        assert_eq!(e.count("__ > VP").unwrap(), 2); // children: V, NP6
        assert_eq!(e.count("V >> VP").unwrap(), 1);
        // Left frontier of VP: V, word "saw".
        assert_eq!(e.count("VP <<, V").unwrap(), 1);
        assert_eq!(e.count("VP <<, NP").unwrap(), 0);
        // Right frontier of VP: NP6, PP, NP11, N13, word "dog".
        assert_eq!(e.count("VP <<- N").unwrap(), 1);
        assert_eq!(e.count("VP <<- PP").unwrap(), 1);
        assert_eq!(e.count("VP <<- Det").unwrap(), 0);
        // Two NPs on VP's right frontier → but the head VP is counted
        // once per matching head node, not per witness.
        assert_eq!(e.count("VP <<- NP").unwrap(), 1);
    }

    #[test]
    fn unknown_labels_yield_zero_or_vacuous_truth() {
        let e = engine();
        assert_eq!(e.count("ZZZ").unwrap(), 0);
        assert_eq!(e.count("NP << ZZZ").unwrap(), 0);
        // Negated unknown: vacuously true.
        assert_eq!(e.count("NP !<< ZZZ").unwrap(), 4);
    }

    #[test]
    fn index_pruning_equals_full_scan() {
        let src = format!("{FIG1}\n( (S (NP (PRP he)) (VP (VBD left))) )\n{FIG1}");
        let c = parse_str(&src).unwrap();
        let e = TgrepEngine::build(&c);
        for q in ["S << saw", "NP , V", "VBD", "NP !<< Det"] {
            assert_eq!(e.count(q).unwrap(), e.count_unindexed(q).unwrap(), "{q}");
        }
    }

    #[test]
    fn image_bytes_reported() {
        let e = engine();
        assert!(e.image_bytes() > 100);
    }

    #[test]
    fn backreference_errors() {
        let e = engine();
        assert!(matches!(e.count("NP < =x"), Err(TgrepError::Pattern(_))));
        assert!(matches!(
            e.count("NP=x < (V=x)"),
            Err(TgrepError::Pattern(_))
        ));
    }
}
