//! The backtracking pattern matcher.
//!
//! Per candidate tree, the matcher enumerates head candidates and
//! recursively satisfies each relation, backtracking across relation
//! choices (bindings made by one relation can be referenced by later
//! ones, TGrep2-style). Negated relations succeed when *no* candidate
//! matches their target.

use crate::ast::{NodePattern, RelOp, Test};
use crate::binfmt::{TreeImage, NONE};

/// A pattern with label names resolved to symbols. `None` means the
/// label does not occur anywhere in the corpus.
#[derive(Clone, Debug)]
pub enum RTest {
    /// Any node.
    Any,
    /// A specific resolved label.
    Label(Option<u32>),
    /// Must equal the node bound at this slot.
    BackRef(usize),
}

/// A resolved pattern ready for matching.
#[derive(Clone, Debug)]
pub struct RPattern {
    /// What this node matches.
    pub test: RTest,
    /// Binding slot filled when this node matches.
    pub binding: Option<usize>,
    /// Conjoined `(negated, op, sub-pattern)` relations.
    pub relations: Vec<(bool, RelOp, RPattern)>,
}

/// Resolve names to symbols and bindings to slots.
pub fn resolve(
    pattern: &NodePattern,
    lookup: &dyn Fn(&str) -> Option<u32>,
) -> Result<(RPattern, usize), String> {
    let mut names: Vec<String> = Vec::new();
    let r = go(pattern, lookup, &mut names)?;
    return Ok((r, names.len()));

    fn go(
        p: &NodePattern,
        lookup: &dyn Fn(&str) -> Option<u32>,
        names: &mut Vec<String>,
    ) -> Result<RPattern, String> {
        let test = match &p.test {
            Test::Any => RTest::Any,
            Test::Label(l) => RTest::Label(lookup(l)),
            Test::BackRef(n) => {
                let slot = names
                    .iter()
                    .position(|x| x == n)
                    .ok_or_else(|| format!("backreference to unbound label ={n}"))?;
                RTest::BackRef(slot)
            }
        };
        let binding = match &p.binding {
            None => None,
            Some(n) => {
                if names.iter().any(|x| x == n) {
                    return Err(format!("label ={n} bound twice"));
                }
                names.push(n.clone());
                Some(names.len() - 1)
            }
        };
        let mut relations = Vec::with_capacity(p.relations.len());
        for rel in &p.relations {
            relations.push((rel.negated, rel.op, go(&rel.target, lookup, names)?));
        }
        Ok(RPattern {
            test,
            binding,
            relations,
        })
    }
}

/// Count nodes of `tree` matching `pattern` as the head.
pub fn count_tree(tree: &TreeImage, pattern: &RPattern, slots: usize) -> usize {
    let mut bindings = vec![NONE; slots];
    let mut count = 0;
    for n in 0..tree.len() as u32 {
        if match_node(tree, n, pattern, &mut bindings, &mut |_| true) {
            count += 1;
        }
        bindings.fill(NONE);
    }
    count
}

/// Enumerate every way `n` can match `pattern`, invoking `k` with the
/// bindings of each complete solution; `k` returns `true` to stop the
/// search. Returns whether the search was stopped (i.e. a solution was
/// accepted).
///
/// Full backtracking matters: a nested sub-pattern may have several
/// internal solutions, and a later relation on an outer node (via a
/// back-reference) can rule some of them out — committing to the first
/// internal solution would undercount (e.g. the Q7 pattern
/// `VP <<, (VB . (NP . PP=p)) <<- =p`, where several PPs can sit at the
/// same adjacency point but only one is right-aligned).
pub fn match_node(
    tree: &TreeImage,
    n: u32,
    p: &RPattern,
    bindings: &mut [u32],
    k: &mut dyn FnMut(&mut [u32]) -> bool,
) -> bool {
    match p.test {
        RTest::Any => {}
        RTest::Label(Some(sym)) => {
            if tree.label[n as usize] != sym {
                return false;
            }
        }
        RTest::Label(None) => return false,
        RTest::BackRef(slot) => {
            if bindings[slot] != n {
                return false;
            }
        }
    }
    let bound_here = match p.binding {
        Some(slot) => {
            bindings[slot] = n;
            Some(slot)
        }
        None => None,
    };
    let stopped = satisfy(tree, n, &p.relations, 0, bindings, k);
    if !stopped {
        if let Some(slot) = bound_here {
            bindings[slot] = NONE;
        }
    }
    stopped
}

fn satisfy(
    tree: &TreeImage,
    n: u32,
    rels: &[(bool, RelOp, RPattern)],
    idx: usize,
    bindings: &mut [u32],
    k: &mut dyn FnMut(&mut [u32]) -> bool,
) -> bool {
    let Some((negated, op, target)) = rels.get(idx) else {
        return k(bindings);
    };
    if *negated {
        // Bindings inside a negated target are local to the check.
        let mut scratch = bindings.to_vec();
        let mut found = false;
        for_candidates(tree, n, *op, &mut |c| {
            if match_node(tree, c, target, &mut scratch, &mut |_| true) {
                found = true;
                return false;
            }
            true
        });
        if found {
            return false;
        }
        return satisfy(tree, n, rels, idx + 1, bindings, k);
    }
    let mut stopped = false;
    for_candidates(tree, n, *op, &mut |c| {
        let saved: Vec<u32> = bindings.to_vec();
        // For every way the target matches at `c`, continue with the
        // remaining relations of this node.
        let s = match_node(tree, c, target, bindings, &mut |b| {
            satisfy(tree, n, rels, idx + 1, b, k)
        });
        if s {
            stopped = true;
            return false; // accepted: stop candidate enumeration
        }
        bindings.copy_from_slice(&saved);
        true
    });
    stopped
}

/// Enumerate nodes standing in `op` relation to `n`; `f` returns
/// `false` to stop early.
fn for_candidates(tree: &TreeImage, n: u32, op: RelOp, f: &mut dyn FnMut(u32) -> bool) {
    let ni = n as usize;
    match op {
        RelOp::Child => {
            let mut c = tree.first_child[ni];
            while c != NONE {
                if !f(c) {
                    return;
                }
                c = tree.next_sibling[c as usize];
            }
        }
        RelOp::Parent => {
            if tree.parent[ni] != NONE {
                f(tree.parent[ni]);
            }
        }
        RelOp::Descendant => {
            for c in n + 1..tree.subtree_end[ni] {
                if !f(c) {
                    return;
                }
            }
        }
        RelOp::Ancestor => {
            let mut a = tree.parent[ni];
            while a != NONE {
                if !f(a) {
                    return;
                }
                a = tree.parent[a as usize];
            }
        }
        RelOp::FirstChild => {
            if tree.first_child[ni] != NONE {
                f(tree.first_child[ni]);
            }
        }
        RelOp::LastChild => {
            let mut c = tree.first_child[ni];
            let mut last = NONE;
            while c != NONE {
                last = c;
                c = tree.next_sibling[c as usize];
            }
            if last != NONE {
                f(last);
            }
        }
        RelOp::LeftmostDescendant => {
            let mut c = tree.first_child[ni];
            while c != NONE {
                if !f(c) {
                    return;
                }
                c = tree.first_child[c as usize];
            }
        }
        RelOp::RightmostDescendant => {
            let mut c = tree.first_child[ni];
            while c != NONE {
                // walk to the last sibling
                let mut last = c;
                while tree.next_sibling[last as usize] != NONE {
                    last = tree.next_sibling[last as usize];
                }
                if !f(last) {
                    return;
                }
                c = tree.first_child[last as usize];
            }
        }
        RelOp::ImmediatelyBefore => {
            // B immediately follows A: B's first terminal is A's last
            // terminal + 1; candidates are the leaf at that ordinal and
            // its left-aligned ancestors.
            let ord = tree.ll[ni] + 1;
            if (ord as usize) <= tree.leaf_at.len() {
                let mut c = tree.leaf_at[ord as usize - 1];
                loop {
                    if !f(c) {
                        return;
                    }
                    let p = tree.parent[c as usize];
                    if p == NONE || tree.fl[p as usize] != ord {
                        break;
                    }
                    c = p;
                }
            }
        }
        RelOp::ImmediatelyAfter => {
            let fl = tree.fl[ni];
            if fl >= 2 {
                let ord = fl - 1;
                let mut c = tree.leaf_at[ord as usize - 1];
                loop {
                    if !f(c) {
                        return;
                    }
                    let p = tree.parent[c as usize];
                    if p == NONE || tree.ll[p as usize] != ord {
                        break;
                    }
                    c = p;
                }
            }
        }
        RelOp::Before => {
            let ll = tree.ll[ni];
            for c in 0..tree.len() as u32 {
                if tree.fl[c as usize] > ll && !f(c) {
                    return;
                }
            }
        }
        RelOp::After => {
            let fl = tree.fl[ni];
            for c in 0..tree.len() as u32 {
                if tree.ll[c as usize] < fl && !f(c) {
                    return;
                }
            }
        }
        RelOp::SisterBefore => {
            if tree.next_sibling[ni] != NONE {
                f(tree.next_sibling[ni]);
            }
        }
        RelOp::SisterAfter => {
            if let Some(prev) = prev_sibling(tree, n) {
                f(prev);
            }
        }
        RelOp::SisterBeforeAny => {
            let mut c = tree.next_sibling[ni];
            while c != NONE {
                if !f(c) {
                    return;
                }
                c = tree.next_sibling[c as usize];
            }
        }
        RelOp::SisterAfterAny => {
            let p = tree.parent[ni];
            if p == NONE {
                return;
            }
            let mut c = tree.first_child[p as usize];
            while c != NONE && c != n {
                if !f(c) {
                    return;
                }
                c = tree.next_sibling[c as usize];
            }
        }
        RelOp::Sister => {
            let p = tree.parent[ni];
            if p == NONE {
                return;
            }
            let mut c = tree.first_child[p as usize];
            while c != NONE {
                if c != n && !f(c) {
                    return;
                }
                c = tree.next_sibling[c as usize];
            }
        }
    }
}

fn prev_sibling(tree: &TreeImage, n: u32) -> Option<u32> {
    let p = tree.parent[n as usize];
    if p == NONE {
        return None;
    }
    let mut c = tree.first_child[p as usize];
    let mut prev = None;
    while c != NONE && c != n {
        prev = Some(c);
        c = tree.next_sibling[c as usize];
    }
    if c == n {
        prev
    } else {
        None
    }
}
