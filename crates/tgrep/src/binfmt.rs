//! The tgrep binary corpus image.
//!
//! TGrep2 preprocesses a treebank into a binary file holding the trees
//! in a compact navigable form plus an index from every label (tags
//! *and* words) to the trees containing it; queries on rare words then
//! skip almost the whole corpus. This module reproduces that design:
//!
//! * [`build_image`] converts a [`Corpus`] — turning each `@lex`
//!   attribute into a *word leaf node*, as tgrep views terminals — into
//!   an in-memory [`CorpusImage`];
//! * [`encode`] / [`decode`] serialize the image to/from a little-endian
//!   byte format (magic `LTG2`), standing in for TGrep2's corpus file.
//!
//! Symbols reference the originating corpus's interner; an image is
//! only meaningful alongside it.

use std::collections::HashMap;

use lpath_model::Corpus;

/// Sentinel for "no node".
pub const NONE: u32 = u32::MAX;

/// One tree in navigable array form (indices are preorder positions).
#[derive(Clone, Debug, Default)]
pub struct TreeImage {
    /// Interned label per node.
    pub label: Vec<u32>,
    /// Parent index per node (`NONE` at the root).
    pub parent: Vec<u32>,
    /// First child index (`NONE` at leaves).
    pub first_child: Vec<u32>,
    /// Next sibling index (`NONE` at last children).
    pub next_sibling: Vec<u32>,
    /// First terminal ordinal (1-based) under each node.
    pub fl: Vec<u32>,
    /// Last terminal ordinal (1-based) under each node.
    pub ll: Vec<u32>,
    /// Exclusive end of each node's subtree in preorder numbering.
    pub subtree_end: Vec<u32>,
    /// Terminal ordinal (1-based) → node index.
    pub leaf_at: Vec<u32>,
}

impl TreeImage {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.label.len()
    }

    /// Is the tree empty? (Never, for well-formed images.)
    pub fn is_empty(&self) -> bool {
        self.label.is_empty()
    }
}

/// The whole corpus plus the label → trees index.
#[derive(Clone, Debug, Default)]
pub struct CorpusImage {
    /// One image per tree, corpus order.
    pub trees: Vec<TreeImage>,
    /// label symbol → sorted tree ids containing it.
    pub postings: HashMap<u32, Vec<u32>>,
}

/// Build the image from a corpus, converting `@lex` attributes into
/// word leaf nodes.
pub fn build_image(corpus: &Corpus) -> CorpusImage {
    let lex = corpus.interner().get("@lex");
    let mut trees = Vec::with_capacity(corpus.trees().len());
    let mut postings: HashMap<u32, Vec<u32>> = HashMap::new();
    for (tid, tree) in corpus.trees().iter().enumerate() {
        let mut img = TreeImage::default();
        // First pass: emit nodes in preorder, inserting word leaves
        // after their POS parent. We walk the arena explicitly to keep
        // preorder with the synthetic word nodes included.
        // stack of (arena node, emitted parent image idx)
        let mut stack: Vec<(lpath_model::NodeId, u32)> = vec![(tree.root(), NONE)];
        // children are pushed reversed to pop in document order
        while let Some((n, parent_img)) = stack.pop() {
            let idx = img.label.len() as u32;
            img.label.push(tree.node(n).name.raw());
            img.parent.push(parent_img);
            img.first_child.push(NONE);
            img.next_sibling.push(NONE);
            img.fl.push(0);
            img.ll.push(0);
            img.subtree_end.push(0);
            // Link into the parent's child list (append).
            if parent_img != NONE {
                let mut c = img.first_child[parent_img as usize];
                if c == NONE {
                    img.first_child[parent_img as usize] = idx;
                } else {
                    while img.next_sibling[c as usize] != NONE {
                        c = img.next_sibling[c as usize];
                    }
                    img.next_sibling[c as usize] = idx;
                }
            }
            // Word leaf as an extra child.
            if let Some(w) = lex.and_then(|l| tree.node(n).attr(l)) {
                let widx = img.label.len() as u32;
                img.label.push(w.raw());
                img.parent.push(idx);
                img.first_child.push(NONE);
                img.next_sibling.push(NONE);
                img.fl.push(0);
                img.ll.push(0);
                img.subtree_end.push(0);
                img.first_child[idx as usize] = widx;
            }
            for &c in tree.node(n).children.iter().rev() {
                stack.push((c, idx));
            }
        }
        // The explicit stack walk above emits a node, then its word
        // leaf, then pushes element children — but pushed children are
        // emitted *after* all previously pushed nodes, which breaks
        // preorder subtree contiguity. Rebuild positional data with a
        // proper DFS over the link structure instead of relying on
        // emission order.
        finish_positions(&mut img);
        for &sym in &img.label {
            let entry = postings.entry(sym).or_default();
            if entry.last() != Some(&(tid as u32)) {
                entry.push(tid as u32);
            }
        }
        trees.push(img);
    }
    CorpusImage { trees, postings }
}

/// Compute `fl`, `ll`, `leaf_at` and `subtree_end` from the link
/// structure. `subtree_end` here is the count of nodes in the subtree,
/// usable as `descendants(n) = n+1 .. n+count` **only if** preorder
/// contiguity holds; since emission order above is not preorder, we
/// instead store for every node the *set boundary* via an explicit
/// renumbering: nodes are re-sorted into preorder and all arrays
/// rewritten.
fn finish_positions(img: &mut TreeImage) {
    let n = img.len();
    // Preorder renumbering via DFS from node 0.
    let mut order = Vec::with_capacity(n);
    let mut stack = vec![0u32];
    while let Some(x) = stack.pop() {
        order.push(x);
        // push children reversed
        let mut kids = Vec::new();
        let mut c = img.first_child[x as usize];
        while c != NONE {
            kids.push(c);
            c = img.next_sibling[c as usize];
        }
        for &k in kids.iter().rev() {
            stack.push(k);
        }
    }
    debug_assert_eq!(order.len(), n);
    let mut new_pos = vec![0u32; n];
    for (new, &old) in order.iter().enumerate() {
        new_pos[old as usize] = new as u32;
    }
    let remap = |v: u32| if v == NONE { NONE } else { new_pos[v as usize] };
    let mut out = TreeImage {
        label: vec![0; n],
        parent: vec![NONE; n],
        first_child: vec![NONE; n],
        next_sibling: vec![NONE; n],
        fl: vec![0; n],
        ll: vec![0; n],
        subtree_end: vec![0; n],
        leaf_at: Vec::new(),
    };
    for (new, &old) in order.iter().enumerate() {
        let o = old as usize;
        out.label[new] = img.label[o];
        out.parent[new] = remap(img.parent[o]);
        out.first_child[new] = remap(img.first_child[o]);
        out.next_sibling[new] = remap(img.next_sibling[o]);
    }
    // Terminal ordinals and subtree ends in (now true) preorder.
    let mut ord = 0u32;
    for i in (0..n).rev() {
        // subtree_end: max over children, else i+1 — computed bottom-up
        // since children follow parents in preorder.
        let mut end = i as u32 + 1;
        let mut c = out.first_child[i];
        while c != NONE {
            end = end.max(out.subtree_end[c as usize]);
            c = out.next_sibling[c as usize];
        }
        out.subtree_end[i] = end;
    }
    for i in 0..n {
        if out.first_child[i] == NONE {
            ord += 1;
            out.fl[i] = ord;
            out.ll[i] = ord;
            out.leaf_at.push(i as u32);
        }
    }
    for i in (0..n).rev() {
        if out.first_child[i] != NONE {
            let first = out.first_child[i] as usize;
            out.fl[i] = out.fl[first];
            let mut c = out.first_child[i];
            let mut last = c;
            while c != NONE {
                last = c;
                c = out.next_sibling[c as usize];
            }
            out.ll[i] = out.ll[last as usize];
        }
    }
    *img = out;
}

/// Serialization error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ImageError(pub String);

impl std::fmt::Display for ImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corpus image error: {}", self.0)
    }
}

impl std::error::Error for ImageError {}

const MAGIC: &[u8; 4] = b"LTG2";

/// Serialize to the binary format.
pub fn encode(img: &CorpusImage) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    push_u32(&mut out, img.trees.len() as u32);
    for t in &img.trees {
        push_u32(&mut out, t.len() as u32);
        for i in 0..t.len() {
            for v in [
                t.label[i],
                t.parent[i],
                t.first_child[i],
                t.next_sibling[i],
                t.fl[i],
                t.ll[i],
                t.subtree_end[i],
            ] {
                push_u32(&mut out, v);
            }
        }
        push_u32(&mut out, t.leaf_at.len() as u32);
        for &l in &t.leaf_at {
            push_u32(&mut out, l);
        }
    }
    let mut syms: Vec<u32> = img.postings.keys().copied().collect();
    syms.sort_unstable();
    push_u32(&mut out, syms.len() as u32);
    for sym in syms {
        push_u32(&mut out, sym);
        let p = &img.postings[&sym];
        push_u32(&mut out, p.len() as u32);
        for &t in p {
            push_u32(&mut out, t);
        }
    }
    out
}

/// Deserialize the binary format.
pub fn decode(bytes: &[u8]) -> Result<CorpusImage, ImageError> {
    let mut r = Reader { b: bytes, i: 0 };
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(ImageError("bad magic".into()));
    }
    // Every count is validated against the bytes that must follow it
    // before anything is allocated: a corrupted length field yields a
    // clean error, never a huge (or aborting) allocation.
    let n_trees = r.count(8)?;
    let mut trees = Vec::with_capacity(n_trees);
    for _ in 0..n_trees {
        let n = r.count(28)?;
        let mut t = TreeImage {
            label: Vec::with_capacity(n),
            parent: Vec::with_capacity(n),
            first_child: Vec::with_capacity(n),
            next_sibling: Vec::with_capacity(n),
            fl: Vec::with_capacity(n),
            ll: Vec::with_capacity(n),
            subtree_end: Vec::with_capacity(n),
            leaf_at: Vec::new(),
        };
        for _ in 0..n {
            t.label.push(r.u32()?);
            t.parent.push(r.u32()?);
            t.first_child.push(r.u32()?);
            t.next_sibling.push(r.u32()?);
            t.fl.push(r.u32()?);
            t.ll.push(r.u32()?);
            t.subtree_end.push(r.u32()?);
        }
        let n_leaves = r.count(4)?;
        t.leaf_at.reserve(n_leaves);
        for _ in 0..n_leaves {
            t.leaf_at.push(r.u32()?);
        }
        trees.push(t);
    }
    let n_syms = r.count(8)?;
    let mut postings = HashMap::with_capacity(n_syms);
    for _ in 0..n_syms {
        let sym = r.u32()?;
        let k = r.count(4)?;
        let mut p = Vec::with_capacity(k);
        for _ in 0..k {
            p.push(r.u32()?);
        }
        postings.insert(sym, p);
    }
    if r.i != bytes.len() {
        return Err(ImageError("trailing bytes".into()));
    }
    Ok(CorpusImage { trees, postings })
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ImageError> {
        if self.i + n > self.b.len() {
            return Err(ImageError("truncated image".into()));
        }
        let s = &self.b[self.i..self.i + n];
        self.i += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, ImageError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Read an element count whose elements occupy at least
    /// `min_bytes_each` of the remaining input, rejecting counts the
    /// input cannot possibly satisfy (so pre-allocation is safe).
    fn count(&mut self, min_bytes_each: usize) -> Result<usize, ImageError> {
        let n = self.u32()? as usize;
        let remaining = self.b.len() - self.i;
        if n.saturating_mul(min_bytes_each) > remaining {
            return Err(ImageError("count exceeds input".into()));
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpath_model::ptb::parse_str;

    const SRC: &str = "( (S (NP (DT the) (NN man)) (VP (VBD saw) (NP (PRP it)))) )";

    #[test]
    fn words_become_leaves() {
        let c = parse_str(SRC).unwrap();
        let img = build_image(&c);
        let t = &img.trees[0];
        // 8 elements + 4 words.
        assert_eq!(t.len(), 12);
        assert_eq!(t.leaf_at.len(), 4);
        let the = c.interner().get("the").unwrap().raw();
        assert!(t.label.contains(&the));
        // Word "the" is a leaf whose parent is DT.
        let widx = t.label.iter().position(|&l| l == the).unwrap();
        assert_eq!(t.first_child[widx], NONE);
        let dt = c.interner().get("DT").unwrap().raw();
        assert_eq!(t.label[t.parent[widx] as usize], dt);
    }

    #[test]
    fn preorder_contiguity_and_ordinals() {
        let c = parse_str(SRC).unwrap();
        let img = build_image(&c);
        let t = &img.trees[0];
        // Every child region is inside its parent's subtree range.
        for i in 0..t.len() {
            let mut ch = t.first_child[i];
            while ch != NONE {
                assert!(ch as usize > i);
                assert!(t.subtree_end[ch as usize] <= t.subtree_end[i]);
                ch = t.next_sibling[ch as usize];
            }
            assert!(t.fl[i] >= 1 && t.ll[i] >= t.fl[i]);
        }
        // Root spans all terminals.
        assert_eq!(t.fl[0], 1);
        assert_eq!(t.ll[0], 4);
        assert_eq!(t.subtree_end[0] as usize, t.len());
        // leaf_at is consistent.
        for (k, &leaf) in t.leaf_at.iter().enumerate() {
            assert_eq!(t.fl[leaf as usize], k as u32 + 1);
        }
    }

    #[test]
    fn postings_index_trees() {
        let src = format!("{SRC}\n( (S (NP (PRP he)) (VP (VBD left))) )");
        let c = parse_str(&src).unwrap();
        let img = build_image(&c);
        let saw = c.interner().get("saw").unwrap().raw();
        let vbd = c.interner().get("VBD").unwrap().raw();
        assert_eq!(img.postings[&saw], [0]);
        assert_eq!(img.postings[&vbd], [0, 1]);
        let he = c.interner().get("he").unwrap().raw();
        assert_eq!(img.postings[&he], [1]);
    }

    #[test]
    fn encode_decode_round_trip() {
        let c = parse_str(SRC).unwrap();
        let img = build_image(&c);
        let bytes = encode(&img);
        let back = decode(&bytes).unwrap();
        assert_eq!(back.trees.len(), img.trees.len());
        let (a, b) = (&img.trees[0], &back.trees[0]);
        assert_eq!(a.label, b.label);
        assert_eq!(a.parent, b.parent);
        assert_eq!(a.first_child, b.first_child);
        assert_eq!(a.next_sibling, b.next_sibling);
        assert_eq!(a.fl, b.fl);
        assert_eq!(a.ll, b.ll);
        assert_eq!(a.subtree_end, b.subtree_end);
        assert_eq!(a.leaf_at, b.leaf_at);
        assert_eq!(back.postings, img.postings);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(b"nope").is_err());
        assert!(decode(b"LTG2\x01\x00\x00\x00").is_err());
        let c = parse_str(SRC).unwrap();
        let mut bytes = encode(&build_image(&c));
        bytes.push(0);
        assert!(decode(&bytes).is_err());
    }
}
