//! Log-bucketed latency histograms.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The number of power-of-two buckets. Bucket 0 holds the value 0;
/// bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`, so 64 buckets
/// cover the full `u64` range of nanosecond latencies.
const BUCKETS: usize = 64;

/// A lock-free latency histogram with power-of-two buckets.
///
/// Recording is one relaxed `fetch_add` into the value's log2 bucket
/// (plus count/sum/max bookkeeping) — cheap enough for per-request
/// call sites and safe from any thread. Quantiles are *read-side*
/// work: [`Histogram::snapshot`] copies the buckets and resolves
/// p50/p90/p99 to the upper bound of the covering bucket, clamped to
/// the exact observed maximum. The log-bucket scheme bounds the
/// relative quantile error at 2×, which is ample for latency
/// reporting where the interesting differences are orders of
/// magnitude.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// The bucket a value lands in: 0 for 0, else `floor(log2 v) + 1`.
#[inline]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The largest value bucket `i` can hold.
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= BUCKETS {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record a duration, in nanoseconds (saturating past ~584 years).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// The number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A consistent-enough point-in-time copy with quantiles resolved.
    ///
    /// Concurrent writers may land between the bucket loads; the
    /// snapshot is exact whenever the histogram is quiescent (the only
    /// time quantiles are worth reading).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        let max = self.max.load(Ordering::Relaxed);
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            // The smallest rank covering fraction `q` of observations.
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    return bucket_upper(i).min(max);
                }
            }
            max
        };
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max,
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
        }
    }
}

/// A point-in-time view of a [`Histogram`] with quantiles resolved.
///
/// Quantiles are upper bounds of their covering log-bucket, clamped
/// to the observed maximum, so `p50 ≤ p90 ≤ p99 ≤ max` always holds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all recorded values (wrapping only past `u64::MAX`).
    pub sum: u64,
    /// Exact largest recorded value.
    pub max: u64,
    /// 50th-percentile estimate.
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean of the recorded values, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        // Every bucket's upper bound maps back into that bucket.
        for i in 1..BUCKETS {
            assert_eq!(bucket_of(bucket_upper(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap, HistogramSnapshot::default());
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn quantiles_are_monotonic_and_bounded_by_max() {
        let h = Histogram::new();
        for v in [3u64, 17, 1000, 65_000, 1_000_000, 1_000_001, 12] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.max, 1_000_001);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
        // The p50 of 7 values is the 4th: 1000, whose bucket tops out
        // at 1023.
        assert_eq!(s.p50, 1023);
    }

    #[test]
    fn single_value_pins_all_quantiles() {
        let h = Histogram::new();
        h.record(777);
        let s = h.snapshot();
        assert_eq!((s.p50, s.p90, s.p99, s.max), (777, 777, 777, 777));
        assert_eq!(s.mean(), 777.0);
    }

    #[test]
    fn durations_record_as_nanos() {
        let h = Histogram::new();
        h.record_duration(Duration::from_micros(5));
        assert_eq!(h.snapshot().max, 5_000);
        assert_eq!(h.count(), 1);
    }
}
