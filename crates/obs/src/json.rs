//! Helpers for hand-rendered and hand-parsed JSON.
//!
//! The workspace writes its benchmark and metrics artifacts as
//! hand-built JSON strings (no serde under the offline-shim policy);
//! the one part that is easy to get wrong is string escaping, so it
//! lives here once. The network edge (`lpath-server`) additionally
//! needs to *read* JSON from untrusted peers, so the matching
//! recursive-descent parser lives here too: a plain [`Value`] tree,
//! RFC 8259 syntax, with an explicit nesting-depth bound so hostile
//! input cannot overflow the stack.

/// Escape `s` for embedding inside a JSON string literal (quotes not
/// included). Escapes `"`, `\` and all control characters per RFC
/// 8259; everything else — including multi-byte UTF-8 — passes
/// through unchanged.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value.
///
/// Object members keep their textual order in a plain `Vec` — the
/// workloads here read a handful of known keys per message, so a map
/// would buy nothing, and ordered members make rendered-then-reparsed
/// fixtures byte-stable.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`; see [`Value::as_u64`]
    /// for the integer view used by protocol fields).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, members in textual order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects; `None` on anything else or a missing
    /// key. First occurrence wins on (invalid but parseable) duplicate
    /// keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string inside [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A number that is exactly a `u64` (protocol ids, offsets,
    /// limits). Rejects negatives, fractions and anything above
    /// 2^53 (where `f64` stops being exact).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            &Value::Num(n) if (0.0..=9_007_199_254_740_992.0).contains(&n) && n.fract() == 0.0 => {
                Some(n as u64)
            }
            _ => None,
        }
    }

    /// The bool inside [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            &Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The elements of [`Value::Arr`].
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Why a JSON text failed to parse. The positions are byte offsets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending input.
    pub at: usize,
    /// What went wrong, statically.
    pub msg: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Nesting bound for untrusted input: deeper arrays/objects are a
/// [`ParseError`], not a stack overflow. Protocol messages here nest
/// three or four levels; 64 is generous.
const MAX_DEPTH: usize = 64;

/// Parse one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// [`ParseError`] with the byte offset and reason on any syntactic
/// violation, invalid `\u` escape, non-finite number, or nesting
/// beyond the depth bound (64 levels).
pub fn parse(s: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        b: s.as_bytes(),
        i: 0,
    };
    p.ws();
    let v = p.value(0)?;
    p.ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.i, msg }
    }

    fn ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.b.get(self.i) {
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value(depth + 1)?);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':', "expected ':'")?;
            self.ws();
            members.push((key, self.value(depth + 1)?));
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = *self
                        .b
                        .get(self.i)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(&c) if c < 0x20 => return Err(self.err("raw control in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (the input is a &str, so
                    // boundaries are guaranteed well-formed).
                    let start = self.i;
                    self.i += 1;
                    while self.i < self.b.len() && self.b[self.i] & 0xC0 == 0x80 {
                        self.i += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.b[start..self.i])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    /// `\uXXXX`, including surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require the paired low surrogate.
            if self.b.get(self.i) == Some(&b'\\') && self.b.get(self.i + 1) == Some(&b'u') {
                self.i += 2;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = *self
                .b
                .get(self.i)
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex in \\u escape"))?;
            v = (v << 4) | d;
            self.i += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        // Integer part: a lone 0, or a nonzero digit run.
        match self.b.get(self.i) {
            Some(b'0') => self.i += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.b.get(self.i), Some(b'0'..=b'9')) {
                    self.i += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.b.get(self.i) == Some(&b'.') {
            self.i += 1;
            if !matches!(self.b.get(self.i), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after '.'"));
            }
            while matches!(self.b.get(self.i), Some(b'0'..=b'9')) {
                self.i += 1;
            }
        }
        if matches!(self.b.get(self.i), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.b.get(self.i), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if !matches!(self.b.get(self.i), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.b.get(self.i), Some(b'0'..=b'9')) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("digits are ASCII");
        let n: f64 = text.parse().map_err(|_| self.err("unparseable number"))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Value::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_text_passes_through() {
        assert_eq!(escape("//VBD->NP"), "//VBD->NP");
    }

    #[test]
    fn quotes_backslashes_and_controls_escape() {
        assert_eq!(escape("a\"b\\c\nd\te\u{1}"), "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn multibyte_utf8_is_untouched() {
        assert_eq!(escape("Bäume → Wälder"), "Bäume → Wälder");
    }

    #[test]
    fn parses_every_value_kind() {
        let v = parse(
            r#"{"id": 7, "ok": true, "x": null, "rows": [[1, 2], [3, 4]],
               "q": "//NP", "pi": -3.5e1}"#,
        )
        .unwrap();
        assert_eq!(v.get("id").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("x"), Some(&Value::Null));
        assert_eq!(v.get("q").unwrap().as_str(), Some("//NP"));
        assert_eq!(v.get("pi"), Some(&Value::Num(-35.0)));
        let rows = v.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows[1].as_arr().unwrap()[0].as_u64(), Some(3));
        // Accessors are typed: wrong kind is None, not a panic.
        assert_eq!(v.get("q").unwrap().as_u64(), None);
        assert_eq!(v.get("pi").unwrap().as_u64(), None, "negative/fractional");
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn escapes_round_trip_through_the_parser() {
        for s in ["", "a\"b\\c\nd\te\u{1}", "Bäume → Wälder", "\u{10348}"] {
            let rendered = format!("{{\"k\": \"{}\"}}", escape(s));
            let v = parse(&rendered).unwrap();
            assert_eq!(v.get("k").unwrap().as_str(), Some(s), "{rendered}");
        }
        // Surrogate-pair escapes decode to the astral scalar.
        assert_eq!(
            parse(r#""\ud800\udf48""#).unwrap(),
            Value::Str("\u{10348}".into())
        );
    }

    #[test]
    fn malformed_json_is_a_typed_error() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"abc",
            "{\"a\" 1}",
            "{\"a\": 1,}",
            "[1, 2] x",
            "01",
            "1.",
            "1e",
            "-",
            "\"\\q\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            "\"\u{1}\"",
            "nan",
            "1e999",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn hostile_nesting_is_bounded_not_a_stack_overflow() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert_eq!(parse(&deep).unwrap_err().msg, "nesting too deep");
        // The bound leaves ample room for real protocol messages.
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok());
    }
}
