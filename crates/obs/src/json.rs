//! Helpers for hand-rendered JSON snapshots.
//!
//! The workspace writes its benchmark and metrics artifacts as
//! hand-built JSON strings (no serde under the offline-shim policy);
//! the one part that is easy to get wrong is string escaping, so it
//! lives here once.

/// Escape `s` for embedding inside a JSON string literal (quotes not
/// included). Escapes `"`, `\` and all control characters per RFC
/// 8259; everything else — including multi-byte UTF-8 — passes
/// through unchanged.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_text_passes_through() {
        assert_eq!(escape("//VBD->NP"), "//VBD->NP");
    }

    #[test]
    fn quotes_backslashes_and_controls_escape() {
        assert_eq!(escape("a\"b\\c\nd\te\u{1}"), "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn multibyte_utf8_is_untouched() {
        assert_eq!(escape("Bäume → Wälder"), "Bäume → Wälder");
    }
}
