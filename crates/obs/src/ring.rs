//! A fixed-capacity ring buffer for "last N interesting events" logs.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A bounded, thread-safe ring buffer: pushing to a full ring evicts
/// the oldest entry. Backs the service's slow-query log, where the
/// recent tail is the valuable part and unbounded growth is the
/// failure mode being designed out.
#[derive(Debug)]
pub struct Ring<T> {
    cap: usize,
    inner: Mutex<VecDeque<T>>,
}

impl<T> Ring<T> {
    /// A ring holding at most `cap` entries (at least one).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Ring {
            cap,
            inner: Mutex::new(VecDeque::with_capacity(cap)),
        }
    }

    /// Append an entry, evicting the oldest if the ring is full.
    pub fn push(&self, item: T) {
        let mut q = self.inner.lock().unwrap();
        if q.len() == self.cap {
            q.pop_front();
        }
        q.push_back(item);
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

impl<T: Clone> Ring<T> {
    /// The retained entries, oldest first.
    pub fn snapshot(&self) -> Vec<T> {
        self.inner.lock().unwrap().iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_only_the_newest_cap_entries() {
        let r = Ring::new(3);
        for i in 0..7 {
            r.push(i);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.snapshot(), vec![4, 5, 6]);
    }

    #[test]
    fn zero_capacity_is_promoted_to_one() {
        let r = Ring::new(0);
        r.push("a");
        r.push("b");
        assert_eq!(r.capacity(), 1);
        assert_eq!(r.snapshot(), vec!["b"]);
    }

    #[test]
    fn empty_ring() {
        let r: Ring<u8> = Ring::new(4);
        assert!(r.is_empty());
        assert!(r.snapshot().is_empty());
    }
}
