//! # lpath-obs — observability primitives for the LPath workspace
//!
//! Zero-dependency building blocks (std only, consistent with the
//! offline-shim policy) that the engine, service and benchmark layers
//! share to answer "where does time go":
//!
//! * [`Counter`] — a monotonic, relaxed-ordering atomic counter;
//! * [`Histogram`] — a lock-free log-bucketed latency histogram with
//!   `p50/p90/p99/max` extraction via [`HistogramSnapshot`];
//! * [`Span`] / [`Recorder`] — scope timers that report their elapsed
//!   nanoseconds to a pluggable, thread-cheap sink on drop;
//! * [`Stopwatch`] — the span's manual cousin for straight-line code;
//! * [`Ring`] — a fixed-capacity ring buffer, used by the service's
//!   slow-query log;
//! * [`json`] — string escaping for hand-rendered JSON snapshots.
//!
//! Everything here is safe to call from concurrent request paths: the
//! counters and histogram buckets are relaxed atomics (one
//! `fetch_add` per event), and the ring takes a short mutex only when
//! an entry is actually pushed.
//!
//! ```
//! use lpath_obs::{Histogram, Recorder, Span};
//!
//! let lat = Histogram::new();
//! for _ in 0..100 {
//!     let _span = Span::enter("request", &lat); // records on drop
//! }
//! let snap = lat.snapshot();
//! assert_eq!(snap.count, 100);
//! assert!(snap.p50 <= snap.p90 && snap.p90 <= snap.p99 && snap.p99 <= snap.max);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counter;
mod hist;
mod ring;
mod span;

pub mod json;

pub use counter::Counter;
pub use hist::{Histogram, HistogramSnapshot};
pub use ring::Ring;
pub use span::{NoopRecorder, Recorder, Span, Stopwatch};
