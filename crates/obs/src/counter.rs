//! Monotonic atomic counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonic event counter.
///
/// A thin wrapper over [`AtomicU64`] with relaxed ordering: counters
/// answer "how many", never "in what order", so each bump is a single
/// uncontended `fetch_add` — cheap enough for per-row call sites.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Increment by one.
    #[inline]
    pub fn bump(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_add() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.bump();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn concurrent_bumps_all_land() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.bump();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }
}
