//! Scope timers and the sink they report to.

use std::time::{Duration, Instant};

use crate::Histogram;

/// A sink for completed span timings.
///
/// Deliberately minimal — one method, no registration, `&self` — so a
/// recorder can be a histogram, a counter set, or a test vector, and
/// so recording from many threads needs no coordination beyond what
/// the implementor already does. `Histogram` implements it directly
/// (the span name is implicit in which histogram you hand out), as
/// does [`NoopRecorder`] for uninstrumented paths.
pub trait Recorder {
    /// Accept one completed span: its static name and elapsed time.
    fn record(&self, name: &'static str, nanos: u64);
}

/// A recorder that discards everything — the uninstrumented path.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn record(&self, _name: &'static str, _nanos: u64) {}
}

impl Recorder for Histogram {
    /// Record the elapsed nanoseconds; the name is implied by which
    /// histogram the span was pointed at.
    fn record(&self, _name: &'static str, nanos: u64) {
        Histogram::record(self, nanos);
    }
}

/// A scope timer: started by [`Span::enter`], it reports its elapsed
/// nanoseconds to its [`Recorder`] when dropped (or explicitly via
/// [`Span::finish`], which also returns the measurement).
pub struct Span<'r> {
    name: &'static str,
    start: Instant,
    recorder: &'r dyn Recorder,
}

impl<'r> Span<'r> {
    /// Start timing a named scope.
    pub fn enter(name: &'static str, recorder: &'r dyn Recorder) -> Self {
        Span {
            name,
            start: Instant::now(),
            recorder,
        }
    }

    /// Elapsed nanoseconds so far, without ending the span.
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// End the span now, record it, and return the elapsed nanoseconds.
    pub fn finish(self) -> u64 {
        let nanos = self.elapsed_nanos();
        self.recorder.record(self.name, nanos);
        std::mem::forget(self); // drop would record a second time
        nanos
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.recorder.record(self.name, self.elapsed_nanos());
    }
}

/// A manual timer for straight-line code that wants the number rather
/// than a recorder callback.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }

    /// Elapsed nanoseconds since start (saturating).
    pub fn nanos(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    struct Log(Mutex<Vec<(&'static str, u64)>>);

    impl Recorder for Log {
        fn record(&self, name: &'static str, nanos: u64) {
            self.0.lock().unwrap().push((name, nanos));
        }
    }

    #[test]
    fn span_records_once_on_drop() {
        let log = Log(Mutex::new(Vec::new()));
        {
            let _s = Span::enter("parse", &log);
        }
        let entries = log.0.lock().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].0, "parse");
    }

    #[test]
    fn finish_records_once_and_returns_elapsed() {
        let log = Log(Mutex::new(Vec::new()));
        let nanos = Span::enter("exec", &log).finish();
        let entries = log.0.lock().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0], ("exec", nanos));
    }

    #[test]
    fn span_feeds_histogram_directly() {
        let h = Histogram::new();
        Span::enter("any", &h).finish();
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn stopwatch_is_monotonic() {
        let w = Stopwatch::start();
        let a = w.nanos();
        let b = w.nanos();
        assert!(b >= a);
    }
}
