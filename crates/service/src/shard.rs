//! One shard: a contiguous slice of the corpus with its own relational
//! engine, symbol-presence index and tree-id offset.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use lpath_core::{Engine, QueryCheckpoint, Walker, WalkerCheckpoint};
use lpath_model::{label_tree, Corpus, Label, NodeId};

use crate::plan::{CompiledQuery, ExecStrategy};
use crate::stats::ShardStats;

/// A self-contained partition of the corpus.
///
/// The shard owns a clone of its tree slice (sharing the master's
/// symbol ids via a cloned interner) and a fully built
/// [`lpath_core::Engine`] over it. Match results are reported in
/// *global* tree ids: the shard adds its `base` offset, so
/// concatenating per-shard result sets in shard order reproduces the
/// single-engine document order exactly.
pub struct Shard {
    corpus: Corpus,
    engine: Engine,
    /// Interval labels per tree, computed lazily on the first walker-
    /// fallback query (purely relational workloads never pay for
    /// them) and then reused for the shard's lifetime.
    labels: OnceLock<Vec<Vec<Label>>>,
    base: u32,
    /// Symbol-presence bitset over the shard's interner ids: tag
    /// names, attribute names and attribute values that occur in this
    /// shard's trees.
    present: Vec<u64>,
    /// Process-unique id of this build, used to scope caches to the
    /// shard's *content*: an append rebuilds only the tail shard, so
    /// the other shards keep their build id — and everything cached
    /// against it — across the corpus generation bump.
    build_id: u64,
    build_time: Duration,
}

/// Process-wide build-id counter (never reused, never zero).
static NEXT_BUILD_ID: AtomicU64 = AtomicU64::new(1);

/// A suspended per-shard page enumeration: the execution strategy's
/// own checkpoint ([`lpath_core::QueryCheckpoint`] for the relational
/// engine, [`lpath_core::WalkerCheckpoint`] for the walker fallback)
/// tagged with the [`Shard::build_id`] it belongs to.
///
/// The tag makes misuse loud: a checkpoint resumed against a shard
/// whose content has changed (the tail shard after an
/// `append_ptb`-triggered rebuild) would silently yield rows of the
/// wrong corpus slice, so [`Shard::eval_resume`] panics instead.
/// The service never trips this — its prefix cache scopes entries to
/// the same build id — but the assertion keeps the contract honest
/// for direct callers.
#[derive(Clone, Debug)]
pub struct ShardCheckpoint {
    build_id: u64,
    inner: Resume,
}

impl ShardCheckpoint {
    /// The shard build this checkpoint is valid against.
    pub fn build_id(&self) -> u64 {
        self.build_id
    }
}

#[derive(Clone, Debug)]
enum Resume {
    Engine(QueryCheckpoint),
    Walker(WalkerCheckpoint),
}

impl Shard {
    /// Build a shard over `master.trees()[start..start + len]`.
    pub fn build(master: &Corpus, start: usize, len: usize) -> Shard {
        let t = Instant::now();
        let corpus = master.subcorpus(start..start + len);
        let mut present = vec![0u64; corpus.interner().len().div_ceil(64)];
        let mut mark = |raw: u32| {
            let (word, bit) = (raw as usize / 64, raw as usize % 64);
            if let Some(w) = present.get_mut(word) {
                *w |= 1 << bit;
            }
        };
        for tree in corpus.trees() {
            for id in tree.preorder() {
                let node = tree.node(id);
                mark(node.name.raw());
                for &(aname, aval) in &node.attrs {
                    mark(aname.raw());
                    mark(aval.raw());
                }
            }
        }
        let engine = Engine::build(&corpus);
        Shard {
            corpus,
            engine,
            labels: OnceLock::new(),
            base: start as u32,
            present,
            build_id: NEXT_BUILD_ID.fetch_add(1, Ordering::Relaxed),
            build_time: t.elapsed(),
        }
    }

    /// The shard's first global tree id.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Process-unique id of this shard build (see the field docs).
    pub fn build_id(&self) -> u64 {
        self.build_id
    }

    /// Number of trees owned by the shard.
    pub fn trees(&self) -> usize {
        self.corpus.trees().len()
    }

    /// The shard's relational engine (for inspection).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The shard's corpus slice.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// Can this shard possibly contribute a match, given the query's
    /// required symbols? `false` guarantees the empty answer.
    pub fn may_match(&self, required: &[String]) -> bool {
        required.iter().all(|sym| {
            self.corpus
                .interner()
                .get(sym)
                .is_some_and(|s| self.contains_sym(s.raw()))
        })
    }

    /// The shard's interval labels, computed on first use.
    fn labels(&self) -> &[Vec<Label>] {
        self.labels
            .get_or_init(|| self.corpus.trees().iter().map(label_tree).collect())
    }

    fn contains_sym(&self, raw: u32) -> bool {
        let (word, bit) = (raw as usize / 64, raw as usize % 64);
        self.present.get(word).is_some_and(|w| w & (1 << bit) != 0)
    }

    /// Evaluate a compiled query on this shard, returning matches with
    /// *global* tree ids, in document order.
    ///
    /// The caller is expected to have consulted [`Shard::may_match`];
    /// evaluation is still correct without it, just slower.
    pub fn eval(&self, compiled: &CompiledQuery) -> Vec<(u32, NodeId)> {
        let local = match compiled.strategy {
            ExecStrategy::Relational => match self.engine.query_ast(&compiled.ast) {
                Ok(rows) => rows,
                // The strategy was decided against an engine of the
                // same dialect, so this arm should be unreachable;
                // fall back to the walker rather than fail the query.
                Err(_) => self.walker().eval(&compiled.ast),
            },
            ExecStrategy::Walker => self.walker().eval(&compiled.ast),
        };
        local
            .into_iter()
            .map(|(tid, node)| (tid + self.base, node))
            .collect()
    }

    /// The first `limit` matches of the shard's document-ordered
    /// result — the page bound pushed *into* the shard, so a page-1
    /// request over a large shard pays for a bounded prefix instead of
    /// a full [`Shard::eval`] — plus the checkpoint to continue from
    /// ([`Shard::eval_resume`] with `None`).
    ///
    /// A returned checkpoint of `None` proves the prefix is the
    /// shard's complete result (so does coming back short, which
    /// always yields `None`).
    pub fn eval_limit(
        &self,
        compiled: &CompiledQuery,
        limit: usize,
    ) -> (Vec<(u32, NodeId)>, Option<ShardCheckpoint>) {
        self.eval_resume(compiled, None, limit)
    }

    /// Resume (or begin) the shard's document-ordered enumeration: up
    /// to `limit` further matches after `checkpoint` (from the start
    /// when `None`), with *global* tree ids, plus the checkpoint to
    /// continue from — `None` once the shard is known exhausted.
    /// Concatenating the chunks of successive calls is byte-identical
    /// to [`Shard::eval`]; already-returned matches are never
    /// re-enumerated. On the relational strategy this rides
    /// [`lpath_core::Engine::query_resume`] (a suspended pipeline for
    /// tree-id-ordered anchors, resumable adaptive chunks otherwise);
    /// the walker strategy resumes its tree scan at the next
    /// unvisited tree.
    ///
    /// # Panics
    ///
    /// If `checkpoint` carries a different [`Shard::build_id`] — it
    /// was taken over different shard content and cannot be continued
    /// correctly.
    pub fn eval_resume(
        &self,
        compiled: &CompiledQuery,
        checkpoint: Option<ShardCheckpoint>,
        limit: usize,
    ) -> (Vec<(u32, NodeId)>, Option<ShardCheckpoint>) {
        if let Some(c) = &checkpoint {
            assert_eq!(
                c.build_id, self.build_id,
                "checkpoint belongs to another shard build"
            );
        }
        // Dispatch on the checkpoint's own strategy when resuming (a
        // first call that fell back to the walker must *stay* on the
        // walker), on the compiled strategy when starting fresh. The
        // checkpoint is consumed, not cloned: its pending rows and
        // dedup watermark move straight back into the executor.
        let (local, inner) = match (checkpoint.map(|c| c.inner), compiled.strategy) {
            (Some(Resume::Walker(ck)), _) => {
                let (rows, next) = self.walker().eval_resume(&compiled.ast, Some(ck), limit);
                (rows, next.map(Resume::Walker))
            }
            (Some(Resume::Engine(ck)), _) => {
                let (rows, next) = self
                    .engine
                    .query_resume(&compiled.ast, Some(ck), limit)
                    .expect("a resumed query translated before");
                (rows, next.map(Resume::Engine))
            }
            (None, ExecStrategy::Relational) => {
                match self.engine.query_resume(&compiled.ast, None, limit) {
                    Ok((rows, next)) => (rows, next.map(Resume::Engine)),
                    // The strategy was decided against an engine of
                    // the same dialect, so this arm should be
                    // unreachable; fall back to the walker rather
                    // than fail the query.
                    Err(_) => {
                        let (rows, next) = self.walker().eval_resume(&compiled.ast, None, limit);
                        (rows, next.map(Resume::Walker))
                    }
                }
            }
            (None, ExecStrategy::Walker) => {
                let (rows, next) = self.walker().eval_resume(&compiled.ast, None, limit);
                (rows, next.map(Resume::Walker))
            }
        };
        let rows = local
            .into_iter()
            .map(|(tid, node)| (tid + self.base, node))
            .collect();
        let next = inner.map(|inner| ShardCheckpoint {
            build_id: self.build_id,
            inner,
        });
        (rows, next)
    }

    /// Result count on this shard, without materializing the match
    /// set (the relational path counts through the streaming cursor).
    pub fn count(&self, compiled: &CompiledQuery) -> usize {
        match compiled.strategy {
            ExecStrategy::Relational => match self.engine.count_ast(&compiled.ast) {
                Ok(n) => n,
                Err(_) => self.walker().count(&compiled.ast),
            },
            ExecStrategy::Walker => self.walker().count(&compiled.ast),
        }
    }

    /// Does the query match anywhere on this shard? Stops at the
    /// first witness on both execution strategies.
    pub fn exists(&self, compiled: &CompiledQuery) -> bool {
        match compiled.strategy {
            ExecStrategy::Relational => match self.engine.exists_ast(&compiled.ast) {
                Ok(found) => found,
                Err(_) => self.walker().exists(&compiled.ast),
            },
            ExecStrategy::Walker => self.walker().exists(&compiled.ast),
        }
    }

    fn walker(&self) -> Walker<'_> {
        Walker::with_labels(&self.corpus, self.labels())
    }

    /// Per-shard statistics snapshot.
    pub fn stats(&self) -> ShardStats {
        ShardStats {
            base: self.base,
            trees: self.corpus.trees().len(),
            relation_rows: self.engine.relation_size(),
            build_time: self.build_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::required_symbols;
    use lpath_model::ptb::parse_str;

    const SRC: &str = "\
( (S (NP-SBJ (PRP I)) (VP (VBD saw) (NP (DT the) (NN man))) (. .)) )
( (S (NP-SBJ (DT the) (NN man)) (VP (VBD left))) )
( (S (NP-SBJ (PRP we)) (VP (VBD ran) (NP (NN home)))) )
";

    fn compiled(q: &str) -> CompiledQuery {
        let ast = lpath_syntax::parse(q).unwrap();
        CompiledQuery {
            normalized: ast.to_string(),
            required: required_symbols(&ast),
            ast,
            strategy: ExecStrategy::Relational,
            sql: None,
            statically_empty: false,
        }
    }

    #[test]
    fn shard_offsets_global_tids() {
        let master = parse_str(SRC).unwrap();
        let tail = Shard::build(&master, 1, 2);
        assert_eq!(tail.base(), 1);
        let got = tail.eval(&compiled("//VBD"));
        let tids: Vec<u32> = got.iter().map(|(t, _)| *t).collect();
        assert_eq!(tids, [1, 2]);
    }

    #[test]
    fn presence_pruning_is_sound() {
        let master = parse_str(SRC).unwrap();
        let head = Shard::build(&master, 0, 1);
        let tail = Shard::build(&master, 1, 2);
        // "saw" occurs only in tree 0.
        let q = compiled("//_[@lex=saw]");
        assert!(head.may_match(&q.required));
        assert!(!tail.may_match(&q.required));
        // may_match=false really does mean the empty answer.
        assert_eq!(tail.eval(&q), []);
        // A symbol missing from the whole interner prunes everything.
        let q = compiled("//ZZZ");
        assert!(!head.may_match(&q.required));
        assert!(!tail.may_match(&q.required));
    }

    #[test]
    fn shard_equals_engine_on_its_slice() {
        let master = parse_str(SRC).unwrap();
        let shard = Shard::build(&master, 0, 3);
        let engine = Engine::build(&master);
        for q in ["//NP", "//VBD->NP", "//S{/VP$}", "//_[@lex=the]"] {
            assert_eq!(shard.eval(&compiled(q)), engine.query(q).unwrap(), "{q}");
        }
    }

    #[test]
    fn eval_limit_is_a_prefix_of_eval() {
        let master = parse_str(SRC).unwrap();
        let shard = Shard::build(&master, 1, 2);
        for q in ["//NP", "//VBD->NP", "//_[@lex=saw]", "//ZZZ"] {
            let c = compiled(q);
            let full = shard.eval(&c);
            for limit in 0..=full.len() + 2 {
                let (got, ckpt) = shard.eval_limit(&c, limit);
                assert_eq!(got, full[..limit.min(full.len())], "{q} limit {limit}");
                // Coming back short proves completeness.
                if got.len() < limit {
                    assert!(ckpt.is_none(), "{q} limit {limit}");
                }
            }
        }
        // The walker strategy pushes the bound too.
        let mut c = compiled("//VP/_[last()]");
        c.strategy = ExecStrategy::Walker;
        let full = shard.eval(&c);
        assert_eq!(shard.eval_limit(&c, 1).0, full[..1.min(full.len())]);
    }

    #[test]
    fn eval_resume_extends_without_replay_on_both_strategies() {
        let master = parse_str(SRC).unwrap();
        let shard = Shard::build(&master, 1, 2);
        let mut walker_q = compiled("//VP/_[last()]");
        walker_q.strategy = ExecStrategy::Walker;
        for c in [compiled("//NP"), compiled("//VBD->NP"), walker_q] {
            let full = shard.eval(&c);
            for split in 1..=full.len().max(1) {
                let (head, ckpt) = shard.eval_resume(&c, None, split);
                assert_eq!(head, full[..split.min(full.len())]);
                let Some(ckpt) = ckpt else { continue };
                assert_eq!(ckpt.build_id(), shard.build_id());
                let (tail, end) = shard.eval_resume(&c, Some(ckpt), usize::MAX);
                assert_eq!(tail, full[split.min(full.len())..]);
                assert!(end.is_none());
            }
        }
    }

    #[test]
    #[should_panic(expected = "another shard build")]
    fn resuming_against_a_rebuilt_shard_panics() {
        let master = parse_str(SRC).unwrap();
        let a = Shard::build(&master, 0, 2);
        let b = Shard::build(&master, 0, 2);
        // One VBD per tree: stopping after the first leaves a live
        // checkpoint.
        let c = compiled("//VBD");
        let (_, ckpt) = a.eval_resume(&c, None, 1);
        assert!(ckpt.is_some());
        let _ = b.eval_resume(&c, ckpt, 1);
    }

    #[test]
    fn rebuilds_get_fresh_build_ids() {
        let master = parse_str(SRC).unwrap();
        let a = Shard::build(&master, 0, 2);
        let b = Shard::build(&master, 0, 2);
        assert_ne!(a.build_id(), b.build_id());
        assert_ne!(a.build_id(), 0);
    }

    #[test]
    fn count_and_exists_agree_with_eval() {
        let master = parse_str(SRC).unwrap();
        let shard = Shard::build(&master, 1, 2);
        for q in ["//NP", "//VBD->NP", "//_[@lex=saw]", "//ZZZ"] {
            let c = compiled(q);
            let full = shard.eval(&c);
            assert_eq!(shard.count(&c), full.len(), "{q}");
            assert_eq!(shard.exists(&c), !full.is_empty(), "{q}");
        }
        // Walker strategy too.
        let mut c = compiled("//VP/_[last()]");
        c.strategy = ExecStrategy::Walker;
        assert_eq!(shard.count(&c), shard.eval(&c).len());
        assert_eq!(shard.exists(&c), !shard.eval(&c).is_empty());
    }
}
