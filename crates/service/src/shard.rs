//! One shard: a contiguous slice of the corpus with its own relational
//! engine, symbol-presence index and tree-id offset.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

use lpath_core::{Engine, QueryCheckpoint, Walker, WalkerCheckpoint};
use lpath_model::{label_tree, Corpus, Label, NodeId};
use lpath_relstore::{wire, CursorCheckpoint};
use lpath_syntax::Path;

use crate::agg::AggTables;
use crate::plan::{CompiledQuery, ExecStrategy};
use crate::stats::ShardStats;

/// A self-contained partition of the corpus.
///
/// The shard owns a clone of its tree slice (sharing the master's
/// symbol ids via a cloned interner) and a fully built
/// [`lpath_core::Engine`] over it. Match results are reported in
/// *global* tree ids: the shard adds its `base` offset, so
/// concatenating per-shard result sets in shard order reproduces the
/// single-engine document order exactly.
pub struct Shard {
    corpus: Corpus,
    engine: Engine,
    /// Interval labels per tree, computed lazily on the first walker-
    /// fallback query (purely relational workloads never pay for
    /// them) and then reused for the shard's lifetime.
    labels: OnceLock<Vec<Vec<Label>>>,
    base: u32,
    /// Symbol-presence bitset over the shard's interner ids: tag
    /// names, attribute names and attribute values that occur in this
    /// shard's trees.
    present: Vec<u64>,
    /// Content-derived id of this build, used to scope caches — and
    /// serialized checkpoint tokens — to the shard's *content*: an
    /// append rebuilds only the tail shard, so the other shards keep
    /// their build id (and everything cached against it) across the
    /// corpus generation bump. Derived by a stable hash over the
    /// shard's tree data plus the corpus generation it was built at,
    /// so the same content in a different process yields the same id:
    /// a token minted before a restart resumes against an identical
    /// rebuild and is deterministically rejected against anything
    /// else. (A process-local counter here would make cross-restart
    /// tokens meaningless — and, worse, could spuriously *match* a
    /// fresh process's counter.)
    build_id: u64,
    build_time: Duration,
    /// Aggregate tables precomputed by the build pass: O(1) exact
    /// counts for the tabulated query shapes (see [`crate::agg`]).
    agg: AggTables,
}

/// A suspended per-shard page enumeration: the execution strategy's
/// own checkpoint ([`lpath_core::QueryCheckpoint`] for the relational
/// engine, [`lpath_core::WalkerCheckpoint`] for the walker fallback)
/// tagged with the [`Shard::build_id`] it belongs to.
///
/// The tag makes misuse *recoverable*: a checkpoint resumed against a
/// shard whose content has changed (the tail shard after an
/// `append_ptb`-triggered rebuild) would silently yield rows of the
/// wrong corpus slice, so [`Shard::eval_resume`] returns a typed
/// [`StaleCheckpoint`] error instead — never a panic, because with
/// serialized tokens a stale checkpoint is an expected runtime event
/// (an echoed token from before an append), not a caller bug. The
/// service degrades to a fresh evaluation when it sees one.
#[derive(Clone, Debug)]
pub struct ShardCheckpoint {
    build_id: u64,
    inner: Resume,
}

/// A checkpoint was presented to a shard build it does not belong to
/// — its suspended positions index into different content and cannot
/// be continued correctly. Recoverable: re-evaluate the shard from
/// the start and skip the rows already served.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct StaleCheckpoint {
    /// The build the checkpoint was suspended against.
    pub checkpoint_build: u64,
    /// The build of the shard it was presented to.
    pub shard_build: u64,
}

impl std::fmt::Display for StaleCheckpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stale checkpoint: suspended against shard build {:#x}, presented to {:#x}",
            self.checkpoint_build, self.shard_build
        )
    }
}

impl std::error::Error for StaleCheckpoint {}

impl ShardCheckpoint {
    /// The shard build this checkpoint is valid against.
    pub fn build_id(&self) -> u64 {
        self.build_id
    }

    /// Serialize this checkpoint into `w`: the build id it is scoped
    /// to, the execution strategy, and the strategy's own suspended
    /// state. [`Shard::decode_checkpoint`] reverses it.
    pub fn encode_into(&self, w: &mut wire::Writer) {
        w.u64(self.build_id);
        match &self.inner {
            Resume::Engine(c) => {
                w.u8(0);
                c.encode_into(w);
            }
            Resume::Walker(c) => {
                w.u8(1);
                c.encode_into(w);
            }
        }
    }
}

/// Why a serialized shard checkpoint could not be turned back into a
/// live one.
#[derive(Debug)]
pub enum CheckpointDecodeError {
    /// The bytes are well-formed but belong to a different shard
    /// build — recover by re-evaluating (see [`StaleCheckpoint`]).
    Stale(StaleCheckpoint),
    /// The bytes are truncated, corrupted or structurally inconsistent
    /// with this shard's plan for the query — a protocol error.
    Wire(wire::WireError),
}

impl From<wire::WireError> for CheckpointDecodeError {
    fn from(e: wire::WireError) -> Self {
        CheckpointDecodeError::Wire(e)
    }
}

#[derive(Clone, Debug)]
enum Resume {
    // Boxed: a suspended pipeline is much larger than a walker's
    // tree index, and checkpoints travel inside cache entries.
    Engine(Box<QueryCheckpoint>),
    Walker(WalkerCheckpoint),
}

/// One chunk of a shard's enumeration: rows with *global* tree ids,
/// plus the checkpoint to continue from (`None` once exhausted).
pub type ShardPage = (Vec<(u32, NodeId)>, Option<ShardCheckpoint>);

/// A suspended per-shard *count* sweep: the counting analogue of
/// [`ShardCheckpoint`], scoped to the same build id with the same
/// staleness contract. The relational strategy suspends the streaming
/// cursor itself ([`lpath_relstore::CursorCheckpoint`] — no rows
/// materialized, only the join position and dedup watermark); the
/// walker fallback suspends its tree scan.
#[derive(Clone, Debug)]
pub struct ShardCountCheckpoint {
    build_id: u64,
    inner: CountResume,
}

#[derive(Clone, Debug)]
enum CountResume {
    Engine(CursorCheckpoint),
    Walker(WalkerCheckpoint),
}

impl ShardCountCheckpoint {
    /// The shard build this checkpoint is valid against.
    pub fn build_id(&self) -> u64 {
        self.build_id
    }

    /// Serialize this checkpoint into `w`; mirrors
    /// [`ShardCheckpoint::encode_into`] (build id, strategy tag,
    /// strategy payload). [`Shard::decode_count_checkpoint`] reverses
    /// it.
    pub fn encode_into(&self, w: &mut wire::Writer) {
        w.u64(self.build_id);
        match &self.inner {
            CountResume::Engine(c) => {
                w.u8(0);
                c.encode_into(w);
            }
            CountResume::Walker(c) => {
                w.u8(1);
                c.encode_into(w);
            }
        }
    }
}

/// FNV-1a over `u32` words — the stable content hash behind
/// [`Shard::build_id`]. Seeded with the shard's base tree id and the
/// corpus generation, then fed every node's preorder position data
/// (interned name, child count, attributes): two builds hash equal
/// exactly when they cover the same slice of identical tree data at
/// the same generation — the precise condition under which a
/// suspended checkpoint (whose positions index into the engine built
/// from that data) remains resumable.
struct ContentHash(u64);

impl ContentHash {
    fn new(base: u32, generation: u64) -> Self {
        let mut h = ContentHash(0xcbf2_9ce4_8422_2325);
        h.word(base);
        h.word(generation as u32);
        h.word((generation >> 32) as u32);
        h
    }

    fn word(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The final id; never zero, so callers can use zero as "no build".
    fn finish(&self) -> u64 {
        self.0.max(1)
    }
}

impl Shard {
    /// Build a shard over `master.trees()[start..start + len]`, built
    /// at corpus `generation` (stamped into the content-derived
    /// [`Shard::build_id`]).
    pub fn build(master: &Corpus, start: usize, len: usize, generation: u64) -> Shard {
        let t = Instant::now();
        let corpus = master.subcorpus(start..start + len);
        let mut present = vec![0u64; corpus.interner().len().div_ceil(64)];
        let mut mark = |raw: u32| {
            let (word, bit) = (raw as usize / 64, raw as usize % 64);
            if let Some(w) = present.get_mut(word) {
                *w |= 1 << bit;
            }
        };
        // One pass feeds the symbol-presence bitset, the content hash
        // behind the build id, and the aggregate count tables.
        let mut hash = ContentHash::new(start as u32, generation);
        let mut agg = AggTables::default();
        for tree in corpus.trees() {
            hash.word(tree.len() as u32);
            agg.observe_tree(tree);
            for id in tree.preorder() {
                let node = tree.node(id);
                mark(node.name.raw());
                hash.word(node.name.raw());
                hash.word(node.children.len() as u32);
                for &(aname, aval) in &node.attrs {
                    mark(aname.raw());
                    mark(aval.raw());
                    hash.word(aname.raw());
                    hash.word(aval.raw());
                }
            }
        }
        let engine = Engine::build(&corpus);
        Shard {
            corpus,
            engine,
            labels: OnceLock::new(),
            base: start as u32,
            present,
            build_id: hash.finish(),
            build_time: t.elapsed(),
            agg,
        }
    }

    /// The shard's first global tree id.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Process-unique id of this shard build (see the field docs).
    pub fn build_id(&self) -> u64 {
        self.build_id
    }

    /// Number of trees owned by the shard.
    pub fn trees(&self) -> usize {
        self.corpus.trees().len()
    }

    /// The shard's relational engine (for inspection).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The shard's corpus slice.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// Can this shard possibly contribute a match, given the query's
    /// required symbols? `false` guarantees the empty answer.
    pub fn may_match(&self, required: &[String]) -> bool {
        required.iter().all(|sym| {
            self.corpus
                .interner()
                .get(sym)
                .is_some_and(|s| self.contains_sym(s.raw()))
        })
    }

    /// The shard's interval labels, computed on first use.
    fn labels(&self) -> &[Vec<Label>] {
        self.labels
            .get_or_init(|| self.corpus.trees().iter().map(label_tree).collect())
    }

    fn contains_sym(&self, raw: u32) -> bool {
        let (word, bit) = (raw as usize / 64, raw as usize % 64);
        self.present.get(word).is_some_and(|w| w & (1 << bit) != 0)
    }

    /// Evaluate a compiled query on this shard, returning matches with
    /// *global* tree ids, in document order.
    ///
    /// The caller is expected to have consulted [`Shard::may_match`];
    /// evaluation is still correct without it, just slower.
    pub fn eval(&self, compiled: &CompiledQuery) -> Vec<(u32, NodeId)> {
        let local = match compiled.strategy {
            ExecStrategy::Relational => match self.engine.query_ast(&compiled.ast) {
                Ok(rows) => rows,
                // The strategy was decided against an engine of the
                // same dialect, so this arm should be unreachable;
                // fall back to the walker rather than fail the query.
                Err(_) => self.walker().eval(&compiled.ast),
            },
            ExecStrategy::Walker => self.walker().eval(&compiled.ast),
        };
        local
            .into_iter()
            .map(|(tid, node)| (tid + self.base, node))
            .collect()
    }

    /// Evaluate a batch of compiled queries on this shard with
    /// common-subplan sharing: relational members ride
    /// [`lpath_core::Engine::eval_batch_shared`] (members whose plans
    /// anchor identically share one enumeration of the anchor's
    /// candidate rows), walker members run solo. Per-member output is
    /// byte-identical to [`Shard::eval`] on that query — same rows,
    /// same global tree ids, same document order.
    pub fn eval_multi(
        &self,
        compiled: &[&CompiledQuery],
    ) -> (Vec<Vec<(u32, NodeId)>>, lpath_core::BatchStats) {
        let mut out: Vec<Option<Vec<(u32, NodeId)>>> = Vec::new();
        out.resize_with(compiled.len(), || None);
        let rel_members: Vec<usize> = compiled
            .iter()
            .enumerate()
            .filter(|(_, c)| matches!(c.strategy, ExecStrategy::Relational))
            .map(|(i, _)| i)
            .collect();
        let asts: Vec<&Path> = rel_members.iter().map(|&i| &compiled[i].ast).collect();
        let (results, stats) = self.engine.eval_batch_shared(&asts);
        for (&i, r) in rel_members.iter().zip(results) {
            out[i] = Some(match r {
                Ok(rows) => rows,
                // Same contract as `eval`: the strategy was decided
                // against an engine of the same dialect, so fall back
                // to the walker rather than fail the member.
                Err(_) => self.walker().eval(&compiled[i].ast),
            });
        }
        let rows = compiled
            .iter()
            .zip(out)
            .map(|(c, r)| {
                r.unwrap_or_else(|| self.walker().eval(&c.ast))
                    .into_iter()
                    .map(|(tid, node)| (tid + self.base, node))
                    .collect()
            })
            .collect();
        (rows, stats)
    }

    /// The first `limit` matches of the shard's document-ordered
    /// result — the page bound pushed *into* the shard, so a page-1
    /// request over a large shard pays for a bounded prefix instead of
    /// a full [`Shard::eval`] — plus the checkpoint to continue from
    /// ([`Shard::eval_resume`] with `None`).
    ///
    /// A returned checkpoint of `None` proves the prefix is the
    /// shard's complete result (so does coming back short, which
    /// always yields `None`).
    pub fn eval_limit(&self, compiled: &CompiledQuery, limit: usize) -> ShardPage {
        // Starting fresh presents no checkpoint, so staleness is
        // impossible.
        match self.eval_resume(compiled, None, limit) {
            Ok(page) => page,
            Err(stale) => unreachable!("fresh evaluation reported {stale}"),
        }
    }

    /// Resume (or begin) the shard's document-ordered enumeration: up
    /// to `limit` further matches after `checkpoint` (from the start
    /// when `None`), with *global* tree ids, plus the checkpoint to
    /// continue from — `None` once the shard is known exhausted.
    /// Concatenating the chunks of successive calls is byte-identical
    /// to [`Shard::eval`]; already-returned matches are never
    /// re-enumerated. On the relational strategy this rides
    /// [`lpath_core::Engine::query_resume`] (a suspended pipeline for
    /// tree-id-ordered anchors, resumable adaptive chunks otherwise);
    /// the walker strategy resumes its tree scan at the next
    /// unvisited tree.
    ///
    /// # Errors
    ///
    /// [`StaleCheckpoint`] if `checkpoint` carries a different
    /// [`Shard::build_id`] — it was taken over different shard content
    /// (an echoed token from before an append, say) and cannot be
    /// continued correctly. Nothing has been evaluated when this
    /// returns; the caller recovers by re-enumerating from the start
    /// and skipping the rows it already served.
    pub fn eval_resume(
        &self,
        compiled: &CompiledQuery,
        checkpoint: Option<ShardCheckpoint>,
        limit: usize,
    ) -> Result<ShardPage, StaleCheckpoint> {
        if let Some(c) = &checkpoint {
            if c.build_id != self.build_id {
                return Err(StaleCheckpoint {
                    checkpoint_build: c.build_id,
                    shard_build: self.build_id,
                });
            }
        }
        // Dispatch on the checkpoint's own strategy when resuming (a
        // first call that fell back to the walker must *stay* on the
        // walker), on the compiled strategy when starting fresh. The
        // checkpoint is consumed, not cloned: its pending rows and
        // dedup watermark move straight back into the executor.
        let (local, inner) = match (checkpoint.map(|c| c.inner), compiled.strategy) {
            (Some(Resume::Walker(ck)), _) => {
                let (rows, next) = self.walker().eval_resume(&compiled.ast, Some(ck), limit);
                (rows, next.map(Resume::Walker))
            }
            (Some(Resume::Engine(ck)), _) => {
                let (rows, next) = self
                    .engine
                    .query_resume(&compiled.ast, Some(*ck), limit)
                    .expect("a resumed query translated before");
                (rows, next.map(|c| Resume::Engine(Box::new(c))))
            }
            (None, ExecStrategy::Relational) => {
                match self.engine.query_resume(&compiled.ast, None, limit) {
                    Ok((rows, next)) => (rows, next.map(|c| Resume::Engine(Box::new(c)))),
                    // The strategy was decided against an engine of
                    // the same dialect, so this arm should be
                    // unreachable; fall back to the walker rather
                    // than fail the query.
                    Err(_) => {
                        let (rows, next) = self.walker().eval_resume(&compiled.ast, None, limit);
                        (rows, next.map(Resume::Walker))
                    }
                }
            }
            (None, ExecStrategy::Walker) => {
                let (rows, next) = self.walker().eval_resume(&compiled.ast, None, limit);
                (rows, next.map(Resume::Walker))
            }
        };
        let rows = local
            .into_iter()
            .map(|(tid, node)| (tid + self.base, node))
            .collect();
        let next = inner.map(|inner| ShardCheckpoint {
            build_id: self.build_id,
            inner,
        });
        Ok((rows, next))
    }

    /// Decode a [`ShardCheckpoint`] for `compiled` from untrusted
    /// bytes — the validate half of the token API. The build id is
    /// checked first: a mismatch is [`CheckpointDecodeError::Stale`]
    /// without touching the strategy payload (which is only meaningful
    /// against the build that wrote it). A matching build then
    /// validates the payload structurally against this shard's engine
    /// (see [`lpath_core::Engine::decode_checkpoint`]); any
    /// inconsistency is a recoverable [`CheckpointDecodeError::Wire`],
    /// never a panic.
    pub fn decode_checkpoint(
        &self,
        compiled: &CompiledQuery,
        r: &mut wire::Reader<'_>,
    ) -> Result<ShardCheckpoint, CheckpointDecodeError> {
        let build_id = r.u64()?;
        if build_id != self.build_id {
            return Err(CheckpointDecodeError::Stale(StaleCheckpoint {
                checkpoint_build: build_id,
                shard_build: self.build_id,
            }));
        }
        let inner = match r.u8()? {
            0 => Resume::Engine(Box::new(self.engine.decode_checkpoint(&compiled.ast, r)?)),
            1 => Resume::Walker(WalkerCheckpoint::decode(r, self.corpus.trees().len())?),
            _ => {
                return Err(CheckpointDecodeError::Wire(wire::WireError::Malformed(
                    "shard resume strategy tag",
                )))
            }
        };
        Ok(ShardCheckpoint { build_id, inner })
    }

    /// Result count on this shard, without materializing the match
    /// set (the relational path counts through the streaming cursor).
    pub fn count(&self, compiled: &CompiledQuery) -> usize {
        match compiled.strategy {
            ExecStrategy::Relational => match self.engine.count_ast(&compiled.ast) {
                Ok(n) => n,
                Err(_) => self.walker().count(&compiled.ast),
            },
            ExecStrategy::Walker => self.walker().count(&compiled.ast),
        }
    }

    /// Resume (or begin) a materialization-free count of the shard's
    /// result: up to `budget` further matches counted after
    /// `checkpoint` (from the start when `None`), plus the checkpoint
    /// to continue from — `None` once the shard's count is complete.
    /// Summing the chunks of successive calls equals [`Shard::count`];
    /// no match is ever counted twice. The relational strategy counts
    /// through the suspended cursor (dedup-free plans skip row
    /// materialization entirely); the walker fallback counts its
    /// tree-granular pages.
    ///
    /// # Errors
    ///
    /// [`StaleCheckpoint`] exactly as [`Shard::eval_resume`]: the
    /// checkpoint belongs to different shard content, and nothing has
    /// been counted when this returns.
    pub fn count_resume(
        &self,
        compiled: &CompiledQuery,
        checkpoint: Option<ShardCountCheckpoint>,
        budget: usize,
    ) -> Result<(u64, Option<ShardCountCheckpoint>), StaleCheckpoint> {
        if let Some(c) = &checkpoint {
            if c.build_id != self.build_id {
                return Err(StaleCheckpoint {
                    checkpoint_build: c.build_id,
                    shard_build: self.build_id,
                });
            }
        }
        // Same dispatch contract as `eval_resume`: the checkpoint's
        // own strategy wins when resuming, the compiled strategy
        // decides a fresh start (falling back to the walker if the
        // relational translation unexpectedly fails).
        let (n, inner) = match (checkpoint.map(|c| c.inner), compiled.strategy) {
            (Some(CountResume::Walker(ck)), _) => {
                self.count_resume_walker(&compiled.ast, Some(ck), budget)
            }
            (Some(CountResume::Engine(ck)), _) => {
                let (n, next) = self
                    .engine
                    .count_resume(&compiled.ast, Some(ck), budget)
                    .expect("a resumed count translated before");
                (n, next.map(CountResume::Engine))
            }
            (None, ExecStrategy::Relational) => {
                match self.engine.count_resume(&compiled.ast, None, budget) {
                    Ok((n, next)) => (n, next.map(CountResume::Engine)),
                    Err(_) => self.count_resume_walker(&compiled.ast, None, budget),
                }
            }
            (None, ExecStrategy::Walker) => self.count_resume_walker(&compiled.ast, None, budget),
        };
        let next = inner.map(|inner| ShardCountCheckpoint {
            build_id: self.build_id,
            inner,
        });
        Ok((n, next))
    }

    fn count_resume_walker(
        &self,
        ast: &Path,
        checkpoint: Option<WalkerCheckpoint>,
        budget: usize,
    ) -> (u64, Option<CountResume>) {
        let (rows, next) = self.walker().eval_resume(ast, checkpoint, budget);
        (rows.len() as u64, next.map(CountResume::Walker))
    }

    /// Decode a [`ShardCountCheckpoint`] from untrusted bytes — the
    /// count-token mirror of [`Shard::decode_checkpoint`], with the
    /// same build-id-first staleness gate and structural validation.
    pub fn decode_count_checkpoint(
        &self,
        compiled: &CompiledQuery,
        r: &mut wire::Reader<'_>,
    ) -> Result<ShardCountCheckpoint, CheckpointDecodeError> {
        let build_id = r.u64()?;
        if build_id != self.build_id {
            return Err(CheckpointDecodeError::Stale(StaleCheckpoint {
                checkpoint_build: build_id,
                shard_build: self.build_id,
            }));
        }
        let inner = match r.u8()? {
            0 => CountResume::Engine(self.engine.decode_count_checkpoint(&compiled.ast, r)?),
            1 => CountResume::Walker(WalkerCheckpoint::decode(r, self.corpus.trees().len())?),
            _ => {
                return Err(CheckpointDecodeError::Wire(wire::WireError::Malformed(
                    "shard count resume strategy tag",
                )))
            }
        };
        Ok(ShardCountCheckpoint { build_id, inner })
    }

    /// The shard's precomputed aggregate tables (see [`crate::agg`]).
    pub fn agg(&self) -> &AggTables {
        &self.agg
    }

    /// Does the query match anywhere on this shard? Stops at the
    /// first witness on both execution strategies.
    pub fn exists(&self, compiled: &CompiledQuery) -> bool {
        match compiled.strategy {
            ExecStrategy::Relational => match self.engine.exists_ast(&compiled.ast) {
                Ok(found) => found,
                Err(_) => self.walker().exists(&compiled.ast),
            },
            ExecStrategy::Walker => self.walker().exists(&compiled.ast),
        }
    }

    fn walker(&self) -> Walker<'_> {
        Walker::with_labels(&self.corpus, self.labels())
    }

    /// Per-shard statistics snapshot.
    pub fn stats(&self) -> ShardStats {
        ShardStats {
            base: self.base,
            trees: self.corpus.trees().len(),
            relation_rows: self.engine.relation_size(),
            build_time: self.build_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::required_symbols;
    use lpath_model::ptb::parse_str;

    const SRC: &str = "\
( (S (NP-SBJ (PRP I)) (VP (VBD saw) (NP (DT the) (NN man))) (. .)) )
( (S (NP-SBJ (DT the) (NN man)) (VP (VBD left))) )
( (S (NP-SBJ (PRP we)) (VP (VBD ran) (NP (NN home)))) )
";

    fn compiled(q: &str) -> CompiledQuery {
        let ast = lpath_syntax::parse(q).unwrap();
        CompiledQuery {
            normalized: ast.to_string(),
            required: required_symbols(&ast),
            fast: crate::agg::classify(&ast),
            ast,
            strategy: ExecStrategy::Relational,
            sql: None,
            statically_empty: false,
        }
    }

    #[test]
    fn shard_offsets_global_tids() {
        let master = parse_str(SRC).unwrap();
        let tail = Shard::build(&master, 1, 2, 0);
        assert_eq!(tail.base(), 1);
        let got = tail.eval(&compiled("//VBD"));
        let tids: Vec<u32> = got.iter().map(|(t, _)| *t).collect();
        assert_eq!(tids, [1, 2]);
    }

    #[test]
    fn presence_pruning_is_sound() {
        let master = parse_str(SRC).unwrap();
        let head = Shard::build(&master, 0, 1, 0);
        let tail = Shard::build(&master, 1, 2, 0);
        // "saw" occurs only in tree 0.
        let q = compiled("//_[@lex=saw]");
        assert!(head.may_match(&q.required));
        assert!(!tail.may_match(&q.required));
        // may_match=false really does mean the empty answer.
        assert_eq!(tail.eval(&q), []);
        // A symbol missing from the whole interner prunes everything.
        let q = compiled("//ZZZ");
        assert!(!head.may_match(&q.required));
        assert!(!tail.may_match(&q.required));
    }

    #[test]
    fn shard_equals_engine_on_its_slice() {
        let master = parse_str(SRC).unwrap();
        let shard = Shard::build(&master, 0, 3, 0);
        let engine = Engine::build(&master);
        for q in ["//NP", "//VBD->NP", "//S{/VP$}", "//_[@lex=the]"] {
            assert_eq!(shard.eval(&compiled(q)), engine.query(q).unwrap(), "{q}");
        }
    }

    #[test]
    fn eval_multi_matches_solo_eval_across_strategies() {
        let master = parse_str(SRC).unwrap();
        let shard = Shard::build(&master, 1, 2, 0);
        let mut walker_q = compiled("//VP/_[last()]");
        walker_q.strategy = ExecStrategy::Walker;
        let queries = [
            compiled("//NP"),
            compiled("//NP[not(//DT)]"),
            walker_q,
            compiled("//VBD->NP"),
        ];
        let refs: Vec<&CompiledQuery> = queries.iter().collect();
        let (rows, _) = shard.eval_multi(&refs);
        assert_eq!(rows.len(), queries.len());
        for (c, got) in queries.iter().zip(&rows) {
            assert_eq!(got, &shard.eval(c), "{}", c.normalized);
        }
    }

    #[test]
    fn eval_limit_is_a_prefix_of_eval() {
        let master = parse_str(SRC).unwrap();
        let shard = Shard::build(&master, 1, 2, 0);
        for q in ["//NP", "//VBD->NP", "//_[@lex=saw]", "//ZZZ"] {
            let c = compiled(q);
            let full = shard.eval(&c);
            for limit in 0..=full.len() + 2 {
                let (got, ckpt) = shard.eval_limit(&c, limit);
                assert_eq!(got, full[..limit.min(full.len())], "{q} limit {limit}");
                // Coming back short proves completeness.
                if got.len() < limit {
                    assert!(ckpt.is_none(), "{q} limit {limit}");
                }
            }
        }
        // The walker strategy pushes the bound too.
        let mut c = compiled("//VP/_[last()]");
        c.strategy = ExecStrategy::Walker;
        let full = shard.eval(&c);
        assert_eq!(shard.eval_limit(&c, 1).0, full[..1.min(full.len())]);
    }

    #[test]
    fn eval_resume_extends_without_replay_on_both_strategies() {
        let master = parse_str(SRC).unwrap();
        let shard = Shard::build(&master, 1, 2, 0);
        let mut walker_q = compiled("//VP/_[last()]");
        walker_q.strategy = ExecStrategy::Walker;
        for c in [compiled("//NP"), compiled("//VBD->NP"), walker_q] {
            let full = shard.eval(&c);
            for split in 1..=full.len().max(1) {
                let (head, ckpt) = shard.eval_resume(&c, None, split).unwrap();
                assert_eq!(head, full[..split.min(full.len())]);
                let Some(ckpt) = ckpt else { continue };
                assert_eq!(ckpt.build_id(), shard.build_id());
                let (tail, end) = shard.eval_resume(&c, Some(ckpt), usize::MAX).unwrap();
                assert_eq!(tail, full[split.min(full.len())..]);
                assert!(end.is_none());
            }
        }
    }

    #[test]
    fn resuming_against_a_different_build_is_a_typed_error() {
        let master = parse_str(SRC).unwrap();
        let a = Shard::build(&master, 0, 2, 0);
        // Same slice, different generation: different content stamp.
        let b = Shard::build(&master, 0, 2, 1);
        // One VBD per tree: stopping after the first leaves a live
        // checkpoint.
        let c = compiled("//VBD");
        let (_, ckpt) = a.eval_resume(&c, None, 1).unwrap();
        let ckpt = ckpt.unwrap();
        let stale = b.eval_resume(&c, Some(ckpt), 1).unwrap_err();
        assert_eq!(stale.checkpoint_build, a.build_id());
        assert_eq!(stale.shard_build, b.build_id());
    }

    #[test]
    fn build_ids_derive_from_content() {
        let master = parse_str(SRC).unwrap();
        // Identical content at the same generation: the same id, even
        // across separate builds (the cross-restart resume guarantee).
        let a = Shard::build(&master, 0, 2, 0);
        let b = Shard::build(&master, 0, 2, 0);
        assert_eq!(a.build_id(), b.build_id());
        assert_ne!(a.build_id(), 0);
        // Different content, base, or generation: different ids.
        assert_ne!(a.build_id(), Shard::build(&master, 0, 3, 0).build_id());
        assert_ne!(a.build_id(), Shard::build(&master, 1, 2, 0).build_id());
        assert_ne!(a.build_id(), Shard::build(&master, 0, 2, 1).build_id());
    }

    #[test]
    fn checkpoints_round_trip_through_the_wire() {
        let master = parse_str(SRC).unwrap();
        let shard = Shard::build(&master, 0, 3, 0);
        let mut walker_q = compiled("//VP/_[last()]");
        walker_q.strategy = ExecStrategy::Walker;
        for c in [compiled("//NP"), walker_q] {
            let full = shard.eval(&c);
            let (head, ckpt) = shard.eval_resume(&c, None, 1).unwrap();
            let ckpt = ckpt.expect("more rows remain");
            let mut w = wire::Writer::new();
            ckpt.encode_into(&mut w);
            let bytes = w.into_bytes();
            let mut r = wire::Reader::new(&bytes);
            let decoded = match shard.decode_checkpoint(&c, &mut r) {
                Ok(d) => d,
                Err(e) => panic!("decode failed: {e:?}"),
            };
            assert!(r.finished());
            let (tail, _) = shard.eval_resume(&c, Some(decoded), usize::MAX).unwrap();
            let mut joined = head.clone();
            joined.extend(tail);
            assert_eq!(joined, full);
        }
    }

    #[test]
    fn decoding_against_a_rebuilt_shard_reports_stale() {
        let master = parse_str(SRC).unwrap();
        let a = Shard::build(&master, 0, 3, 0);
        let b = Shard::build(&master, 0, 3, 7);
        let c = compiled("//NP");
        let (_, ckpt) = a.eval_resume(&c, None, 1).unwrap();
        let mut w = wire::Writer::new();
        ckpt.unwrap().encode_into(&mut w);
        let bytes = w.into_bytes();
        match b.decode_checkpoint(&c, &mut wire::Reader::new(&bytes)) {
            Err(CheckpointDecodeError::Stale(s)) => {
                assert_eq!(s.checkpoint_build, a.build_id());
                assert_eq!(s.shard_build, b.build_id());
            }
            other => panic!("expected stale, got {other:?}"),
        }
    }

    #[test]
    fn hostile_checkpoint_bytes_never_panic() {
        let master = parse_str(SRC).unwrap();
        let shard = Shard::build(&master, 0, 3, 0);
        let c = compiled("//NP");
        let (_, ckpt) = shard.eval_resume(&c, None, 1).unwrap();
        let mut w = wire::Writer::new();
        ckpt.unwrap().encode_into(&mut w);
        let bytes = w.into_bytes();
        // Every truncation decodes to an error, not a panic.
        for cut in 0..bytes.len() {
            let _ = shard.decode_checkpoint(&c, &mut wire::Reader::new(&bytes[..cut]));
        }
        // Every single-byte corruption either decodes (and can then
        // only yield bounded garbage) or errors — never panics.
        for i in 0..bytes.len() {
            for delta in [1u8, 0x80] {
                let mut bad = bytes.clone();
                bad[i] = bad[i].wrapping_add(delta);
                let _ = shard.decode_checkpoint(&c, &mut wire::Reader::new(&bad));
            }
        }
    }

    #[test]
    fn count_and_exists_agree_with_eval() {
        let master = parse_str(SRC).unwrap();
        let shard = Shard::build(&master, 1, 2, 0);
        for q in ["//NP", "//VBD->NP", "//_[@lex=saw]", "//ZZZ"] {
            let c = compiled(q);
            let full = shard.eval(&c);
            assert_eq!(shard.count(&c), full.len(), "{q}");
            assert_eq!(shard.exists(&c), !full.is_empty(), "{q}");
        }
        // Walker strategy too.
        let mut c = compiled("//VP/_[last()]");
        c.strategy = ExecStrategy::Walker;
        assert_eq!(shard.count(&c), shard.eval(&c).len());
        assert_eq!(shard.exists(&c), !shard.eval(&c).is_empty());
    }
}
