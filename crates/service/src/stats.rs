//! Service observability: lock-free counters and their snapshot form.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Internal atomic counters, bumped on the hot paths without locks.
#[derive(Default)]
pub(crate) struct Counters {
    pub plan_hits: AtomicU64,
    pub plan_misses: AtomicU64,
    pub result_hits: AtomicU64,
    pub result_misses: AtomicU64,
    pub count_hits: AtomicU64,
    pub count_misses: AtomicU64,
    pub shard_count_hits: AtomicU64,
    pub shard_count_misses: AtomicU64,
    pub batch_dedup: AtomicU64,
    pub queries: AtomicU64,
    pub batches: AtomicU64,
    pub pages: AtomicU64,
    pub page_shards_skipped: AtomicU64,
    pub page_partial_evals: AtomicU64,
    pub page_prefix_hits: AtomicU64,
    pub page_resumes: AtomicU64,
    pub shard_evals: AtomicU64,
    pub shards_pruned: AtomicU64,
    pub appends: AtomicU64,
    pub swaps: AtomicU64,
}

impl Counters {
    pub fn bump(field: &AtomicU64) {
        field.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(field: &AtomicU64, n: u64) {
        field.fetch_add(n, Ordering::Relaxed);
    }
}

/// Per-shard build and size information.
#[derive(Clone, Debug)]
pub struct ShardStats {
    /// First global tree id owned by the shard.
    pub base: u32,
    /// Number of trees in the shard.
    pub trees: usize,
    /// Rows in the shard engine's node relation.
    pub relation_rows: usize,
    /// Wall-clock time of the shard's last (re)build.
    pub build_time: Duration,
}

/// A point-in-time snapshot of the service's state and counters.
#[derive(Clone, Debug)]
pub struct ServiceStats {
    /// Corpus generation (bumped by every append or swap).
    pub generation: u64,
    /// Number of shards.
    pub shards: usize,
    /// Worker threads used for fan-out.
    pub threads: usize,
    /// Total trees across all shards.
    pub trees: usize,
    /// Total node-relation rows across all shards.
    pub relation_rows: usize,
    /// Entries currently in the plan cache.
    pub plan_cache_entries: usize,
    /// Plan-cache hits.
    pub plan_hits: u64,
    /// Plan-cache misses (compilations performed).
    pub plan_misses: u64,
    /// Entries currently in the (generation-scoped, multi-shard)
    /// result cache.
    pub result_cache_entries: usize,
    /// Entries currently in the build-id-scoped per-shard result
    /// cache (complete per-shard match sets).
    pub shard_result_cache_entries: usize,
    /// Entries currently in the build-id-scoped prefix cache
    /// (checkpointed, extendable per-shard prefixes).
    pub prefix_cache_entries: usize,
    /// Result-cache hits.
    pub result_hits: u64,
    /// Result-cache misses (evaluations performed).
    pub result_misses: u64,
    /// Count-cache hits (counts served without any evaluation).
    pub count_hits: u64,
    /// Count-cache misses (counts actually computed).
    pub count_misses: u64,
    /// Per-shard count-cache hits: shard counts reused on a corpus-
    /// level count miss. After an append, every shard but the rebuilt
    /// tail serves its count from here.
    pub shard_count_hits: u64,
    /// Per-shard count-cache misses: shard counts actually recomputed.
    pub shard_count_misses: u64,
    /// Duplicate queries within one batch served from a sibling
    /// occurrence's evaluation (neither a cache hit nor a miss).
    pub batch_dedup: u64,
    /// Queries answered (batch members count individually).
    pub queries: u64,
    /// Batch calls served.
    pub batches: u64,
    /// Paged evaluations served ([`crate::Service::eval_page`]).
    pub pages: u64,
    /// Shards never visited because a page filled before reaching them
    /// (the paging short-circuit at work).
    pub page_shards_skipped: u64,
    /// Page-bounded shard evaluations started **from scratch**
    /// ([`crate::Shard::eval_resume`] without a checkpoint): shards
    /// visited by a page with no cached prefix to build on. In a
    /// page-1 → page-K sweep this stays at one per shard — every
    /// deeper page extends instead (see
    /// [`ServiceStats::page_resumes`]).
    pub page_partial_evals: u64,
    /// Pages (partially) served from a cached per-shard result prefix
    /// without any new enumeration.
    pub page_prefix_hits: u64,
    /// Cached prefixes *extended* through their suspended checkpoint:
    /// the page needed rows beyond the cached depth and only the
    /// missing delta was enumerated — the no-re-enumeration signal of
    /// resumable paging.
    pub page_resumes: u64,
    /// Per-shard evaluations actually executed.
    pub shard_evals: u64,
    /// Per-shard evaluations skipped by symbol-presence pruning.
    pub shards_pruned: u64,
    /// Incremental appends applied.
    pub appends: u64,
    /// Full corpus swaps applied.
    pub swaps: u64,
    /// Per-shard build/size detail.
    pub per_shard: Vec<ShardStats>,
}

impl ServiceStats {
    /// Fraction of compilations avoided by the plan cache.
    pub fn plan_hit_rate(&self) -> f64 {
        rate(self.plan_hits, self.plan_misses)
    }

    /// Fraction of evaluations avoided by the result cache.
    pub fn result_hit_rate(&self) -> f64 {
        rate(self.result_hits, self.result_misses)
    }

    /// Fraction of count computations avoided by the count cache.
    pub fn count_hit_rate(&self) -> f64 {
        rate(self.count_hits, self.count_misses)
    }

    /// Fraction of per-shard evaluations avoided by symbol-presence
    /// pruning.
    pub fn prune_rate(&self) -> f64 {
        rate(self.shards_pruned, self.shard_evals)
    }
}

/// Hit fraction, defined as `0.0` (not NaN) when nothing was looked up
/// yet — a freshly built service must report a finite, serializable
/// rate.
fn rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_totals() {
        let s = ServiceStats {
            generation: 0,
            shards: 1,
            threads: 1,
            trees: 0,
            relation_rows: 0,
            plan_cache_entries: 0,
            plan_hits: 0,
            plan_misses: 0,
            result_cache_entries: 0,
            shard_result_cache_entries: 0,
            prefix_cache_entries: 0,
            result_hits: 3,
            result_misses: 1,
            count_hits: 0,
            count_misses: 0,
            shard_count_hits: 0,
            shard_count_misses: 0,
            batch_dedup: 0,
            queries: 0,
            batches: 0,
            pages: 0,
            page_shards_skipped: 0,
            page_partial_evals: 0,
            page_prefix_hits: 0,
            page_resumes: 0,
            shard_evals: 0,
            shards_pruned: 0,
            appends: 0,
            swaps: 0,
            per_shard: Vec::new(),
        };
        // Zero-lookup rates must be finite zeros, never NaN or a panic.
        assert_eq!(s.plan_hit_rate(), 0.0);
        assert_eq!(s.count_hit_rate(), 0.0);
        assert_eq!(s.prune_rate(), 0.0);
        assert!(s.plan_hit_rate().is_finite());
        assert!((s.result_hit_rate() - 0.75).abs() < 1e-12);
    }
}
