//! Service observability: counters, per-class latency histograms, the
//! slow-query log, and their snapshot forms.
//!
//! The primitives come from `lpath-obs` ([`Counter`], [`Histogram`],
//! [`Ring`]); this module owns which events the service counts, how
//! requests are classified (eval / eval_page / count / eval_batch,
//! each split cache-hit vs miss), and the [`Metrics`] JSON rendering.
//! The long-standing [`ServiceStats`] snapshot API is unchanged — it
//! is now populated from `lpath-obs` counters instead of bespoke
//! atomics.

use std::time::{Duration, Instant};

use lpath_obs::{json, Counter, Histogram, HistogramSnapshot, Ring};

/// Internal monotonic counters, bumped on the hot paths without locks.
#[derive(Default)]
pub(crate) struct Counters {
    pub plan_hits: Counter,
    pub plan_misses: Counter,
    pub result_hits: Counter,
    pub result_misses: Counter,
    pub count_hits: Counter,
    pub count_misses: Counter,
    pub shard_count_hits: Counter,
    pub shard_count_misses: Counter,
    pub count_fast: Counter,
    pub count_resumes: Counter,
    pub hists: Counter,
    pub batch_dedup: Counter,
    pub multi_shared_scans: Counter,
    pub multi_residual_evals: Counter,
    pub admission_rejects: Counter,
    pub queries: Counter,
    pub batches: Counter,
    pub pages: Counter,
    pub page_shards_skipped: Counter,
    pub page_partial_evals: Counter,
    pub page_prefix_hits: Counter,
    pub page_resumes: Counter,
    pub shard_evals: Counter,
    pub shards_pruned: Counter,
    pub statically_empty: Counter,
    pub stale_checkpoints: Counter,
    pub tokens_minted: Counter,
    pub tokens_rejected: Counter,
    pub appends: Counter,
    pub swaps: Counter,
}

/// The service's latency-classified request kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Class {
    Eval,
    EvalPage,
    Count,
    EvalBatch,
    EvalMulti,
    Hist,
}

impl Class {
    pub(crate) fn name(self) -> &'static str {
        match self {
            Class::Eval => "eval",
            Class::EvalPage => "eval_page",
            Class::Count => "count",
            Class::EvalBatch => "eval_batch",
            Class::EvalMulti => "eval_multi",
            Class::Hist => "hist",
        }
    }

    const ALL: [Class; 6] = [
        Class::Eval,
        Class::EvalPage,
        Class::Count,
        Class::EvalBatch,
        Class::EvalMulti,
        Class::Hist,
    ];
}

/// A request in flight: started by [`Instruments::begin`], finished by
/// [`Instruments::finish`]. `None` when metrics are disabled — the
/// uninstrumented path never reads the clock.
pub(crate) struct ReqTimer {
    start: Instant,
    compiled_at: Option<Instant>,
}

impl ReqTimer {
    /// Mark the end of the compile stage (plan-cache lookup included).
    pub(crate) fn mark_compiled(&mut self) {
        self.compiled_at = Some(Instant::now());
    }
}

/// Everything the request paths report into: per-class hit/miss
/// latency histograms plus the slow-query ring.
pub(crate) struct Instruments {
    enabled: bool,
    threshold: Duration,
    /// `[class][hit]` latency histograms, nanoseconds.
    lat: [[Histogram; 2]; 6],
    slow: Ring<SlowQuery>,
}

impl Instruments {
    pub(crate) fn new(enabled: bool, threshold: Duration, slow_capacity: usize) -> Self {
        Instruments {
            enabled,
            threshold,
            lat: std::array::from_fn(|_| std::array::from_fn(|_| Histogram::new())),
            slow: Ring::new(slow_capacity),
        }
    }

    /// Start timing a request; `None` (and zero further cost) when
    /// metrics are disabled.
    pub(crate) fn begin(&self) -> Option<ReqTimer> {
        self.enabled.then(|| ReqTimer {
            start: Instant::now(),
            compiled_at: None,
        })
    }

    /// Finish a request: record its latency under `(class, hit)` and,
    /// past the slow threshold, log it with its trace detail.
    pub(crate) fn finish(
        &self,
        timer: Option<ReqTimer>,
        class: Class,
        hit: bool,
        query: &str,
        fanout: usize,
        resumes: u64,
    ) {
        let Some(timer) = timer else { return };
        let total = timer.start.elapsed();
        self.lat[class as usize][usize::from(hit)].record_duration(total);
        if total >= self.threshold {
            let compile = timer
                .compiled_at
                .map_or(Duration::ZERO, |at| at.duration_since(timer.start));
            self.slow.push(SlowQuery {
                query: clip(query),
                class: class.name(),
                total_ns: as_nanos(total),
                compile_ns: as_nanos(compile),
                execute_ns: as_nanos(total.saturating_sub(compile)),
                fanout,
                resumes,
            });
        }
    }

    pub(crate) fn class_metrics(&self) -> Vec<ClassMetrics> {
        Class::ALL
            .iter()
            .map(|&c| ClassMetrics {
                class: c.name(),
                misses: self.lat[c as usize][0].snapshot(),
                hits: self.lat[c as usize][1].snapshot(),
            })
            .collect()
    }

    pub(crate) fn slow_snapshot(&self) -> Vec<SlowQuery> {
        self.slow.snapshot()
    }

    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }
}

fn as_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Bound slow-log query text (batches join many queries).
fn clip(q: &str) -> String {
    const MAX: usize = 256;
    if q.len() <= MAX {
        return q.to_string();
    }
    let cut = (1..=MAX)
        .rev()
        .find(|&i| q.is_char_boundary(i))
        .unwrap_or(0);
    format!("{}…", &q[..cut])
}

/// One slow-query log entry: a request whose total latency crossed the
/// configured threshold, with enough trace detail to see where the
/// time went without re-running it.
#[derive(Clone, Debug)]
pub struct SlowQuery {
    /// The query text (batches: the joined texts, clipped).
    pub query: String,
    /// Request class (`eval` / `eval_page` / `count` / `eval_batch`).
    pub class: &'static str,
    /// End-to-end latency, nanoseconds.
    pub total_ns: u64,
    /// Compile stage (parse + plan-cache) share of the total.
    pub compile_ns: u64,
    /// Execution share of the total (everything after compile).
    pub execute_ns: u64,
    /// Shard fan-out width: shards the request actually visited.
    pub fanout: usize,
    /// Checkpoint resumes performed (paged requests extending cached
    /// prefixes through their suspended cursors).
    pub resumes: u64,
}

/// Latency snapshots of one request class, split by cache outcome.
#[derive(Clone, Copy, Debug)]
pub struct ClassMetrics {
    /// Class name (`eval` / `eval_page` / `count` / `eval_batch`).
    pub class: &'static str,
    /// Requests answered from a cache (or batch-deduplicated).
    pub hits: HistogramSnapshot,
    /// Requests that performed evaluation work.
    pub misses: HistogramSnapshot,
}

/// A JSON-renderable metrics snapshot: per-class latency percentiles
/// plus the retained slow-query log. The counter-level view stays on
/// [`ServiceStats`]; this is the latency-distribution side.
#[derive(Clone, Debug)]
pub struct Metrics {
    /// Corpus generation at snapshot time.
    pub generation: u64,
    /// Total queries answered (all classes).
    pub queries: u64,
    /// Whether latency recording was enabled (when `false` the
    /// histograms are structurally present but empty).
    pub enabled: bool,
    /// Per-class latency snapshots, fixed order: eval, eval_page,
    /// count, eval_batch, eval_multi, hist.
    pub classes: Vec<ClassMetrics>,
    /// Counts (and fast histograms) answered straight from the
    /// aggregate tables — the O(index) fast path. Surfaced here (not
    /// only on [`ServiceStats`]) so `:metrics` and the server's
    /// `metrics` method make the fast path observable.
    pub count_fast: u64,
    /// Budgeted count-sweep calls served (`count_resume` /
    /// `count_token`).
    pub count_resumes: u64,
    /// Histogram requests served.
    pub hists: u64,
    /// The slow-query ring's retained entries, oldest first.
    pub slow_queries: Vec<SlowQuery>,
}

impl Metrics {
    /// Render the snapshot as a JSON object string (no external
    /// serializer under the offline-shim policy; strings go through
    /// [`lpath_obs::json::escape`]).
    pub fn to_json(&self) -> String {
        let hist = |h: &HistogramSnapshot| {
            format!(
                "{{\"count\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}, \"mean_ns\": {:.1}}}",
                h.count, h.p50, h.p90, h.p99, h.max, h.mean()
            )
        };
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"generation\": {},\n", self.generation));
        s.push_str(&format!("  \"queries\": {},\n", self.queries));
        s.push_str(&format!("  \"enabled\": {},\n", self.enabled));
        s.push_str("  \"classes\": {\n");
        for (i, c) in self.classes.iter().enumerate() {
            s.push_str(&format!(
                "    \"{}\": {{\"hit\": {}, \"miss\": {}}}{}\n",
                c.class,
                hist(&c.hits),
                hist(&c.misses),
                if i + 1 < self.classes.len() { "," } else { "" }
            ));
        }
        s.push_str("  },\n");
        s.push_str(&format!(
            "  \"aggregation\": {{\"count_fast\": {}, \"count_resumes\": {}, \"hists\": {}}},\n",
            self.count_fast, self.count_resumes, self.hists
        ));
        s.push_str("  \"slow_queries\": [\n");
        for (i, q) in self.slow_queries.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"query\": \"{}\", \"class\": \"{}\", \"total_ns\": {}, \"compile_ns\": {}, \"execute_ns\": {}, \"fanout\": {}, \"resumes\": {}}}{}\n",
                json::escape(&q.query),
                q.class,
                q.total_ns,
                q.compile_ns,
                q.execute_ns,
                q.fanout,
                q.resumes,
                if i + 1 < self.slow_queries.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Per-shard build and size information.
#[derive(Clone, Debug)]
pub struct ShardStats {
    /// First global tree id owned by the shard.
    pub base: u32,
    /// Number of trees in the shard.
    pub trees: usize,
    /// Rows in the shard engine's node relation.
    pub relation_rows: usize,
    /// Wall-clock time of the shard's last (re)build.
    pub build_time: Duration,
}

/// A point-in-time snapshot of the service's state and counters.
#[derive(Clone, Debug)]
pub struct ServiceStats {
    /// Corpus generation (bumped by every append or swap).
    pub generation: u64,
    /// Number of shards.
    pub shards: usize,
    /// Worker threads used for fan-out.
    pub threads: usize,
    /// Total trees across all shards.
    pub trees: usize,
    /// Total node-relation rows across all shards.
    pub relation_rows: usize,
    /// Entries currently in the plan cache.
    pub plan_cache_entries: usize,
    /// Plan-cache hits.
    pub plan_hits: u64,
    /// Plan-cache misses (compilations performed).
    pub plan_misses: u64,
    /// Entries currently in the (generation-scoped, multi-shard)
    /// result cache.
    pub result_cache_entries: usize,
    /// Entries currently in the build-id-scoped per-shard result
    /// cache (complete per-shard match sets).
    pub shard_result_cache_entries: usize,
    /// Entries currently in the build-id-scoped prefix cache
    /// (checkpointed, extendable per-shard prefixes).
    pub prefix_cache_entries: usize,
    /// Result-cache hits.
    pub result_hits: u64,
    /// Result-cache misses (evaluations performed).
    pub result_misses: u64,
    /// Count-cache hits (counts served without any evaluation).
    pub count_hits: u64,
    /// Count-cache misses (counts actually computed).
    pub count_misses: u64,
    /// Per-shard count-cache hits: shard counts reused on a corpus-
    /// level count miss. After an append, every shard but the rebuilt
    /// tail serves its count from here.
    pub shard_count_hits: u64,
    /// Per-shard count-cache misses: shard counts actually recomputed.
    pub shard_count_misses: u64,
    /// Per-shard counts (and fast histograms) answered from the
    /// aggregate tables in O(index lookup): no cache probe, no cursor,
    /// no walker, no materialization.
    pub count_fast: u64,
    /// Budgeted count-sweep calls served
    /// ([`crate::Service::count_resume`] and
    /// [`crate::Service::count_token`]).
    pub count_resumes: u64,
    /// Histogram requests served ([`crate::Service::hist`]).
    pub hists: u64,
    /// Duplicate queries within one batch served from a sibling
    /// occurrence's evaluation (neither a cache hit nor a miss).
    pub batch_dedup: u64,
    /// Batch members (across [`crate::Service::eval_multi`] calls)
    /// whose anchor enumeration was shared with at least one other
    /// member of the same group — the subplan-sharing signal.
    pub multi_shared_scans: u64,
    /// Per-member residual evaluations against shared anchor rows —
    /// the batched-execution work sharing could not remove.
    pub multi_residual_evals: u64,
    /// Cache inserts rejected by the admission policy: the candidate
    /// lost to a fully hot-pinned resident set (see
    /// `crate::cache::GenCache::insert`). A sweep of distinct
    /// one-shot queries shows up here instead of as evictions.
    pub admission_rejects: u64,
    /// Queries answered (batch members count individually).
    pub queries: u64,
    /// Batch calls served.
    pub batches: u64,
    /// Paged evaluations served ([`crate::Service::eval_page`]).
    pub pages: u64,
    /// Shards never visited because a page filled before reaching them
    /// (the paging short-circuit at work).
    pub page_shards_skipped: u64,
    /// Page-bounded shard evaluations started **from scratch**
    /// ([`crate::Shard::eval_resume`] without a checkpoint): shards
    /// visited by a page with no cached prefix to build on. In a
    /// page-1 → page-K sweep this stays at one per shard — every
    /// deeper page extends instead (see
    /// [`ServiceStats::page_resumes`]).
    pub page_partial_evals: u64,
    /// Pages (partially) served from a cached per-shard result prefix
    /// without any new enumeration.
    pub page_prefix_hits: u64,
    /// Cached prefixes *extended* through their suspended checkpoint:
    /// the page needed rows beyond the cached depth and only the
    /// missing delta was enumerated — the no-re-enumeration signal of
    /// resumable paging.
    pub page_resumes: u64,
    /// Per-shard evaluations actually executed.
    pub shard_evals: u64,
    /// Per-shard evaluations skipped by symbol-presence pruning.
    pub shards_pruned: u64,
    /// Requests answered by the static analyzer's constant-empty fast
    /// path: the query was proven empty at compile time, so no shard
    /// was visited and no cache entry was written.
    pub statically_empty: u64,
    /// Stale checkpoints encountered and recovered from: a suspended
    /// enumeration (cached prefix or echoed paging token) presented to
    /// a shard build it does not belong to — the service degraded to a
    /// fresh bounded evaluation instead of resuming. Nonzero values
    /// are expected operational events around appends and restarts,
    /// never errors.
    pub stale_checkpoints: u64,
    /// Serialized paging tokens minted ([`crate::Service::eval_page_token`]).
    pub tokens_minted: u64,
    /// Echoed paging tokens rejected as malformed (truncated,
    /// corrupted, version-skewed, or for a different query) — protocol
    /// errors, as opposed to the recoverable staleness above.
    pub tokens_rejected: u64,
    /// Incremental appends applied.
    pub appends: u64,
    /// Full corpus swaps applied.
    pub swaps: u64,
    /// Per-shard build/size detail.
    pub per_shard: Vec<ShardStats>,
}

impl ServiceStats {
    /// Fraction of compilations avoided by the plan cache.
    pub fn plan_hit_rate(&self) -> f64 {
        rate(self.plan_hits, self.plan_misses)
    }

    /// Fraction of evaluations avoided by the result cache.
    pub fn result_hit_rate(&self) -> f64 {
        rate(self.result_hits, self.result_misses)
    }

    /// Fraction of count computations avoided by the count cache.
    pub fn count_hit_rate(&self) -> f64 {
        rate(self.count_hits, self.count_misses)
    }

    /// Fraction of per-shard evaluations avoided by symbol-presence
    /// pruning.
    pub fn prune_rate(&self) -> f64 {
        rate(self.shards_pruned, self.shard_evals)
    }
}

/// Hit fraction, defined as `0.0` (not NaN) when nothing was looked up
/// yet — a freshly built service must report a finite, serializable
/// rate.
fn rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_totals() {
        let s = ServiceStats {
            generation: 0,
            shards: 1,
            threads: 1,
            trees: 0,
            relation_rows: 0,
            plan_cache_entries: 0,
            plan_hits: 0,
            plan_misses: 0,
            result_cache_entries: 0,
            shard_result_cache_entries: 0,
            prefix_cache_entries: 0,
            result_hits: 3,
            result_misses: 1,
            count_hits: 0,
            count_misses: 0,
            shard_count_hits: 0,
            shard_count_misses: 0,
            count_fast: 0,
            count_resumes: 0,
            hists: 0,
            batch_dedup: 0,
            multi_shared_scans: 0,
            multi_residual_evals: 0,
            admission_rejects: 0,
            queries: 0,
            batches: 0,
            pages: 0,
            page_shards_skipped: 0,
            page_partial_evals: 0,
            page_prefix_hits: 0,
            page_resumes: 0,
            shard_evals: 0,
            shards_pruned: 0,
            statically_empty: 0,
            stale_checkpoints: 0,
            tokens_minted: 0,
            tokens_rejected: 0,
            appends: 0,
            swaps: 0,
            per_shard: Vec::new(),
        };
        // Zero-lookup rates must be finite zeros, never NaN or a panic.
        assert_eq!(s.plan_hit_rate(), 0.0);
        assert_eq!(s.count_hit_rate(), 0.0);
        assert_eq!(s.prune_rate(), 0.0);
        assert!(s.plan_hit_rate().is_finite());
        assert!((s.result_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn disabled_instruments_record_nothing() {
        let instr = Instruments::new(false, Duration::ZERO, 4);
        let t = instr.begin();
        assert!(t.is_none());
        instr.finish(t, Class::Eval, false, "//A", 3, 0);
        assert!(instr
            .class_metrics()
            .iter()
            .all(|c| c.hits.count == 0 && c.misses.count == 0));
        assert!(instr.slow_snapshot().is_empty());
    }

    #[test]
    fn slow_queries_cross_the_threshold_with_stages() {
        let instr = Instruments::new(true, Duration::ZERO, 4);
        let mut t = instr.begin();
        if let Some(t) = t.as_mut() {
            t.mark_compiled();
        }
        instr.finish(t, Class::EvalPage, false, "//VP//NP", 2, 5);
        let slow = instr.slow_snapshot();
        assert_eq!(slow.len(), 1);
        let q = &slow[0];
        assert_eq!((q.class, q.fanout, q.resumes), ("eval_page", 2, 5));
        assert!(q.total_ns >= q.compile_ns);
        assert_eq!(q.total_ns, q.compile_ns + q.execute_ns);
        // And the latency landed in the eval_page miss histogram.
        let classes = instr.class_metrics();
        let page = classes.iter().find(|c| c.class == "eval_page").unwrap();
        assert_eq!(page.misses.count, 1);
        assert_eq!(page.hits.count, 0);
    }

    #[test]
    fn an_unreachable_threshold_logs_nothing() {
        let instr = Instruments::new(true, Duration::from_hours(1), 4);
        let t = instr.begin();
        instr.finish(t, Class::Count, true, "//A", 1, 0);
        assert!(instr.slow_snapshot().is_empty());
        let classes = instr.class_metrics();
        let count = classes.iter().find(|c| c.class == "count").unwrap();
        assert_eq!(count.hits.count, 1);
    }

    #[test]
    fn metrics_render_valid_shape() {
        let instr = Instruments::new(true, Duration::ZERO, 4);
        instr.finish(instr.begin(), Class::Eval, false, "//A \"quoted\"", 4, 0);
        let m = Metrics {
            generation: 1,
            queries: 1,
            enabled: true,
            classes: instr.class_metrics(),
            count_fast: 2,
            count_resumes: 1,
            hists: 1,
            slow_queries: instr.slow_snapshot(),
        };
        let j = m.to_json();
        for key in [
            "\"generation\"",
            "\"classes\"",
            "\"eval\"",
            "\"eval_page\"",
            "\"count\"",
            "\"eval_batch\"",
            "\"eval_multi\"",
            "\"hist\"",
            "\"aggregation\"",
            "\"count_fast\": 2",
            "\"p50_ns\"",
            "\"p90_ns\"",
            "\"p99_ns\"",
            "\"max_ns\"",
            "\"slow_queries\"",
            "\\\"quoted\\\"",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }

    #[test]
    fn clip_respects_char_boundaries() {
        let long = "ä".repeat(300);
        let clipped = clip(&long);
        assert!(clipped.len() <= 260);
        assert!(clipped.ends_with('…'));
        assert_eq!(clip("short"), "short");
    }
}
