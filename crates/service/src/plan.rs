//! Query compilation: parse once, decide the execution strategy once,
//! extract the shard-pruning requirements once.
//!
//! A [`CompiledQuery`] is corpus-generation-scoped: the service's plan
//! cache maps normalized query text to one of these, so each distinct
//! query pays for parsing, SQL translation and requirement analysis a
//! single time per corpus generation, however many times (and over
//! however many shards) it is evaluated.

use lpath_syntax::{Axis, CmpOp, NodeTest, Path, Pred};

use crate::agg::FastClass;

/// How a compiled query executes on each shard — mirroring
/// [`lpath_core::Engine`]'s fallback contract: everything the
/// relational translation accepts runs as indexed joins; the rest
/// (e.g. `position()`, `-or-self` closures, count thresholds) falls
/// back to the tree walker, which covers the full language.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ExecStrategy {
    /// Translate to conjunctive SQL and run on the shard's relational
    /// engine.
    Relational,
    /// Evaluate with the tree walker over the shard's labels.
    Walker,
}

/// A query compiled once and shared across shards and requests.
#[derive(Clone, Debug)]
pub struct CompiledQuery {
    /// The canonical (display-form) query text; the plan-cache key.
    pub normalized: String,
    /// The parsed query.
    pub ast: Path,
    /// Chosen execution strategy.
    pub strategy: ExecStrategy,
    /// The SQL the relational engine executes, when [`ExecStrategy::Relational`]
    /// (with symbolic names resolved, as [`lpath_core::Engine::sql`] renders it).
    pub sql: Option<String>,
    /// Symbols that must occur in a shard for it to contribute any
    /// match — the shard-pruning requirements (conservative, positive
    /// conjunctive context only).
    pub required: Vec<String>,
    /// The query's aggregate-table classification, when its shape is
    /// one the per-shard tables answer exactly ([`crate::agg::classify`]):
    /// counts and histograms are then O(index) per shard, skipping
    /// caches, cursors and walkers alike.
    pub fast: Option<FastClass>,
    /// The static analyzer proved the query empty against the master
    /// corpus vocabulary at compile time: every request path returns
    /// the empty answer without visiting a shard or writing a cache
    /// entry. Sound because the plan cache is cleared on every corpus
    /// mutation (append and swap both invalidate generation-scoped
    /// state), so a cached verdict never outlives the vocabulary it
    /// was proven against.
    pub statically_empty: bool,
}

/// Collect the conservative symbol requirements of a query: tag names
/// and attribute-value literals that every match must witness. A shard
/// whose symbol table lacks any of them cannot contribute results.
///
/// Requirements propagate only through *positively conjunctive*
/// constructs (path steps, scopes, `and`, positive existence). An `or`
/// branch, anything under a `not(..)` (except a directly nested double
/// negation), a `count(..) = 0`-style absence test and `position()`
/// contribute nothing, so pruning never changes answers — it only
/// skips shards that would have returned the empty set anyway.
pub fn required_symbols(path: &Path) -> Vec<String> {
    let mut out = Vec::new();
    collect_path(path, &mut out);
    out.sort();
    out.dedup();
    out
}

fn collect_path(path: &Path, out: &mut Vec<String>) {
    for step in &path.steps {
        if step.axis != Axis::Attribute {
            if let NodeTest::Tag(tag) = &step.test {
                out.push(tag.clone());
            }
        }
        for pred in &step.predicates {
            collect_pred(pred, out);
        }
    }
    if let Some(scope) = &path.scope {
        collect_path(scope, out);
    }
}

fn collect_pred(pred: &Pred, out: &mut Vec<String>) {
    match pred {
        Pred::And(a, b) => {
            collect_pred(a, out);
            collect_pred(b, out);
        }
        // Either branch may satisfy the disjunction; a symbol would
        // have to be required by *both* to be required at all. Skip.
        Pred::Or(_, _) => {}
        // A negated subtree requires nothing — except that a directly
        // nested `not(not(p))` is just `p` again. Deeper negations
        // (e.g. a `not` inside an Exists inside this `not`) must NOT
        // re-contribute, so only the direct double flip recurses.
        Pred::Not(inner) => {
            if let Pred::Not(inner2) = &**inner {
                collect_pred(inner2, out);
            }
        }
        Pred::Exists(path) => collect_path(path, out),
        Pred::Cmp { path, op, value } => {
            // The compared path must select a value whatever the op...
            collect_path(path, out);
            // ...and under equality the literal itself must exist.
            if *op == CmpOp::Eq {
                out.push(value.clone());
            }
        }
        Pred::Count { path, op, value } => {
            // Thresholds that imply the path has at least one match:
            // count > n (n is unsigned), count != 0, count = n with
            // n > 0. `count < n` and `count = 0` assert little/absence.
            let existential = match op {
                CmpOp::Gt => true,
                CmpOp::Ne => *value == 0,
                CmpOp::Eq => *value > 0,
                CmpOp::Lt => false,
            };
            if existential {
                collect_path(path, out);
            }
        }
        Pred::StrCmp { path, .. } | Pred::StrLen { path, .. } => {
            collect_path(path, out);
        }
        Pred::Position(_, _) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpath_syntax::parse;

    fn req(q: &str) -> Vec<String> {
        required_symbols(&parse(q).unwrap())
    }

    #[test]
    fn main_path_names_are_required() {
        assert_eq!(req("//VP/VB-->NN"), ["NN", "VB", "VP"]);
        assert_eq!(req("//VP{/NP$}"), ["NP", "VP"]);
    }

    #[test]
    fn wildcards_and_attribute_steps_add_nothing() {
        assert_eq!(req("//_"), Vec::<String>::new());
        // @lex itself is not required (attribute step), but the
        // equality literal is.
        assert_eq!(req("//_[@lex=rapprochement]"), ["rapprochement"]);
    }

    #[test]
    fn negation_contributes_nothing() {
        // Q9: JJ under not() is NOT required.
        assert_eq!(req("//NP[not(//JJ)]"), ["NP"]);
        // Direct double negation restores the requirement.
        assert_eq!(req("//NP[not(not(//JJ))]"), ["JJ", "NP"]);
        // ...but a negation *nested below* a negation must not
        // re-contribute: a tree with no JJ at all matches this.
        assert_eq!(req("//NP[not(//JJ[not(//X)])]"), ["NP"]);
    }

    #[test]
    fn disjunctions_are_skipped() {
        assert_eq!(req("//NP[//Det or //Adj]"), ["NP"]);
        assert_eq!(req("//NP[//Det and //Adj]"), ["Adj", "Det", "NP"]);
    }

    #[test]
    fn inequality_requires_path_not_value() {
        assert_eq!(req("//_[@lex!=dog]"), Vec::<String>::new());
        assert_eq!(req("//X[@lex!=dog]"), ["X"]);
    }

    #[test]
    fn count_existence_requires_path() {
        assert_eq!(req("//NP[count(//Det)>0]"), ["Det", "NP"]);
        // count(..)=0 asserts absence; Det must not be required.
        assert_eq!(req("//NP[count(//Det)=0]"), ["NP"]);
    }
}
