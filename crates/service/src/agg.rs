//! Per-shard aggregate tables: exact counts precomputed at shard-build
//! time, so the single-axis query shapes that dominate counting
//! workloads (the paper's reported measure is the match *count*, not
//! the match set) are answered in O(index lookup) — no walker pass, no
//! cursor, no materialization.
//!
//! The edge and attribute tables ride the shard's existing build pass
//! (the one that already feeds the symbol-presence bitset and the
//! content hash) at one extra hash-map update per node; the span-
//! adjacency and descendant-presence tables each add one linear pass
//! per tree (a labeling and a bottom-up tag-set fold). Stored per
//! shard, they survive [`crate::Service::append_ptb`]
//! untouched on every shard but the rebuilt tail — the same build-id
//! scoping argument as the per-shard count cache, but with zero bytes
//! of cache and zero misses.
//!
//! What is tabulated, and the query shape each table answers:
//!
//! | table                | query shape        | example        |
//! |----------------------|--------------------|----------------|
//! | node total/per-tree  | `//_`              | corpus size    |
//! | tag totals/per-tree  | `//TAG`            | `//NP`         |
//! | root tags            | `/TAG`, `/_`       | `/S`           |
//! | attr (name,value)    | `//_[@a=v]`        | `//_[@lex=saw]`|
//! | attr (tag,name,value)| `//TAG[@a=v]`      | `//NN[@lex=man]`|
//! | child-edge pairs     | `//A/B`            | `//VP/NP`      |
//! | sibling-adjacency    | `//A=>B`, `//A<=B` | `//PP=>S`      |
//! | span-adjacency       | `//A->B`, `//A<-B` | `//VB->NP`     |
//! | descendant presence  | `//A[//B]`, `//A[not(//B)]` | `//NP[not(//JJ)]` |
//!
//! Soundness comes in two flavors. The edge tables lean on functional
//! dependencies of the tree shape: a node has exactly one parent, at
//! most one immediate preceding sibling and at most one immediate
//! following sibling, so counting *edges* with the right tag pair
//! counts *distinct output nodes* — the same reverse-functional
//! argument the relational cursor's dedup-free count pushdown makes,
//! collapsed to a table lookup. The span-adjacency and descendant
//! tables have no such dependency (several nodes can immediately
//! precede one node, and a node can hold many same-tag descendants),
//! so there the *build pass* deduplicates: each output node
//! contributes once per **distinct** context tag, making the table
//! entry the distinct-match count directly. The differential property
//! suite (`prop_count`) checks every class against full enumeration
//! on random corpora.

use std::collections::{HashMap, HashSet};

use lpath_model::{label_tree, Interner, Sym, Tree};
use lpath_syntax::{Axis, CmpOp, NodeTest, Path, Pred, Step};

/// A query shape the aggregate tables answer exactly, extracted from
/// the AST once at compile time ([`classify`]) and carried on the
/// compiled query so every shard answers by table lookup.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FastClass {
    /// `//_` — every element node.
    AllNodes,
    /// `//TAG` — every element with this tag.
    Tag(String),
    /// `/_` — every root (one per tree).
    RootAny,
    /// `/TAG` — roots with this tag.
    RootTag(String),
    /// `//_[@a=v]` / `//TAG[@a=v]` — elements carrying the attribute
    /// value, optionally tag-constrained.
    AttrEq {
        /// Constrain the element tag (`None` for the wildcard).
        tag: Option<String>,
        /// Attribute name, interned spelling (with the leading `@`).
        attr: String,
        /// Compared literal value.
        value: String,
    },
    /// `//A/B` — elements tagged `B` whose parent is tagged `A`.
    ChildPair(String, String),
    /// Adjacent-sibling tag pair `(left, right)`: sibling positions
    /// where `left` immediately precedes `right`. Since a node has at
    /// most one immediate sibling on each side, this pair count *is*
    /// the match count of both `//L=>R` (output: the right node) and
    /// the mirrored `//R<=L` (output: the left node).
    AdjacentSibling(String, String),
    /// `//A->B` — elements tagged `B` that immediately *follow* (span-
    /// adjacent, Definition 4.1's `B.left = A.right`) at least one `A`.
    /// Unlike sibling adjacency this relation crosses subtree
    /// boundaries and is not functional, so the table counts distinct
    /// `B` nodes, not edges.
    FollowingPair(String, String),
    /// `//A<-B` — elements tagged `B` that immediately *precede* at
    /// least one `A` (`A.left = B.right`).
    PrecedingPair(String, String),
    /// `//TAG[//D]` / `//_[//D]` — elements (optionally
    /// tag-constrained) with at least one proper descendant tagged `D`.
    HasDescendant {
        /// Constrain the element tag (`None` for the wildcard).
        tag: Option<String>,
        /// Required descendant tag.
        desc: String,
    },
    /// `//TAG[not(//D)]` / `//_[not(//D)]` — elements with **no**
    /// descendant tagged `D`: the tag total minus the
    /// [`FastClass::HasDescendant`] table entry.
    NoDescendant {
        /// Constrain the element tag (`None` for the wildcard).
        tag: Option<String>,
        /// Excluded descendant tag.
        desc: String,
    },
}

/// Classify a query as table-answerable, or `None` for everything the
/// tables do not cover (which then takes the cursor / walker path).
///
/// The accepted shapes are deliberately narrow — absolute, unscoped,
/// unaligned, at most two steps, at most one attribute-equality
/// predicate — because each admitted shape carries a proof that the
/// table count equals the deduplicated match count (see the module
/// docs). Anything outside that proof is rejected, never approximated.
pub fn classify(path: &Path) -> Option<FastClass> {
    if !path.absolute || path.scope.is_some() {
        return None;
    }
    let plain = |s: &Step| !s.left_align && !s.right_align && s.predicates.is_empty();
    match path.steps.as_slice() {
        [s] if plain(s) => match (s.axis, &s.test) {
            (Axis::Descendant, NodeTest::Any) => Some(FastClass::AllNodes),
            (Axis::Descendant, NodeTest::Tag(t)) => Some(FastClass::Tag(t.clone())),
            (Axis::Child, NodeTest::Any) => Some(FastClass::RootAny),
            (Axis::Child, NodeTest::Tag(t)) => Some(FastClass::RootTag(t.clone())),
            _ => None,
        },
        [s] if !s.left_align
            && !s.right_align
            && s.axis == Axis::Descendant
            && s.predicates.len() == 1 =>
        {
            let tag = match &s.test {
                NodeTest::Any => None,
                NodeTest::Tag(t) => Some(t.clone()),
            };
            if let Some((attr, value)) = attr_eq(&s.predicates[0]) {
                return Some(FastClass::AttrEq { tag, attr, value });
            }
            match &s.predicates[0] {
                Pred::Exists(p) => Some(FastClass::HasDescendant {
                    tag,
                    desc: bare_descendant_tag(p)?,
                }),
                Pred::Not(inner) => match &**inner {
                    Pred::Exists(p) => Some(FastClass::NoDescendant {
                        tag,
                        desc: bare_descendant_tag(p)?,
                    }),
                    _ => None,
                },
                _ => None,
            }
        }
        [a, b] if plain(a) && plain(b) && a.axis == Axis::Descendant => {
            let (NodeTest::Tag(ta), NodeTest::Tag(tb)) = (&a.test, &b.test) else {
                return None;
            };
            match b.axis {
                Axis::Child => Some(FastClass::ChildPair(ta.clone(), tb.clone())),
                // `//A=>B`: B with immediate *preceding* sibling A.
                Axis::ImmediateFollowingSibling => {
                    Some(FastClass::AdjacentSibling(ta.clone(), tb.clone()))
                }
                // `//A<=B`: B with immediate *following* sibling A —
                // the same adjacency table, mirrored.
                Axis::ImmediatePrecedingSibling => {
                    Some(FastClass::AdjacentSibling(tb.clone(), ta.clone()))
                }
                // `//A->B` / `//A<-B`: span adjacency — these need the
                // direction-specific distinct-B tables, no mirroring.
                Axis::ImmediateFollowing => Some(FastClass::FollowingPair(ta.clone(), tb.clone())),
                Axis::ImmediatePreceding => Some(FastClass::PrecedingPair(ta.clone(), tb.clone())),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Match `[@name = literal]`: a positive equality on a single
/// attribute step. Returns the attribute name in its interned
/// spelling (leading `@`) plus the literal.
fn attr_eq(p: &Pred) -> Option<(String, String)> {
    let Pred::Cmp {
        path,
        op: CmpOp::Eq,
        value,
    } = p
    else {
        return None;
    };
    if path.absolute || path.scope.is_some() || path.steps.len() != 1 {
        return None;
    }
    let s = &path.steps[0];
    if s.axis != Axis::Attribute || s.left_align || s.right_align || !s.predicates.is_empty() {
        return None;
    }
    match &s.test {
        NodeTest::Tag(t) => Some((format!("@{t}"), value.clone())),
        NodeTest::Any => None,
    }
}

/// Match the existence path `//TAG` — relative, unscoped, a single
/// bare descendant step with a concrete tag. This is the only inner
/// shape the descendant-presence tables answer.
fn bare_descendant_tag(path: &Path) -> Option<String> {
    if path.absolute || path.scope.is_some() || path.steps.len() != 1 {
        return None;
    }
    let s = &path.steps[0];
    if s.axis != Axis::Descendant || s.left_align || s.right_align || !s.predicates.is_empty() {
        return None;
    }
    match &s.test {
        NodeTest::Tag(t) => Some(t.clone()),
        NodeTest::Any => None,
    }
}

/// The precomputed aggregates of one shard's tree slice. Immutable
/// after the build pass; see the module docs for the query shape each
/// table answers.
#[derive(Default, Debug)]
pub struct AggTables {
    nodes_total: u64,
    /// Element count per local tree id (dense — every tree has one).
    nodes_per_tree: Vec<u32>,
    /// Root tag per local tree id.
    roots: Vec<Sym>,
    tag_total: HashMap<Sym, u64>,
    /// Sparse per-tree tag counts: `(local tid, count)`, tid-ascending
    /// — only trees where the tag occurs.
    tag_per_tree: HashMap<Sym, Vec<(u32, u32)>>,
    /// Elements carrying `(@name, value)`, deduplicated per element.
    attr_pair: HashMap<(Sym, Sym), u64>,
    /// Elements tagged `tag` carrying `(@name, value)`.
    attr_triple: HashMap<(Sym, Sym, Sym), u64>,
    /// Parent→child tag edges.
    child_pair: HashMap<(Sym, Sym), u64>,
    /// Immediate-sibling adjacency `(left, right)` tag edges.
    sibling_pair: HashMap<(Sym, Sym), u64>,
    /// `(a, b)`: distinct `b` nodes immediately following (span-
    /// adjacent after) at least one `a` node.
    following_pair: HashMap<(Sym, Sym), u64>,
    /// `(a, b)`: distinct `b` nodes immediately preceding at least one
    /// `a` node.
    preceding_pair: HashMap<(Sym, Sym), u64>,
    /// `(a, d)`: `a`-tagged nodes with ≥1 proper descendant tagged `d`.
    with_desc: HashMap<(Sym, Sym), u64>,
    /// `d`: nodes of *any* tag with ≥1 proper descendant tagged `d`
    /// (the wildcard row of `with_desc`).
    desc_total: HashMap<Sym, u64>,
}

impl AggTables {
    /// Record one tree; called once per tree by the shard build pass,
    /// in local tree order.
    pub(crate) fn observe_tree(&mut self, tree: &Tree) {
        self.nodes_per_tree.push(tree.len() as u32);
        self.roots.push(tree.node(tree.root()).name);
        let tid = (self.nodes_per_tree.len() - 1) as u32;
        for id in tree.preorder() {
            let node = tree.node(id);
            self.nodes_total += 1;
            *self.tag_total.entry(node.name).or_default() += 1;
            let per = self.tag_per_tree.entry(node.name).or_default();
            match per.last_mut() {
                Some(e) if e.0 == tid => e.1 += 1,
                _ => per.push((tid, 1)),
            }
            // Deduplicate attribute pairs per element: the predicate
            // `[@a=v]` is existential, so a (hypothetical) repeated
            // pair still yields one match.
            for (i, &(aname, aval)) in node.attrs.iter().enumerate() {
                if node.attrs[..i].contains(&(aname, aval)) {
                    continue;
                }
                *self.attr_pair.entry((aname, aval)).or_default() += 1;
                *self
                    .attr_triple
                    .entry((node.name, aname, aval))
                    .or_default() += 1;
            }
            for (i, &c) in node.children.iter().enumerate() {
                let child = tree.node(c).name;
                *self.child_pair.entry((node.name, child)).or_default() += 1;
                if let Some(&prev) = i.checked_sub(1).map(|j| &node.children[j]) {
                    let left = tree.node(prev).name;
                    *self.sibling_pair.entry((left, child)).or_default() += 1;
                }
            }
        }
        self.observe_spans(tree);
        self.observe_descendants(tree);
    }

    /// Span-adjacency tables: `//A->B` / `//A<-B`. The relation is
    /// Definition 4.1's boundary equation (`B.left = A.right` for
    /// following), which crosses subtree boundaries and is many-to-
    /// many, so each output node is counted once per *distinct*
    /// context tag on its adjacent boundary — the table entry is the
    /// deduplicated match count by construction.
    fn observe_spans(&mut self, tree: &Tree) {
        let labels = label_tree(tree);
        // Nodes grouped by their span boundaries: `ends[p]` holds the
        // tags of nodes whose interval ends at `p`, `starts[p]` those
        // beginning there. Boundary count ≤ leaves + 1, group size ≤
        // tree depth.
        let mut starts: HashMap<u32, Vec<Sym>> = HashMap::new();
        let mut ends: HashMap<u32, Vec<Sym>> = HashMap::new();
        for (idx, l) in labels.iter().enumerate() {
            let name = tree.node(lpath_model::NodeId(idx as u32)).name;
            starts.entry(l.left).or_default().push(name);
            ends.entry(l.right).or_default().push(name);
        }
        let mut seen: Vec<Sym> = Vec::new();
        for (idx, l) in labels.iter().enumerate() {
            let name = tree.node(lpath_model::NodeId(idx as u32)).name;
            // `//A->B`, output B = this node: distinct tags ending
            // where it starts.
            if let Some(before) = ends.get(&l.left) {
                seen.clear();
                for &a in before {
                    if !seen.contains(&a) {
                        seen.push(a);
                        *self.following_pair.entry((a, name)).or_default() += 1;
                    }
                }
            }
            // `//A<-B`, output B = this node: distinct tags starting
            // where it ends.
            if let Some(after) = starts.get(&l.right) {
                seen.clear();
                for &a in after {
                    if !seen.contains(&a) {
                        seen.push(a);
                        *self.preceding_pair.entry((a, name)).or_default() += 1;
                    }
                }
            }
        }
    }

    /// Descendant-presence tables: `//A[//D]` and (by complement)
    /// `//A[not(//D)]`. One bottom-up pass materializes each node's
    /// *distinct* proper-descendant tag set — the arena is preorder,
    /// so reverse order visits children before parents and every set
    /// is final when its node is tabulated.
    fn observe_descendants(&mut self, tree: &Tree) {
        let n = tree.len();
        let mut sets: Vec<HashSet<Sym>> = vec![HashSet::new(); n];
        for idx in (0..n).rev() {
            let node = tree.node(lpath_model::NodeId(idx as u32));
            let mut set = HashSet::new();
            for &c in &node.children {
                set.insert(tree.node(c).name);
                set.extend(sets[c.index()].iter().copied());
            }
            for &d in &set {
                *self.with_desc.entry((node.name, d)).or_default() += 1;
                *self.desc_total.entry(d).or_default() += 1;
            }
            sets[idx] = set;
        }
    }

    /// Exact match count of a classified query on this shard's slice,
    /// resolving the class's symbol spellings through the shard's
    /// `interner` (an unknown spelling means zero matches). O(hash
    /// lookups); equals `eval().len()` by construction.
    pub fn count(&self, class: &FastClass, interner: &Interner) -> u64 {
        let lookup2 = |m: &HashMap<(Sym, Sym), u64>, a: &str, b: &str| match (
            interner.get(a),
            interner.get(b),
        ) {
            (Some(a), Some(b)) => m.get(&(a, b)).copied().unwrap_or(0),
            _ => 0,
        };
        match class {
            FastClass::AllNodes => self.nodes_total,
            FastClass::RootAny => self.roots.len() as u64,
            FastClass::Tag(t) => interner
                .get(t)
                .and_then(|s| self.tag_total.get(&s))
                .copied()
                .unwrap_or(0),
            FastClass::RootTag(t) => match interner.get(t) {
                Some(s) => self.roots.iter().filter(|&&r| r == s).count() as u64,
                None => 0,
            },
            FastClass::AttrEq { tag, attr, value } => match tag {
                None => lookup2(&self.attr_pair, attr, value),
                Some(tag) => match (interner.get(tag), interner.get(attr), interner.get(value)) {
                    (Some(t), Some(a), Some(v)) => {
                        self.attr_triple.get(&(t, a, v)).copied().unwrap_or(0)
                    }
                    _ => 0,
                },
            },
            FastClass::ChildPair(a, b) => lookup2(&self.child_pair, a, b),
            FastClass::AdjacentSibling(l, r) => lookup2(&self.sibling_pair, l, r),
            FastClass::FollowingPair(a, b) => lookup2(&self.following_pair, a, b),
            FastClass::PrecedingPair(a, b) => lookup2(&self.preceding_pair, a, b),
            FastClass::HasDescendant { tag, desc } => match tag {
                Some(t) => lookup2(&self.with_desc, t, desc),
                None => interner
                    .get(desc)
                    .and_then(|s| self.desc_total.get(&s))
                    .copied()
                    .unwrap_or(0),
            },
            // The complement of the presence table: total carriers of
            // the tag (or all nodes) minus those with the descendant.
            FastClass::NoDescendant { tag, desc } => {
                let with = self.count(
                    &FastClass::HasDescendant {
                        tag: tag.clone(),
                        desc: desc.clone(),
                    },
                    interner,
                );
                let pool = match tag {
                    Some(t) => interner
                        .get(t)
                        .and_then(|s| self.tag_total.get(&s))
                        .copied()
                        .unwrap_or(0),
                    None => self.nodes_total,
                };
                pool - with
            }
        }
    }

    /// Total element nodes in the shard.
    pub fn nodes_total(&self) -> u64 {
        self.nodes_total
    }

    /// Element count per local tree id.
    pub fn nodes_per_tree(&self) -> &[u32] {
        &self.nodes_per_tree
    }

    /// Root tag per local tree id.
    pub fn roots(&self) -> &[Sym] {
        &self.roots
    }

    /// All `(tag, total)` pairs, unordered.
    pub fn tag_totals(&self) -> impl Iterator<Item = (Sym, u64)> + '_ {
        self.tag_total.iter().map(|(&s, &n)| (s, n))
    }

    /// Sparse per-tree counts of one tag: `(local tid, count)`,
    /// tid-ascending; empty when the tag does not occur.
    pub fn tag_per_tree(&self, tag: Sym) -> &[(u32, u32)] {
        self.tag_per_tree.get(&tag).map_or(&[], Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpath_model::ptb::parse_str;
    use lpath_syntax::parse;

    const SRC: &str = "\
( (S (NP (PRP I)) (VP (VBD saw) (NP (DT the) (NN man))) (. .)) )
( (S (NP (DT the) (NN man)) (VP (VBD left))) )
( (FRAG (NP (NN rain)) (NP (NN snow))) )
";

    fn tables() -> (AggTables, lpath_model::Corpus) {
        let corpus = parse_str(SRC).unwrap();
        let mut agg = AggTables::default();
        for tree in corpus.trees() {
            agg.observe_tree(tree);
        }
        (agg, corpus)
    }

    fn class(q: &str) -> FastClass {
        classify(&parse(q).unwrap()).expect(q)
    }

    #[test]
    fn classify_accepts_exactly_the_tabulated_shapes() {
        assert_eq!(class("//_"), FastClass::AllNodes);
        assert_eq!(class("//NP"), FastClass::Tag("NP".into()));
        assert_eq!(class("/S"), FastClass::RootTag("S".into()));
        assert_eq!(class("/_"), FastClass::RootAny);
        assert_eq!(
            class("//_[@lex=saw]"),
            FastClass::AttrEq {
                tag: None,
                attr: "@lex".into(),
                value: "saw".into()
            }
        );
        assert_eq!(
            class("//NN[@lex=man]"),
            FastClass::AttrEq {
                tag: Some("NN".into()),
                attr: "@lex".into(),
                value: "man".into()
            }
        );
        assert_eq!(
            class("//VP/NP"),
            FastClass::ChildPair("VP".into(), "NP".into())
        );
        assert_eq!(
            class("//NP=>VP"),
            FastClass::AdjacentSibling("NP".into(), "VP".into())
        );
        // `//A<=B` counts B nodes *before* an A: the mirrored pair.
        assert_eq!(
            class("//VP<=NP"),
            FastClass::AdjacentSibling("NP".into(), "VP".into())
        );
        // Span adjacency is direction-specific: no mirroring.
        assert_eq!(
            class("//V->NP"),
            FastClass::FollowingPair("V".into(), "NP".into())
        );
        assert_eq!(
            class("//V<-NP"),
            FastClass::PrecedingPair("V".into(), "NP".into())
        );
        assert_eq!(
            class("//NP[//V]"),
            FastClass::HasDescendant {
                tag: Some("NP".into()),
                desc: "V".into()
            }
        );
        assert_eq!(
            class("//NP[not(//V)]"),
            FastClass::NoDescendant {
                tag: Some("NP".into()),
                desc: "V".into()
            }
        );
        assert_eq!(
            class("//_[not(//V)]"),
            FastClass::NoDescendant {
                tag: None,
                desc: "V".into()
            }
        );
        for q in [
            "//S//NP",             // grandparent axis: not an edge table
            "//NP$",               // alignment needs a scope context
            "//S{/VP}",            // scoped
            "//NP[//V/NN]",        // inner path too deep for the table
            "//NP[//V[@lex=a]]",   // inner predicate: not a bare tag
            "//NP[not(//_)]",      // wildcard descendant: not tabulated
            "//NP[not(not(//V))]", // double negation: stays on the walker
            "//NP[@lex!=a]",       // only equality is tabulated
            "//S/VP/NP",           // three steps
            "/S/NP",               // root-anchored pair: not tabulated
            "//_/NP",              // wildcard parent: not a tag edge
        ] {
            assert!(classify(&parse(q).unwrap()).is_none(), "{q}");
        }
    }

    #[test]
    fn table_counts_match_hand_counts() {
        let (agg, corpus) = tables();
        let it = corpus.interner();
        let n = |q: &str| agg.count(&class(q), it);
        assert_eq!(n("//_"), 20);
        assert_eq!(n("//NP"), 5);
        assert_eq!(n("/S"), 2);
        assert_eq!(n("/_"), 3);
        assert_eq!(n("//_[@lex=the]"), 2);
        assert_eq!(n("//NN[@lex=man]"), 2);
        assert_eq!(n("//NP/NN"), 4);
        assert_eq!(n("//NP=>VP"), 2);
        assert_eq!(n("//VP<=NP"), 2); // NPs immediately before a VP
                                      // Span adjacency: `(FRAG (NP rain) (NP snow))` has NP→NP, and
                                      // the VPs in both S trees start where an NP ends.
        assert_eq!(n("//NP->VP"), 2);
        assert_eq!(n("//NP->NP"), 1);
        assert_eq!(n("//VBD->NP"), 1); // `(NP the man)` after `saw`
        assert_eq!(n("//VP<-NP"), 2); // NPs immediately before a VP
                                      // Descendant presence: 5 NPs, 4 hold an NN; 8 of 20 nodes do.
        assert_eq!(n("//NP[//NN]"), 4);
        assert_eq!(n("//S[//NN]"), 2);
        assert_eq!(n("//NP[not(//NN)]"), 1);
        assert_eq!(n("//_[//NN]"), 8);
        assert_eq!(n("//_[not(//NN)]"), 12);
        assert_eq!(n("//NP[//ZZZ]"), 0);
        assert_eq!(n("//NP[not(//ZZZ)]"), 5); // vacuously all NPs
        assert_eq!(n("//ZZZ"), 0);
        assert_eq!(n("//_[@lex=absent]"), 0);
    }

    #[test]
    fn per_tree_tables_sum_to_totals() {
        let (agg, corpus) = tables();
        let it = corpus.interner();
        assert_eq!(
            agg.nodes_per_tree()
                .iter()
                .map(|&n| u64::from(n))
                .sum::<u64>(),
            agg.nodes_total()
        );
        for (sym, total) in agg.tag_totals() {
            let spread: u64 = agg
                .tag_per_tree(sym)
                .iter()
                .map(|&(_, n)| u64::from(n))
                .sum();
            assert_eq!(spread, total, "{}", it.resolve(sym));
        }
        // Roots are one per tree, and every root tag is tabulated.
        assert_eq!(agg.roots().len(), 3);
    }
}
