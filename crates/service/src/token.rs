//! Opaque, stateless paging tokens: the serialized form of a
//! suspended [`Service::eval_page`] sweep, minted by
//! [`Service::eval_page_token`] and echoed back by the client.
//!
//! A token carries everything needed to continue the enumeration —
//! the query's fingerprint, a stamp of the corpus content it was
//! minted against, the global row offset already served, and (in the
//! common *positioned* mode) the current shard plus that shard's
//! serialized [`ShardCheckpoint`] — so the server keeps **no**
//! per-client session state: any server process holding the same
//! corpus can continue any client's sweep from the token alone.
//!
//! # Wire format
//!
//! URL-safe base64 (no padding) over:
//!
//! ```text
//! ver          u16   token format version (currently 1)
//! query_fp     u64   FNV-1a of the normalized query text
//! corpus_stamp u64   FNV-1a over all shard build ids, in shard order
//! emitted      u64   rows already served before this token
//! mode         u8    0 = positioned, 1 = offset-only
//! -- mode 0 only --
//! shard        u16   shard the enumeration is suspended in
//! shard_emitted u64  rows already served from that shard
//! has_ckpt     u8    0|1
//! ckpt         ...   ShardCheckpoint::encode_into, when has_ckpt = 1
//! -- always --
//! checksum     u64   FNV-1a over every preceding byte
//! ```
//!
//! # Trust boundary
//!
//! Tokens cross the network, so decoding treats them as hostile:
//! every length prefix is validated before allocation, the checksum
//! gates structural parsing, and the embedded checkpoint is decoded
//! by [`Shard::decode_checkpoint`], which re-validates it against the
//! shard's *current* plan for the query — a forged token can make the
//! server do bounded extra work or return an error, never panic and
//! never execute a plan it did not build itself. Three outcomes:
//!
//! * **valid** — the sweep continues exactly where it left off;
//! * **stale** — well-formed bytes whose corpus stamp or build id no
//!   longer matches (the corpus was appended to, or the server
//!   restarted onto different content): recovered silently by
//!   re-entering at the token's global offset
//!   ([`ServiceStats::stale_checkpoints`] advances);
//! * **malformed** — truncated / corrupted / version-skewed / minted
//!   for a different query: a typed [`ServiceError::BadToken`]
//!   ([`ServiceStats::tokens_rejected`] advances).

use std::sync::Arc;

use lpath_relstore::wire;

use crate::plan::CompiledQuery;
use crate::shard::{CheckpointDecodeError, Shard, ShardCheckpoint};
use crate::{CountCheckpoint, ResultSet, Service, ServiceError};

#[cfg(doc)]
use crate::ServiceStats;

/// Token format version; bumped on any envelope layout change so old
/// tokens are rejected with [`wire::WireError::Version`] instead of
/// being misparsed.
pub const TOKEN_VERSION: u16 = 1;

/// Count-token format version. Deliberately distinct from
/// [`TOKEN_VERSION`]: a paging token echoed to the count endpoint (or
/// vice versa) fails the version gate outright instead of being
/// misparsed as the other envelope — both layouts checksum cleanly,
/// so the version word is what keeps them apart.
pub const COUNT_TOKEN_VERSION: u16 = 2;

/// One page of a token-driven sweep: the rows plus the opaque token
/// that continues the enumeration — `None` once the result set is
/// known exhausted.
#[derive(Clone, Debug)]
pub struct Page {
    /// The page's matches, in document order.
    pub rows: ResultSet,
    /// Echo this to [`Service::eval_page_token`] for the next page;
    /// `None` means the sweep is complete.
    pub token: Option<String>,
}

/// One step of a token-driven count sweep: the cumulative count plus
/// the opaque token that continues it — `None` once the count is
/// complete.
#[derive(Clone, Debug)]
pub struct CountPage {
    /// Matches counted so far across the whole sweep, this call
    /// included.
    pub so_far: u64,
    /// The complete count, once the sweep finished (then equal to
    /// `so_far`); `None` while matches remain uncounted.
    pub total: Option<u64>,
    /// Echo this to [`Service::count_token`] to continue; `None` means
    /// the count is complete.
    pub token: Option<String>,
}

/// The decoded, validated interior of a token.
struct TokenState {
    /// Rows already served across all prior pages.
    emitted: u64,
    /// `Some` when the token pins an exact resume position; `None`
    /// for offset-only tokens (the stale-recovery mode).
    pos: Option<TokenPos>,
}

struct TokenPos {
    shard: u16,
    shard_emitted: u64,
    ckpt: Option<ShardCheckpoint>,
}

/// Why a presented token could not be opened as-is.
enum OpenError {
    /// Well-formed, but minted against different corpus content.
    /// Recoverable: re-enter at `emitted`.
    Stale { emitted: u64 },
    /// Not a token (or not one of ours): a protocol error.
    Bad(wire::WireError),
}

impl From<wire::WireError> for OpenError {
    fn from(e: wire::WireError) -> Self {
        OpenError::Bad(e)
    }
}

/// FNV-1a fingerprint of the normalized query text — ties a token to
/// the query it pages, so echoing it with a different query is a
/// typed error instead of silently wrong rows.
fn query_fp(compiled: &CompiledQuery) -> u64 {
    wire::fnv1a(compiled.normalized.as_bytes())
}

/// FNV-1a over all shard build ids in shard order: one word that
/// changes whenever any shard's content does. Validates the
/// *positionless* parts of a token (global offset, shard index) that
/// no individual build id covers — a checkpoint suspended exactly on
/// a shard boundary carries no [`ShardCheckpoint`], so this stamp is
/// what detects that the boundary itself moved.
fn corpus_stamp(shards: &[Arc<Shard>]) -> u64 {
    let mut w = wire::Writer::new();
    for s in shards {
        w.u64(s.build_id());
    }
    wire::fnv1a(w.bytes())
}

impl Service {
    /// One page of the query's document-ordered result, driven by an
    /// opaque resumption token instead of a numeric offset.
    ///
    /// Pass `token: None` for the first page; echo the returned
    /// [`Page::token`] for each subsequent one. Concatenating the
    /// pages of a full sweep is byte-identical to [`Service::eval`]
    /// (and to an offset sweep through [`Service::eval_page`]) over
    /// unchanged content. Unlike offset paging, a deep page does not
    /// re-enumerate its prefix even with every cache cold: the token
    /// embeds the suspended execution state, so continuation is O(new
    /// rows) on *any* server process holding the same corpus.
    ///
    /// A stale token (minted before an [`Service::append_ptb`] or
    /// against a different build of the corpus) is not an error: the
    /// sweep re-enters at the token's global offset against current
    /// content, [`ServiceStats::stale_checkpoints`] advances, and the
    /// freshly minted token is positioned again.
    ///
    /// # Errors
    ///
    /// [`ServiceError::BadToken`] when `token` is present but
    /// malformed (truncated, corrupted, wrong version, or minted for
    /// a different query); [`ServiceError::Syntax`] when the query
    /// does not parse.
    pub fn eval_page_token(
        &self,
        query: &str,
        token: Option<&str>,
        limit: usize,
    ) -> Result<Page, ServiceError> {
        let compiled = self.compile(query)?;
        if compiled.statically_empty || limit == 0 {
            return Ok(Page {
                rows: Vec::new(),
                token: None,
            });
        }
        let (shards, _) = self.snapshot();
        let state = match token {
            None => TokenState {
                emitted: 0,
                pos: Some(TokenPos {
                    shard: 0,
                    shard_emitted: 0,
                    ckpt: None,
                }),
            },
            Some(t) => match open_token(t, &compiled, &shards) {
                Ok(state) => state,
                Err(OpenError::Stale { emitted }) => {
                    self.counters.stale_checkpoints.bump();
                    TokenState { emitted, pos: None }
                }
                Err(OpenError::Bad(e)) => {
                    self.counters.tokens_rejected.bump();
                    return Err(ServiceError::BadToken(e));
                }
            },
        };
        match state.pos {
            Some(pos) => Ok(self.page_positioned(&compiled, &shards, state.emitted, pos, limit)),
            None => self.page_offset(query, &compiled, &shards, state.emitted, limit),
        }
    }

    /// Continue a positioned sweep: resume the suspended shard (or
    /// start the next one) and walk forward until the page fills or
    /// the shards run out.
    fn page_positioned(
        &self,
        compiled: &CompiledQuery,
        shards: &[Arc<Shard>],
        emitted: u64,
        pos: TokenPos,
        limit: usize,
    ) -> Page {
        self.counters.queries.bump();
        self.counters.pages.bump();
        let mut acc: ResultSet = Vec::new();
        let mut si = pos.shard as usize;
        let mut shard_emitted = pos.shard_emitted;
        let mut ckpt = pos.ckpt;
        while si < shards.len() && acc.len() < limit {
            let shard = &shards[si];
            if ckpt.is_none() && shard_emitted == 0 && !shard.may_match(&compiled.required) {
                self.counters.shards_pruned.bump();
                si += 1;
                continue;
            }
            let remaining = limit - acc.len();
            let (rows, next) = match shard.eval_resume(compiled, ckpt.take(), remaining) {
                Ok(page) => page,
                // Unreachable when the corpus stamp matched (the
                // checkpoint's build id is covered by the stamp), but
                // recover locally anyway: re-enumerate this shard and
                // drop the rows the client already has.
                Err(_) => {
                    self.counters.stale_checkpoints.bump();
                    let already = usize::try_from(shard_emitted).unwrap_or(usize::MAX);
                    let (mut rows, next) =
                        shard.eval_limit(compiled, already.saturating_add(remaining));
                    rows.drain(..already.min(rows.len()));
                    (rows, next)
                }
            };
            shard_emitted += rows.len() as u64;
            acc.extend(rows);
            match next {
                // The page filled mid-shard; `eval_resume` coming
                // back short always yields `None`, so `Some` here
                // implies the page is complete.
                Some(next) => {
                    ckpt = Some(next);
                    break;
                }
                None => {
                    si += 1;
                    shard_emitted = 0;
                }
            }
        }
        let exhausted = si >= shards.len() && ckpt.is_none();
        let token = (!exhausted).then(|| {
            self.counters.tokens_minted.bump();
            seal_token(
                compiled,
                shards,
                emitted + acc.len() as u64,
                Some(&TokenPos {
                    shard: si.min(u16::MAX as usize) as u16,
                    shard_emitted,
                    ckpt,
                }),
            )
        });
        Page { rows: acc, token }
    }

    /// Stale-token recovery: serve the page by global offset through
    /// [`Service::eval_page`] (whose build-id-scoped prefix cache
    /// keeps repeated recoveries from re-enumerating), then mint an
    /// offset-only token. The *next* echo of that token lands here
    /// again, so a client that was mid-sweep when the corpus changed
    /// keeps paging seamlessly — against the new content, as the
    /// offset contract requires.
    fn page_offset(
        &self,
        query: &str,
        compiled: &CompiledQuery,
        shards: &[Arc<Shard>],
        emitted: u64,
        limit: usize,
    ) -> Result<Page, ServiceError> {
        let offset = usize::try_from(emitted).unwrap_or(usize::MAX);
        let rows = self.eval_page(query, offset, limit)?;
        // Coming back short proves the offset sweep is complete.
        let token = (rows.len() == limit).then(|| {
            self.counters.tokens_minted.bump();
            seal_token(compiled, shards, emitted + rows.len() as u64, None)
        });
        Ok(Page { rows, token })
    }

    /// Paged form of [`Service::eval_multi`]: evaluate the whole batch
    /// with anchor sharing, then serve each member's first `limit`
    /// rows plus — when more remain — an offset-only paging token.
    /// The tokens are byte-compatible with the solo paging protocol:
    /// echoing one into [`Service::eval_page_token`] (with the same
    /// member query) resumes that member's sweep exactly as if its
    /// first page had been minted by a solo call.
    pub fn eval_multi_tokens(
        &self,
        queries: &[&str],
        limit: usize,
    ) -> Vec<Result<Page, ServiceError>> {
        let results = self.eval_multi(queries);
        let (shards, _) = self.snapshot();
        results
            .into_iter()
            .zip(queries)
            .map(|(r, q)| {
                let rows = r?;
                let page: ResultSet = rows.iter().take(limit).copied().collect();
                let token = (rows.len() > page.len())
                    .then(|| -> Result<String, ServiceError> {
                        let compiled = self.compile(q)?;
                        self.counters.tokens_minted.bump();
                        Ok(seal_token(&compiled, &shards, page.len() as u64, None))
                    })
                    .transpose()?;
                Ok(Page { rows: page, token })
            })
            .collect()
    }

    /// One budgeted step of a token-driven count: the stateless form
    /// of [`Service::count_resume`], for clients across a network
    /// edge. Pass `token: None` to start; echo [`CountPage::token`]
    /// until [`CountPage::total`] arrives. Over unchanged content the
    /// final `total` equals [`Service::count`]; each call does
    /// O(budget) work (aggregate-table shards are O(1), so `so_far`
    /// may overshoot the budget — it bounds work, not the count).
    ///
    /// A stale token (the corpus changed mid-sweep) is not an error:
    /// the parked position indexes content that is gone, so the sweep
    /// finishes by recounting current content outright — cheap, since
    /// the count caches and aggregate tables answer — and returns a
    /// final page ([`ServiceStats::stale_checkpoints`] advances).
    ///
    /// # Errors
    ///
    /// [`ServiceError::BadToken`] when `token` is present but
    /// malformed (truncated, corrupted, version-skewed — including a
    /// *paging* token echoed here — or minted for a different query);
    /// [`ServiceError::Syntax`] when the query does not parse.
    pub fn count_token(
        &self,
        query: &str,
        token: Option<&str>,
        budget: usize,
    ) -> Result<CountPage, ServiceError> {
        self.counters.queries.bump();
        self.counters.count_resumes.bump();
        let compiled = self.compile(query)?;
        if compiled.statically_empty {
            self.counters.statically_empty.bump();
            return Ok(CountPage {
                so_far: 0,
                total: Some(0),
                token: None,
            });
        }
        let (shards, _) = self.snapshot();
        let (prior, ckpt) = match token {
            None => (0, None),
            Some(t) => match open_count_token(t, &compiled, &shards) {
                Ok((counted, pos)) => (counted, Some(pos)),
                Err(OpenError::Stale { .. }) => {
                    self.counters.stale_checkpoints.bump();
                    let total = self.count(query)? as u64;
                    return Ok(CountPage {
                        so_far: total,
                        total: Some(total),
                        token: None,
                    });
                }
                Err(OpenError::Bad(e)) => {
                    self.counters.tokens_rejected.bump();
                    return Err(ServiceError::BadToken(e));
                }
            },
        };
        let (n, next) = self.count_advance(&compiled, &shards, ckpt, budget);
        let so_far = prior + n;
        match next {
            None => Ok(CountPage {
                so_far,
                total: Some(so_far),
                token: None,
            }),
            Some(pos) => {
                self.counters.tokens_minted.bump();
                Ok(CountPage {
                    so_far,
                    total: None,
                    token: Some(seal_count_token(&compiled, &shards, so_far, &pos)),
                })
            }
        }
    }
}

/// Serialize and seal a token: envelope, FNV-1a checksum, base64.
fn seal_token(
    compiled: &CompiledQuery,
    shards: &[Arc<Shard>],
    emitted: u64,
    pos: Option<&TokenPos>,
) -> String {
    let mut w = wire::Writer::new();
    w.u16(TOKEN_VERSION);
    w.u64(query_fp(compiled));
    w.u64(corpus_stamp(shards));
    w.u64(emitted);
    match pos {
        None => w.u8(1),
        Some(p) => {
            w.u8(0);
            w.u16(p.shard);
            w.u64(p.shard_emitted);
            match &p.ckpt {
                Some(c) => {
                    w.u8(1);
                    c.encode_into(&mut w);
                }
                None => w.u8(0),
            }
        }
    }
    let sum = wire::fnv1a(w.bytes());
    w.u64(sum);
    wire::b64_encode(w.bytes())
}

/// Serialize and seal a count token. Envelope, after the shared
/// `[ver, query_fp, corpus_stamp]` prefix: the cumulative count, the
/// parked shard, that shard's already-counted offset, and (when the
/// shard is suspended mid-count) its serialized
/// [`crate::ShardCountCheckpoint`]; FNV-1a checksum, base64.
fn seal_count_token(
    compiled: &CompiledQuery,
    shards: &[Arc<Shard>],
    counted: u64,
    pos: &CountCheckpoint,
) -> String {
    let mut w = wire::Writer::new();
    w.u16(COUNT_TOKEN_VERSION);
    w.u64(query_fp(compiled));
    w.u64(corpus_stamp(shards));
    w.u64(counted);
    w.u16(pos.shard);
    w.u64(pos.shard_counted);
    match &pos.inner {
        Some(c) => {
            w.u8(1);
            c.encode_into(&mut w);
        }
        None => w.u8(0),
    }
    let sum = wire::fnv1a(w.bytes());
    w.u64(sum);
    wire::b64_encode(w.bytes())
}

/// Open and validate an echoed count token: the counting mirror of
/// [`open_token`], with the same trust boundary. Returns the
/// cumulative count plus the live resume position.
fn open_count_token(
    token: &str,
    compiled: &CompiledQuery,
    shards: &[Arc<Shard>],
) -> Result<(u64, CountCheckpoint), OpenError> {
    let bytes = wire::b64_decode(token)?;
    let Some(body_len) = bytes.len().checked_sub(8) else {
        return Err(OpenError::Bad(wire::WireError::Truncated));
    };
    let (body, sum) = bytes.split_at(body_len);
    let declared = u64::from_le_bytes(sum.try_into().expect("split_at leaves 8 bytes"));
    if wire::fnv1a(body) != declared {
        return Err(OpenError::Bad(wire::WireError::Checksum));
    }
    let mut r = wire::Reader::new(body);
    let ver = r.u16()?;
    if ver != COUNT_TOKEN_VERSION {
        return Err(OpenError::Bad(wire::WireError::Version(ver)));
    }
    if r.u64()? != query_fp(compiled) {
        return Err(OpenError::Bad(wire::WireError::Malformed(
            "token minted for a different query",
        )));
    }
    let stale = r.u64()? != corpus_stamp(shards);
    let counted = r.u64()?;
    let shard = r.u16()?;
    let shard_counted = r.u64()?;
    let has_inner = r.bool()?;
    if stale {
        // The parked position indexes content that is gone; don't
        // decode the checkpoint against shards it does not belong to.
        return Err(OpenError::Stale { emitted: counted });
    }
    let Some(target) = shards.get(shard as usize) else {
        return Err(OpenError::Bad(wire::WireError::Malformed(
            "token shard index out of range",
        )));
    };
    let inner = if has_inner {
        match target.decode_count_checkpoint(compiled, &mut r) {
            Ok(c) => Some(c),
            Err(CheckpointDecodeError::Stale(_)) => {
                return Err(OpenError::Stale { emitted: counted })
            }
            Err(CheckpointDecodeError::Wire(e)) => return Err(OpenError::Bad(e)),
        }
    } else {
        None
    };
    if !r.finished() {
        return Err(OpenError::Bad(wire::WireError::Malformed(
            "trailing bytes after count checkpoint",
        )));
    }
    Ok((
        counted,
        CountCheckpoint {
            shard,
            shard_counted,
            inner,
        },
    ))
}

/// Open and validate an echoed token against the current compiled
/// query and shard snapshot. Hostile input is the normal case here:
/// every failure is a typed [`OpenError`], never a panic.
fn open_token(
    token: &str,
    compiled: &CompiledQuery,
    shards: &[Arc<Shard>],
) -> Result<TokenState, OpenError> {
    let bytes = wire::b64_decode(token)?;
    let Some(body_len) = bytes.len().checked_sub(8) else {
        return Err(OpenError::Bad(wire::WireError::Truncated));
    };
    let (body, sum) = bytes.split_at(body_len);
    let declared = u64::from_le_bytes(sum.try_into().expect("split_at leaves 8 bytes"));
    if wire::fnv1a(body) != declared {
        return Err(OpenError::Bad(wire::WireError::Checksum));
    }
    let mut r = wire::Reader::new(body);
    let ver = r.u16()?;
    if ver != TOKEN_VERSION {
        return Err(OpenError::Bad(wire::WireError::Version(ver)));
    }
    if r.u64()? != query_fp(compiled) {
        return Err(OpenError::Bad(wire::WireError::Malformed(
            "token minted for a different query",
        )));
    }
    let stale = r.u64()? != corpus_stamp(shards);
    let emitted = r.u64()?;
    match r.u8()? {
        // Offset-only: the global offset is meaningful against any
        // content, so staleness is irrelevant — offset paging already
        // promises "current content at this offset".
        1 => {
            if !r.finished() {
                return Err(OpenError::Bad(wire::WireError::Malformed(
                    "trailing bytes after offset token",
                )));
            }
            Ok(TokenState { emitted, pos: None })
        }
        0 => {
            let shard = r.u16()?;
            let shard_emitted = r.u64()?;
            let has_ckpt = r.bool()?;
            if stale {
                // The suspended position indexes into content that is
                // gone; don't decode the checkpoint against shards it
                // does not belong to.
                return Err(OpenError::Stale { emitted });
            }
            let Some(target) = shards.get(shard as usize) else {
                return Err(OpenError::Bad(wire::WireError::Malformed(
                    "token shard index out of range",
                )));
            };
            let ckpt = if has_ckpt {
                match target.decode_checkpoint(compiled, &mut r) {
                    Ok(c) => Some(c),
                    Err(CheckpointDecodeError::Stale(_)) => {
                        return Err(OpenError::Stale { emitted })
                    }
                    Err(CheckpointDecodeError::Wire(e)) => return Err(OpenError::Bad(e)),
                }
            } else {
                None
            };
            if !r.finished() {
                return Err(OpenError::Bad(wire::WireError::Malformed(
                    "trailing bytes after checkpoint",
                )));
            }
            Ok(TokenState {
                emitted,
                pos: Some(TokenPos {
                    shard,
                    shard_emitted,
                    ckpt,
                }),
            })
        }
        _ => Err(OpenError::Bad(wire::WireError::Malformed("token mode"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceConfig;
    use lpath_model::ptb::parse_str;

    const SRC: &str = "\
( (S (NP-SBJ (PRP I)) (VP (VBD saw) (NP (DT the) (NN man))) (. .)) )
( (S (NP-SBJ (DT the) (NN man)) (VP (VBD left))) )
( (S (NP-SBJ (PRP we)) (VP (VBD ran) (NP (NN home)))) )
( (S (NP (NN rain)) (VP (VBD fell) (NP (DT the) (NN night)))) )
";

    fn service(shards: usize) -> Service {
        let corpus = parse_str(SRC).unwrap();
        Service::with_config(
            &corpus,
            ServiceConfig {
                shards,
                threads: 1,
                ..ServiceConfig::default()
            },
        )
    }

    fn sweep(svc: &Service, query: &str, page: usize) -> ResultSet {
        let mut all = Vec::new();
        let mut token: Option<String> = None;
        loop {
            let p = svc.eval_page_token(query, token.as_deref(), page).unwrap();
            all.extend(p.rows);
            match p.token {
                Some(t) => token = Some(t),
                None => return all,
            }
        }
    }

    #[test]
    fn token_sweep_equals_eval_at_every_page_size() {
        let svc = service(3);
        for q in ["//NP", "//VBD->NP", "//_[@lex=the]", "//ZZZ"] {
            let full = (*svc.eval(q).unwrap()).clone();
            for page in 1..=full.len() + 2 {
                assert_eq!(sweep(&svc, q, page), full, "{q} page {page}");
            }
        }
    }

    #[test]
    fn tokens_are_opaque_strings_and_terminate() {
        let svc = service(2);
        let p = svc.eval_page_token("//NP", None, 1).unwrap();
        let t = p.token.expect("more pages remain");
        // URL-safe base64: no '+', '/', '=', whitespace.
        assert!(t
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_'));
        // Zero limit and empty results terminate at once.
        assert!(svc
            .eval_page_token("//NP", None, 0)
            .unwrap()
            .token
            .is_none());
        let empty = svc.eval_page_token("//ZZZ", None, 5).unwrap();
        assert!(empty.rows.is_empty() && empty.token.is_none());
    }

    #[test]
    fn malformed_tokens_are_typed_errors_never_panics() {
        let svc = service(2);
        let t = svc.eval_page_token("//NP", None, 1).unwrap().token.unwrap();
        // Wrong query for a valid token.
        match svc.eval_page_token("//VP", Some(&t), 1) {
            Err(ServiceError::BadToken(_)) => {}
            other => panic!("expected BadToken, got {other:?}"),
        }
        // Truncations at every character boundary.
        for cut in 0..t.len() {
            let _ = svc.eval_page_token("//NP", Some(&t[..cut]), 1);
        }
        // Single-character corruption everywhere.
        let mut rejected = 0u32;
        for i in 0..t.len() {
            let mut bad = t.clone().into_bytes();
            bad[i] = if bad[i] == b'A' { b'B' } else { b'A' };
            let bad = String::from_utf8(bad).unwrap();
            if svc.eval_page_token("//NP", Some(&bad), 1).is_err() {
                rejected += 1;
            }
        }
        // The checksum makes random corruption overwhelmingly a
        // rejection, and the counter saw every one of them.
        assert!(rejected > 0);
        assert!(svc.stats().tokens_rejected >= u64::from(rejected));
        // Outright garbage.
        for junk in ["", "!!!", "AAAA", "zzzzzzzzzzzzzzzzzzzzzzzz"] {
            assert!(svc.eval_page_token("//NP", Some(junk), 1).is_err() || junk.is_empty());
        }
    }

    #[test]
    fn stale_tokens_recover_and_count() {
        let svc = service(2);
        let full_before = (*svc.eval("//VBD").unwrap()).clone();
        let p1 = svc.eval_page_token("//VBD", None, 1).unwrap();
        let t = p1.token.expect("three more VBDs");
        // Appending rebuilds the tail shard: the token's corpus stamp
        // no longer matches.
        svc.append_ptb("( (S (NP (NN snow)) (VP (VBD melted))) )")
            .unwrap();
        let p2 = svc
            .eval_page_token("//VBD", Some(&t), usize::MAX - 1)
            .unwrap();
        assert!(svc.stats().stale_checkpoints >= 1);
        // Recovery re-enters at the global offset against current
        // content: rows 1.. of the *new* result, which extends the old.
        let full_after = (*svc.eval("//VBD").unwrap()).clone();
        assert_eq!(full_after.len(), full_before.len() + 1);
        let mut joined = p1.rows;
        joined.extend(p2.rows.iter().copied());
        assert_eq!(joined, full_after);
        assert!(p2.token.is_none());
    }

    #[test]
    fn offset_tokens_keep_paging_after_recovery() {
        let svc = service(2);
        let p1 = svc.eval_page_token("//NP", None, 1).unwrap();
        let t1 = p1.token.unwrap();
        svc.append_ptb("( (S (NP (NN fog))) )").unwrap();
        // Recovery mints an offset-only token; echoing it pages on.
        let p2 = svc.eval_page_token("//NP", Some(&t1), 1).unwrap();
        let t2 = p2.token.expect("more NPs remain");
        let p3 = svc
            .eval_page_token("//NP", Some(&t2), usize::MAX - 1)
            .unwrap();
        let full = (*svc.eval("//NP").unwrap()).clone();
        let mut joined = p1.rows;
        joined.extend(p2.rows.iter().copied());
        joined.extend(p3.rows.iter().copied());
        assert_eq!(joined, full);
    }

    #[test]
    fn tokens_resume_across_identical_service_builds() {
        // The cross-restart guarantee: a different Service over the
        // same corpus accepts the token (content-derived build ids).
        let a = service(2);
        let b = service(2);
        let p1 = a.eval_page_token("//NP", None, 2).unwrap();
        let p2 = b
            .eval_page_token("//NP", p1.token.as_deref(), usize::MAX - 1)
            .unwrap();
        let full = (*a.eval("//NP").unwrap()).clone();
        let mut joined = p1.rows;
        joined.extend(p2.rows.iter().copied());
        assert_eq!(joined, full);
    }
}
