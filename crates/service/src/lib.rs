//! `lpath-service` — a sharded, cached, concurrent query service over
//! the LPath engines.
//!
//! The paper (Bird et al., ICDE 2006) evaluates LPath as a single-shot
//! pipeline: parse → translate → plan → execute, once, over one
//! corpus. A production treebank service answers *many* queries over a
//! *long-lived* corpus, which changes the cost model completely:
//!
//! * **Sharding** — the corpus is partitioned by tree id into
//!   contiguous shards, each with its own fully indexed
//!   [`lpath_core::Engine`]. Treebank queries never cross tree
//!   boundaries (the tractability observation of Gottlob, Koch &
//!   Schulz's *Conjunctive Queries over Trees*), so shards evaluate
//!   independently and exactly; concatenating per-shard results in
//!   shard order reproduces single-engine document order byte for
//!   byte.
//! * **Plan cache** — each distinct query is parsed, SQL-translated
//!   and analyzed once per corpus generation ([`CompiledQuery`]),
//!   mirroring [`lpath_core::Engine`]'s fallback contract: the
//!   relational translation where it exists, the full-language tree
//!   walker otherwise.
//! * **Result cache** — a bounded LRU from `(query, shard set)` to the
//!   materialized match set, invalidated by corpus generation —
//!   backed by a **per-shard** result cache scoped to each shard's
//!   *build id*, so per-shard results survive appends that did not
//!   touch their shard. Counts are cached separately
//!   ([`Service::count`] never materializes or evicts match sets).
//! * **Early termination** — [`Service::exists`] stops at the first
//!   witness, and the paged [`Service::eval_page`] visits shards in
//!   document order and short-circuits the fan-out once the page is
//!   covered, so first-match and page-1 latency track the *selectivity*
//!   of a query instead of its full result size.
//! * **Resumable paging** — each shard's enumerated prefix is cached
//!   with the suspended execution state that continues right after it
//!   (a [`ShardCheckpoint`] riding `lpath-relstore`'s suspendable
//!   cursor); a deeper page extends the prefix by exactly the missing
//!   rows, so sweeping pages 1…K re-enumerates nothing (Gottlob, Koch
//!   & Schulz's join state, suspended between requests; pages and
//!   counts served from incremental state rather than re-enumeration,
//!   as *On the Count of Trees* prescribes).
//! * **Shard pruning** — each shard records which symbols occur in it;
//!   a query whose required symbols (conservatively extracted) are
//!   absent from a shard skips that shard outright. Rare-construct
//!   queries (`//_[@lex=rapprochement]`, `//WHPP`, …) touch only the
//!   shards that can answer them.
//! * **Incremental ingest** — [`Service::append_ptb`] rebuilds only
//!   the tail shard, so keeping a growing corpus queryable costs
//!   `O(corpus / shards)` per batch instead of a full engine rebuild.
//! * **Batch API** — [`Service::eval_batch`] fans `(query, shard)`
//!   tasks across worker threads (scoped; shards are `Sync`), merging
//!   deterministically.
//!
//! ```
//! use lpath_model::ptb::parse_str;
//! use lpath_service::{Service, ServiceConfig};
//!
//! let corpus = parse_str(
//!     "( (S (NP (DT the) (NN dog)) (VP (VBD ran))) )\n\
//!      ( (S (NP (PRP I)) (VP (VBD saw) (NP (DT the) (NN man)))) )",
//! )
//! .unwrap();
//! let service = Service::with_config(
//!     &corpus,
//!     ServiceConfig { shards: 2, ..ServiceConfig::default() },
//! );
//! assert_eq!(service.count("//VBD->NP").unwrap(), 1);
//! // Second time around it's a count-cache hit.
//! assert_eq!(service.count("//VBD->NP").unwrap(), 1);
//! assert_eq!(service.stats().count_hits, 1);
//! // First page of matches, shard fan-out short-circuited.
//! assert_eq!(service.eval_page("//NP", 0, 1).unwrap().len(), 1);
//! assert!(service.exists("//VBD").unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub mod cache;
pub mod plan;
pub mod shard;
pub mod stats;
pub mod token;

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

use lpath_core::Walker;
use lpath_model::ptb::parse_into;
use lpath_model::{Corpus, ModelError};
use lpath_syntax::{parse, SyntaxError};

pub use agg::{AggTables, FastClass};
pub use cache::ResultSet;
use cache::{CountCache, PrefixCache, PrefixEntry, ResultCache};
pub use lpath_check::{CheckReport, Diagnostic, Severity};
pub use lpath_obs::HistogramSnapshot;
pub use plan::{required_symbols, CompiledQuery, ExecStrategy};
pub use shard::{Shard, ShardCheckpoint, ShardCountCheckpoint, StaleCheckpoint};
use stats::{Class, Counters, Instruments};
pub use stats::{ClassMetrics, Metrics, ServiceStats, ShardStats, SlowQuery};
pub use token::{CountPage, Page};

/// Everything that can go wrong answering a service request.
///
/// Note what is *not* here: unsupported-by-SQL queries are not errors
/// for the service — they fall back to the tree walker, so the service
/// answers the full LPath language.
#[derive(Debug)]
pub enum ServiceError {
    /// The query text does not parse.
    Syntax(SyntaxError),
    /// Appended corpus text does not parse.
    Corpus(ModelError),
    /// A requested shard id is out of range.
    BadShard(u16),
    /// An echoed paging token is malformed: truncated, corrupted,
    /// version-skewed, or minted for a different query. (A merely
    /// *stale* token — valid bytes from before an append — is not an
    /// error: [`Service::eval_page_token`] recovers from it silently.)
    BadToken(lpath_relstore::WireError),
    /// A batched evaluation hit the batch-abort fault point before any
    /// shard work ran (test-only injection, see
    /// [`Service::inject_multi_abort`]). No caches were modified; the
    /// members are individually retryable.
    Aborted,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Syntax(e) => e.fmt(f),
            ServiceError::Corpus(e) => e.fmt(f),
            ServiceError::BadShard(id) => write!(f, "shard {id} out of range"),
            ServiceError::BadToken(e) => write!(f, "bad paging token: {e}"),
            ServiceError::Aborted => write!(f, "batched evaluation aborted"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<SyntaxError> for ServiceError {
    fn from(e: SyntaxError) -> Self {
        ServiceError::Syntax(e)
    }
}

impl From<ModelError> for ServiceError {
    fn from(e: ModelError) -> Self {
        ServiceError::Corpus(e)
    }
}

/// Service construction parameters.
#[derive(Copy, Clone, Debug)]
pub struct ServiceConfig {
    /// Number of shards the corpus is partitioned into (min 1).
    pub shards: usize,
    /// Worker threads for shard/batch fan-out; `0` means one per
    /// available CPU (capped by the work at hand).
    pub threads: usize,
    /// Result-cache capacity in entries; `0` disables result caching.
    pub result_cache_capacity: usize,
    /// Plan-cache capacity in entries (each query may occupy two:
    /// normalized form plus a raw-spelling alias); `0` disables plan
    /// caching. Bounded so a long-lived service fed unbounded distinct
    /// query strings cannot grow without limit.
    pub plan_cache_capacity: usize,
    /// Record per-query-class latency histograms and the slow-query
    /// log ([`Service::metrics`]). Disabling skips every clock read on
    /// the request paths; the cheap event counters ([`Service::stats`])
    /// stay on regardless.
    pub metrics: bool,
    /// Requests whose end-to-end latency reaches this threshold are
    /// captured in the slow-query log with their stage timings,
    /// fan-out width and resume count. `Duration::ZERO` logs every
    /// request (useful in tests).
    pub slow_query_threshold: Duration,
    /// Slow-query log retention: the newest this many slow requests
    /// are kept (min 1).
    pub slow_query_log_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 4,
            threads: 0,
            result_cache_capacity: 512,
            plan_cache_capacity: 2_048,
            metrics: true,
            slow_query_threshold: Duration::from_millis(50),
            slow_query_log_capacity: 32,
        }
    }
}

/// A plan-cache slot: the compiled query plus a recency stamp
/// updatable under the map's read lock.
struct PlanEntry {
    compiled: Arc<CompiledQuery>,
    stamp: AtomicU64,
}

/// A suspended [`Service::count_resume`] sweep: the shard the count
/// is parked in, how much of that shard has already been counted
/// (the recovery offset if the shard is rebuilt mid-sweep), and the
/// shard's own suspended counting state. Sealed into the stateless
/// count-token envelope by [`Service::count_token`].
#[derive(Clone, Debug)]
pub struct CountCheckpoint {
    shard: u16,
    /// Matches already counted within `shard` — lets a stale resume
    /// recover by offset instead of double-counting.
    shard_counted: u64,
    inner: Option<ShardCountCheckpoint>,
}

/// The GROUP BY-style result shape of [`Service::hist`]: one query's
/// match set aggregated two ways. Both breakdowns sum to `total`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryHistogram {
    /// Total matches — equals [`Service::count`] of the same query.
    pub total: u64,
    /// Matches per tree: `(global tree id, count)`, tid-ascending,
    /// non-zero entries only.
    pub per_tree: Vec<(u32, u64)>,
    /// Matches per matched-node label, label-ascending, non-zero
    /// entries only.
    pub per_label: Vec<(String, u64)>,
}

/// Corpus-dependent state, replaced wholesale on swap and patched on
/// append. Readers snapshot `Arc<Shard>`s under a short read lock.
struct State {
    master: Corpus,
    shards: Vec<Arc<Shard>>,
    generation: u64,
}

/// The sharded, cached, concurrent LPath query service.
///
/// All query methods take `&self` and the service is `Send + Sync`:
/// share it behind an `Arc` and call it from as many threads as you
/// like. Mutation ([`Service::append_ptb`], [`Service::swap_corpus`])
/// also takes `&self`, serialized internally.
pub struct Service {
    cfg: ServiceConfig,
    threads: usize,
    state: RwLock<State>,
    plans: RwLock<HashMap<String, PlanEntry>>,
    plan_tick: AtomicU64,
    /// Multi-shard result sets (`(query, shard set)` keys), scoped to
    /// the corpus generation: any append or swap invalidates them.
    results: Mutex<ResultCache>,
    counts: Mutex<CountCache>,
    /// Per-shard counts, scoped to each shard's *build id* rather than
    /// the corpus generation: an append rebuilds only the tail shard,
    /// so every other shard's cached count stays valid across the
    /// generation bump and only the tail is recounted.
    shard_counts: Mutex<CountCache>,
    /// *Complete* per-shard result sets (singleton `(query, [shard])`
    /// keys), build-id scoped like the counts: head-shard results
    /// survive `append_ptb`, so a post-append [`Service::eval`] only
    /// re-evaluates the rebuilt tail shard.
    shard_results: Mutex<ResultCache>,
    /// *Incomplete* per-shard results: a monotonically growing,
    /// checkpointed prefix per `(query, shard)` ([`PrefixEntry`]).
    /// Deeper pages resume the suspended enumeration right after the
    /// cached rows instead of recomputing from the shard's start;
    /// build-id scoping keeps head-shard prefixes (and their
    /// checkpoints, which are only valid against that exact build)
    /// alive across appends.
    prefixes: Mutex<PrefixCache>,
    counters: Counters,
    instr: Instruments,
    /// Test-only fault point: when armed, the next [`Service::eval_multi`]
    /// with uncached members aborts them before any shard work
    /// (consumed one-shot). See [`Service::inject_multi_abort`].
    multi_abort: AtomicBool,
}

/// Shard ids live in `u16` (cache keys, the public shard-subset API);
/// the shard count is clamped into that id space.
const MAX_SHARDS: usize = u16::MAX as usize - 1;

impl Service {
    /// Build a service over `corpus` with the default configuration.
    pub fn build(corpus: &Corpus) -> Self {
        Self::with_config(corpus, ServiceConfig::default())
    }

    /// Build a service over `corpus` with an explicit configuration.
    pub fn with_config(corpus: &Corpus, mut cfg: ServiceConfig) -> Self {
        cfg.shards = cfg.shards.clamp(1, MAX_SHARDS);
        let threads = if cfg.threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
        } else {
            cfg.threads
        };
        let master = corpus.clone();
        let shards = build_shards(&master, cfg.shards, threads, 0);
        Service {
            cfg,
            threads,
            state: RwLock::new(State {
                master,
                shards,
                generation: 0,
            }),
            plans: RwLock::new(HashMap::new()),
            plan_tick: AtomicU64::new(0),
            results: Mutex::new(ResultCache::new(cfg.result_cache_capacity)),
            counts: Mutex::new(CountCache::new(cfg.result_cache_capacity)),
            shard_counts: Mutex::new(CountCache::new_plain_lru(cfg.result_cache_capacity)),
            shard_results: Mutex::new(ResultCache::new_plain_lru(cfg.result_cache_capacity)),
            prefixes: Mutex::new(PrefixCache::new_plain_lru(cfg.result_cache_capacity)),
            counters: Counters::default(),
            instr: Instruments::new(
                cfg.metrics,
                cfg.slow_query_threshold,
                cfg.slow_query_log_capacity,
            ),
            multi_abort: AtomicBool::new(false),
        }
    }

    // -----------------------------------------------------------------
    // Compilation (plan cache)
    // -----------------------------------------------------------------

    /// Compile `query` or fetch its cached compilation. Distinct
    /// spellings of the same query (whitespace, display form) share
    /// one entry via the normalized text.
    pub fn compile(&self, query: &str) -> Result<Arc<CompiledQuery>, ServiceError> {
        let key = query.trim();
        if let Some(hit) = self.plan_lookup(key) {
            self.counters.plan_hits.bump();
            return Ok(hit);
        }
        let ast = parse(key)?;
        let normalized = ast.to_string();
        if normalized != key {
            if let Some(hit) = self.plan_lookup(&normalized) {
                self.counters.plan_hits.bump();
                // Alias the raw spelling for next time.
                self.plan_insert(key.to_string(), Arc::clone(&hit));
                return Ok(hit);
            }
        }
        self.counters.plan_misses.bump();
        let (strategy, sql, statically_empty) = {
            let st = self.state.read().unwrap();
            // Static analysis against the master vocabulary: a proven
            // verdict lets every request path skip execution outright.
            let verdict =
                lpath_check::check_with(&ast, |sym| st.master.interner().get(sym).is_some())
                    .statically_empty;
            // One translation decides both the strategy and the SQL.
            match st.shards[0].engine().sql_ast(&ast) {
                Ok(sql) => (ExecStrategy::Relational, Some(sql), verdict),
                Err(_) => (ExecStrategy::Walker, None, verdict),
            }
        };
        let compiled = Arc::new(CompiledQuery {
            required: required_symbols(&ast),
            fast: agg::classify(&ast),
            normalized: normalized.clone(),
            ast,
            strategy,
            sql,
            statically_empty,
        });
        self.plan_insert(normalized, Arc::clone(&compiled));
        if key != compiled.normalized {
            self.plan_insert(key.to_string(), Arc::clone(&compiled));
        }
        Ok(compiled)
    }

    /// Plan-cache lookup, refreshing the entry's recency stamp (the
    /// stamp is atomic, so hits stay on the shared read lock).
    fn plan_lookup(&self, key: &str) -> Option<Arc<CompiledQuery>> {
        let plans = self.plans.read().unwrap();
        let entry = plans.get(key)?;
        let tick = self.plan_tick.fetch_add(1, Ordering::Relaxed) + 1;
        entry.stamp.store(tick, Ordering::Relaxed);
        Some(Arc::clone(&entry.compiled))
    }

    /// Bounded plan-cache insert: when full, the least recently used
    /// entry is evicted. Capacity zero disables plan caching.
    fn plan_insert(&self, key: String, compiled: Arc<CompiledQuery>) {
        let cap = self.cfg.plan_cache_capacity;
        if cap == 0 {
            return;
        }
        let mut plans = self.plans.write().unwrap();
        if plans.len() >= cap && !plans.contains_key(&key) {
            let victim = plans
                .iter()
                .min_by_key(|(_, e)| e.stamp.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone());
            if let Some(v) = victim {
                plans.remove(&v);
            }
        }
        let tick = self.plan_tick.fetch_add(1, Ordering::Relaxed) + 1;
        plans.insert(
            key,
            PlanEntry {
                compiled,
                stamp: AtomicU64::new(tick),
            },
        );
    }

    /// The SQL the relational path executes for `query`, or `None`
    /// when the query runs on the walker fallback.
    pub fn sql(&self, query: &str) -> Result<Option<String>, ServiceError> {
        Ok(self.compile(query)?.sql.clone())
    }

    /// Statically analyze `query` against the master corpus
    /// vocabulary: spanned diagnostics (render with
    /// [`CheckReport::render`] over the same `query` text, or
    /// [`CheckReport::to_json`]) plus the emptiness verdict the
    /// request paths act on. Parses fresh rather than going through
    /// the plan cache so the diagnostic spans index into *this*
    /// spelling of the query, not the normalized one.
    pub fn check(&self, query: &str) -> Result<CheckReport, ServiceError> {
        let ast = parse(query)?;
        let st = self.state.read().unwrap();
        Ok(lpath_check::check_with(&ast, |sym| {
            st.master.interner().get(sym).is_some()
        }))
    }

    // -----------------------------------------------------------------
    // Evaluation
    // -----------------------------------------------------------------

    /// Evaluate one query over the whole corpus. Results are
    /// `(global tree id, node)` in document order — byte-identical to
    /// a single [`lpath_core::Engine`] over the same corpus.
    pub fn eval(&self, query: &str) -> Result<Arc<ResultSet>, ServiceError> {
        self.counters.queries.bump();
        let mut timer = self.instr.begin();
        let compiled = self.compile(query)?;
        if let Some(t) = timer.as_mut() {
            t.mark_compiled();
        }
        if compiled.statically_empty {
            self.counters.statically_empty.bump();
            self.instr.finish(timer, Class::Eval, true, query, 0, 0);
            return Ok(Arc::new(Vec::new()));
        }
        let (shards, generation) = self.snapshot();
        let all: Vec<u16> = (0..shards.len() as u16).collect();
        let (rows, hit) = self.eval_compiled(&shards, generation, &compiled, &all);
        let fanout = if hit { 0 } else { shards.len() };
        self.instr.finish(timer, Class::Eval, hit, query, fanout, 0);
        Ok(rows)
    }

    /// Snapshot the current shards and generation under a short read
    /// lock, so evaluation never blocks writers (and writers never
    /// stall readers behind them).
    fn snapshot(&self) -> (Vec<Arc<Shard>>, u64) {
        let st = self.state.read().unwrap();
        (st.shards.clone(), st.generation)
    }

    /// Evaluate one query over a subset of shards (sorted,
    /// deduplicated internally). The result covers exactly the trees
    /// those shards own.
    pub fn eval_on(&self, query: &str, shard_ids: &[u16]) -> Result<Arc<ResultSet>, ServiceError> {
        self.counters.queries.bump();
        let mut timer = self.instr.begin();
        let compiled = self.compile(query)?;
        if let Some(t) = timer.as_mut() {
            t.mark_compiled();
        }
        let (shards, generation) = self.snapshot();
        let mut ids: Vec<u16> = shard_ids.to_vec();
        ids.sort_unstable();
        ids.dedup();
        if let Some(&bad) = ids.iter().find(|&&i| i as usize >= shards.len()) {
            return Err(ServiceError::BadShard(bad));
        }
        if compiled.statically_empty {
            self.counters.statically_empty.bump();
            self.instr.finish(timer, Class::Eval, true, query, 0, 0);
            return Ok(Arc::new(Vec::new()));
        }
        let (rows, hit) = self.eval_compiled(&shards, generation, &compiled, &ids);
        let fanout = if hit { 0 } else { ids.len() };
        self.instr.finish(timer, Class::Eval, hit, query, fanout, 0);
        Ok(rows)
    }

    /// Result size of `query` (the paper's reported measure). Served
    /// from the count cache when possible; a miss counts shard by
    /// shard through a **per-shard count cache** scoped to each
    /// shard's build id — after an [`Service::append_ptb`] only the
    /// rebuilt tail shard is recounted, every other shard's count is
    /// reused. The relational path counts through the streaming
    /// cursor without materializing a match set (walker-fallback
    /// queries still materialize per shard), and nothing is evicted
    /// from the (separate) result cache to make room. Counting over
    /// trees is far cheaper than enumerating (Bárcenas et al., *On
    /// the Count of Trees*); this path exploits exactly that gap.
    pub fn count(&self, query: &str) -> Result<usize, ServiceError> {
        self.counters.queries.bump();
        let mut timer = self.instr.begin();
        let compiled = self.compile(query)?;
        if let Some(t) = timer.as_mut() {
            t.mark_compiled();
        }
        if compiled.statically_empty {
            self.counters.statically_empty.bump();
            self.instr.finish(timer, Class::Count, true, query, 0, 0);
            return Ok(0);
        }
        let (shards, generation) = self.snapshot();
        let all: Vec<u16> = (0..shards.len() as u16).collect();
        let key = (compiled.normalized.clone(), all);
        if let Some(n) = self.counts.lock().unwrap().get(&key, generation) {
            self.counters.count_hits.bump();
            self.instr.finish(timer, Class::Count, true, query, 0, 0);
            return Ok(n);
        }
        self.counters.count_misses.bump();
        // A cached full result set answers for free. (Bind the lookup
        // before matching: a `match` scrutinee would hold the cache
        // lock across the whole evaluation.)
        let cached_full = self.results.lock().unwrap().get(&key, generation);
        let (n, hit, fanout) = match cached_full {
            Some(full) => {
                self.counters.result_hits.bump();
                (full.len(), true, 0)
            }
            None => {
                let partial = fan_out(self.threads, shards.len(), |si| {
                    self.count_one_shard(&shards[si], si as u16, &compiled)
                });
                (partial.iter().sum(), false, shards.len())
            }
        };
        self.counts.lock().unwrap().insert(key, generation, n);
        self.instr
            .finish(timer, Class::Count, hit, query, fanout, 0);
        Ok(n)
    }

    /// One shard's count, served from the build-id-scoped per-shard
    /// count cache when its content has not changed since it was
    /// computed — or from a cached per-shard *result* (e.g. one
    /// promoted by [`Service::eval_page`]), whose length is the count.
    fn count_one_shard(&self, shard: &Shard, si: u16, compiled: &CompiledQuery) -> usize {
        if !shard.may_match(&compiled.required) {
            self.counters.shards_pruned.bump();
            return 0;
        }
        // Aggregate-table fast path: a tabulated query shape is a
        // hash lookup per shard — cheaper than the cache probes it
        // replaces, so it sits in front of them.
        if let Some(fast) = &compiled.fast {
            self.counters.count_fast.bump();
            let n = shard.agg().count(fast, shard.corpus().interner());
            return usize::try_from(n).unwrap_or(usize::MAX);
        }
        let key = (compiled.normalized.clone(), vec![si]);
        let build = shard.build_id();
        if let Some(n) = self.shard_counts.lock().unwrap().get(&key, build) {
            self.counters.shard_count_hits.bump();
            return n;
        }
        self.counters.shard_count_misses.bump();
        let cached_rows = self.shard_results.lock().unwrap().get(&key, build);
        let n = match cached_rows {
            Some(rows) => {
                self.counters.result_hits.bump();
                rows.len()
            }
            None => {
                self.counters.shard_evals.bump();
                shard.count(compiled)
            }
        };
        self.shard_counts.lock().unwrap().insert(key, build, n);
        n
    }

    /// Resume (or begin) a budgeted count sweep: up to roughly
    /// `budget` further matches counted after `checkpoint` (from the
    /// start when `None`), plus the checkpoint to continue from —
    /// `None` once the count is complete. Summing the chunks of
    /// successive calls equals [`Service::count`] over unchanged
    /// content; no match is counted twice. This is the counting
    /// analogue of [`Service::eval_page`]'s resumable enumeration:
    /// each call does O(budget) work (shards whose shape the
    /// aggregate tables cover are counted in O(1) regardless of
    /// budget, which may overshoot it — the budget bounds *work*, not
    /// the returned number), so a very large count can be spread
    /// across many small, interruptible requests.
    ///
    /// If the corpus is mutated between calls, the suspended position
    /// is stale: the sweep recovers by recounting the affected shard
    /// in full and reporting only the part not yet reported
    /// ([`ServiceStats::stale_checkpoints`] advances) — the total
    /// converges to the current content's count of that shard plus
    /// whatever earlier shards contributed when they were counted.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Syntax`] when the query does not parse.
    pub fn count_resume(
        &self,
        query: &str,
        checkpoint: Option<CountCheckpoint>,
        budget: usize,
    ) -> Result<(u64, Option<CountCheckpoint>), ServiceError> {
        self.counters.queries.bump();
        self.counters.count_resumes.bump();
        let compiled = self.compile(query)?;
        if compiled.statically_empty {
            self.counters.statically_empty.bump();
            return Ok((0, None));
        }
        let (shards, _) = self.snapshot();
        Ok(self.count_advance(&compiled, &shards, checkpoint, budget))
    }

    /// The shared engine of [`Service::count_resume`] and the token
    /// form ([`Service::count_token`]): advance the sweep by up to
    /// `budget` counted matches, returning the chunk and the position
    /// to continue from.
    pub(crate) fn count_advance(
        &self,
        compiled: &CompiledQuery,
        shards: &[Arc<Shard>],
        checkpoint: Option<CountCheckpoint>,
        budget: usize,
    ) -> (u64, Option<CountCheckpoint>) {
        let (mut si, mut shard_counted, mut inner) = match checkpoint {
            Some(c) => (c.shard as usize, c.shard_counted, c.inner),
            None => (0, 0, None),
        };
        let mut counted = 0u64;
        while si < shards.len() {
            if counted >= budget as u64 {
                return (
                    counted,
                    Some(CountCheckpoint {
                        shard: si as u16,
                        shard_counted,
                        inner,
                    }),
                );
            }
            let shard = &shards[si];
            let fresh = inner.is_none() && shard_counted == 0;
            if fresh && !shard.may_match(&compiled.required) {
                self.counters.shards_pruned.bump();
                si += 1;
                continue;
            }
            // A whole untouched shard is O(1) when the aggregate
            // tables cover the query — take it regardless of budget.
            if fresh {
                if let Some(fast) = &compiled.fast {
                    self.counters.count_fast.bump();
                    counted += shard.agg().count(fast, shard.corpus().interner());
                    si += 1;
                    continue;
                }
            }
            let room = usize::try_from(budget as u64 - counted).unwrap_or(usize::MAX);
            match shard.count_resume(compiled, inner.take(), room) {
                Ok((n, next)) => {
                    counted += n;
                    shard_counted += n;
                    match next {
                        Some(c) => inner = Some(c),
                        None => {
                            si += 1;
                            shard_counted = 0;
                        }
                    }
                }
                Err(_) => {
                    // The corpus changed between calls and this
                    // shard's suspended position indexes content that
                    // is gone. Recover by offset: count the current
                    // content in full (cheap — the per-shard count
                    // cache or aggregate tables usually answer) and
                    // report only what the sweep has not yet seen.
                    self.counters.stale_checkpoints.bump();
                    let full = self.count_one_shard(shard, si as u16, compiled) as u64;
                    counted += full.saturating_sub(shard_counted);
                    si += 1;
                    shard_counted = 0;
                }
            }
        }
        (counted, None)
    }

    /// GROUP BY-style aggregation of `query`'s match set: the total
    /// count, the matches per tree (global tree id, non-zero entries
    /// only, tid-ascending) and the matches per node label
    /// (label-ascending). Invariants, property-tested in
    /// `prop_histogram`: the per-tree counts and the per-label counts
    /// each sum to `total`, which equals [`Service::count`].
    ///
    /// Single-axis shapes the aggregate tables tabulate per tree
    /// (`//_`, `//TAG`, `/_`, `/TAG`) are answered in O(index) without
    /// visiting a single node ([`ServiceStats::count_fast`] advances
    /// per shard); everything else aggregates an evaluation served
    /// through the result caches.
    pub fn hist(&self, query: &str) -> Result<QueryHistogram, ServiceError> {
        self.counters.queries.bump();
        self.counters.hists.bump();
        let mut timer = self.instr.begin();
        let compiled = self.compile(query)?;
        if let Some(t) = timer.as_mut() {
            t.mark_compiled();
        }
        if compiled.statically_empty {
            self.counters.statically_empty.bump();
            self.instr.finish(timer, Class::Hist, true, query, 0, 0);
            return Ok(QueryHistogram::default());
        }
        let (shards, generation) = self.snapshot();
        if let Some(h) = self.hist_fast(&compiled, &shards) {
            self.instr.finish(timer, Class::Hist, true, query, 0, 0);
            return Ok(h);
        }
        let ids: Vec<u16> = (0..shards.len() as u16).collect();
        let (rows, hit) = self.eval_compiled(&shards, generation, &compiled, &ids);
        let mut h = QueryHistogram {
            total: rows.len() as u64,
            per_tree: Vec::new(),
            per_label: Vec::new(),
        };
        // Rows are in document order: per-tree runs accumulate
        // directly; labels resolve against the shard owning each tree.
        let mut labels: HashMap<String, u64> = HashMap::new();
        let mut owner = 0usize;
        for &(tid, node) in rows.iter() {
            match h.per_tree.last_mut() {
                Some(e) if e.0 == tid => e.1 += 1,
                _ => h.per_tree.push((tid, 1)),
            }
            while owner + 1 < shards.len() && shards[owner + 1].base() <= tid {
                owner += 1;
            }
            let shard = &shards[owner];
            let tree = shard.corpus().tree((tid - shard.base()) as usize);
            let name = shard.corpus().resolve(tree.node(node).name);
            *labels.entry(name.to_string()).or_default() += 1;
        }
        h.per_label = labels.into_iter().collect();
        h.per_label.sort();
        let fanout = if hit { 0 } else { ids.len() };
        self.instr.finish(timer, Class::Hist, hit, query, fanout, 0);
        Ok(h)
    }

    /// Aggregate-table histogram: the classes whose *per-tree*
    /// distribution the tables carry. Returns `None` for everything
    /// else (including tabulated count-only classes like `//A/B`,
    /// whose per-tree spread is not stored).
    fn hist_fast(&self, compiled: &CompiledQuery, shards: &[Arc<Shard>]) -> Option<QueryHistogram> {
        match compiled.fast.as_ref()? {
            FastClass::AllNodes
            | FastClass::Tag(_)
            | FastClass::RootAny
            | FastClass::RootTag(_) => {}
            _ => return None,
        }
        let fast = compiled.fast.as_ref()?;
        let mut h = QueryHistogram::default();
        let mut labels: HashMap<String, u64> = HashMap::new();
        for shard in shards {
            self.counters.count_fast.bump();
            let agg = shard.agg();
            let interner = shard.corpus().interner();
            let base = shard.base();
            match fast {
                FastClass::AllNodes => {
                    for (ltid, &n) in agg.nodes_per_tree().iter().enumerate() {
                        if n > 0 {
                            h.per_tree.push((base + ltid as u32, u64::from(n)));
                        }
                    }
                    for (sym, n) in agg.tag_totals() {
                        *labels.entry(interner.resolve(sym).to_string()).or_default() += n;
                    }
                    h.total += agg.nodes_total();
                }
                FastClass::Tag(t) => {
                    let Some(sym) = interner.get(t) else { continue };
                    for &(ltid, n) in agg.tag_per_tree(sym) {
                        h.per_tree.push((base + ltid, u64::from(n)));
                        h.total += u64::from(n);
                        *labels.entry(t.clone()).or_default() += u64::from(n);
                    }
                }
                FastClass::RootAny => {
                    for (ltid, &root) in agg.roots().iter().enumerate() {
                        h.per_tree.push((base + ltid as u32, 1));
                        *labels
                            .entry(interner.resolve(root).to_string())
                            .or_default() += 1;
                        h.total += 1;
                    }
                }
                FastClass::RootTag(t) => {
                    let Some(sym) = interner.get(t) else { continue };
                    for (ltid, &root) in agg.roots().iter().enumerate() {
                        if root == sym {
                            h.per_tree.push((base + ltid as u32, 1));
                            *labels.entry(t.clone()).or_default() += 1;
                            h.total += 1;
                        }
                    }
                }
                _ => unreachable!("filtered above"),
            }
        }
        h.per_label = labels.into_iter().collect();
        h.per_label.sort();
        Some(h)
    }

    /// Does `query` match anywhere in the corpus? A cached count or
    /// full result set answers immediately; otherwise shards are
    /// visited in document order and the scan stops at the first
    /// shard with a witness — within a shard, evaluation itself stops
    /// at the first match. On selective queries over large corpora
    /// this is orders of magnitude cheaper than any enumeration.
    pub fn exists(&self, query: &str) -> Result<bool, ServiceError> {
        self.counters.queries.bump();
        let compiled = self.compile(query)?;
        if compiled.statically_empty {
            self.counters.statically_empty.bump();
            return Ok(false);
        }
        let (shards, generation) = self.snapshot();
        let all: Vec<u16> = (0..shards.len() as u16).collect();
        let key = (compiled.normalized.clone(), all);
        if let Some(n) = self.counts.lock().unwrap().get(&key, generation) {
            self.counters.count_hits.bump();
            return Ok(n > 0);
        }
        if let Some(full) = self.results.lock().unwrap().get(&key, generation) {
            self.counters.result_hits.bump();
            return Ok(!full.is_empty());
        }
        Ok(shards.iter().any(|shard| {
            if !shard.may_match(&compiled.required) {
                self.counters.shards_pruned.bump();
                return false;
            }
            self.counters.shard_evals.bump();
            shard.exists(&compiled)
        }))
    }

    /// The `[offset, offset + limit)` slice of [`Service::eval`]'s
    /// document-ordered result, with the page bounds pushed **into**
    /// the shards: shards are visited in document order (their
    /// concatenation *is* the full result), the fan-out is
    /// short-circuited as soon as the page is covered, and each shard
    /// visited evaluates through [`Shard::eval_resume`] — per-shard
    /// work is bounded by what the page still needs, not by the
    /// shard's full result size.
    ///
    /// Paging is **resumable end to end**: each shard's enumerated
    /// prefix is cached together with the suspended execution state
    /// that continues right after it ([`ShardCheckpoint`]), so a
    /// deeper page *extends* the cached prefix — enumerating only the
    /// delta — instead of recomputing from the shard's start. A
    /// page-1 → page-K sweep therefore costs amortized O(rows
    /// emitted), not O(page × shard result). A prefix whose
    /// enumeration completes is promoted to the full per-shard result
    /// (where [`Service::eval`] and [`Service::count`] reuse it);
    /// both prefix and promoted entries are scoped to the shard's
    /// *build id*, so head-shard pages survive
    /// [`Service::append_ptb`].
    pub fn eval_page(
        &self,
        query: &str,
        offset: usize,
        limit: usize,
    ) -> Result<ResultSet, ServiceError> {
        self.counters.queries.bump();
        self.counters.pages.bump();
        let mut timer = self.instr.begin();
        let compiled = self.compile(query)?;
        if let Some(t) = timer.as_mut() {
            t.mark_compiled();
        }
        if compiled.statically_empty {
            self.counters.statically_empty.bump();
            self.instr.finish(timer, Class::EvalPage, true, query, 0, 0);
            return Ok(Vec::new());
        }
        let (shards, generation) = self.snapshot();
        if limit == 0 {
            self.instr.finish(timer, Class::EvalPage, true, query, 0, 0);
            return Ok(Vec::new());
        }
        // Fast path: the full result set is already cached.
        let all: Vec<u16> = (0..shards.len() as u16).collect();
        let full_key = (compiled.normalized.clone(), all);
        if let Some(full) = self.results.lock().unwrap().get(&full_key, generation) {
            self.counters.result_hits.bump();
            self.instr.finish(timer, Class::EvalPage, true, query, 0, 0);
            return Ok(full.iter().skip(offset).take(limit).copied().collect());
        }
        let need = offset.saturating_add(limit);
        // Request-local trace: how wide this page fanned out, how many
        // cached prefixes it extended, whether any shard enumerated.
        let (mut visited, mut resumes, mut evals) = (0usize, 0u64, 0u64);
        let mut acc: ResultSet = Vec::new();
        for (si, shard) in shards.iter().enumerate() {
            if acc.len() >= need {
                self.counters
                    .page_shards_skipped
                    .add((shards.len() - si) as u64);
                break;
            }
            if !shard.may_match(&compiled.required) {
                self.counters.shards_pruned.bump();
                continue;
            }
            let remaining = need - acc.len();
            visited += 1;
            let key = (compiled.normalized.clone(), vec![si as u16]);
            let build = shard.build_id();
            // A complete per-shard result serves any page depth.
            let cached = self.shard_results.lock().unwrap().get(&key, build);
            if let Some(hit) = cached {
                self.counters.result_hits.bump();
                acc.extend(hit.iter().take(remaining).copied());
                continue;
            }
            // A cached prefix at least as deep as the page serves
            // outright; a shallower one is *extended* from its
            // checkpoint — only the missing rows are enumerated,
            // nothing already cached is replayed.
            let prefix = self.prefixes.lock().unwrap().get(&key, build);
            let (rows, ckpt) = match prefix {
                Some(entry) if entry.rows.len() >= remaining => {
                    self.counters.page_prefix_hits.bump();
                    acc.extend(entry.rows.iter().take(remaining).copied());
                    continue;
                }
                Some(entry) => {
                    self.counters.page_resumes.bump();
                    resumes += 1;
                    let delta = remaining - entry.rows.len();
                    // Take the observed entry back out of the cache
                    // (only it — a deeper prefix a concurrent sweep
                    // just installed must survive): both `Arc`s are
                    // then unique in the common single-client case,
                    // so the row buffer and the checkpoint (whose
                    // dedup watermark is O(rows emitted)) *move*
                    // through the extension instead of being copied
                    // per page. Concurrency degrades this to one
                    // copy, never to a wrong answer.
                    self.prefixes.lock().unwrap().remove_match(&key, &entry);
                    let PrefixEntry { rows, ckpt } = entry;
                    let ckpt = Arc::try_unwrap(ckpt).unwrap_or_else(|shared| (*shared).clone());
                    match shard.eval_resume(&compiled, Some(ckpt), delta) {
                        Ok((more, next)) => {
                            let mut rows =
                                Arc::try_unwrap(rows).unwrap_or_else(|shared| (*shared).clone());
                            rows.extend(more);
                            (rows, next)
                        }
                        // The prefix cache is keyed by build id, so a
                        // stale checkpoint here means the entry raced a
                        // rebuild; its rows belong to the old content
                        // too. Degrade to a fresh bounded evaluation.
                        Err(_) => {
                            self.counters.stale_checkpoints.bump();
                            evals += 1;
                            shard.eval_limit(&compiled, remaining)
                        }
                    }
                }
                None => {
                    self.counters.result_misses.bump();
                    self.counters.page_partial_evals.bump();
                    evals += 1;
                    shard.eval_limit(&compiled, remaining)
                }
            };
            let rows = Arc::new(rows);
            match ckpt {
                None => {
                    // The enumeration completed: the prefix is the
                    // whole shard result — promote it and drop the
                    // superseded prefix slot.
                    let admitted = self.shard_results.lock().unwrap().insert(
                        key.clone(),
                        build,
                        Arc::clone(&rows),
                    );
                    self.note_admission(admitted);
                    self.prefixes.lock().unwrap().remove(&key);
                }
                Some(next) => {
                    let mut prefixes = self.prefixes.lock().unwrap();
                    // Concurrent sweeps of the same query: cached
                    // depth only grows — never overwrite a deeper
                    // prefix with a shallower one.
                    let deeper_cached = prefixes
                        .get(&key, build)
                        .is_some_and(|e| e.rows.len() >= rows.len());
                    if !deeper_cached {
                        let admitted = prefixes.insert(
                            key,
                            build,
                            PrefixEntry {
                                rows: Arc::clone(&rows),
                                ckpt: Arc::new(next),
                            },
                        );
                        self.note_admission(admitted);
                    }
                }
            }
            acc.extend(rows.iter().take(remaining).copied());
        }
        // A page is a "hit" when it was served entirely from cached
        // state — no shard enumerated anything, not even a delta.
        let hit = resumes == 0 && evals == 0;
        self.instr
            .finish(timer, Class::EvalPage, hit, query, visited, resumes);
        acc.truncate(need);
        Ok(acc.split_off(offset.min(acc.len())))
    }

    /// Evaluate a batch of queries, fanning `(query, shard)` tasks out
    /// across the worker threads. Per-query results are identical to
    /// calling [`Service::eval`] one query at a time; the batch form
    /// pays thread startup once and keeps every worker busy across
    /// queries of uneven cost.
    pub fn eval_batch(&self, queries: &[&str]) -> Vec<Result<Arc<ResultSet>, ServiceError>> {
        self.counters.batches.bump();
        self.counters.queries.add(queries.len() as u64);
        let mut timer = self.instr.begin();
        let compiled: Vec<Result<Arc<CompiledQuery>, ServiceError>> =
            queries.iter().map(|q| self.compile(q)).collect();
        if let Some(t) = timer.as_mut() {
            t.mark_compiled();
        }

        let (shards, generation) = self.snapshot();
        let nshards = shards.len();
        let all: Vec<u16> = (0..nshards as u16).collect();

        let mut out: Vec<Option<Result<Arc<ResultSet>, ServiceError>>> =
            (0..queries.len()).map(|_| None).collect();
        // Resolve errors and result-cache hits up front; duplicate
        // queries in one batch collapse into a single miss evaluated
        // once, feeding every occurrence.
        let mut misses: Vec<(Vec<usize>, Arc<CompiledQuery>)> = Vec::new();
        let mut miss_index: HashMap<String, usize> = HashMap::new();
        for (i, c) in compiled.into_iter().enumerate() {
            match c {
                Err(e) => out[i] = Some(Err(e)),
                Ok(c) => {
                    if c.statically_empty {
                        // The analyzer's verdict answers without any
                        // shard work or cache traffic.
                        self.counters.statically_empty.bump();
                        out[i] = Some(Ok(Arc::new(Vec::new())));
                        continue;
                    }
                    if let Some(&mi) = miss_index.get(&c.normalized) {
                        // Batch-local dedup: served from the sibling
                        // occurrence's evaluation, not from the cache.
                        self.counters.batch_dedup.bump();
                        misses[mi].0.push(i);
                        continue;
                    }
                    let key = (c.normalized.clone(), all.clone());
                    let hit = self.results.lock().unwrap().get(&key, generation);
                    match hit {
                        Some(v) => {
                            self.counters.result_hits.bump();
                            out[i] = Some(Ok(v));
                        }
                        None => {
                            self.counters.result_misses.bump();
                            miss_index.insert(c.normalized.clone(), misses.len());
                            misses.push((vec![i], c));
                        }
                    }
                }
            }
        }

        if !misses.is_empty() && nshards > 0 {
            // One task per (missed query, shard); workers pull tasks
            // off a shared counter.
            let partials = fan_out(self.threads, misses.len() * nshards, |t| {
                let (mi, si) = (t / nshards, t % nshards);
                self.eval_one_shard(&shards[si], si as u16, &misses[mi].1)
            });
            for (mi, (occurrences, c)) in misses.iter().enumerate() {
                let mut merged = Vec::new();
                for rows in &partials[mi * nshards..(mi + 1) * nshards] {
                    merged.extend(rows.iter().copied());
                }
                let merged = Arc::new(merged);
                let admitted = self.results.lock().unwrap().insert(
                    (c.normalized.clone(), all.clone()),
                    generation,
                    Arc::clone(&merged),
                );
                self.note_admission(admitted);
                for &qi in occurrences {
                    out[qi] = Some(Ok(Arc::clone(&merged)));
                }
            }
        }
        if timer.is_some() {
            // One histogram sample per batch call (members already
            // count as queries); a batch is a hit when every member
            // was served from cache or batch-local dedup.
            let hit = misses.is_empty();
            let fanout = misses.len() * nshards;
            self.instr.finish(
                timer,
                Class::EvalBatch,
                hit,
                &queries.join(" ; "),
                fanout,
                0,
            );
        }
        out.into_iter()
            .map(|r| r.expect("all slots filled"))
            .collect()
    }

    /// Evaluate a batch of queries with common-subplan sharing: within
    /// each shard, members whose plans open the same anchor — the same
    /// full-table scan or the same equality/range index probe — ride
    /// one cursor, with only their residual filters evaluated per
    /// candidate row. Per-query results are identical to calling
    /// [`Service::eval`] one query at a time (same rows, same document
    /// order); only the work is shared, never the answers.
    ///
    /// The whole batch sees one shard snapshot, so members can never
    /// observe a corpus append half-applied ([`Service::append_ptb`]
    /// swaps shards in under the lock; clones taken before the swap
    /// stay consistent with each other). Sharing statistics land in
    /// [`ServiceStats::multi_shared_scans`] and
    /// [`ServiceStats::multi_residual_evals`].
    ///
    /// A batch of one degrades to exactly the solo [`Service::eval`]
    /// path — same caches, same counters.
    pub fn eval_multi(&self, queries: &[&str]) -> Vec<Result<Arc<ResultSet>, ServiceError>> {
        if queries.len() == 1 {
            return vec![self.eval(queries[0])];
        }
        self.counters.batches.bump();
        self.counters.queries.add(queries.len() as u64);
        let mut timer = self.instr.begin();

        // Compile the whole batch through ONE pass over the plan cache
        // (a single read-lock acquisition instead of one per member);
        // only members the fast pass missed pay the full per-query
        // compile path. This is where the steady-state amortization
        // lives: a hot batch costs one lock round per cache, not one
        // per member per cache.
        let mut compiled: Vec<Option<Result<Arc<CompiledQuery>, ServiceError>>> =
            (0..queries.len()).map(|_| None).collect();
        let mut plan_hits = 0u64;
        {
            let plans = self.plans.read().unwrap();
            for (slot, q) in compiled.iter_mut().zip(queries) {
                if let Some(entry) = plans.get(q.trim()) {
                    let tick = self.plan_tick.fetch_add(1, Ordering::Relaxed) + 1;
                    entry.stamp.store(tick, Ordering::Relaxed);
                    plan_hits += 1;
                    *slot = Some(Ok(Arc::clone(&entry.compiled)));
                }
            }
        }
        if plan_hits > 0 {
            self.counters.plan_hits.add(plan_hits);
        }
        for (slot, q) in compiled.iter_mut().zip(queries) {
            if slot.is_none() {
                *slot = Some(self.compile(q));
            }
        }
        if let Some(t) = timer.as_mut() {
            t.mark_compiled();
        }

        // ONE snapshot for the whole batch (see the doc comment): all
        // members evaluate against the same builds.
        let (shards, generation) = self.snapshot();
        let nshards = shards.len();
        let all: Vec<u16> = (0..nshards as u16).collect();

        let mut out: Vec<Option<Result<Arc<ResultSet>, ServiceError>>> =
            (0..queries.len()).map(|_| None).collect();
        let mut misses: Vec<(Vec<usize>, Arc<CompiledQuery>)> = Vec::new();
        let mut miss_index: HashMap<String, usize> = HashMap::new();
        let (mut statically_empty, mut dedup, mut hits, mut probes) = (0u64, 0u64, 0u64, 0u64);
        {
            // One result-cache lock round for the whole membership
            // check, probing through a reused key buffer (no per-member
            // String/Vec allocations on the hit path).
            let mut results = self.results.lock().unwrap();
            let mut probe: cache::Key = (String::new(), all.clone());
            for (i, c) in compiled.into_iter().enumerate() {
                match c.expect("every slot compiled above") {
                    Err(e) => out[i] = Some(Err(e)),
                    Ok(c) => {
                        if c.statically_empty {
                            statically_empty += 1;
                            out[i] = Some(Ok(Arc::new(Vec::new())));
                            continue;
                        }
                        if let Some(&mi) = miss_index.get(&c.normalized) {
                            dedup += 1;
                            misses[mi].0.push(i);
                            continue;
                        }
                        probes += 1;
                        probe.0.clear();
                        probe.0.push_str(&c.normalized);
                        match results.get(&probe, generation) {
                            Some(v) => {
                                hits += 1;
                                out[i] = Some(Ok(v));
                            }
                            None => {
                                miss_index.insert(c.normalized.clone(), misses.len());
                                misses.push((vec![i], c));
                            }
                        }
                    }
                }
            }
        }
        self.counters.statically_empty.add(statically_empty);
        self.counters.batch_dedup.add(dedup);
        self.counters.result_hits.add(hits);
        self.counters.result_misses.add(probes - hits);

        if !misses.is_empty() && self.multi_abort.swap(false, Ordering::SeqCst) {
            // Batch-abort fault point (test-only): every unresolved
            // member fails without any shard work or cache writes.
            for (occurrences, _) in &misses {
                for &qi in occurrences {
                    out[qi] = Some(Err(ServiceError::Aborted));
                }
            }
            self.instr
                .finish(timer, Class::EvalMulti, false, &queries.join(" ; "), 0, 0);
            return out
                .into_iter()
                .map(|r| r.expect("all slots filled"))
                .collect();
        }

        if !misses.is_empty() && nshards > 0 {
            let miss_plans: Vec<Arc<CompiledQuery>> =
                misses.iter().map(|(_, c)| Arc::clone(c)).collect();
            // One task per shard carrying the whole miss set, so
            // anchor-sharing happens inside each shard's engine.
            let partials = fan_out(self.threads, nshards, |si| {
                self.eval_multi_one_shard(&shards[si], si as u16, &miss_plans)
            });
            for (mi, (occurrences, c)) in misses.iter().enumerate() {
                let mut merged = Vec::new();
                for per_shard in &partials {
                    merged.extend(per_shard[mi].iter().copied());
                }
                let merged = Arc::new(merged);
                let admitted = self.results.lock().unwrap().insert(
                    (c.normalized.clone(), all.clone()),
                    generation,
                    Arc::clone(&merged),
                );
                self.note_admission(admitted);
                for &qi in occurrences {
                    out[qi] = Some(Ok(Arc::clone(&merged)));
                }
            }
        }
        if timer.is_some() {
            let hit = misses.is_empty();
            let fanout = if misses.is_empty() { 0 } else { nshards };
            self.instr.finish(
                timer,
                Class::EvalMulti,
                hit,
                &queries.join(" ; "),
                fanout,
                0,
            );
        }
        out.into_iter()
            .map(|r| r.expect("all slots filled"))
            .collect()
    }

    /// Arm the batch-abort fault point: the next [`Service::eval_multi`]
    /// call that reaches execution (has at least one uncached member)
    /// aborts those members with [`ServiceError::Aborted`] instead of
    /// touching the shards. One-shot; for failure-injection tests.
    #[doc(hidden)]
    pub fn inject_multi_abort(&self) {
        self.multi_abort.store(true, Ordering::SeqCst);
    }

    /// Evaluate `compiled` over the (sorted) shard subset `ids`,
    /// consulting and filling the result cache. Takes a lock-free
    /// shard snapshot so long evaluations never block corpus writers.
    /// The returned flag says whether the top-level result cache
    /// answered (the latency histograms' hit/miss attribution).
    fn eval_compiled(
        &self,
        shards: &[Arc<Shard>],
        generation: u64,
        compiled: &Arc<CompiledQuery>,
        ids: &[u16],
    ) -> (Arc<ResultSet>, bool) {
        let key = (compiled.normalized.clone(), ids.to_vec());
        if let Some(hit) = self.results.lock().unwrap().get(&key, generation) {
            self.counters.result_hits.bump();
            return (hit, true);
        }
        self.counters.result_misses.bump();
        let partials = fan_out(self.threads, ids.len(), |i| {
            let si = ids[i];
            self.eval_one_shard(&shards[si as usize], si, compiled)
        });
        let mut merged = Vec::with_capacity(partials.iter().map(|r| r.len()).sum());
        for rows in &partials {
            merged.extend(rows.iter().copied());
        }
        let merged = Arc::new(merged);
        let admitted = self
            .results
            .lock()
            .unwrap()
            .insert(key, generation, Arc::clone(&merged));
        self.note_admission(admitted);
        (merged, false)
    }

    /// Evaluate on one shard, with symbol-presence pruning, through
    /// the build-id-scoped per-shard result cache: a complete result
    /// already cached — by an earlier eval, [`Service::eval_on`], or
    /// promoted from an exhausted [`Service::eval_page`] prefix — is
    /// reused instead of re-evaluating, and stays reusable across
    /// [`Service::append_ptb`] for every shard but the rebuilt tail.
    fn eval_one_shard(&self, shard: &Shard, si: u16, compiled: &CompiledQuery) -> Arc<ResultSet> {
        if !shard.may_match(&compiled.required) {
            self.counters.shards_pruned.bump();
            return Arc::new(Vec::new());
        }
        let key = (compiled.normalized.clone(), vec![si]);
        let build = shard.build_id();
        if let Some(hit) = self.shard_results.lock().unwrap().get(&key, build) {
            self.counters.result_hits.bump();
            return hit;
        }
        self.counters.shard_evals.bump();
        let rows = Arc::new(shard.eval(compiled));
        let admitted = self
            .shard_results
            .lock()
            .unwrap()
            .insert(key, build, Arc::clone(&rows));
        self.note_admission(admitted);
        rows
    }

    /// Evaluate a whole miss set on one shard. Members answered by
    /// symbol-presence pruning or the per-shard result cache drop out
    /// first; the remainder go through [`Shard::eval_multi`] together
    /// so plans opening the same anchor share one enumeration.
    fn eval_multi_one_shard(
        &self,
        shard: &Shard,
        si: u16,
        members: &[Arc<CompiledQuery>],
    ) -> Vec<Arc<ResultSet>> {
        let build = shard.build_id();
        let mut out: Vec<Option<Arc<ResultSet>>> = Vec::new();
        out.resize_with(members.len(), || None);
        let mut pending: Vec<usize> = Vec::new();
        let (mut pruned, mut hits) = (0u64, 0u64);
        {
            // One per-shard cache lock round for the whole member set,
            // probing through a reused key buffer.
            let mut shard_results = self.shard_results.lock().unwrap();
            let mut probe: cache::Key = (String::new(), vec![si]);
            for (i, c) in members.iter().enumerate() {
                if !shard.may_match(&c.required) {
                    pruned += 1;
                    out[i] = Some(Arc::new(Vec::new()));
                    continue;
                }
                probe.0.clear();
                probe.0.push_str(&c.normalized);
                if let Some(hit) = shard_results.get(&probe, build) {
                    hits += 1;
                    out[i] = Some(hit);
                    continue;
                }
                pending.push(i);
            }
        }
        self.counters.shards_pruned.add(pruned);
        self.counters.result_hits.add(hits);
        if !pending.is_empty() {
            self.counters.shard_evals.add(pending.len() as u64);
            let refs: Vec<&CompiledQuery> = pending.iter().map(|&i| members[i].as_ref()).collect();
            let (rows, stats) = shard.eval_multi(&refs);
            self.counters.multi_shared_scans.add(stats.shared_scans);
            self.counters.multi_residual_evals.add(stats.residual_evals);
            for (&i, rows) in pending.iter().zip(rows) {
                let rows = Arc::new(rows);
                let key = (members[i].normalized.clone(), vec![si]);
                let admitted =
                    self.shard_results
                        .lock()
                        .unwrap()
                        .insert(key, build, Arc::clone(&rows));
                self.note_admission(admitted);
                out[i] = Some(rows);
            }
        }
        out.into_iter()
            .map(|r| r.expect("all members resolved"))
            .collect()
    }

    /// Record a cache admission verdict: an insert the size/heat-aware
    /// policy rejected (full cache, every victim pinned-hot) bumps
    /// `admission_rejects`. A capacity of zero means the cache is
    /// deliberately disabled — not an admission decision.
    fn note_admission(&self, admitted: bool) {
        if !admitted && self.cfg.result_cache_capacity > 0 {
            self.counters.admission_rejects.bump();
        }
    }

    // -----------------------------------------------------------------
    // Corpus mutation
    // -----------------------------------------------------------------

    /// Append bracketed (Penn Treebank) trees to the corpus,
    /// rebuilding only the tail shard. Returns the number of trees
    /// added; on parse error the corpus is unchanged.
    pub fn append_ptb(&self, src: &str) -> Result<usize, ServiceError> {
        // Stage into a scratch corpus sharing the master's symbol
        // table, so a mid-text parse error leaves the service intact.
        let mut st = self.state.write().unwrap();
        let mut scratch = Corpus::new();
        *scratch.interner_mut() = st.master.interner().clone();
        let added = parse_into(src, &mut scratch)?;
        if added == 0 {
            return Ok(0);
        }
        *st.master.interner_mut() = scratch.interner().clone();
        for tree in scratch.trees() {
            st.master.add_tree(tree.clone());
        }
        let tail = st.shards.len() - 1;
        let tail_start = st.shards[tail].base() as usize;
        let tail_len = st.master.trees().len() - tail_start;
        st.generation += 1;
        st.shards[tail] = Arc::new(Shard::build(
            &st.master,
            tail_start,
            tail_len,
            st.generation,
        ));
        self.counters.appends.bump();
        drop(st);
        // The per-shard count cache survives an append: its entries
        // are scoped to shard build ids, and only the tail shard got a
        // new one — head shards keep serving their cached counts,
        // stale tail entries invalidate themselves on contact.
        self.invalidate_generation_scoped();
        Ok(added)
    }

    /// Replace the whole corpus, rebuilding every shard (in parallel
    /// when worker threads allow) and invalidating both caches.
    pub fn swap_corpus(&self, corpus: &Corpus) {
        let mut st = self.state.write().unwrap();
        st.master = corpus.clone();
        st.generation += 1;
        st.shards = build_shards(&st.master, self.cfg.shards, self.threads, st.generation);
        self.counters.swaps.bump();
        drop(st);
        self.invalidate();
    }

    /// Drop every generation-scoped cache (plans, multi-shard result
    /// sets, corpus-level counts). Per-shard counts, results and
    /// checkpointed prefixes are *not* touched: they scope themselves
    /// to shard build ids, so entries of untouched shards keep
    /// serving and entries of the rebuilt tail invalidate themselves
    /// on contact.
    fn invalidate_generation_scoped(&self) {
        self.plans.write().unwrap().clear();
        self.results.lock().unwrap().clear();
        self.counts.lock().unwrap().clear();
    }

    /// Drop everything — for swaps, where every shard is rebuilt.
    fn invalidate(&self) {
        self.invalidate_generation_scoped();
        self.shard_counts.lock().unwrap().clear();
        self.shard_results.lock().unwrap().clear();
        self.prefixes.lock().unwrap().clear();
    }

    // -----------------------------------------------------------------
    // Introspection
    // -----------------------------------------------------------------

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.state.read().unwrap().shards.len()
    }

    /// Current corpus generation (bumped by append/swap).
    pub fn generation(&self) -> u64 {
        self.state.read().unwrap().generation
    }

    /// Total trees across all shards.
    pub fn trees(&self) -> usize {
        self.state.read().unwrap().master.trees().len()
    }

    /// A point-in-time statistics snapshot: cache hit rates, per-shard
    /// build timings and sizes, fan-out counters.
    pub fn stats(&self) -> ServiceStats {
        let st = self.state.read().unwrap();
        let per_shard: Vec<ShardStats> = st.shards.iter().map(|s| s.stats()).collect();
        let c = &self.counters;
        let load = |a: &lpath_obs::Counter| a.get();
        ServiceStats {
            generation: st.generation,
            shards: st.shards.len(),
            threads: self.threads,
            trees: st.master.trees().len(),
            relation_rows: per_shard.iter().map(|s| s.relation_rows).sum(),
            plan_cache_entries: self.plans.read().unwrap().len(),
            plan_hits: load(&c.plan_hits),
            plan_misses: load(&c.plan_misses),
            result_cache_entries: self.results.lock().unwrap().len(),
            shard_result_cache_entries: self.shard_results.lock().unwrap().len(),
            prefix_cache_entries: self.prefixes.lock().unwrap().len(),
            result_hits: load(&c.result_hits),
            result_misses: load(&c.result_misses),
            count_hits: load(&c.count_hits),
            count_misses: load(&c.count_misses),
            shard_count_hits: load(&c.shard_count_hits),
            shard_count_misses: load(&c.shard_count_misses),
            count_fast: load(&c.count_fast),
            count_resumes: load(&c.count_resumes),
            hists: load(&c.hists),
            batch_dedup: load(&c.batch_dedup),
            multi_shared_scans: load(&c.multi_shared_scans),
            multi_residual_evals: load(&c.multi_residual_evals),
            admission_rejects: load(&c.admission_rejects),
            queries: load(&c.queries),
            batches: load(&c.batches),
            pages: load(&c.pages),
            page_shards_skipped: load(&c.page_shards_skipped),
            page_partial_evals: load(&c.page_partial_evals),
            page_prefix_hits: load(&c.page_prefix_hits),
            page_resumes: load(&c.page_resumes),
            shard_evals: load(&c.shard_evals),
            shards_pruned: load(&c.shards_pruned),
            statically_empty: load(&c.statically_empty),
            stale_checkpoints: load(&c.stale_checkpoints),
            tokens_minted: load(&c.tokens_minted),
            tokens_rejected: load(&c.tokens_rejected),
            appends: load(&c.appends),
            swaps: load(&c.swaps),
            per_shard,
        }
    }

    /// A JSON-renderable latency snapshot: per-query-class hit/miss
    /// histograms (p50/p90/p99/max, nanoseconds) plus the retained
    /// slow-query log — the distribution-level companion to the
    /// counter-level [`Service::stats`]. With
    /// [`ServiceConfig::metrics`] off the shape is identical but every
    /// histogram is empty and the log stays silent.
    pub fn metrics(&self) -> Metrics {
        Metrics {
            generation: self.state.read().unwrap().generation,
            queries: self.counters.queries.get(),
            enabled: self.instr.enabled(),
            classes: self.instr.class_metrics(),
            count_fast: self.counters.count_fast.get(),
            count_resumes: self.counters.count_resumes.get(),
            hists: self.counters.hists.get(),
            slow_queries: self.instr.slow_snapshot(),
        }
    }

    /// Evaluate with the walker over the *whole* master corpus —
    /// a slow reference path used by differential tests.
    pub fn reference_eval(&self, query: &str) -> Result<ResultSet, ServiceError> {
        let ast = parse(query.trim())?;
        let st = self.state.read().unwrap();
        Ok(Walker::new(&st.master).eval(&ast))
    }
}

/// Contiguous near-equal partition of `n` trees into `k` shards.
fn partition(n: usize, k: usize) -> Vec<(usize, usize)> {
    let k = k.max(1);
    let base = n / k;
    let rem = n % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < rem);
        out.push((start, len));
        start += len;
    }
    out
}

/// Build all shards, in parallel when `threads > 1`, stamped with the
/// corpus `generation` they belong to (see [`Shard::build_id`]).
fn build_shards(master: &Corpus, k: usize, threads: usize, generation: u64) -> Vec<Arc<Shard>> {
    let parts = partition(master.trees().len(), k);
    fan_out(threads, parts.len(), |i| {
        let (start, len) = parts[i];
        Arc::new(Shard::build(master, start, len, generation))
    })
}

/// Run `ntasks` independent tasks across up to `threads` scoped worker
/// threads (inline when one suffices), returning results in task
/// order. The single fan-out primitive behind shard builds, per-query
/// shard evaluation and batch evaluation.
fn fan_out<T, F>(threads: usize, ntasks: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.min(ntasks);
    if threads <= 1 {
        return (0..ntasks).map(task).collect();
    }
    let mut out: Vec<Option<T>> = (0..ntasks).map(|_| None).collect();
    let slots = Mutex::new(&mut out);
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= ntasks {
                    break;
                }
                let value = task(i);
                slots.lock().unwrap()[i] = Some(value);
            });
        }
    });
    out.into_iter()
        .map(|v| v.expect("task completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpath_core::Engine;
    use lpath_model::ptb::parse_str;

    const SRC: &str = "\
( (S (NP-SBJ (PRP I)) (VP (VBD saw) (NP (DT the) (NN man))) (. .)) )
( (S (NP-SBJ (DT the) (NN man)) (VP (VBD left))) )
( (S (NP-SBJ (PRP we)) (VP (VBD ran) (NP (NN home)))) )
( (S (NP (NN dog)) (VP (VB barks))) )
( (S (NP (DT a) (NN cat)) (VP (VBD slept) (NP (NN nap)))) )
";

    fn service(shards: usize) -> Service {
        let corpus = parse_str(SRC).unwrap();
        Service::with_config(
            &corpus,
            ServiceConfig {
                shards,
                threads: 1,
                result_cache_capacity: 64,
                ..ServiceConfig::default()
            },
        )
    }

    #[test]
    fn partition_covers_everything_contiguously() {
        for n in [0usize, 1, 5, 7, 64] {
            for k in [1usize, 2, 4, 8] {
                let parts = partition(n, k);
                assert_eq!(parts.len(), k);
                let mut pos = 0;
                for (start, len) in parts {
                    assert_eq!(start, pos);
                    pos += len;
                }
                assert_eq!(pos, n);
            }
        }
    }

    #[test]
    fn sharded_matches_single_engine() {
        let corpus = parse_str(SRC).unwrap();
        let engine = Engine::build(&corpus);
        for shards in [1, 2, 3, 8] {
            let svc = service(shards);
            for q in [
                "//NP",
                "//VBD->NP",
                "//S{/VP$}",
                "//_[@lex=the]",
                "//NP[not(//DT)]",
            ] {
                assert_eq!(
                    *svc.eval(q).unwrap(),
                    engine.query(q).unwrap(),
                    "{q} at {shards} shards"
                );
            }
        }
    }

    #[test]
    fn walker_fallback_answers_unsupported_queries() {
        let svc = service(2);
        // position()/last() has no relational translation.
        let q = "//VP/_[last()][self::NP]";
        let compiled = svc.compile(q).unwrap();
        assert_eq!(compiled.strategy, ExecStrategy::Walker);
        assert!(compiled.sql.is_none());
        let got = svc.eval(q).unwrap();
        assert_eq!(*got, svc.reference_eval(q).unwrap());
        assert!(!got.is_empty());
    }

    #[test]
    fn result_cache_hits_and_generation_invalidation() {
        let svc = service(2);
        let a = svc.eval("//NP").unwrap();
        let b = svc.eval("//NP").unwrap();
        assert_eq!(a, b);
        assert_eq!(svc.stats().result_hits, 1);
        assert!(Arc::ptr_eq(&a, &b));
        // Append invalidates the generation-scoped full set, but the
        // untouched head shard's build-scoped result survives: the
        // third eval re-evaluates only the rebuilt tail shard.
        svc.append_ptb("( (S (NP (NN bird)) (VP (VBD flew))) )")
            .unwrap();
        let evals = svc.stats().shard_evals;
        let c = svc.eval("//NP").unwrap();
        assert_eq!(c.len(), a.len() + 1);
        assert_eq!(svc.stats().result_hits, 2, "head shard served from cache");
        assert_eq!(svc.stats().shard_evals, evals + 1, "only the tail re-ran");
    }

    #[test]
    fn plan_cache_normalizes_spellings() {
        let svc = service(2);
        let a = svc.compile("//VBD->NP").unwrap();
        let b = svc.compile("  //VBD->NP  ").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(svc.stats().plan_misses, 1);
        assert!(svc.stats().plan_hits >= 1);
    }

    #[test]
    fn append_rebuilds_only_the_tail_shard() {
        let svc = service(2);
        let before = svc.stats();
        assert_eq!(before.per_shard.len(), 2);
        let added = svc
            .append_ptb(
                "( (S (NP (NN bird)) (VP (VBD flew))) )\n( (S (NP (NN fish)) (VP (VBD swam))) )",
            )
            .unwrap();
        assert_eq!(added, 2);
        let after = svc.stats();
        assert_eq!(after.generation, 1);
        assert_eq!(after.trees, 7);
        // Head shard untouched, tail grew.
        assert_eq!(after.per_shard[0].trees, before.per_shard[0].trees);
        assert_eq!(after.per_shard[1].trees, before.per_shard[1].trees + 2);
        // New data is queryable, in document order.
        let got = svc.eval("//_[@lex=fish]").unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 6);
    }

    #[test]
    fn append_error_leaves_corpus_unchanged() {
        let svc = service(2);
        let trees = svc.trees();
        let gen_before = svc.generation();
        assert!(svc.append_ptb("( (S (NP broken").is_err());
        assert_eq!(svc.trees(), trees);
        assert_eq!(svc.generation(), gen_before);
        assert_eq!(
            *svc.eval("//NP").unwrap(),
            *service(2).eval("//NP").unwrap()
        );
    }

    #[test]
    fn swap_replaces_everything() {
        let svc = service(2);
        assert!(svc.count("//VBD").unwrap() > 0);
        let other = parse_str("( (S (X (Y z)) (W w)) )").unwrap();
        svc.swap_corpus(&other);
        assert_eq!(svc.trees(), 1);
        assert_eq!(svc.count("//VBD").unwrap(), 0);
        assert_eq!(svc.count("//Y").unwrap(), 1);
        assert_eq!(svc.generation(), 1);
    }

    #[test]
    fn batch_matches_individual_evals_and_reports_errors() {
        let svc = service(3);
        let queries = ["//NP", "//VBD->NP", "//VP[", "//_[@lex=dog]", "//NP"];
        let batch = svc.eval_batch(&queries);
        assert_eq!(batch.len(), 5);
        assert!(batch[2].is_err());
        for (i, q) in queries.iter().enumerate() {
            if i == 2 {
                continue;
            }
            assert_eq!(
                *batch[i].as_ref().unwrap().clone(),
                *service(3).eval(q).unwrap(),
                "{q}"
            );
        }
    }

    #[test]
    fn multi_matches_individual_evals_and_shares_scans() {
        let svc = service(2);
        // Three members open the same NP anchor (negated subquery
        // checks stay residual filters on the shared scan); the rest
        // exercise unrelated anchors and the error path.
        let queries = [
            "//NP",
            "//NP[not(//DT)]",
            "//NP[not(//NN)]",
            "//VBD->NP",
            "//VP[",
        ];
        let multi = svc.eval_multi(&queries);
        assert_eq!(multi.len(), 5);
        assert!(multi[4].is_err());
        for (i, q) in queries.iter().enumerate().take(4) {
            assert_eq!(
                *multi[i].as_ref().unwrap().clone(),
                *service(2).eval(q).unwrap(),
                "{q}"
            );
        }
        let stats = svc.stats();
        assert!(
            stats.multi_shared_scans >= 3,
            "NP-anchored members should share: {stats:?}"
        );
        assert!(stats.multi_residual_evals > 0, "{stats:?}");
        // Served-from-batch results land in the caches like solo ones.
        svc.eval_multi(&["//NP", "//NP[not(//DT)]"])
            .into_iter()
            .for_each(|r| {
                r.unwrap();
            });
        let stats = svc.stats();
        assert!(stats.result_hits >= 2, "{stats:?}");
    }

    #[test]
    fn multi_of_one_is_exactly_the_solo_path() {
        let svc = service(2);
        let multi = svc.eval_multi(&["//NP"]);
        assert_eq!(
            *multi[0].as_ref().unwrap().clone(),
            *svc.eval("//NP").unwrap()
        );
        let stats = svc.stats();
        // No batch accounting, no sharing machinery — and the second
        // (solo) eval hit the cache the first populated.
        assert_eq!(stats.batches, 0, "{stats:?}");
        assert_eq!(stats.multi_shared_scans, 0, "{stats:?}");
        assert_eq!(stats.result_hits, 1, "{stats:?}");
    }

    #[test]
    fn multi_abort_fault_point_fails_misses_without_cache_writes() {
        let svc = service(2);
        // A member already in the result cache is immune: it resolves
        // before the fault point.
        svc.eval("//NP").unwrap();
        svc.inject_multi_abort();
        let multi = svc.eval_multi(&["//NP", "//VP", "//DT"]);
        assert!(multi[0].is_ok(), "cached member survives the abort");
        assert!(matches!(multi[1], Err(ServiceError::Aborted)));
        assert!(matches!(multi[2], Err(ServiceError::Aborted)));
        let entries = svc.stats().result_cache_entries;
        assert_eq!(entries, 1, "aborted members wrote nothing");
        // The fault point is one-shot: the retry succeeds.
        let retry = svc.eval_multi(&["//NP", "//VP", "//DT"]);
        assert!(retry.iter().all(Result::is_ok));
        assert_eq!(
            *retry[1].as_ref().unwrap().clone(),
            *service(2).eval("//VP").unwrap()
        );
    }

    #[test]
    fn eval_on_shard_subsets() {
        let svc = service(2);
        let full = svc.eval("//NP").unwrap();
        let head = svc.eval_on("//NP", &[0]).unwrap();
        let tail = svc.eval_on("//NP", &[1]).unwrap();
        let mut concat: ResultSet = (*head).clone();
        concat.extend(tail.iter().copied());
        assert_eq!(*full, concat);
        assert!(matches!(
            svc.eval_on("//NP", &[9]),
            Err(ServiceError::BadShard(9))
        ));
    }

    #[test]
    fn pruning_skips_shards_without_the_symbols() {
        let svc = service(4);
        svc.eval("//_[@lex=nap]").unwrap();
        let stats = svc.stats();
        // "nap" occurs only in the last tree: at least one shard must
        // have been pruned outright.
        assert!(stats.shards_pruned > 0, "{stats:?}");
        assert!(stats.shard_evals < 4);
    }

    #[test]
    fn count_uses_the_count_cache_not_the_result_cache() {
        let svc = service(2);
        assert_eq!(svc.count("//NP").unwrap(), 5);
        assert_eq!(svc.count("//NP").unwrap(), 5);
        let stats = svc.stats();
        assert_eq!(stats.count_misses, 1);
        assert_eq!(stats.count_hits, 1);
        // Counting never touched the result cache.
        assert_eq!(stats.result_cache_entries, 0);
        assert_eq!(stats.result_hits, 0);
        // A full eval feeds later counts too... after invalidation.
        svc.append_ptb("( (S (NP (NN bird)) (VP (VBD flew))) )")
            .unwrap();
        svc.eval("//NP").unwrap();
        assert_eq!(svc.count("//NP").unwrap(), 6);
        assert_eq!(svc.stats().count_misses, 2);
    }

    #[test]
    fn exists_agrees_with_eval_and_prunes() {
        let svc = service(4);
        for q in ["//NP", "//VBD->NP", "//_[@lex=nap]", "//ZZZ", "//VP["] {
            let want = svc.eval(q).map(|r| !r.is_empty());
            let got = svc.exists(q);
            match (got, want) {
                (Ok(g), Ok(w)) => assert_eq!(g, w, "{q}"),
                (Err(_), Err(_)) => {}
                (g, w) => panic!("{q}: {g:?} vs {w:?}"),
            }
        }
        // Walker-fallback queries too.
        assert!(svc.exists("//VP/_[last()]").unwrap());
    }

    #[test]
    fn exists_serves_from_the_caches() {
        let svc = service(2);
        assert_eq!(svc.count("//NP").unwrap(), 5);
        let evals = svc.stats().shard_evals;
        assert!(svc.exists("//NP").unwrap());
        // Answered off the cached count: no new shard work.
        assert_eq!(svc.stats().shard_evals, evals);
        assert_eq!(svc.stats().count_hits, 1);
        // A cached full result set answers too.
        svc.eval("//VBD->NP").unwrap();
        let evals = svc.stats().shard_evals;
        assert!(svc.exists("//VBD->NP").unwrap());
        assert_eq!(svc.stats().shard_evals, evals);
    }

    #[test]
    fn statically_empty_queries_skip_execution_and_caches() {
        let svc = service(3);
        // Unknown tag, unknown lexeme, structural contradiction — the
        // last is a walker-strategy query, skipped all the same.
        for q in [
            "//ZZZ",
            "//_[@lex=zzzz]",
            "//NP[position()=0]",
            "//_[@lex=saw and @lex=man]",
        ] {
            assert!(svc.check(q).unwrap().statically_empty, "{q}");
            assert!(svc.eval(q).unwrap().is_empty(), "{q}");
            assert_eq!(svc.count(q).unwrap(), 0, "{q}");
            assert!(!svc.exists(q).unwrap(), "{q}");
            assert!(svc.eval_page(q, 0, 5).unwrap().is_empty(), "{q}");
            let batch = svc.eval_batch(&[q, q]);
            assert!(batch.iter().all(|r| r.as_ref().unwrap().is_empty()));
        }
        let stats = svc.stats();
        // The acceptance bar: zero shard evaluations, zero cache
        // insertions — the verdict answered everything.
        assert_eq!(stats.shard_evals, 0, "{stats:?}");
        assert_eq!(stats.result_cache_entries, 0, "{stats:?}");
        assert_eq!(stats.shard_result_cache_entries, 0, "{stats:?}");
        assert_eq!(stats.prefix_cache_entries, 0, "{stats:?}");
        assert_eq!(stats.result_misses, 0, "{stats:?}");
        // 6 requests per query (batch members count individually).
        assert_eq!(stats.statically_empty, 4 * 6, "{stats:?}");
        // The verdicts agree with the walker reference on every query.
        for q in ["//ZZZ", "//NP[position()=0]"] {
            assert!(svc.reference_eval(q).unwrap().is_empty(), "{q}");
        }
    }

    #[test]
    fn check_reports_spanned_diagnostics() {
        let svc = service(2);
        let src = "//NP[@lex=zzzz]";
        let r = svc.check(src).unwrap();
        assert!(r.statically_empty);
        assert!(!r.is_clean());
        let rendered = r.render(src);
        assert!(rendered.contains("unknown-value"), "{rendered}");
        assert!(rendered.contains('^'), "{rendered}");
        assert!(r.to_json().starts_with("{\"statically_empty\":true"));
        // Satisfiable queries come back clean and still execute.
        assert!(svc.check("//NP").unwrap().is_clean());
        assert!(!svc.eval("//NP").unwrap().is_empty());
        // The verdict stays sound across appends: "ZZZ" enters the
        // vocabulary, the stale plan-cache entry is invalidated, and
        // the query executes for real.
        assert!(svc.eval("//ZZZ").unwrap().is_empty());
        svc.append_ptb("( (S (ZZZ (NN pop))) )").unwrap();
        assert!(!svc.check("//ZZZ").unwrap().statically_empty);
        assert_eq!(svc.eval("//ZZZ").unwrap().len(), 1);
        assert_eq!(svc.count("//ZZZ").unwrap(), 1);
    }

    #[test]
    fn eval_page_is_a_prefix_slice_and_short_circuits() {
        let svc = service(5);
        let full = svc.eval("//NP").unwrap();
        // Evict nothing: use a fresh service so the full set is not
        // cached and paging takes the shard-by-shard path.
        let paged = service(5);
        for (offset, limit) in [(0, 0), (0, 1), (0, 3), (2, 2), (4, 10), (99, 3)] {
            let want: ResultSet = full.iter().skip(offset).take(limit).copied().collect();
            assert_eq!(
                paged.eval_page("//NP", offset, limit).unwrap(),
                want,
                "offset {offset} limit {limit}"
            );
        }
        // A page-1 request over 5 shards must have skipped some.
        let fresh = service(5);
        fresh.eval_page("//NP", 0, 1).unwrap();
        assert!(fresh.stats().page_shards_skipped > 0);
        // Paging again reuses the cached per-shard prefixes (or full
        // sets, for shards whose prefix proved complete).
        let s = fresh.stats();
        let before = s.result_hits + s.page_prefix_hits;
        fresh.eval_page("//NP", 0, 1).unwrap();
        let s = fresh.stats();
        assert!(s.result_hits + s.page_prefix_hits > before);
        // The visited shards were evaluated under the page bound.
        assert!(s.page_partial_evals > 0);
    }

    #[test]
    fn eval_page_serves_from_a_cached_full_result() {
        let svc = service(3);
        let full = svc.eval("//NP").unwrap();
        let page = svc.eval_page("//NP", 1, 2).unwrap();
        assert_eq!(
            page,
            full.iter().skip(1).take(2).copied().collect::<Vec<_>>()
        );
        // Served off the cached full set: no new shard evaluations.
        let stats = svc.stats();
        assert_eq!(stats.shard_evals, 3);
    }

    #[test]
    fn page_pushdown_bounds_shard_work_and_promotes_complete_prefixes() {
        let svc = service(2);
        // Page 1 of "//NP" fills within the first shard: the first
        // shard is evaluated under the page bound, the second never
        // touched.
        let full = service(2).eval("//NP").unwrap();
        let page = svc.eval_page("//NP", 0, 2).unwrap();
        assert_eq!(page, full[..2]);
        let s = svc.stats();
        assert_eq!(s.page_partial_evals, 1);
        assert_eq!(s.shard_evals, 0, "page bound did not reach the shard");
        // A page past the shard's result exhausts it: the short prefix
        // is promoted to the full per-shard set, which eval() then
        // combines with the remaining shard.
        let all = svc.eval_page("//NP", 0, 99).unwrap();
        assert_eq!(all, *full);
        let evals_before = svc.stats().shard_evals;
        assert_eq!(*svc.eval("//NP").unwrap(), *full);
        let s = svc.stats();
        assert!(
            s.result_hits >= 2,
            "promoted prefixes must serve eval(): {s:?}"
        );
        assert_eq!(s.shard_evals, evals_before, "no re-evaluation: {s:?}");
    }

    #[test]
    fn page_sweep_extends_checkpoints_and_never_re_enumerates() {
        // Page-1 → page-K sweep, page size 1: each shard is evaluated
        // from scratch exactly once; every deeper page either extends
        // a cached prefix through its checkpoint (enumerating only
        // the missing row) or reads the cache.
        let svc = service(2);
        let full = service(2).eval("//NP").unwrap();
        let mut got: ResultSet = Vec::new();
        loop {
            let page = svc.eval_page("//NP", got.len(), 1).unwrap();
            if page.is_empty() {
                break;
            }
            got.extend(page);
        }
        assert_eq!(got, *full);
        let s = svc.stats();
        assert_eq!(s.page_partial_evals, 2, "one cold start per shard: {s:?}");
        assert!(s.page_resumes >= 2, "deeper pages must resume: {s:?}");
        assert_eq!(s.shard_evals, 0, "no full shard evaluation: {s:?}");
        // Re-sweeping the same pages is pure cache.
        let resumes = s.page_resumes;
        let partials = s.page_partial_evals;
        for offset in 0..full.len() {
            svc.eval_page("//NP", offset, 1).unwrap();
        }
        let s = svc.stats();
        assert_eq!(s.page_resumes, resumes);
        assert_eq!(s.page_partial_evals, partials);
    }

    #[test]
    fn pages_and_prefixes_survive_append_for_untouched_shards() {
        let svc = service(2);
        // Covers shard 0 completely (promoted) and leaves shard 1 as
        // a checkpointed prefix.
        svc.eval_page("//NP", 0, 3).unwrap();
        let before = svc.stats();
        assert!(before.shard_result_cache_entries > 0, "{before:?}");
        assert!(before.prefix_cache_entries > 0, "{before:?}");
        svc.append_ptb("( (S (NP (NN bird)) (VP (VBD flew))) )")
            .unwrap();
        // The tail shard was rebuilt; the head shard's promoted result
        // still serves — deep-paging the grown corpus re-evaluates
        // only the tail, and agrees with a from-scratch reference.
        let all = svc.eval_page("//NP", 0, 99).unwrap();
        assert_eq!(all, svc.reference_eval("//NP").unwrap());
        let s = svc.stats();
        assert!(
            s.result_hits > before.result_hits,
            "head shard cached: {s:?}"
        );
        assert_eq!(s.shard_evals, 0, "page path never fully evaluates: {s:?}");
        assert_eq!(
            s.page_partial_evals,
            before.page_partial_evals + 1,
            "only the rebuilt tail restarted: {s:?}"
        );
    }

    #[test]
    fn prefix_cache_keys_never_collide_with_adversarial_query_text() {
        // A quoted attribute literal can put any bytes — including a
        // NUL — into a normalized query, so prefix entries must be
        // distinguished structurally, not by string mangling. The
        // second query matches nothing and must not be served the
        // first query's cached page prefix.
        let svc = service(2);
        let page = svc.eval_page("//NN@lex", 0, 2).unwrap();
        assert_eq!(page.len(), 2);
        assert_eq!(
            svc.eval_page("//NN@'lex\u{0}page'", 0, 100).unwrap(),
            Vec::new()
        );
    }

    #[test]
    fn append_recounts_only_the_tail_shard() {
        // A descendant chain is outside the aggregate tables'
        // classes, so counting it exercises the per-shard count
        // cache (the tabulated classes never touch it — see
        // `fast_counts_bypass_the_count_caches`).
        let svc = service(2);
        assert_eq!(svc.count("//VP//NP").unwrap(), 3);
        let s = svc.stats();
        assert_eq!(s.shard_count_misses, 2);
        assert_eq!(s.shard_count_hits, 0);
        assert_eq!(s.count_fast, 0);
        svc.append_ptb("( (S (NP (NN bird)) (VP (VBD flew) (NP (NN home)))) )")
            .unwrap();
        assert_eq!(svc.count("//VP//NP").unwrap(), 4);
        let s = svc.stats();
        // Head shard served from its build-scoped cache; only the
        // rebuilt tail was recounted.
        assert_eq!(s.shard_count_hits, 1);
        assert_eq!(s.shard_count_misses, 3);
        // A swap rebuilds everything: no stale reuse.
        svc.swap_corpus(&parse_str(SRC).unwrap());
        assert_eq!(svc.count("//VP//NP").unwrap(), 3);
        assert_eq!(svc.stats().shard_count_hits, 1);
        assert_eq!(svc.stats().shard_count_misses, 5);
    }

    #[test]
    fn fast_counts_bypass_the_count_caches() {
        let svc = service(2);
        assert_eq!(svc.count("//NP").unwrap(), 5);
        let s = svc.stats();
        // Both shards answered from their aggregate tables: no
        // per-shard count-cache traffic, no shard evaluation.
        assert_eq!(s.count_fast, 2);
        assert_eq!(s.shard_count_misses, 0);
        assert_eq!(s.shard_evals, 0);
        // The corpus-level count cache still serves repeats.
        assert_eq!(svc.count("//NP").unwrap(), 5);
        assert_eq!(svc.stats().count_fast, 2);
        assert_eq!(svc.stats().count_hits, 1);
        // After an append the rebuilt tail's tables answer directly:
        // still no count-cache misses anywhere.
        svc.append_ptb("( (S (NP (NN bird)) (VP (VBD flew))) )")
            .unwrap();
        assert_eq!(svc.count("//NP").unwrap(), 6);
        let s = svc.stats();
        assert_eq!(s.count_fast, 4);
        assert_eq!(s.shard_count_misses, 0);
        assert_eq!(s.shard_evals, 0);
    }

    #[test]
    fn concurrent_queries_agree() {
        let corpus = parse_str(SRC).unwrap();
        let svc = Service::with_config(
            &corpus,
            ServiceConfig {
                shards: 2,
                threads: 4,
                result_cache_capacity: 0,
                ..ServiceConfig::default()
            },
        );
        let engine = Engine::build(&corpus);
        let want = engine.query("//NP").unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..8 {
                        assert_eq!(*svc.eval("//NP").unwrap(), want);
                    }
                });
            }
        });
    }

    /// A service that logs every request as slow, for metrics tests.
    fn traced_service(shards: usize) -> Service {
        let corpus = parse_str(SRC).unwrap();
        Service::with_config(
            &corpus,
            ServiceConfig {
                shards,
                threads: 1,
                slow_query_threshold: Duration::ZERO,
                ..ServiceConfig::default()
            },
        )
    }

    fn class<'m>(m: &'m Metrics, name: &str) -> &'m ClassMetrics {
        m.classes.iter().find(|c| c.class == name).unwrap()
    }

    #[test]
    fn latencies_attribute_hits_and_misses_per_class() {
        let svc = traced_service(2);
        svc.eval("//NP").unwrap(); // miss
        svc.eval("//NP").unwrap(); // result-cache hit
        svc.count("//VP").unwrap(); // miss
        svc.count("//VP").unwrap(); // count-cache hit
        svc.eval_batch(&["//DT", "//DT"]); // one miss + one dedup = batch miss
        svc.eval_batch(&["//DT"]); // all cached = batch hit
        let m = svc.metrics();
        assert!(m.enabled);
        let eval = class(&m, "eval");
        assert_eq!((eval.misses.count, eval.hits.count), (1, 1));
        let count = class(&m, "count");
        assert_eq!((count.misses.count, count.hits.count), (1, 1));
        let batch = class(&m, "eval_batch");
        assert_eq!((batch.misses.count, batch.hits.count), (1, 1));
        // Histogram totals equal the requests recorded, and every
        // snapshot keeps p50 <= p90 <= p99 <= max.
        for c in &m.classes {
            for h in [&c.hits, &c.misses] {
                assert!(h.p50 <= h.p90 && h.p90 <= h.p99 && h.p99 <= h.max);
            }
        }
        let json = m.to_json();
        assert!(json.contains("\"eval_batch\""));
    }

    #[test]
    fn page_metrics_track_fanout_and_resumes() {
        let svc = traced_service(2);
        // Page 1 enumerates from scratch (miss), page 2 extends the
        // cached prefix through its checkpoint (miss, with a resume),
        // replaying page 1 is pure cache (hit).
        svc.eval_page("//NP", 0, 1).unwrap();
        svc.eval_page("//NP", 0, 2).unwrap();
        svc.eval_page("//NP", 0, 1).unwrap();
        let m = svc.metrics();
        let page = class(&m, "eval_page");
        assert_eq!(page.misses.count, 2);
        assert_eq!(page.hits.count, 1);
        // Every request crossed the zero threshold into the slow log,
        // newest last, carrying the fan-out and resume trace.
        let slow: Vec<_> = m
            .slow_queries
            .iter()
            .filter(|q| q.class == "eval_page")
            .collect();
        assert_eq!(slow.len(), 3);
        assert!(slow.iter().all(|q| q.query == "//NP"));
        assert!(slow.iter().all(|q| q.fanout >= 1));
        assert_eq!(slow[1].resumes, 1, "page 2 extended one prefix");
        assert_eq!(slow[2].resumes, 0, "replay resumed nothing");
        assert!(slow.iter().all(|q| q.total_ns >= q.compile_ns));
    }

    #[test]
    fn metrics_can_be_disabled() {
        let corpus = parse_str(SRC).unwrap();
        let svc = Service::with_config(
            &corpus,
            ServiceConfig {
                shards: 2,
                threads: 1,
                metrics: false,
                slow_query_threshold: Duration::ZERO,
                ..ServiceConfig::default()
            },
        );
        svc.eval("//NP").unwrap();
        svc.eval_page("//NP", 0, 2).unwrap();
        svc.count("//VP").unwrap();
        let m = svc.metrics();
        assert!(!m.enabled);
        assert!(m
            .classes
            .iter()
            .all(|c| c.hits.count == 0 && c.misses.count == 0));
        assert!(m.slow_queries.is_empty());
        // The counter-level stats stay on regardless.
        assert_eq!(m.queries, 3);
        assert_eq!(svc.stats().queries, 3);
    }

    #[test]
    fn slow_log_ring_keeps_the_newest() {
        let corpus = parse_str(SRC).unwrap();
        let svc = Service::with_config(
            &corpus,
            ServiceConfig {
                shards: 1,
                threads: 1,
                slow_query_threshold: Duration::ZERO,
                slow_query_log_capacity: 2,
                ..ServiceConfig::default()
            },
        );
        for q in ["//NP", "//VP", "//DT", "//NN"] {
            svc.count(q).unwrap();
        }
        let m = svc.metrics();
        let texts: Vec<&str> = m.slow_queries.iter().map(|q| q.query.as_str()).collect();
        assert_eq!(texts, ["//DT", "//NN"]);
    }
}
