//! Bounded, generation-invalidated LRU caches: `(normalized query,
//! shard set)` → materialized match set, and — kept separate so
//! counting never forces (or evicts) materialized results — the same
//! key → result *count*.

use std::collections::HashMap;
use std::sync::Arc;

use lpath_model::NodeId;

use crate::shard::ShardCheckpoint;

/// A materialized, document-ordered match set.
pub type ResultSet = Vec<(u32, NodeId)>;

/// A cached, *extendable* result prefix of one shard: the rows
/// enumerated so far plus the suspended execution state that continues
/// the enumeration right after them. Entries are stamped with the
/// shard's build id (the same scope the checkpoint itself is tagged
/// with), so head-shard prefixes survive `append_ptb` untouched.
#[derive(Clone)]
pub(crate) struct PrefixEntry {
    /// The shard's first `rows.len()` matches, global tree ids.
    pub rows: Arc<ResultSet>,
    /// Resumes the shard's enumeration at row `rows.len()`.
    pub ckpt: Arc<ShardCheckpoint>,
}

/// "Identical re-insert" for the LRU's no-restamp rule: same shared
/// allocations. Every prefix extension allocates fresh `Arc`s, so
/// only true no-op re-inserts compare equal.
impl PartialEq for PrefixEntry {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.rows, &other.rows) && Arc::ptr_eq(&self.ckpt, &other.ckpt)
    }
}

/// Cache key: the normalized query text plus the (sorted) shard subset
/// it was evaluated over.
pub(crate) type Key = (String, Vec<u16>);

struct Entry<V> {
    generation: u64,
    stamp: u64,
    /// Lookup hits since insertion — the admission policy's heat
    /// signal. Never decays: a hot entry stays pinned until its
    /// generation goes stale.
    hits: u32,
    value: V,
}

/// Hits at which an entry counts as *hot*: protected from eviction by
/// colder newcomers while its generation is current. Two hits is the
/// classic scan-resistance bar — a one-shot query sweep re-reads
/// nothing, so sweep entries never reach it.
const HOT: u32 = 2;

/// A bounded least-recently-used map. Entries stamped with an older
/// corpus generation are treated as absent (and dropped on contact),
/// so a swap or append invalidates the whole cache in O(1).
pub(crate) struct GenCache<V> {
    capacity: usize,
    tick: u64,
    /// Prefer evicting entries whose generation differs from the one
    /// being inserted. Right for caches stamped with the (single,
    /// monotonic) corpus generation; wrong — and disabled via
    /// [`GenCache::new_plain_lru`] — for caches stamped with per-shard
    /// build ids, where valid entries legitimately carry different
    /// stamps and "differs" does not mean "stale".
    stale_first: bool,
    map: HashMap<Key, Entry<V>>,
}

/// The result cache: values are shared match sets.
pub(crate) type ResultCache = GenCache<Arc<ResultSet>>;

/// The count cache: values are plain result sizes, orders of magnitude
/// smaller than the match sets they summarize.
pub(crate) type CountCache = GenCache<usize>;

/// The per-shard prefix cache: checkpointed result prefixes, stamped
/// with shard build ids (use [`GenCache::new_plain_lru`]).
pub(crate) type PrefixCache = GenCache<PrefixEntry>;

impl<V: Clone + PartialEq> GenCache<V> {
    pub fn new(capacity: usize) -> Self {
        GenCache {
            capacity,
            tick: 0,
            stale_first: true,
            map: HashMap::new(),
        }
    }

    /// A cache that evicts purely by recency — for values scoped to
    /// per-shard build ids rather than the corpus generation.
    pub fn new_plain_lru(capacity: usize) -> Self {
        GenCache {
            stale_first: false,
            ..Self::new(capacity)
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Look up `key` at `generation`, refreshing its recency and
    /// bumping its heat.
    pub fn get(&mut self, key: &Key, generation: u64) -> Option<V> {
        match self.map.get_mut(key) {
            Some(e) if e.generation == generation => {
                self.tick += 1;
                e.stamp = self.tick;
                e.hits = e.hits.saturating_add(1);
                Some(e.value.clone())
            }
            Some(_) => {
                // Stale generation: drop eagerly.
                self.map.remove(key);
                None
            }
            None => None,
        }
    }

    /// Insert, evicting the least recently used *evictable* entry when
    /// full. Capacity zero disables the cache entirely. Re-inserting a
    /// value identical to the cached one is a no-op — no recency
    /// re-stamp, no eviction churn (racing evaluators of the same
    /// query would otherwise keep promoting each other's entry and
    /// evicting innocent neighbours).
    ///
    /// **Admission policy**: entries re-read [`HOT`]+ times at the
    /// inserting generation are pinned — a sweep of distinct one-shot
    /// queries cannot push them out. When every resident entry is
    /// pinned the newcomer is *rejected* instead (returns `false`):
    /// the sweep pays the miss, the working set stays. Stale-generation
    /// entries are never pinned, however hot they once were.
    pub fn insert(&mut self, key: Key, generation: u64, value: V) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if let Some(e) = self.map.get(&key) {
            if e.generation == generation && e.value == value {
                return true;
            }
        }
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            // Evict: stale generations first (when the stamp really is
            // the corpus generation), else the oldest stamp — but
            // never a current-generation hot entry.
            let stale_first = self.stale_first;
            let victim = self
                .map
                .iter()
                .filter(|(_, e)| !(e.generation == generation && e.hits >= HOT))
                .min_by_key(|(_, e)| (stale_first && e.generation == generation, e.stamp))
                .map(|(k, _)| k.clone());
            match victim {
                Some(v) => {
                    self.map.remove(&v);
                }
                None => return false,
            }
        }
        self.map.insert(
            key,
            Entry {
                generation,
                stamp: self.tick,
                hits: 0,
                value,
            },
        );
        true
    }

    /// Drop one entry (e.g. a page prefix superseded by its promotion
    /// to the full result), freeing its capacity slot.
    pub fn remove(&mut self, key: &Key) {
        self.map.remove(key);
    }

    /// Compare-and-remove: drop `key`'s entry only if the cached value
    /// is still `value`. Used to take an *observed* entry back out of
    /// the cache without discarding a replacement a concurrent caller
    /// installed in the meantime.
    pub fn remove_match(&mut self, key: &Key, value: &V) {
        if let Some(e) = self.map.get(key) {
            if e.value == *value {
                self.map.remove(key);
            }
        }
    }

    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(q: &str) -> Key {
        (q.to_string(), vec![0, 1])
    }

    fn set(n: u32) -> Arc<ResultSet> {
        Arc::new(vec![(n, NodeId(0))])
    }

    #[test]
    fn hit_and_generation_invalidation() {
        let mut c = ResultCache::new(4);
        c.insert(key("//NP"), 1, set(1));
        assert!(c.get(&key("//NP"), 1).is_some());
        // A newer generation sees nothing and purges the entry.
        assert!(c.get(&key("//NP"), 2).is_none());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn lru_eviction_prefers_oldest() {
        let mut c = ResultCache::new(2);
        c.insert(key("a"), 1, set(1));
        c.insert(key("b"), 1, set(2));
        // Touch "a" so "b" becomes the LRU victim.
        assert!(c.get(&key("a"), 1).is_some());
        c.insert(key("c"), 1, set(3));
        assert!(c.get(&key("a"), 1).is_some());
        assert!(c.get(&key("b"), 1).is_none());
        assert!(c.get(&key("c"), 1).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = ResultCache::new(0);
        c.insert(key("a"), 1, set(1));
        assert!(c.get(&key("a"), 1).is_none());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn shard_sets_are_distinct_keys() {
        let mut c = ResultCache::new(4);
        c.insert(("q".into(), vec![0]), 1, set(1));
        c.insert(("q".into(), vec![0, 1]), 1, set(2));
        assert_eq!(c.get(&("q".into(), vec![0]), 1).unwrap()[0].0, 1);
        assert_eq!(c.get(&("q".into(), vec![0, 1]), 1).unwrap()[0].0, 2);
    }

    #[test]
    fn identical_reinsert_does_not_restamp() {
        let mut c = ResultCache::new(2);
        c.insert(key("a"), 1, set(1));
        c.insert(key("b"), 1, set(2));
        // Re-inserting "a"'s identical value must NOT refresh its
        // recency: "a" (stamped first) stays the LRU victim.
        c.insert(key("a"), 1, set(1));
        c.insert(key("c"), 1, set(3));
        assert!(
            c.get(&key("a"), 1).is_none(),
            "identical re-insert restamped"
        );
        assert!(c.get(&key("b"), 1).is_some());
        assert!(c.get(&key("c"), 1).is_some());
    }

    #[test]
    fn changed_value_reinsert_does_restamp() {
        let mut c = ResultCache::new(2);
        c.insert(key("a"), 1, set(1));
        c.insert(key("b"), 1, set(2));
        // A *different* value under the same key is a real update.
        c.insert(key("a"), 1, set(9));
        c.insert(key("c"), 1, set(3));
        assert_eq!(c.get(&key("a"), 1).unwrap()[0].0, 9);
        assert!(c.get(&key("b"), 1).is_none());
    }

    #[test]
    fn plain_lru_does_not_treat_foreign_stamps_as_stale() {
        // Build-id-scoped entries: simultaneously-valid entries carry
        // different stamps. The victim must be the LRU entry, not
        // whichever entry's stamp differs from the insert's.
        let mut c = CountCache::new_plain_lru(2);
        c.insert(key("head"), 7, 10); // build id 7
        c.insert(key("mid"), 8, 20); // build id 8
        assert!(c.get(&key("head"), 7).is_some()); // refresh "head"
                                                   // Insert under build id 8: the stale-first policy would evict
                                                   // "head" (stamp differs from 8 — "looks stale"); plain LRU must
                                                   // evict the least recently used "mid" instead.
        c.insert(key("tail"), 8, 30);
        assert_eq!(c.get(&key("head"), 7), Some(10), "valid entry evicted");
        assert!(c.get(&key("mid"), 8).is_none());
        assert_eq!(c.get(&key("tail"), 8), Some(30));
        // The generation-scoped default keeps preferring stale stamps.
        let mut c = CountCache::new(2);
        c.insert(key("old"), 1, 10); // stale generation
        c.insert(key("a"), 2, 20);
        assert!(c.get(&key("a"), 2).is_some());
        c.insert(key("b"), 2, 30); // evicts "old", not the LRU "a"
        assert!(c.get(&key("a"), 2).is_some());
        assert!(c.get(&key("b"), 2).is_some());
    }

    #[test]
    fn sweep_cannot_evict_hot_entries() {
        let mut c = CountCache::new(2);
        c.insert(key("hot1"), 1, 1);
        c.insert(key("hot2"), 1, 2);
        for _ in 0..2 {
            c.get(&key("hot1"), 1);
            c.get(&key("hot2"), 1);
        }
        // A sweep of distinct one-shot inserts: every one rejected,
        // the hot working set intact.
        for i in 0..16 {
            assert!(!c.insert((format!("sweep{i}"), vec![0]), 1, 99));
        }
        assert_eq!(c.get(&key("hot1"), 1), Some(1));
        assert_eq!(c.get(&key("hot2"), 1), Some(2));
    }

    #[test]
    fn cold_entries_still_evict_under_hot_protection() {
        let mut c = CountCache::new(2);
        c.insert(key("hot"), 1, 1);
        c.get(&key("hot"), 1);
        c.get(&key("hot"), 1);
        c.insert(key("cold"), 1, 2);
        // The cold neighbour is the victim; the hot entry survives.
        assert!(c.insert(key("new"), 1, 3));
        assert_eq!(c.get(&key("hot"), 1), Some(1));
        assert!(c.get(&key("cold"), 1).is_none());
        assert_eq!(c.get(&key("new"), 1), Some(3));
    }

    #[test]
    fn stale_hot_entries_are_not_protected() {
        let mut c = CountCache::new(1);
        c.insert(key("old"), 1, 1);
        c.get(&key("old"), 1);
        c.get(&key("old"), 1);
        // Generation bump: yesterday's heat buys no protection.
        assert!(c.insert(key("new"), 2, 2));
        assert_eq!(c.get(&key("new"), 2), Some(2));
    }

    #[test]
    fn count_cache_counts() {
        let mut c = CountCache::new(2);
        c.insert(key("a"), 1, 41);
        assert_eq!(c.get(&key("a"), 1), Some(41));
        assert_eq!(c.get(&key("a"), 2), None);
        c.insert(key("a"), 2, 42);
        assert_eq!(c.get(&key("a"), 2), Some(42));
    }
}
