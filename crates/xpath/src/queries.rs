//! XPath renderings of the 11 Figure 6(c) queries that XPath 1.0 can
//! express (the x-axis of the paper's Figure 10).

/// `(query id, XPath text)` pairs, ids matching
/// `lpath_core::queryset::QUERIES`.
pub const XPATH_QUERIES: [(usize, &str); 11] = [
    (1, "//S[.//*[@lex='saw']]"),
    (8, "//S[.//NP/ADJP]"),
    (9, "//NP[not(.//JJ)]"),
    (12, "//*[@lex='rapprochement']"),
    (13, "//*[@lex='1929']"),
    (14, "//ADVP-LOC-CLR"),
    (15, "//WHPP"),
    (16, "//RRC/PP-TMP"),
    (17, "//UCP-PRD/ADJP-PRD"),
    (18, "//NP/NP/NP/NP/NP"),
    (19, "//VP/VP/VP"),
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_xpath;

    #[test]
    fn all_parse() {
        for (id, q) in XPATH_QUERIES {
            parse_xpath(q).unwrap_or_else(|e| panic!("Q{id}: {e}"));
        }
    }

    #[test]
    fn ids_are_the_paper_subset() {
        let ids: Vec<usize> = XPATH_QUERIES.iter().map(|(i, _)| *i).collect();
        assert_eq!(ids, [1, 8, 9, 12, 13, 14, 15, 16, 17, 18, 19]);
    }
}
