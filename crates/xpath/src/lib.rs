//! XPath 1.0 baseline engine with the DeHaan start/end labeling.
//!
//! This crate is the comparison point of the paper's Figure 10: an
//! XPath-only engine built on "textual position" (start/end tag) labels
//! rather than LPath's leaf intervals, sharing every other component —
//! storage, clustering, indexes, planner — with the LPath engine so the
//! labeling schemes compare head to head.
//!
//! ```
//! use lpath_model::ptb::parse_str;
//! use lpath_xpath::XPathEngine;
//!
//! let corpus = parse_str(
//!     "( (S (NP-SBJ (PRP I)) (VP (VBD saw) (NP (DT the) (NN man)))) )",
//! ).unwrap();
//! let engine = XPathEngine::build(&corpus);
//! assert_eq!(engine.count("//S[.//*[@lex='saw']]").unwrap(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod labeling;
pub mod parser;
pub mod queries;
pub mod translate;

pub use engine::{XPathEngine, XpathError};
pub use labeling::{se_label_tree, SeLabel};
pub use parser::parse_xpath;
pub use queries::XPATH_QUERIES;
pub use translate::{SeCols, SeTranslator, XpathUnsupported};
