//! An XPath 1.0 subset parser.
//!
//! Parses genuine XPath surface syntax — `*` wildcards, `axis::test`
//! steps, `.` self steps, `[ ]` predicates with `not()`, `and`/`or`,
//! `position()`/`last()` and value comparisons — into the shared
//! [`lpath_syntax`] AST, restricted to the XPath axis inventory. LPath
//! extensions (arrows, braces, `^`/`$`) are simply not part of this
//! grammar, so the produced ASTs always lie in the XPath fragment.
//!
//! One deliberate deviation, shared with the LPath parser: a leading
//! `//` inside a predicate is the descendant axis from the context node
//! rather than a document-absolute path, matching how the paper's
//! queries (e.g. Q1) are meant.

use lpath_syntax::{Axis, CmpOp, NodeTest, Path, PosRhs, Pred, Step, SyntaxError};

/// Parse an XPath query.
pub fn parse_xpath(src: &str) -> Result<Path, SyntaxError> {
    let tokens = lex(src)?;
    let mut p = P { t: tokens, i: 0 };
    let absolute = matches!(p.peek(), Some(Tok::Slash | Tok::DSlash));
    let mut path = p.rel_path()?;
    path.absolute = absolute;
    if p.i < p.t.len() {
        return Err(SyntaxError::at(
            0,
            format!("trailing tokens: {:?}", p.peek()),
        ));
    }
    if path.steps.is_empty() {
        return Err(SyntaxError::at(0, "empty XPath"));
    }
    Ok(path)
}

#[derive(Clone, PartialEq, Debug)]
enum Tok {
    Slash,
    DSlash,
    Dot,
    At,
    Star,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Comma,
    Eq,
    Ne,
    Lt,
    Gt,
    ColonColon,
    Name(String),
    Literal(String),
}

fn lex(src: &str) -> Result<Vec<Tok>, SyntaxError> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            c if c.is_ascii_whitespace() => i += 1,
            b'/' => {
                if b.get(i + 1) == Some(&b'/') {
                    out.push(Tok::DSlash);
                    i += 2;
                } else {
                    out.push(Tok::Slash);
                    i += 1;
                }
            }
            b'.' => {
                out.push(Tok::Dot);
                i += 1;
            }
            b'@' => {
                out.push(Tok::At);
                i += 1;
            }
            b'*' => {
                out.push(Tok::Star);
                i += 1;
            }
            b'[' => {
                out.push(Tok::LBracket);
                i += 1;
            }
            b']' => {
                out.push(Tok::RBracket);
                i += 1;
            }
            b'(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            b')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            b'=' => {
                out.push(Tok::Eq);
                i += 1;
            }
            b'!' if b.get(i + 1) == Some(&b'=') => {
                out.push(Tok::Ne);
                i += 2;
            }
            b',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            b'<' => {
                out.push(Tok::Lt);
                i += 1;
            }
            b'>' => {
                out.push(Tok::Gt);
                i += 1;
            }
            b':' if b.get(i + 1) == Some(&b':') => {
                out.push(Tok::ColonColon);
                i += 2;
            }
            q @ (b'\'' | b'"') => {
                let start = i + 1;
                let mut j = start;
                while j < b.len() && b[j] != q {
                    j += 1;
                }
                if j >= b.len() {
                    return Err(SyntaxError::at(i, "unterminated literal"));
                }
                out.push(Tok::Literal(
                    String::from_utf8_lossy(&b[start..j]).into_owned(),
                ));
                i = j + 1;
            }
            c if c.is_ascii_alphanumeric() || c == b'-' || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'-' || b[i] == b'_')
                {
                    i += 1;
                }
                out.push(Tok::Name(
                    String::from_utf8_lossy(&b[start..i]).into_owned(),
                ));
            }
            c => {
                return Err(SyntaxError::at(
                    i,
                    format!("unexpected character '{}'", c as char),
                ))
            }
        }
    }
    Ok(out)
}

struct P {
    t: Vec<Tok>,
    i: usize,
}

/// The axes XPath 1.0 actually has.
fn xpath_axis(name: &str) -> Option<Axis> {
    let a = Axis::from_name(name)?;
    a.in_core_xpath().then_some(a)
}

impl P {
    fn peek(&self) -> Option<&Tok> {
        self.t.get(self.i)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.t.get(self.i + 1)
    }

    fn expect(&mut self, t: Tok) -> Result<(), SyntaxError> {
        if self.peek() == Some(&t) {
            self.i += 1;
            Ok(())
        } else {
            Err(SyntaxError::at(
                self.i,
                format!("expected {t:?}, found {:?}", self.peek()),
            ))
        }
    }

    /// `rel_path := step (('/' | '//') step)*`, with an optional
    /// leading separator consumed by the caller's absolute check.
    fn rel_path(&mut self) -> Result<Path, SyntaxError> {
        let mut steps = Vec::new();
        // Leading separator.
        let mut pending_axis = match self.peek() {
            Some(Tok::Slash) => {
                self.i += 1;
                Some(Axis::Child)
            }
            Some(Tok::DSlash) => {
                self.i += 1;
                Some(Axis::Descendant)
            }
            _ => None,
        };
        loop {
            let default_axis = pending_axis.take().unwrap_or(Axis::Child);
            let step = self.step(default_axis)?;
            steps.push(step);
            match self.peek() {
                Some(Tok::Slash) => {
                    self.i += 1;
                    pending_axis = Some(Axis::Child);
                }
                Some(Tok::DSlash) => {
                    self.i += 1;
                    pending_axis = Some(Axis::Descendant);
                }
                _ => break,
            }
        }
        Ok(Path {
            absolute: false,
            steps,
            scope: None,
        })
    }

    /// One step with `separator_axis` as the default axis (`/` → child,
    /// `//` → descendant of the previous context).
    fn step(&mut self, separator_axis: Axis) -> Result<Step, SyntaxError> {
        // `.` self step.
        if self.peek() == Some(&Tok::Dot) {
            self.i += 1;
            let mut step = Step::new(Axis::SelfAxis, NodeTest::Any);
            self.predicates(&mut step)?;
            return Ok(step);
        }
        // `@name` attribute step.
        if self.peek() == Some(&Tok::At) {
            self.i += 1;
            let test = self.node_test()?;
            let mut step = Step::new(Axis::Attribute, test);
            self.predicates(&mut step)?;
            return Ok(step);
        }
        // `axis::test`.
        if let (Some(Tok::Name(n)), Some(Tok::ColonColon)) = (self.peek(), self.peek2()) {
            let name = n.clone();
            let axis = xpath_axis(&name).ok_or_else(|| {
                SyntaxError::at(self.i, format!("'{name}' is not an XPath 1.0 axis"))
            })?;
            self.i += 2;
            if axis == Axis::Attribute {
                let test = self.node_test()?;
                let mut step = Step::new(Axis::Attribute, test);
                self.predicates(&mut step)?;
                return Ok(step);
            }
            let test = self.node_test()?;
            let mut step = Step::new(axis, test);
            self.predicates(&mut step)?;
            return Ok(step);
        }
        // Plain test with the separator's axis. `//X` is shorthand for
        // `/descendant-or-self::node()/child::X`, which over element
        // trees coincides with `descendant::X`.
        let test = self.node_test()?;
        let mut step = Step::new(separator_axis, test);
        self.predicates(&mut step)?;
        Ok(step)
    }

    fn node_test(&mut self) -> Result<NodeTest, SyntaxError> {
        match self.t.get(self.i).cloned() {
            Some(Tok::Star) => {
                self.i += 1;
                Ok(NodeTest::Any)
            }
            Some(Tok::Name(n)) => {
                self.i += 1;
                Ok(NodeTest::Tag(n))
            }
            Some(Tok::Literal(s)) => {
                self.i += 1;
                Ok(NodeTest::Tag(s))
            }
            other => Err(SyntaxError::at(
                self.i,
                format!("expected a node test, found {other:?}"),
            )),
        }
    }

    fn predicates(&mut self, step: &mut Step) -> Result<(), SyntaxError> {
        while self.peek() == Some(&Tok::LBracket) {
            self.i += 1;
            let e = self.or_expr()?;
            self.expect(Tok::RBracket)?;
            step.predicates.push(e);
        }
        Ok(())
    }

    fn or_expr(&mut self) -> Result<Pred, SyntaxError> {
        let mut lhs = self.and_expr()?;
        while matches!(self.peek(), Some(Tok::Name(n)) if n == "or") {
            self.i += 1;
            lhs = Pred::or(lhs, self.and_expr()?);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Pred, SyntaxError> {
        let mut lhs = self.unary()?;
        while matches!(self.peek(), Some(Tok::Name(n)) if n == "and") {
            self.i += 1;
            lhs = Pred::and(lhs, self.unary()?);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Pred, SyntaxError> {
        match (self.peek(), self.peek2()) {
            (Some(Tok::Name(n)), Some(Tok::LParen)) if n == "not" => {
                self.i += 2;
                let inner = self.or_expr()?;
                self.expect(Tok::RParen)?;
                Ok(Pred::not(inner))
            }
            (Some(Tok::Name(n)), Some(Tok::LParen)) if n == "position" => {
                self.i += 2;
                self.expect(Tok::RParen)?;
                let op = self.cmp_op()?;
                let rhs = self.pos_rhs()?;
                Ok(Pred::Position(op, rhs))
            }
            (Some(Tok::Name(n)), Some(Tok::LParen)) if n == "last" => {
                self.i += 2;
                self.expect(Tok::RParen)?;
                Ok(Pred::Position(CmpOp::Eq, PosRhs::Last))
            }
            (Some(Tok::Name(n)), Some(Tok::LParen)) if n == "count" => {
                self.i += 2;
                let path = self.predicate_path()?;
                self.expect(Tok::RParen)?;
                let op = self.cmp_op()?;
                let value = self.number()?;
                Ok(Pred::Count { path, op, value })
            }
            (Some(Tok::Name(n)), Some(Tok::LParen)) if n == "string-length" => {
                self.i += 2;
                let path = self.predicate_path()?;
                self.expect(Tok::RParen)?;
                let op = self.cmp_op()?;
                let value = self.number()?;
                Ok(Pred::StrLen { path, op, value })
            }
            (Some(Tok::Name(n)), Some(Tok::LParen))
                if lpath_syntax::StrFunc::from_name(n).is_some() =>
            {
                let func = lpath_syntax::StrFunc::from_name(n).expect("guard checked");
                self.i += 2;
                let path = self.predicate_path()?;
                self.expect(Tok::Comma)?;
                let arg = match self.t.get(self.i).cloned() {
                    Some(Tok::Literal(s) | Tok::Name(s)) => {
                        self.i += 1;
                        s
                    }
                    other => {
                        return Err(SyntaxError::at(
                            self.i,
                            format!("expected a string argument, found {other:?}"),
                        ))
                    }
                };
                self.expect(Tok::RParen)?;
                Ok(Pred::StrCmp { func, path, arg })
            }
            (Some(Tok::LParen), _) => {
                self.i += 1;
                let inner = self.or_expr()?;
                self.expect(Tok::RParen)?;
                Ok(inner)
            }
            _ => {
                // A relative path; `.//X` and `//X` both mean
                // descendant-of-context here.
                if self.peek() == Some(&Tok::Dot)
                    && matches!(self.peek2(), Some(Tok::DSlash | Tok::Slash))
                {
                    self.i += 1; // swallow the `.`; the separator drives the axis
                }
                let path = self.rel_path()?;
                if matches!(self.peek(), Some(Tok::Eq | Tok::Ne)) {
                    let op = self.cmp_op()?;
                    let value = match self.t.get(self.i).cloned() {
                        Some(Tok::Name(n)) => {
                            self.i += 1;
                            n
                        }
                        Some(Tok::Literal(s)) => {
                            self.i += 1;
                            s
                        }
                        other => {
                            return Err(SyntaxError::at(
                                self.i,
                                format!("expected a value, found {other:?}"),
                            ))
                        }
                    };
                    Ok(Pred::Cmp { path, op, value })
                } else {
                    Ok(Pred::Exists(path))
                }
            }
        }
    }

    fn cmp_op(&mut self) -> Result<CmpOp, SyntaxError> {
        match self.peek() {
            Some(Tok::Eq) => {
                self.i += 1;
                Ok(CmpOp::Eq)
            }
            Some(Tok::Ne) => {
                self.i += 1;
                Ok(CmpOp::Ne)
            }
            Some(Tok::Lt) => {
                self.i += 1;
                Ok(CmpOp::Lt)
            }
            Some(Tok::Gt) => {
                self.i += 1;
                Ok(CmpOp::Gt)
            }
            other => Err(SyntaxError::at(
                self.i,
                format!("expected a comparison operator, found {other:?}"),
            )),
        }
    }

    /// A relative path argument inside a function call, with the same
    /// leading-`.` normalization as predicate paths.
    fn predicate_path(&mut self) -> Result<Path, SyntaxError> {
        if self.peek() == Some(&Tok::Dot) && matches!(self.peek2(), Some(Tok::DSlash | Tok::Slash))
        {
            self.i += 1;
        }
        self.rel_path()
    }

    /// A bare non-negative integer.
    fn number(&mut self) -> Result<u32, SyntaxError> {
        match self.t.get(self.i).cloned() {
            Some(Tok::Name(n)) => {
                let v: u32 = n
                    .parse()
                    .map_err(|_| SyntaxError::at(self.i, format!("not a number: {n}")))?;
                self.i += 1;
                Ok(v)
            }
            other => Err(SyntaxError::at(
                self.i,
                format!("expected a number, found {other:?}"),
            )),
        }
    }

    fn pos_rhs(&mut self) -> Result<PosRhs, SyntaxError> {
        match (self.t.get(self.i).cloned(), self.peek2()) {
            (Some(Tok::Name(n)), Some(Tok::LParen)) if n == "last" => {
                self.i += 2;
                self.expect(Tok::RParen)?;
                Ok(PosRhs::Last)
            }
            (Some(Tok::Name(n)), _) => {
                let v: u32 = n
                    .parse()
                    .map_err(|_| SyntaxError::at(self.i, format!("not a number: {n}")))?;
                self.i += 1;
                Ok(PosRhs::Const(v))
            }
            other => Err(SyntaxError::at(
                self.i,
                format!("expected number or last(), found {other:?}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_paths() {
        let p = parse_xpath("//S").unwrap();
        assert!(p.absolute);
        assert_eq!(p.steps[0].axis, Axis::Descendant);
        let p = parse_xpath("/S/NP").unwrap();
        assert_eq!(p.steps[1].axis, Axis::Child);
        let p = parse_xpath("//S//NP").unwrap();
        assert_eq!(p.steps[1].axis, Axis::Descendant);
    }

    #[test]
    fn star_is_wildcard() {
        let p = parse_xpath("//*[@lex='saw']").unwrap();
        assert_eq!(p.steps[0].test, NodeTest::Any);
        let Pred::Cmp { op, value, .. } = &p.steps[0].predicates[0] else {
            panic!()
        };
        assert_eq!(*op, CmpOp::Eq);
        assert_eq!(value, "saw");
    }

    #[test]
    fn named_axes() {
        let p = parse_xpath("//V/following-sibling::*[position()=1][self::NP]").unwrap();
        assert_eq!(p.steps[1].axis, Axis::FollowingSibling);
        assert_eq!(
            p.steps[1].predicates[0],
            Pred::Position(CmpOp::Eq, PosRhs::Const(1))
        );
        // LPath-only axes are rejected.
        assert!(parse_xpath("//V/immediate-following::NP").is_err());
        assert!(parse_xpath("//V/following-or-self::NP").is_err());
    }

    #[test]
    fn predicate_paths() {
        let p = parse_xpath("//S[.//NP/ADJP]").unwrap();
        let Pred::Exists(inner) = &p.steps[0].predicates[0] else {
            panic!()
        };
        assert_eq!(inner.steps[0].axis, Axis::Descendant);
        assert_eq!(inner.steps[1].axis, Axis::Child);
        // Bare name predicate = child.
        let p = parse_xpath("//S[NP]").unwrap();
        let Pred::Exists(inner) = &p.steps[0].predicates[0] else {
            panic!()
        };
        assert_eq!(inner.steps[0].axis, Axis::Child);
    }

    #[test]
    fn booleans() {
        let p = parse_xpath("//NP[not(.//JJ) and .//DT or NP]").unwrap();
        assert!(matches!(p.steps[0].predicates[0], Pred::Or(..)));
    }

    #[test]
    fn the_eleven_figure10_queries_parse() {
        for q in [
            "//S[.//*[@lex='saw']]",
            "//S[.//NP/ADJP]",
            "//NP[not(.//JJ)]",
            "//*[@lex='rapprochement']",
            "//*[@lex='1929']",
            "//ADVP-LOC-CLR",
            "//WHPP",
            "//RRC/PP-TMP",
            "//UCP-PRD/ADJP-PRD",
            "//NP/NP/NP/NP/NP",
            "//VP/VP/VP",
        ] {
            parse_xpath(q).unwrap_or_else(|e| panic!("{q}: {e}"));
        }
    }

    #[test]
    fn function_library() {
        let p = parse_xpath("//NP[count(.//JJ)>0]").unwrap();
        assert!(matches!(
            p.steps[0].predicates[0],
            Pred::Count {
                op: CmpOp::Gt,
                value: 0,
                ..
            }
        ));
        let p = parse_xpath("//*[contains(@lex,'og')]").unwrap();
        assert!(matches!(p.steps[0].predicates[0], Pred::StrCmp { .. }));
        let p = parse_xpath("//*[starts-with(@lex,\"s\")]").unwrap();
        assert!(matches!(p.steps[0].predicates[0], Pred::StrCmp { .. }));
        let p = parse_xpath("//*[string-length(@lex)=3]").unwrap();
        assert!(matches!(p.steps[0].predicates[0], Pred::StrLen { .. }));
    }

    #[test]
    fn errors() {
        for bad in [
            "",
            "//",
            "//S[",
            "//S]",
            "//S[@]",
            "//S[=x]",
            "//S{//V}",
            "//V->NP",
            "//S[count()>1]",
            "//S[contains(@lex)]",
        ] {
            assert!(parse_xpath(bad).is_err(), "{bad}");
        }
    }
}
