//! The XPath baseline engine: same relational machinery as the LPath
//! engine, different labeling scheme (start/end textual positions).
//!
//! The paper's §5.4 controlled comparison: "we set other components of
//! both labeling schemes to be the same". Accordingly this engine uses
//! the same columnar store, the analogous clustered order
//! `{name, tid, start, end, depth, id, pid}`, the same secondary index
//! shapes and the same planner — only the label columns and the axis
//! characterizations differ.

use lpath_model::{Corpus, Interner, NodeId};
use lpath_relstore::{self as rel, Database, PlannerConfig, Schema, Table, TableId, Value, NULL};
use lpath_syntax::{Path, SyntaxError};

use crate::labeling::se_label_tree;
use crate::parser::parse_xpath;
use crate::translate::{SeCols, SeTranslator, XpathUnsupported};

/// Query failures of the XPath engine.
#[derive(Debug)]
pub enum XpathError {
    /// The query text does not parse as XPath.
    Syntax(SyntaxError),
    /// The query has no start/end-label translation.
    Unsupported(XpathUnsupported),
}

impl std::fmt::Display for XpathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XpathError::Syntax(e) => e.fmt(f),
            XpathError::Unsupported(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for XpathError {}

impl From<SyntaxError> for XpathError {
    fn from(e: SyntaxError) -> Self {
        XpathError::Syntax(e)
    }
}

impl From<XpathUnsupported> for XpathError {
    fn from(e: XpathUnsupported) -> Self {
        XpathError::Unsupported(e)
    }
}

/// XPath engine over the start/end-labeled relation.
pub struct XPathEngine {
    db: Database,
    node: TableId,
    cols: SeCols,
    interner: Interner,
    planner: PlannerConfig,
}

impl XPathEngine {
    /// Label every tree with start/end positions, load, cluster, index.
    pub fn build(corpus: &Corpus) -> Self {
        let schema = Schema::new(&["tid", "start", "end", "depth", "id", "pid", "name", "value"]);
        let mut table = Table::new(schema);
        for (tid, tree) in corpus.trees().iter().enumerate() {
            let labels = se_label_tree(tree);
            for id in tree.preorder() {
                let l = &labels[id.index()];
                let node = tree.node(id);
                let base = [
                    tid as Value,
                    l.start,
                    l.end,
                    l.depth,
                    l.id,
                    l.pid,
                    node.name.raw(),
                    NULL,
                ];
                table.push_row(&base);
                for &(aname, aval) in &node.attrs {
                    let mut row = base;
                    row[6] = aname.raw();
                    row[7] = aval.raw();
                    table.push_row(&row);
                }
            }
        }
        let cluster: Vec<rel::ColId> = ["name", "tid", "start", "end", "depth", "id", "pid"]
            .iter()
            .map(|c| table.schema().col_expect(c))
            .collect();
        table.cluster_by(&cluster);
        let mut db = Database::new();
        let node = db.add_table("node", table);
        let cols = SeCols::resolve(&db, node);
        db.add_index(node, "clustered", cluster);
        db.add_index(node, "tid_value_id", vec![cols.tid, cols.value, cols.id]);
        db.add_index(node, "value_tid_id", vec![cols.value, cols.tid, cols.id]);
        db.add_index(node, "tid_id", vec![cols.tid, cols.id]);
        db.analyze(node, &[cols.name, cols.value]);
        XPathEngine {
            db,
            node,
            cols,
            interner: corpus.interner().clone(),
            planner: PlannerConfig::default(),
        }
    }

    /// Number of rows in the start/end node relation.
    pub fn relation_size(&self) -> usize {
        self.db.table(self.node).num_rows()
    }

    /// Evaluate an XPath query string.
    pub fn query(&self, query: &str) -> Result<Vec<(u32, NodeId)>, XpathError> {
        let ast = parse_xpath(query)?;
        self.query_ast(&ast)
    }

    /// Evaluate a pre-parsed query (must lie in the XPath fragment).
    pub fn query_ast(&self, ast: &Path) -> Result<Vec<(u32, NodeId)>, XpathError> {
        let tr = SeTranslator::new(self.node, self.cols, &self.interner);
        let cq = tr.translate(ast)?;
        let plan = rel::plan(&self.db, &cq, &self.planner);
        let mut out: Vec<(u32, NodeId)> = rel::execute(&plan, &self.db)
            .into_iter()
            .map(|row| (row[0], NodeId(row[1] - 2)))
            .collect();
        out.sort_unstable();
        Ok(out)
    }

    /// Result size of an XPath query.
    pub fn count(&self, query: &str) -> Result<usize, XpathError> {
        Ok(self.query(query)?.len())
    }

    /// The generated SQL, numeric literals left raw.
    pub fn sql(&self, query: &str) -> Result<String, XpathError> {
        let ast = parse_xpath(query)?;
        let tr = SeTranslator::new(self.node, self.cols, &self.interner);
        Ok(tr.translate(&ast)?.to_sql(&self.db))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpath_model::ptb::parse_str;

    const FIG1: &str = "( (S (NP I) (VP (V saw) (NP (NP (Det the) (Adj old) (N man)) \
                        (PP (Prep with) (NP (Det a) (N dog))))) (N today)) )";

    fn engine() -> XPathEngine {
        XPathEngine::build(&parse_str(FIG1).unwrap())
    }

    #[test]
    fn basic_counts_match_the_tree() {
        let e = engine();
        assert_eq!(e.count("//NP").unwrap(), 4);
        assert_eq!(e.count("/S").unwrap(), 1);
        assert_eq!(e.count("//VP//NP").unwrap(), 3);
        assert_eq!(e.count("//PP/NP").unwrap(), 1);
        assert_eq!(e.count("//S[.//*[@lex='saw']]").unwrap(), 1);
        assert_eq!(e.count("//NP[not(.//Det)]").unwrap(), 1);
        assert_eq!(e.count("//*[@lex='dog']").unwrap(), 1);
        assert_eq!(e.count("//V/following-sibling::NP").unwrap(), 1);
        assert_eq!(e.count("//N/preceding-sibling::Det").unwrap(), 2);
    }

    #[test]
    fn agrees_with_lpath_engine_on_shared_fragment() {
        let corpus = parse_str(FIG1).unwrap();
        let xp = XPathEngine::build(&corpus);
        let lp = lpath_core::Engine::build(&corpus);
        // (xpath syntax, equivalent lpath syntax)
        for (xq, lq) in [
            ("//NP", "//NP"),
            ("//S//N", "//S//N"),
            ("//VP/V", "//VP/V"),
            ("//S[.//NP/PP]", "//S[//NP/PP]"),
            ("//NP[not(.//JJ)]", "//NP[not(//JJ)]"),
            ("//*[@lex='saw']", "//_[@lex=saw]"),
            ("//*[@lex!='saw']", "//_[@lex!=saw]"),
            ("//NP/NP", "//NP/NP"),
            ("//V/following::N", "//V-->N"),
            ("//Det/parent::NP", "//Det\\NP"),
            ("//Prep/ancestor::VP", "//Prep\\\\VP"),
        ] {
            let a = xp.query(xq).unwrap_or_else(|e| panic!("{xq}: {e}"));
            let b = lp.query(lq).unwrap_or_else(|e| panic!("{lq}: {e}"));
            assert_eq!(a, b, "{xq} vs {lq}");
        }
    }

    #[test]
    fn lpath_extensions_rejected() {
        let corpus = parse_str(FIG1).unwrap();
        let xp = XPathEngine::build(&corpus);
        // Parsed with the LPath parser, fed as ASTs.
        for q in ["//V->NP", "//VP{/NP$}", "//^NP", "//NP$"] {
            let ast = lpath_syntax::parse(q).unwrap();
            assert!(xp.query_ast(&ast).is_err(), "{q}");
        }
        // position() parses but has no relational form.
        assert!(matches!(
            xp.count("//VP/*[position()=1]"),
            Err(XpathError::Unsupported(_))
        ));
    }

    #[test]
    fn relation_size_matches_lpath_engine() {
        let corpus = parse_str(FIG1).unwrap();
        let xp = XPathEngine::build(&corpus);
        let lp = lpath_core::Engine::build(&corpus);
        assert_eq!(xp.relation_size(), lp.relation_size());
    }

    #[test]
    fn sql_uses_start_end_columns() {
        let e = engine();
        let sql = e.sql("//VP//NP").unwrap();
        assert!(sql.contains("start"), "{sql}");
        assert!(sql.contains("end"), "{sql}");
    }
}
