//! XPath → SQL translation over the start/end labeling (DeHaan, the paper’s reference \[11\]),
//! the counterpart of `lpath-core`'s Table 2 translation.
//!
//! Axis characterizations on `{tid, start, end, depth, id, pid}`:
//!
//! | axis | condition |
//! |---|---|
//! | child | `x.pid = c.id` (+ nesting for the index range) |
//! | descendant | `x.start > c.start ∧ x.end < c.end` |
//! | parent | `x.id = c.pid` |
//! | ancestor | `x.start < c.start ∧ x.end > c.end` |
//! | following | `x.start > c.end` |
//! | preceding | `x.end < c.start` |
//! | following-sibling | `x.pid = c.pid ∧ x.start > c.end` |
//! | preceding-sibling | `x.pid = c.pid ∧ x.end < c.start` |
//!
//! There is nothing to write for *immediate*-following: start/end
//! positions of adjacent constituents differ by an unbounded number of
//! intervening tags. Queries using LPath extensions are rejected —
//! that's Figure 10's story: same machinery, smaller language.

use lpath_model::Interner;
use lpath_relstore::{
    Cmp, ColId, ColRef, Cond, ConjQuery, Database, InCond, Operand, SubQuery, TableId, NULL,
};
use lpath_syntax::{Axis, CmpOp, NodeTest, Path, Pred, Step};

/// Failure to express a query over the start/end labeling.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct XpathUnsupported(pub String);

impl std::fmt::Display for XpathUnsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "not expressible over start/end labels: {}", self.0)
    }
}

impl std::error::Error for XpathUnsupported {}

/// Column handles of the start/end node relation.
#[derive(Copy, Clone, Debug)]
pub struct SeCols {
    /// Tree identifier.
    pub tid: ColId,
    /// Start-tag position.
    pub start: ColId,
    /// End-tag position.
    pub end: ColId,
    /// Node depth.
    pub depth: ColId,
    /// Unique node id.
    pub id: ColId,
    /// Parent's id.
    pub pid: ColId,
    /// Interned tag or attribute name.
    pub name: ColId,
    /// Interned attribute value (NULL on element rows).
    pub value: ColId,
}

impl SeCols {
    /// Resolve against the start/end table's schema.
    pub fn resolve(db: &Database, table: TableId) -> Self {
        let s = db.table(table).schema();
        SeCols {
            tid: s.col_expect("tid"),
            start: s.col_expect("start"),
            end: s.col_expect("end"),
            depth: s.col_expect("depth"),
            id: s.col_expect("id"),
            pid: s.col_expect("pid"),
            name: s.col_expect("name"),
            value: s.col_expect("value"),
        }
    }
}

/// The XPath → SQL translator over start/end labels.
pub struct SeTranslator<'a> {
    /// The start/end node relation.
    pub table: TableId,
    /// Resolved column handles.
    pub cols: SeCols,
    /// The corpus dictionary.
    pub interner: &'a Interner,
}

#[derive(Copy, Clone)]
enum Ctx {
    Document,
    Alias(usize),
    Outer(usize),
}

impl<'a> SeTranslator<'a> {
    /// Build a translator for one start/end relation.
    pub fn new(table: TableId, cols: SeCols, interner: &'a Interner) -> Self {
        SeTranslator {
            table,
            cols,
            interner,
        }
    }

    /// Translate a full query (rejecting LPath-only features).
    pub fn translate(&self, path: &Path) -> Result<ConjQuery, XpathUnsupported> {
        if path.scope.is_some() {
            return Err(XpathUnsupported("subtree scoping".into()));
        }
        let mut q = ConjQuery {
            distinct: true,
            ..Default::default()
        };
        let ctx = if path.absolute {
            Ctx::Document
        } else {
            let r = q.add_alias(self.table);
            q.conds.push(Cond::against_const(
                ColRef::new(r, self.cols.depth),
                Cmp::Eq,
                1,
            ));
            q.conds.push(Cond::against_const(
                ColRef::new(r, self.cols.value),
                Cmp::Eq,
                NULL,
            ));
            Ctx::Alias(r)
        };
        let result = self.path_into(&mut q, path, ctx)?;
        q.projection = vec![
            ColRef::new(result, self.cols.tid),
            ColRef::new(result, self.cols.id),
        ];
        Ok(q)
    }

    fn unsat(&self, q: &mut ConjQuery, alias: usize) {
        q.conds.push(Cond::against_const(
            ColRef::new(alias, self.cols.start),
            Cmp::Lt,
            0,
        ));
    }

    fn path_into(
        &self,
        q: &mut ConjQuery,
        path: &Path,
        mut ctx: Ctx,
    ) -> Result<usize, XpathUnsupported> {
        if path.scope.is_some() {
            return Err(XpathUnsupported("subtree scoping".into()));
        }
        for step in &path.steps {
            let alias = self.step_into(q, step, ctx)?;
            ctx = Ctx::Alias(alias);
        }
        match ctx {
            Ctx::Alias(a) => Ok(a),
            Ctx::Outer(a) => {
                // Mirror for the degenerate `[.]` predicate.
                let m = q.add_alias(self.table);
                q.conds.push(Cond::new(
                    ColRef::new(m, self.cols.tid),
                    Cmp::Eq,
                    Operand::Outer(ColRef::new(a, self.cols.tid)),
                ));
                q.conds.push(Cond::new(
                    ColRef::new(m, self.cols.id),
                    Cmp::Eq,
                    Operand::Outer(ColRef::new(a, self.cols.id)),
                ));
                Ok(m)
            }
            Ctx::Document => Err(XpathUnsupported("empty path".into())),
        }
    }

    fn step_into(
        &self,
        q: &mut ConjQuery,
        step: &Step,
        ctx: Ctx,
    ) -> Result<usize, XpathUnsupported> {
        if step.left_align || step.right_align {
            return Err(XpathUnsupported("edge alignment".into()));
        }
        let x = q.add_alias(self.table);
        let cr = |a: usize, c: ColId| ColRef::new(a, c);

        // Node test.
        match (step.axis, &step.test) {
            (Axis::Attribute, NodeTest::Tag(t)) => match self.interner.get(&format!("@{t}")) {
                Some(sym) => q.conds.push(Cond::against_const(
                    cr(x, self.cols.name),
                    Cmp::Eq,
                    sym.raw(),
                )),
                None => self.unsat(q, x),
            },
            (Axis::Attribute, NodeTest::Any) => {
                q.conds
                    .push(Cond::against_const(cr(x, self.cols.value), Cmp::Ne, NULL));
            }
            (_, NodeTest::Tag(t)) => match self.interner.get(t) {
                Some(sym) => q.conds.push(Cond::against_const(
                    cr(x, self.cols.name),
                    Cmp::Eq,
                    sym.raw(),
                )),
                None => self.unsat(q, x),
            },
            (_, NodeTest::Any) => {
                q.conds
                    .push(Cond::against_const(cr(x, self.cols.value), Cmp::Eq, NULL));
            }
        }

        // Axis conditions. `mk` builds a condition against the context,
        // local or outer.
        let mk = |lhs: ColId, cmp: Cmp, rhs: ColId| -> Result<Cond, XpathUnsupported> {
            match ctx {
                Ctx::Alias(c) => Ok(Cond::between(cr(x, lhs), cmp, cr(c, rhs))),
                Ctx::Outer(c) => Ok(Cond::new(cr(x, lhs), cmp, Operand::Outer(cr(c, rhs)))),
                Ctx::Document => Err(XpathUnsupported("axis from the document node".into())),
            }
        };
        let is_doc = matches!(ctx, Ctx::Document);
        match step.axis {
            Axis::Child if is_doc => {
                q.conds
                    .push(Cond::against_const(cr(x, self.cols.pid), Cmp::Eq, 1));
            }
            Axis::Descendant | Axis::DescendantOrSelf if is_doc => {}
            _ if is_doc => self.unsat(q, x),
            Axis::Child => {
                q.conds.push(mk(self.cols.tid, Cmp::Eq, self.cols.tid)?);
                q.conds.push(mk(self.cols.pid, Cmp::Eq, self.cols.id)?);
                q.conds.push(mk(self.cols.start, Cmp::Gt, self.cols.start)?);
                q.conds.push(mk(self.cols.end, Cmp::Lt, self.cols.end)?);
            }
            Axis::Descendant => {
                q.conds.push(mk(self.cols.tid, Cmp::Eq, self.cols.tid)?);
                q.conds.push(mk(self.cols.start, Cmp::Gt, self.cols.start)?);
                q.conds.push(mk(self.cols.end, Cmp::Lt, self.cols.end)?);
            }
            Axis::DescendantOrSelf => {
                q.conds.push(mk(self.cols.tid, Cmp::Eq, self.cols.tid)?);
                q.conds.push(mk(self.cols.start, Cmp::Ge, self.cols.start)?);
                q.conds.push(mk(self.cols.end, Cmp::Le, self.cols.end)?);
            }
            Axis::Parent => {
                q.conds.push(mk(self.cols.tid, Cmp::Eq, self.cols.tid)?);
                q.conds.push(mk(self.cols.id, Cmp::Eq, self.cols.pid)?);
            }
            Axis::Ancestor => {
                q.conds.push(mk(self.cols.tid, Cmp::Eq, self.cols.tid)?);
                q.conds.push(mk(self.cols.start, Cmp::Lt, self.cols.start)?);
                q.conds.push(mk(self.cols.end, Cmp::Gt, self.cols.end)?);
            }
            Axis::AncestorOrSelf => {
                q.conds.push(mk(self.cols.tid, Cmp::Eq, self.cols.tid)?);
                q.conds.push(mk(self.cols.start, Cmp::Le, self.cols.start)?);
                q.conds.push(mk(self.cols.end, Cmp::Ge, self.cols.end)?);
            }
            Axis::SelfAxis => {
                q.conds.push(mk(self.cols.tid, Cmp::Eq, self.cols.tid)?);
                q.conds.push(mk(self.cols.id, Cmp::Eq, self.cols.id)?);
            }
            Axis::Following => {
                q.conds.push(mk(self.cols.tid, Cmp::Eq, self.cols.tid)?);
                q.conds.push(mk(self.cols.start, Cmp::Gt, self.cols.end)?);
            }
            Axis::Preceding => {
                q.conds.push(mk(self.cols.tid, Cmp::Eq, self.cols.tid)?);
                q.conds.push(mk(self.cols.end, Cmp::Lt, self.cols.start)?);
            }
            Axis::FollowingSibling => {
                q.conds.push(mk(self.cols.tid, Cmp::Eq, self.cols.tid)?);
                q.conds.push(mk(self.cols.pid, Cmp::Eq, self.cols.pid)?);
                q.conds.push(mk(self.cols.start, Cmp::Gt, self.cols.end)?);
            }
            Axis::PrecedingSibling => {
                q.conds.push(mk(self.cols.tid, Cmp::Eq, self.cols.tid)?);
                q.conds.push(mk(self.cols.pid, Cmp::Eq, self.cols.pid)?);
                q.conds.push(mk(self.cols.end, Cmp::Lt, self.cols.start)?);
            }
            Axis::Attribute => {
                q.conds.push(mk(self.cols.tid, Cmp::Eq, self.cols.tid)?);
                q.conds.push(mk(self.cols.id, Cmp::Eq, self.cols.id)?);
            }
            other => {
                return Err(XpathUnsupported(format!(
                    "axis {} (requires the LPath labeling)",
                    other.name()
                )))
            }
        }

        for pred in &step.predicates {
            self.pred_into(q, pred, x, false)?;
        }
        Ok(x)
    }

    fn pred_into(
        &self,
        q: &mut ConjQuery,
        pred: &Pred,
        context: usize,
        negated: bool,
    ) -> Result<(), XpathUnsupported> {
        match pred {
            Pred::And(a, b) if !negated => {
                self.pred_into(q, a, context, false)?;
                self.pred_into(q, b, context, false)
            }
            Pred::Not(p) => self.pred_into(q, p, context, !negated),
            Pred::Or(..) | Pred::And(..) => Err(XpathUnsupported("disjunctive predicate".into())),
            Pred::Position(..) => Err(XpathUnsupported("position()/last()".into())),
            // Positive predicates inline as joins (DISTINCT absorbs
            // witness multiplicity), exactly as in the LPath engine —
            // the paper's Figure 10 holds "other components the same".
            Pred::Exists(path) => {
                if negated {
                    let mut sub = ConjQuery::default();
                    self.path_into(&mut sub, path, Ctx::Outer(context))?;
                    q.subqueries.push(SubQuery {
                        negated: true,
                        query: sub,
                    });
                } else {
                    self.path_into(q, path, Ctx::Alias(context))?;
                }
                Ok(())
            }
            Pred::Cmp { path, op, value } => {
                let cmp = match op {
                    CmpOp::Eq => Cmp::Eq,
                    CmpOp::Ne => Cmp::Ne,
                    _ => return Err(XpathUnsupported("ordered value comparison".into())),
                };
                if !path.steps.last().is_some_and(|s| s.axis == Axis::Attribute) {
                    return Err(XpathUnsupported(
                        "comparison on a non-attribute path".into(),
                    ));
                }
                let value_cond =
                    |me: &Self, q: &mut ConjQuery, alias: usize| match me.interner.get(value) {
                        Some(sym) => q.conds.push(Cond::against_const(
                            ColRef::new(alias, me.cols.value),
                            cmp,
                            sym.raw(),
                        )),
                        None if cmp == Cmp::Eq => me.unsat(q, alias),
                        None => {}
                    };
                if negated {
                    let mut sub = ConjQuery::default();
                    let result = self.path_into(&mut sub, path, Ctx::Outer(context))?;
                    value_cond(self, &mut sub, result);
                    q.subqueries.push(SubQuery {
                        negated: true,
                        query: sub,
                    });
                } else {
                    let result = self.path_into(q, path, Ctx::Alias(context))?;
                    value_cond(self, q, result);
                }
                Ok(())
            }
            Pred::Count { path, op, value } => {
                // As in the LPath engine: only existence thresholds fit
                // the conjunctive target.
                let exists = match (op, value) {
                    (CmpOp::Gt | CmpOp::Ne, 0) => true,
                    (CmpOp::Eq, 0) | (CmpOp::Lt, 1) => false,
                    _ => {
                        return Err(XpathUnsupported(
                            "count() thresholds beyond existence".into(),
                        ))
                    }
                };
                self.pred_into(q, &Pred::Exists(path.clone()), context, negated == exists)
            }
            Pred::StrCmp { func, path, arg } => {
                let members = self.symbols_matching(|text| func.apply(text, arg));
                self.apply_in_set(q, path, context, negated, members)
            }
            Pred::StrLen { path, op, value } => {
                let members = self.symbols_matching(|text| {
                    let n = text.chars().count() as u32;
                    match op {
                        CmpOp::Eq => n == *value,
                        CmpOp::Ne => n != *value,
                        CmpOp::Lt => n < *value,
                        CmpOp::Gt => n > *value,
                    }
                });
                self.apply_in_set(q, path, context, negated, members)
            }
        }
    }

    /// Interned symbols whose text satisfies `test` (string-function
    /// expansion; see `lpath-core::translate`).
    fn symbols_matching(&self, test: impl Fn(&str) -> bool) -> Vec<u32> {
        self.interner
            .iter()
            .filter(|(_, text)| test(text))
            .map(|(sym, _)| sym.raw())
            .collect()
    }

    /// Constrain an attribute-final predicate path's value to a symbol
    /// set, negating at the EXISTS level when required.
    fn apply_in_set(
        &self,
        q: &mut ConjQuery,
        path: &Path,
        context: usize,
        negated: bool,
        members: Vec<u32>,
    ) -> Result<(), XpathUnsupported> {
        if !path.steps.last().is_some_and(|s| s.axis == Axis::Attribute) {
            return Err(XpathUnsupported(
                "string function on a non-attribute path".into(),
            ));
        }
        if negated {
            let mut sub = ConjQuery::default();
            let result = self.path_into(&mut sub, path, Ctx::Outer(context))?;
            if members.is_empty() {
                self.unsat(&mut sub, result);
            } else {
                sub.in_conds
                    .push(InCond::new(ColRef::new(result, self.cols.value), members));
            }
            q.subqueries.push(SubQuery {
                negated: true,
                query: sub,
            });
        } else if members.is_empty() {
            let alias = self.path_into(q, path, Ctx::Alias(context))?;
            self.unsat(q, alias);
        } else {
            let result = self.path_into(q, path, Ctx::Alias(context))?;
            q.in_conds
                .push(InCond::new(ColRef::new(result, self.cols.value), members));
        }
        Ok(())
    }
}
