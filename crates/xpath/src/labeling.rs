//! The "XPath labeling scheme" of the paper's §5.4: start/end textual
//! positions (DeHaan et al., the paper’s reference \[11\]), as opposed to LPath's leaf
//! intervals.
//!
//! Each element is stamped with the positions of its start and end tags
//! in a (virtual) serialized document: a counter that increments at
//! every tag boundary. Containment (`descendant`) is strict interval
//! nesting — `x.start > c.start ∧ x.end < c.end` — with no need for a
//! depth tiebreak, but **adjacency is not expressible**: two nodes whose
//! spans touch in leaf terms may have arbitrarily many tag positions
//! between them. That asymmetry is exactly what Figure 10 evaluates.

use lpath_model::{NodeId, Tree};

/// A start/end label. `id`/`pid` are the same preorder identifiers the
/// LPath scheme uses (document node = 1).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct SeLabel {
    /// Textual position of the start tag.
    pub start: u32,
    /// Textual position of the end tag.
    pub end: u32,
    /// Node depth (root element = 1).
    pub depth: u32,
    /// Unique node id (document node = 1).
    pub id: u32,
    /// Parent's id.
    pub pid: u32,
}

/// Stamp every node of `tree` in one depth-first traversal.
pub fn se_label_tree(tree: &Tree) -> Vec<SeLabel> {
    let n = tree.len();
    let mut labels = vec![
        SeLabel {
            start: 0,
            end: 0,
            depth: 0,
            id: 0,
            pid: 0,
        };
        n
    ];
    // ids, depths, pids in arena (preorder) order.
    for idx in 0..n {
        let node = tree.node(NodeId(idx as u32));
        let (depth, pid) = match node.parent {
            None => (1, 1),
            Some(p) => (labels[p.index()].depth + 1, labels[p.index()].id),
        };
        labels[idx].depth = depth;
        labels[idx].pid = pid;
        labels[idx].id = idx as u32 + 2;
    }
    // start/end positions via an explicit DFS with a tag counter.
    let mut counter = 1u32;
    // Stack of (node, next child index).
    let mut stack: Vec<(NodeId, usize)> = vec![(tree.root(), 0)];
    labels[tree.root().index()].start = counter;
    counter += 1;
    while let Some(&mut (node, ref mut ci)) = stack.last_mut() {
        let children = &tree.node(node).children;
        if *ci < children.len() {
            let child = children[*ci];
            *ci += 1;
            labels[child.index()].start = counter;
            counter += 1;
            stack.push((child, 0));
        } else {
            labels[node.index()].end = counter;
            counter += 1;
            stack.pop();
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpath_model::Interner;

    fn toy() -> (Tree, Vec<SeLabel>) {
        // S(A(B C) D)
        let mut i = Interner::new();
        let mut t = Tree::new(i.intern("S"));
        let a = t.add_child(t.root(), i.intern("A"));
        t.add_child(a, i.intern("B"));
        t.add_child(a, i.intern("C"));
        t.add_child(t.root(), i.intern("D"));
        let labels = se_label_tree(&t);
        (t, labels)
    }

    #[test]
    fn tag_positions_are_document_order() {
        let (_, l) = toy();
        // <S><A><B></B><C></C></A><D></D></S>
        assert_eq!((l[0].start, l[0].end), (1, 10)); // S
        assert_eq!((l[1].start, l[1].end), (2, 7)); // A
        assert_eq!((l[2].start, l[2].end), (3, 4)); // B
        assert_eq!((l[3].start, l[3].end), (5, 6)); // C
        assert_eq!((l[4].start, l[4].end), (8, 9)); // D
    }

    #[test]
    fn containment_is_strict_nesting() {
        let (t, l) = toy();
        let desc = |x: usize, c: usize| l[x].start > l[c].start && l[x].end < l[c].end;
        for x in 0..t.len() {
            for c in 0..t.len() {
                let structurally = t.ancestors(NodeId(x as u32)).any(|a| a == NodeId(c as u32));
                assert_eq!(desc(x, c), structurally, "{x} in {c}");
            }
        }
    }

    #[test]
    fn ids_match_lpath_scheme() {
        let (t, l) = toy();
        let lp = lpath_model::label_tree(&t);
        for i in 0..t.len() {
            assert_eq!(l[i].id, lp[i].id);
            assert_eq!(l[i].pid, lp[i].pid);
            assert_eq!(l[i].depth, lp[i].depth);
        }
    }

    #[test]
    fn no_unary_ambiguity_in_start_end() {
        // Unary chain: A(B(C)) — starts strictly increase, ends strictly
        // decrease, so strict nesting distinguishes the chain without a
        // depth column (unlike leaf intervals).
        let mut i = Interner::new();
        let mut t = Tree::new(i.intern("A"));
        let b = t.add_child(t.root(), i.intern("B"));
        t.add_child(b, i.intern("C"));
        let l = se_label_tree(&t);
        assert!(l[0].start < l[1].start && l[1].start < l[2].start);
        assert!(l[2].end < l[1].end && l[1].end < l[0].end);
    }
}
